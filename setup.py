"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works in offline environments that
lack the ``wheel`` package required by PEP 660 editable builds.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
