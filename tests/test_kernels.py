"""Tests for the shared columnar kernels (``repro.engine.kernels``).

Every kernel is cross-checked against a dict/loop reference on random
inputs: the kernels are the hot path of both the executor and the plan
interpreter, so a silent off-by-one here corrupts every count downstream.
"""

import numpy as np
import pytest

from repro.engine.kernels import (
    GroupIndex,
    KeyIndexCache,
    compile_predicates,
    expand_matches,
    grouped_sums,
    is_strictly_increasing,
    lookup_sums,
    match_counts,
)
from repro.sql import ColumnRef, Op, OrPredicate, Predicate
from repro.storage import Column, Table


def naive_groups(keys):
    """key -> list of positions, insertion-ordered within each key."""
    groups = {}
    for i, k in enumerate(keys.tolist()):
        groups.setdefault(k, []).append(i)
    return groups


class TestGroupIndex:
    def test_matches_naive_grouping(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            keys = rng.integers(0, 15, size=rng.integers(1, 200))
            index = GroupIndex.from_keys(keys)
            groups = naive_groups(keys)
            assert index.uniq.tolist() == sorted(groups)
            for slot, key in enumerate(index.uniq.tolist()):
                s, n = int(index.start[slot]), int(index.length[slot])
                # Stable sort: group members stay in original row order.
                assert index.perm[s : s + n].tolist() == groups[key]

    def test_empty_keys(self):
        index = GroupIndex.from_keys(np.zeros(0, dtype=np.int64))
        assert index.n_keys == 0
        assert index.perm.size == 0

    def test_single_group(self):
        index = GroupIndex.from_keys(np.full(7, 3.0))
        assert index.n_keys == 1
        assert int(index.length[0]) == 7

    def test_float_keys(self):
        keys = np.array([2.5, 1.0, 2.5, -3.0])
        index = GroupIndex.from_keys(keys)
        assert index.uniq.tolist() == [-3.0, 1.0, 2.5]
        assert index.length.tolist() == [1, 1, 2]


class TestMatchExpand:
    def test_counts_match_naive(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            build = rng.integers(0, 10, size=rng.integers(0, 100))
            probe = rng.integers(-2, 12, size=rng.integers(1, 80))
            index = GroupIndex.from_keys(build)
            _, counts = match_counts(index, probe)
            groups = naive_groups(build)
            expected = [len(groups.get(k, ())) for k in probe.tolist()]
            assert counts.tolist() == expected

    def test_expand_matches_probe_order(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            build = rng.integers(0, 8, size=rng.integers(0, 60))
            probe = rng.integers(-1, 10, size=rng.integers(1, 40))
            index = GroupIndex.from_keys(build)
            pos, counts = match_counts(index, probe)
            expanded = expand_matches(index, pos, counts)
            groups = naive_groups(build)
            expected = [
                p for k in probe.tolist() for p in groups.get(k, ())
            ]
            assert expanded.tolist() == expected

    def test_probe_outside_key_range(self):
        # Values below uniq[0] and above uniq[-1] exercise the clip path.
        index = GroupIndex.from_keys(np.array([5, 5, 9]))
        _, counts = match_counts(index, np.array([1, 5, 9, 100]))
        assert counts.tolist() == [0, 2, 1, 0]

    def test_empty_build_side(self):
        index = GroupIndex.from_keys(np.zeros(0, dtype=np.int64))
        pos, counts = match_counts(index, np.array([1, 2, 3]))
        assert counts.tolist() == [0, 0, 0]
        assert expand_matches(index, pos, counts).size == 0


class TestGroupedSums:
    def test_matches_dict_sums(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 6, size=200)
        weights = rng.integers(1, 50, size=200).astype(np.int64)
        uniq, sums = grouped_sums(keys, weights)
        expected = {}
        for k, w in zip(keys.tolist(), weights.tolist()):
            expected[k] = expected.get(k, 0) + w
        assert dict(zip(uniq.tolist(), sums.tolist())) == expected

    def test_promotes_past_int64(self):
        # Two weights of 2**62 sum to 2**63: overflows int64, must promote.
        keys = np.array([1, 1])
        weights = np.array([2**62, 2**62], dtype=np.int64)
        _, sums = grouped_sums(keys, weights)
        assert sums.dtype == object
        assert sums.tolist() == [2**63]

    def test_object_weights_stay_exact(self):
        keys = np.array([0, 0, 1])
        weights = np.array([2**80, 1, 7], dtype=object)
        _, sums = grouped_sums(keys, weights)
        assert sums.tolist() == [2**80 + 1, 7]

    def test_empty(self):
        keys = np.zeros(0, dtype=np.int64)
        uniq, sums = grouped_sums(keys, keys)
        assert uniq.size == 0 and sums.size == 0

    def test_lookup_sums(self):
        uniq = np.array([2, 5, 9])
        sums = np.array([10, 20, 30], dtype=np.int64)
        out = lookup_sums(uniq, sums, np.array([5, 1, 9, 2, 11]))
        assert out.tolist() == [20, 0, 30, 10, 0]

    def test_lookup_empty_uniq(self):
        out = lookup_sums(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), np.array([1, 2])
        )
        assert out.tolist() == [0, 0]


class TestCompiledPredicates:
    VALUES = np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 2.0])

    def _table(self):
        return Table("t", [Column("x", self.VALUES)])

    @pytest.mark.parametrize(
        "pred",
        [
            Predicate(ColumnRef("t", "x"), Op.EQ, 2.0),
            Predicate(ColumnRef("t", "x"), Op.LT, 3.0),
            Predicate(ColumnRef("t", "x"), Op.LE, 3.0),
            Predicate(ColumnRef("t", "x"), Op.GT, 1.0),
            Predicate(ColumnRef("t", "x"), Op.GE, 1.0),
            Predicate(ColumnRef("t", "x"), Op.BETWEEN, (1.0, 4.0)),
            Predicate(ColumnRef("t", "x"), Op.IN, frozenset({0.0, 2.0, 9.0})),
            OrPredicate(
                ColumnRef("t", "x"),
                (
                    Predicate(ColumnRef("t", "x"), Op.EQ, 5.0),
                    Predicate(ColumnRef("t", "x"), Op.LT, 1.0),
                ),
            ),
        ],
    )
    def test_agrees_with_evaluate(self, pred):
        fn = compile_predicates([pred])
        assert np.array_equal(fn(self._table()), pred.evaluate(self.VALUES))

    def test_conjunction_and_folds(self):
        preds = [
            Predicate(ColumnRef("t", "x"), Op.GE, 1.0),
            Predicate(ColumnRef("t", "x"), Op.LE, 3.0),
        ]
        fn = compile_predicates(preds)
        expected = preds[0].evaluate(self.VALUES) & preds[1].evaluate(self.VALUES)
        assert np.array_equal(fn(self._table()), expected)

    def test_empty_conjunction_is_none(self):
        assert compile_predicates([]) is None
        assert compile_predicates(()) is None


class TestStrictlyIncreasing:
    def test_cases(self):
        assert is_strictly_increasing(np.zeros(0, dtype=np.int64))
        assert is_strictly_increasing(np.array([4]))
        assert is_strictly_increasing(np.array([0, 2, 7]))
        assert not is_strictly_increasing(np.array([0, 2, 2]))
        assert not is_strictly_increasing(np.array([3, 1]))


class TestKeyIndexCache:
    def _table(self, n=50, seed=0):
        rng = np.random.default_rng(seed)
        return Table("t", [Column("k", rng.integers(0, 10, n))])

    def test_full_is_cached(self):
        cache = KeyIndexCache()
        tbl = self._table()
        first = cache.full(tbl, "k")
        assert cache.full(tbl, "k") is first
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_data_version_invalidates(self):
        cache = KeyIndexCache()
        tbl = self._table(n=10)
        before = cache.full(tbl, "k")
        tbl.append_rows({"k": np.array([3, 3])})
        after = cache.full(tbl, "k")
        assert after is not before
        assert after.perm.size == 12
        assert cache.stats()["misses"] == 2

    def test_lru_eviction(self):
        cache = KeyIndexCache(capacity=1)
        a = Table("a", [Column("k", np.arange(5))])
        b = Table("b", [Column("k", np.arange(5))])
        cache.full(a, "k")
        cache.full(b, "k")  # evicts a
        assert len(cache) == 1
        assert cache.stats()["evictions"] == 1
        cache.full(a, "k")  # miss again
        assert cache.stats()["misses"] == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            KeyIndexCache(capacity=0)

    def test_restricted_equals_direct_index(self):
        rng = np.random.default_rng(7)
        cache = KeyIndexCache()
        tbl = self._table(n=120, seed=5)
        for _ in range(15):
            n_rows = int(rng.integers(1, 120))
            rows = np.sort(rng.choice(120, size=n_rows, replace=False)).astype(
                np.int64
            )
            got = cache.restricted(tbl, "k", rows)
            want = GroupIndex.from_keys(tbl.values("k")[rows])
            assert np.array_equal(got.uniq, want.uniq)
            assert np.array_equal(got.start, want.start)
            assert np.array_equal(got.length, want.length)
            # Both stable: identical perms, not just equivalent groups.
            assert np.array_equal(got.perm, want.perm)

    def test_restricted_all_rows_fast_path(self):
        cache = KeyIndexCache()
        tbl = self._table(n=30)
        rows = np.arange(30, dtype=np.int64)
        assert cache.restricted(tbl, "k", rows) is cache.full(tbl, "k")

    def test_restricted_empty_rows(self):
        cache = KeyIndexCache()
        tbl = self._table()
        index = cache.restricted(tbl, "k", np.zeros(0, dtype=np.int64))
        assert index.n_keys == 0
        # No full index needs to be built for an empty subset.
        assert len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = KeyIndexCache()
        tbl = self._table()
        cache.full(tbl, "k")
        cache.full(tbl, "k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_stats_shape(self):
        stats = KeyIndexCache().stats()
        assert set(stats) == {"entries", "hits", "misses", "evictions", "hit_rate"}
        assert stats["hit_rate"] == 0.0
