"""Tests for the pooled MSCN [22], CRN [13] and Astrid-lite [48]."""

import numpy as np
import pytest

from repro.cardest import CRNEstimator, MSCNEstimator, PooledMSCNEstimator, q_error
from repro.cardest.strings import (
    AstridEstimator,
    StringColumn,
    StringMatchKind,
    StringPredicate,
    generate_names,
)
from repro.sql import Query, WorkloadGenerator


class TestPooledMSCN:
    def test_max_pooling_wired(self, stats_db):
        est = PooledMSCNEstimator(stats_db, epochs=5)
        assert est.net.modules["tables"].pooling == "max"

    def test_fit_and_estimate(self, stats_db, stats_train_data):
        est = PooledMSCNEstimator(stats_db, epochs=25)
        est.fit(*stats_train_data)
        queries, cards = stats_train_data
        errs = [q_error(est.estimate(q), c) for q, c in zip(queries[:30], cards[:30])]
        assert np.median(errs) < 20.0

    def test_differs_from_avg_pooling(self, stats_db, stats_train_data):
        queries, cards = stats_train_data
        avg = MSCNEstimator(stats_db, epochs=10).fit(queries, cards)
        mx = PooledMSCNEstimator(stats_db, epochs=10).fit(queries, cards)
        preds_avg = [avg.estimate(q) for q in queries[:15]]
        preds_max = [mx.estimate(q) for q in queries[:15]]
        assert preds_avg != preds_max

    def test_max_pool_gradient(self):
        # Numerical gradient check of the max-pooling path.
        from repro.ml.setconv import SetConvNet

        rng = np.random.default_rng(3)
        samples = [{"a": rng.normal(size=(3, 3))}, {"a": rng.normal(size=(2, 3))}]
        target = np.array([[0.4], [0.6]])
        net = SetConvNet({"a": 3}, hidden=4, pooling="max", seed=1)
        batch = {"a": [s["a"] for s in samples]}

        def loss():
            return float(((net.forward(batch) - target) ** 2).sum())

        pred = net.forward(batch)
        net._backward(2.0 * (pred - target))
        analytic = net.gradients()
        for p, a in zip(net.parameters(), analytic):
            grad = np.zeros_like(p)
            flat, g = p.reshape(-1), grad.reshape(-1)
            for i in range(flat.size):
                old = flat[i]
                flat[i] = old + 1e-5
                hi = loss()
                flat[i] = old - 1e-5
                lo = loss()
                flat[i] = old
                g[i] = (hi - lo) / 2e-5
            assert np.allclose(a, grad, atol=1e-3)

    def test_empty_set_max_pool(self, stats_db):
        from repro.ml.setconv import SetConvNet

        net = SetConvNet({"a": 3}, hidden=4, pooling="max", seed=0)
        out = net.predict([{"a": np.zeros((0, 3))}])
        assert np.isfinite(out).all()

    def test_unknown_pooling_rejected(self):
        from repro.ml.setconv import SetConvNet

        with pytest.raises(ValueError):
            SetConvNet({"a": 3}, pooling="median")


class TestCRN:
    @pytest.fixture(scope="class")
    def trained_crn(self, stats_db, stats_executor):
        gen = WorkloadGenerator(stats_db, seed=150)
        # Template workloads give CRN dense same-template pairs.
        train = (
            gen.single_table_workload("posts", 60)
            + gen.single_table_workload("users", 60)
            + gen.join_template_workload(["posts", "users"], 60)
        )
        cards = np.array([stats_executor.cardinality(q) for q in train])
        return CRNEstimator(stats_db, epochs=60, seed=0).fit(train, cards)

    def test_known_template_accuracy(self, trained_crn, stats_db, stats_executor):
        gen = WorkloadGenerator(stats_db, seed=151)
        test = gen.single_table_workload("posts", 30)
        errs = [
            q_error(trained_crn.estimate(q), stats_executor.cardinality(q))
            for q in test
        ]
        assert np.median(errs) < 15.0

    def test_unseen_template_falls_back(self, trained_crn, stats_db):
        gen = WorkloadGenerator(stats_db, seed=152)
        q = gen.join_template_workload(["badges", "users"], 1)[0]
        est = trained_crn.estimate(q)
        assert est >= 0.0

    def test_estimate_before_fit(self, stats_db):
        with pytest.raises(RuntimeError):
            CRNEstimator(stats_db).estimate(Query(("users",)))

    def test_conjoin_intersects(self, stats_db, stats_executor):
        gen = WorkloadGenerator(stats_db, seed=153)
        qs = gen.single_table_workload("posts", 2)
        both = CRNEstimator._conjoin(qs[0], qs[1])
        card = stats_executor.cardinality(both)
        assert card <= min(
            stats_executor.cardinality(qs[0]), stats_executor.cardinality(qs[1])
        )


class TestStringSubstrate:
    def test_generate_names(self):
        names = generate_names(100, seed=0)
        assert len(names) == 100
        assert all(names)
        assert len(set(names)) > 10

    def test_predicate_semantics(self):
        assert StringPredicate(StringMatchKind.PREFIX, "ab").matches("abc")
        assert not StringPredicate(StringMatchKind.PREFIX, "bc").matches("abc")
        assert StringPredicate(StringMatchKind.SUFFIX, "bc").matches("abc")
        assert StringPredicate(StringMatchKind.SUBSTRING, "b").matches("abc")
        assert StringPredicate(StringMatchKind.EXACT, "abc").matches("abc")
        assert not StringPredicate(StringMatchKind.EXACT, "ab").matches("abc")

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            StringPredicate(StringMatchKind.PREFIX, "")

    def test_column_count(self):
        col = StringColumn("name", ["anna", "annette", "bob"])
        assert col.count(StringPredicate(StringMatchKind.PREFIX, "ann")) == 2
        assert col.count(StringPredicate(StringMatchKind.SUBSTRING, "nn")) == 2
        assert col.count(StringPredicate(StringMatchKind.EXACT, "bob")) == 1

    def test_sampled_patterns_nonvacuous(self):
        col = StringColumn("name", generate_names(300, seed=1))
        rng = np.random.default_rng(0)
        for pred in col.sample_patterns(30, rng):
            assert col.count(pred) >= 1


class TestAstrid:
    @pytest.fixture(scope="class")
    def setup(self):
        col = StringColumn("name", generate_names(2000, seed=2))
        est = AstridEstimator(col, epochs=80, seed=0).fit(n_train=400)
        return col, est

    def test_beats_uniform_guess(self, setup):
        col, est = setup
        rng = np.random.default_rng(9)
        test = col.sample_patterns(60, rng)
        learned = np.median([est.q_error(p) for p in test])
        # Uniform guesser: always predict mean match count of training.
        mean_count = np.mean([col.count(p) for p in test])
        uniform = np.median(
            [
                max(mean_count, 1) / max(col.count(p), 1)
                if mean_count > col.count(p)
                else max(col.count(p), 1) / max(mean_count, 1)
                for p in test
            ]
        )
        assert learned < uniform
        assert learned < 5.0

    def test_estimates_bounded(self, setup):
        col, est = setup
        pred = StringPredicate(StringMatchKind.SUBSTRING, "an")
        assert 0.0 <= est.estimate(pred) <= col.n_rows

    def test_estimate_before_fit(self):
        col = StringColumn("name", generate_names(50, seed=3))
        with pytest.raises(RuntimeError):
            AstridEstimator(col).estimate(
                StringPredicate(StringMatchKind.PREFIX, "an")
            )
