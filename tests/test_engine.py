"""Tests for the exact executor, plan trees and the latency simulator.

The executor is cross-checked against a brute-force nested-loop reference
on randomly generated queries (property-based), including cyclic joins.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    CardinalityExecutor,
    ExecutionSimulator,
    JoinMethod,
    JoinNode,
    Plan,
    ScanMethod,
    ScanNode,
    SimulatorConfig,
    execute_cardinality,
)
from repro.engine.executor import IntermediateTooLarge
from repro.engine.plans import scan_for
from repro.sql import ColumnRef, Join, Op, Predicate, Query, WorkloadGenerator
from repro.storage import Column, Database, JoinEdge, Table


def brute_force_count(db, query):
    """Reference nested-loop COUNT(*) over the real data."""
    tables = list(query.tables)
    rows_per_table = []
    for t in tables:
        tbl = db.table(t)
        mask = np.ones(tbl.n_rows, dtype=bool)
        for p in query.predicates_on(t):
            mask &= p.evaluate(tbl.values(p.column.column))
        rows_per_table.append(np.flatnonzero(mask))

    count = 0

    def recurse(i, assignment):
        nonlocal count
        if i == len(tables):
            count += 1
            return
        t = tables[i]
        for row in rows_per_table[i]:
            ok = True
            for j in query.joins:
                lt, rt = j.left.table, j.right.table
                if t in (lt, rt):
                    other = rt if t == lt else lt
                    if other in assignment:
                        my_col = j.left.column if t == lt else j.right.column
                        other_col = j.right.column if t == lt else j.left.column
                        mine = db.table(t).values(my_col)[row]
                        theirs = db.table(other).values(other_col)[assignment[other]]
                        if mine != theirs:
                            ok = False
                            break
            if ok:
                assignment[t] = row
                recurse(i + 1, assignment)
                del assignment[t]

    recurse(0, {})
    return count


@pytest.fixture(scope="module")
def tiny_db():
    """A tiny 3-table database small enough for brute force."""
    rng = np.random.default_rng(0)
    users = Table(
        "users",
        [
            Column("id", np.arange(12), is_key=True),
            Column("age", rng.integers(0, 5, 12)),
        ],
    )
    posts = Table(
        "posts",
        [
            Column("id", np.arange(20), is_key=True),
            Column("uid", rng.integers(0, 12, 20)),
            Column("score", rng.integers(0, 4, 20)),
        ],
    )
    comments = Table(
        "comments",
        [
            Column("pid", rng.integers(0, 20, 30)),
            Column("cuid", rng.integers(0, 12, 30)),
            Column("len", rng.integers(0, 6, 30)),
        ],
    )
    return Database(
        "tiny",
        [users, posts, comments],
        [
            JoinEdge("posts", "uid", "users", "id"),
            JoinEdge("comments", "pid", "posts", "id"),
            JoinEdge("comments", "cuid", "users", "id"),
        ],
    )


class TestExecutorCorrectness:
    def test_single_table(self, tiny_db):
        q = Query(("users",), (), (Predicate(ColumnRef("users", "age"), Op.LE, 2.0),))
        assert execute_cardinality(tiny_db, q) == brute_force_count(tiny_db, q)

    def test_two_table_join(self, tiny_db):
        q = Query(
            ("posts", "users"),
            (Join(ColumnRef("posts", "uid"), ColumnRef("users", "id")),),
            (Predicate(ColumnRef("users", "age"), Op.EQ, 1.0),),
        )
        assert execute_cardinality(tiny_db, q) == brute_force_count(tiny_db, q)

    def test_three_table_chain(self, tiny_db):
        q = Query(
            ("comments", "posts", "users"),
            (
                Join(ColumnRef("posts", "uid"), ColumnRef("users", "id")),
                Join(ColumnRef("comments", "pid"), ColumnRef("posts", "id")),
            ),
            (Predicate(ColumnRef("comments", "len"), Op.GE, 3.0),),
        )
        assert execute_cardinality(tiny_db, q) == brute_force_count(tiny_db, q)

    def test_cyclic_triangle(self, tiny_db):
        q = Query(
            ("comments", "posts", "users"),
            (
                Join(ColumnRef("posts", "uid"), ColumnRef("users", "id")),
                Join(ColumnRef("comments", "pid"), ColumnRef("posts", "id")),
                Join(ColumnRef("comments", "cuid"), ColumnRef("users", "id")),
            ),
        )
        assert execute_cardinality(tiny_db, q) == brute_force_count(tiny_db, q)

    def test_empty_result(self, tiny_db):
        q = Query(("users",), (), (Predicate(ColumnRef("users", "age"), Op.GT, 99.0),))
        assert execute_cardinality(tiny_db, q) == 0

    def test_disconnected_rejected(self, tiny_db):
        q = Query(("posts", "users"))
        with pytest.raises(ValueError, match="disconnected"):
            execute_cardinality(tiny_db, q)

    def test_memoization(self, tiny_db):
        ex = CardinalityExecutor(tiny_db)
        q = Query(("users",), (), (Predicate(ColumnRef("users", "age"), Op.LE, 2.0),))
        first = ex.cardinality(q)
        assert ex.cardinality(q) == first
        assert q in ex._cache
        ex.clear_cache()
        assert q not in ex._cache

    def test_intermediate_guard(self, tiny_db):
        ex = CardinalityExecutor(tiny_db, max_intermediate_rows=1)
        q = Query(
            ("comments", "posts", "users"),
            (
                Join(ColumnRef("posts", "uid"), ColumnRef("users", "id")),
                Join(ColumnRef("comments", "pid"), ColumnRef("posts", "id")),
                Join(ColumnRef("comments", "cuid"), ColumnRef("users", "id")),
            ),
        )
        with pytest.raises(IntermediateTooLarge):
            ex.cardinality(q)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_queries_match_brute_force(self, tiny_db, seed):
        gen = WorkloadGenerator(tiny_db, seed=seed)
        q = gen.random_query(1, 3, max_preds_per_table=2)
        assert execute_cardinality(tiny_db, q) == brute_force_count(tiny_db, q)


class TestIntegerExactCounts:
    """S1 regression: counts stay integer-exact past float64's 2**53 limit.

    The deep-chain fixture is built so every per-key product (and the odd
    total) exceeds what float64 can represent -- the old float64
    message-passing accumulator silently rounded these.
    """

    def test_chain_exact_past_float53(self):
        from repro.oracle.fixtures import make_deep_chain

        db, q, expected = make_deep_chain(8)
        assert expected > 2**53 and expected % 2 == 1
        assert int(float(expected)) != expected  # not float64-representable
        assert execute_cardinality(db, q) == expected

    def test_chain_exact_past_int64(self):
        from repro.oracle.fixtures import make_deep_chain

        db, q, expected = make_deep_chain(10)
        assert expected > 2**63  # forces the object-dtype promotion path
        assert execute_cardinality(db, q) == expected

    def test_count_is_python_int(self, tiny_db):
        q = Query(
            ("posts", "users"),
            (Join(ColumnRef("posts", "uid"), ColumnRef("users", "id")),),
        )
        result = execute_cardinality(tiny_db, q)
        assert type(result) is int


class TestMaterializedCount:
    """S5: edge cases of the cyclic-query hash-join materialization path."""

    def triangle(self, *predicates):
        return Query(
            ("comments", "posts", "users"),
            (
                Join(ColumnRef("posts", "uid"), ColumnRef("users", "id")),
                Join(ColumnRef("comments", "pid"), ColumnRef("posts", "id")),
                Join(ColumnRef("comments", "cuid"), ColumnRef("users", "id")),
            ),
            predicates,
        )

    def test_empty_intermediate(self, tiny_db):
        q = self.triangle(Predicate(ColumnRef("users", "age"), Op.GT, 99.0))
        assert execute_cardinality(tiny_db, q) == 0

    def test_agrees_with_tree_count_on_acyclic(self, tiny_db):
        # Force an acyclic query down the materialization path: both
        # strategies must produce the same count as brute force.
        ex = CardinalityExecutor(tiny_db)
        q = Query(
            ("comments", "posts", "users"),
            (
                Join(ColumnRef("posts", "uid"), ColumnRef("users", "id")),
                Join(ColumnRef("comments", "pid"), ColumnRef("posts", "id")),
            ),
            (Predicate(ColumnRef("posts", "score"), Op.LE, 2.0),),
        )
        expected = brute_force_count(tiny_db, q)
        assert ex._tree_count(q) == expected
        assert ex._materialized_count(q) == expected

    def test_cycle_edge_filters(self, tiny_db):
        # Closing the triangle can only remove tuples relative to the
        # two-edge chain, and the cyclic count must match brute force.
        cyclic = self.triangle()
        chain = Query(cyclic.tables, cyclic.joins[:-1])
        n_cyclic = execute_cardinality(tiny_db, cyclic)
        assert n_cyclic == brute_force_count(tiny_db, cyclic)
        assert n_cyclic <= execute_cardinality(tiny_db, chain)

    def test_guard_raises_not_truncates(self, tiny_db):
        ex = CardinalityExecutor(tiny_db, max_intermediate_rows=2)
        with pytest.raises(IntermediateTooLarge):
            ex.cardinality(self.triangle())
        # A roomier guard must succeed and agree with brute force.
        roomy = CardinalityExecutor(tiny_db)
        q = self.triangle()
        assert roomy.cardinality(q) == brute_force_count(tiny_db, q)


class TestExecutorMemoLRU:
    """The per-query memo is bounded (serving streams are unbounded)."""

    def _query(self, bound):
        return Query(
            ("users",), (), (Predicate(ColumnRef("users", "age"), Op.LE, bound),)
        )

    def test_eviction_at_capacity(self, tiny_db):
        ex = CardinalityExecutor(tiny_db, cache_capacity=2)
        for bound in (0.0, 1.0, 2.0):
            ex.cardinality(self._query(bound))
        stats = ex.cache_stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        # The oldest entry (bound 0.0) was evicted, the newest two remain.
        assert self._query(0.0) not in ex._cache
        assert self._query(2.0) in ex._cache

    def test_lru_order_recency_not_insertion(self, tiny_db):
        ex = CardinalityExecutor(tiny_db, cache_capacity=2)
        ex.cardinality(self._query(0.0))
        ex.cardinality(self._query(1.0))
        ex.cardinality(self._query(0.0))  # refresh 0.0
        ex.cardinality(self._query(2.0))  # must evict 1.0, not 0.0
        assert self._query(0.0) in ex._cache
        assert self._query(1.0) not in ex._cache

    def test_hit_miss_counters(self, tiny_db):
        ex = CardinalityExecutor(tiny_db)
        q = self._query(2.0)
        ex.cardinality(q)
        ex.cardinality(q)
        ex.cardinality(q)
        stats = ex.cache_stats()
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_stats_render(self, tiny_db):
        # The dict must be consumable by the shared cache-stats renderer.
        from repro.bench import render_cache_stats

        ex = CardinalityExecutor(tiny_db)
        ex.cardinality(self._query(1.0))
        text = render_cache_stats(ex.cache_stats())
        assert "hit" in text.lower()

    def test_invalid_capacity(self, tiny_db):
        with pytest.raises(ValueError, match="cache_capacity"):
            CardinalityExecutor(tiny_db, cache_capacity=0)

    def test_clear_cache_drops_key_indexes(self, tiny_db):
        ex = CardinalityExecutor(tiny_db)
        q = Query(
            ("comments", "posts", "users"),
            (
                Join(ColumnRef("posts", "uid"), ColumnRef("users", "id")),
                Join(ColumnRef("comments", "pid"), ColumnRef("posts", "id")),
                Join(ColumnRef("comments", "cuid"), ColumnRef("users", "id")),
            ),
        )
        ex.cardinality(q)
        assert len(ex.key_index) > 0
        ex.clear_cache()
        assert len(ex.key_index) == 0


class TestEdgeOrderRegression:
    """Regression: `_materialized_count` used to pick frontier edges in
    declaration order (`candidates[0]`), which could force a huge build
    table in before a tiny one and trip `IntermediateTooLarge` on cyclic
    queries that a smallest-build-side order completes comfortably.
    """

    @pytest.fixture(scope="class")
    def cyclic_db(self):
        # Triangle beta -- mid -- src.  Join declaration order (after
        # Query normalization/sorting) is:
        #   [beta.a = src.a, beta.c = mid.c, mid.k = src.k]
        # Materialization starts at `mid` (smallest filtered table, 50
        # rows); its frontier candidates are `beta.c = mid.c` (build beta,
        # 2000 rows, constant column: every probe matches all 2000 rows ->
        # a 100,000-row intermediate) and `mid.k = src.k` (build src, 100
        # rows, unique keys -> 50 rows).  The old declaration-order pick
        # took the first and blew the guard; smallest-build-side takes the
        # second and peaks at 10,000 rows.
        beta = Table(
            "beta",
            [Column("a", np.arange(2000) % 10), Column("c", np.full(2000, 7))],
        )
        mid = Table(
            "mid", [Column("k", np.arange(50)), Column("c", np.full(50, 7))]
        )
        src = Table(
            "src", [Column("k", np.arange(100)), Column("a", np.arange(100) % 10)]
        )
        return Database(
            "cyc",
            [beta, mid, src],
            [
                JoinEdge("beta", "a", "src", "a"),
                JoinEdge("beta", "c", "mid", "c"),
                JoinEdge("mid", "k", "src", "k"),
            ],
        )

    @pytest.fixture(scope="class")
    def triangle(self):
        return Query(
            ("beta", "mid", "src"),
            (
                Join(ColumnRef("beta", "a"), ColumnRef("src", "a")),
                Join(ColumnRef("beta", "c"), ColumnRef("mid", "c")),
                Join(ColumnRef("mid", "k"), ColumnRef("src", "k")),
            ),
        )

    def test_fixture_join_order(self, triangle):
        # The premise of the regression: the bad (constant-column) edge
        # precedes the good one in declaration order.
        assert [str(j) for j in triangle.joins] == [
            "beta.a = src.a",
            "beta.c = mid.c",
            "mid.k = src.k",
        ]

    def test_completes_under_guard_old_order_tripped(self, cyclic_db, triangle):
        # Old order needed a 100,000-row intermediate; guard is 20,000.
        ex = CardinalityExecutor(cyclic_db, max_intermediate_rows=20_000)
        assert ex.cardinality(triangle) == 10_000

    def test_count_matches_reference(self, cyclic_db, triangle):
        from repro.oracle.reference import reference_count

        assert execute_cardinality(cyclic_db, triangle) == reference_count(
            cyclic_db, triangle
        )

    def test_guard_still_live(self, cyclic_db, triangle):
        # The new order still materializes 10,000 rows; a tighter guard
        # must keep raising rather than truncating.
        ex = CardinalityExecutor(cyclic_db, max_intermediate_rows=5_000)
        with pytest.raises(IntermediateTooLarge):
            ex.cardinality(triangle)


class TestPlans:
    def _two_table_plan(self, method=JoinMethod.HASH):
        q = Query(
            ("posts", "users"),
            (Join(ColumnRef("posts", "uid"), ColumnRef("users", "id")),),
            (Predicate(ColumnRef("users", "age"), Op.LE, 2.0),),
        )
        join = Join(ColumnRef("posts", "uid"), ColumnRef("users", "id"))
        node = JoinNode(scan_for(q, "posts"), scan_for(q, "users"), method, (join,))
        return Plan(q, node)

    def test_plan_must_cover_query(self):
        q = Query(("posts", "users"), (Join(ColumnRef("posts", "uid"), ColumnRef("users", "id")),))
        with pytest.raises(ValueError, match="covers"):
            Plan(q, ScanNode(table="posts"))

    def test_join_children_must_not_overlap(self):
        a = ScanNode(table="t1")
        b = ScanNode(table="t1")
        with pytest.raises(ValueError, match="overlap"):
            JoinNode(a, b, conditions=(Join(ColumnRef("t1", "x"), ColumnRef("t2", "y")),))

    def test_join_requires_condition(self):
        with pytest.raises(ValueError, match="condition"):
            JoinNode(ScanNode(table="a"), ScanNode(table="b"), conditions=())

    def test_condition_must_span_sides(self):
        bad = Join(ColumnRef("a", "x"), ColumnRef("c", "y"))
        with pytest.raises(ValueError, match="span"):
            JoinNode(ScanNode(table="a"), ScanNode(table="b"), conditions=(bad,))

    def test_walk_and_counts(self):
        plan = self._two_table_plan()
        nodes = list(plan.walk())
        assert len(nodes) == 3
        assert plan.root.n_nodes == 3
        assert len(plan.scan_nodes()) == 2
        assert len(plan.join_nodes()) == 1

    def test_join_order(self):
        plan = self._two_table_plan()
        assert plan.join_order() == ["posts", "users"]

    def test_signature_distinguishes_methods(self):
        a = self._two_table_plan(JoinMethod.HASH)
        b = self._two_table_plan(JoinMethod.MERGE)
        assert a.signature() != b.signature()

    def test_pretty_contains_operators(self):
        text = self._two_table_plan().pretty()
        assert "HashJoin" in text and "SeqScan" in text

    def test_node_subquery(self, tiny_db):
        plan = self._two_table_plan()
        sub = plan.node_subquery(plan.root.left)
        assert sub.tables == ("posts",)


class TestSimulator:
    def _plan(self, db, gen_seed=0):
        gen = WorkloadGenerator(db, seed=gen_seed)
        q = gen.random_query(2, 3, require_predicate=True)
        from repro.optimizer import Optimizer

        return Optimizer(db).plan(q)

    def test_deterministic_without_noise(self, stats_db):
        sim = ExecutionSimulator(stats_db)
        plan = self._plan(stats_db)
        assert sim.execute(plan).latency_ms == sim.execute(plan).latency_ms

    def test_noise_reproducible_per_plan(self, stats_db):
        cfg = SimulatorConfig(noise_sigma=0.2, noise_seed=1)
        sim = ExecutionSimulator(stats_db, cfg)
        plan = self._plan(stats_db)
        assert sim.execute(plan).latency_ms == sim.execute(plan).latency_ms

    def test_noise_changes_latency(self, stats_db):
        plan = self._plan(stats_db)
        base = ExecutionSimulator(stats_db).execute(plan).latency_ms
        noisy = ExecutionSimulator(
            stats_db, SimulatorConfig(noise_sigma=0.5, noise_seed=3)
        ).execute(plan).latency_ms
        assert noisy != base

    def test_result_consistency(self, stats_db, stats_executor):
        sim = ExecutionSimulator(stats_db)
        plan = self._plan(stats_db, gen_seed=4)
        res = sim.execute(plan)
        assert res.cardinality == stats_executor.cardinality(plan.query)
        assert res.latency_ms > 0
        assert res.total_cost > 0
        assert set(res.node_cards) == set(plan.walk())

    def test_index_scan_cheaper_when_selective(self, stats_db):
        # A highly selective predicate should make the index scan cheaper
        # than the sequential scan under the simulator's true constants.
        q = Query(
            ("posts",),
            (),
            (Predicate(ColumnRef("posts", "view_count"), Op.EQ, 70.0),),
        )
        sim = ExecutionSimulator(stats_db)
        seq = Plan(q, ScanNode("posts", ScanMethod.SEQ, q.predicates))
        idx = Plan(q, ScanNode("posts", ScanMethod.INDEX, q.predicates))
        assert sim.execute(idx).latency_ms < sim.execute(seq).latency_ms

    def test_stats_counters(self, stats_db):
        sim = ExecutionSimulator(stats_db)
        plan = self._plan(stats_db, gen_seed=5)
        sim.execute(plan)
        assert sim.queries_executed == 1
        assert sim.total_latency_ms > 0
