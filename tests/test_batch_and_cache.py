"""Batched-inference parity and the cross-plan cardinality cache.

Two invariants guard the performance layer:

1. ``estimate_batch(queries)`` agrees with ``[estimate(q) for q in queries]``
   for *every* registered estimator -- batched implementations are a pure
   speedup, never a semantic change.  Stochastic estimators (Naru-style
   progressive sampling) consume RNG state per estimate, so each path runs
   on its own deepcopy to keep the draws aligned.
2. The planner's :class:`~repro.optimizer.CardinalityCache` only ever
   serves values the estimator would produce right now: hits are keyed by
   estimator identity + version + data version, so refits, feedback and
   data drift all invalidate.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.bench.suite import fit_estimator, registered_estimators
from repro.cardest import (
    ALECEEstimator,
    BayesNetEstimator,
    CRNEstimator,
    FSPNEstimator,
    FactorJoinEstimator,
    GBDTQueryEstimator,
    GLPlusEstimator,
    GLUEEstimator,
    HistogramEstimator,
    JoinKDEEstimator,
    KDEEstimator,
    LPCEEstimator,
    LinearQueryEstimator,
    MLPQueryEstimator,
    MSCNEstimator,
    NaruEstimator,
    NeuroCardEstimator,
    PooledMSCNEstimator,
    QuickSelEstimator,
    RobustMSCNEstimator,
    SPNEstimator,
    SamplingEstimator,
    UAEEstimator,
)
from repro.core.interfaces import (
    InjectedCardinalities,
    ScaledCardinalities,
    batch_estimate,
    estimator_cache_tag,
)
from repro.optimizer import CardinalityCache, HintSet, Optimizer
from repro.optimizer.cost import PlanCoster
from repro.sql import WorkloadGenerator
from repro.storage import make_stats_lite

# Test-budget constructors: same registry as bench.suite, minimal epochs
# (parity does not need accuracy).  Kept in lockstep with the registry by
# test_registry_is_fully_covered below.
_FAST_FACTORIES = {
    "histogram": lambda db: HistogramEstimator(db),
    "sampling": lambda db: SamplingEstimator(db, 80, seed=0),
    "linear": lambda db: LinearQueryEstimator(db),
    "gbdt": lambda db: GBDTQueryEstimator(db, seed=0),
    "mlp": lambda db: MLPQueryEstimator(db, epochs=4, seed=0),
    "mscn": lambda db: MSCNEstimator(db, epochs=2, seed=0),
    "robust_mscn": lambda db: RobustMSCNEstimator(db, epochs=2, seed=0),
    "quicksel": lambda db: QuickSelEstimator(db),
    "lpce": lambda db: LPCEEstimator(db, seed=0),
    "pooled_mscn": lambda db: PooledMSCNEstimator(db, epochs=2, seed=0),
    "crn": lambda db: CRNEstimator(db, epochs=2, seed=0),
    "gl_plus": lambda db: GLPlusEstimator(db, epochs=2, seed=0),
    "kde": lambda db: KDEEstimator(db, seed=0),
    "join_kde": lambda db: JoinKDEEstimator(db, seed=0),
    "naru": lambda db: NaruEstimator(db, epochs=1, seed=0),
    "neurocard": lambda db: NeuroCardEstimator(
        db, epochs=1, n_samples=200, seed=0
    ),
    "bayesnet": lambda db: BayesNetEstimator(db),
    "spn": lambda db: SPNEstimator(db, seed=0),
    "fspn": lambda db: FSPNEstimator(db, seed=0),
    "factorjoin": lambda db: FactorJoinEstimator(db, seed=0),
    "uae": lambda db: UAEEstimator(db, epochs=1, seed=0),
    "glue": lambda db: GLUEEstimator(db, FSPNEstimator(db, seed=0)),
    "alece": lambda db: ALECEEstimator(db, epochs=2, seed=0),
}


def test_registry_is_fully_covered():
    assert set(_FAST_FACTORIES) == set(registered_estimators())


@pytest.mark.parametrize("name", sorted(_FAST_FACTORIES))
def test_batch_matches_sequential(name, stats_db, stats_train_data, stats_workload):
    train_q, train_c = stats_train_data
    test_q = stats_workload[:30]
    est = _FAST_FACTORIES[name](stats_db)
    fit_estimator(est, train_q, train_c)
    # Separate copies so stochastic estimators draw the same RNG sequence
    # on both paths.
    est_seq = copy.deepcopy(est)
    batch = est.estimate_batch(test_q)
    seq = np.array([est_seq.estimate(q) for q in test_q])
    assert batch.shape == (len(test_q),)
    assert np.all(np.isfinite(batch))
    assert np.allclose(batch, seq, rtol=1e-9, atol=1e-6), name


def test_batch_matches_sequential_with_disjunctions(stats_db, stats_train_data):
    """OR predicates take the to_range() fallback in the batch featurizers."""
    train_q, train_c = stats_train_data
    gen = WorkloadGenerator(stats_db, seed=29, or_rate=0.5)
    test_q = gen.workload(25, 1, 3, require_predicate=True)
    for factory in (
        lambda: MLPQueryEstimator(stats_db, epochs=3, seed=0),
        lambda: MSCNEstimator(stats_db, epochs=2, seed=0),
    ):
        est = factory()
        est.fit(train_q, train_c)
        seq = np.array([est.estimate(q) for q in test_q])
        assert np.allclose(est.estimate_batch(test_q), seq, rtol=1e-9, atol=1e-6)


def test_estimate_batch_empty(stats_db):
    est = HistogramEstimator(stats_db)
    out = est.estimate_batch([])
    assert out.shape == (0,)
    assert batch_estimate(est, []).shape == (0,)


def test_batch_estimate_falls_back_without_method(stats_db, stats_workload):
    class Bare:
        def estimate(self, query):
            return 42.0

    out = batch_estimate(Bare(), stats_workload[:5])
    assert np.array_equal(out, np.full(5, 42.0))


def test_wrapper_batches_agree(stats_db, stats_workload):
    queries = stats_workload[:20]
    base = HistogramEstimator(stats_db)
    scaled = ScaledCardinalities(base, 10.0)
    seq = np.array([scaled.estimate(q) for q in queries])
    assert np.allclose(scaled.estimate_batch(queries), seq, rtol=1e-9)

    inj = InjectedCardinalities(base)
    inj.inject(queries[0], 123.0)
    seq = np.array([inj.estimate(q) for q in queries])
    got = inj.estimate_batch(queries)
    assert np.allclose(got, seq, rtol=1e-9)
    assert got[0] == 123.0


# -- CardinalityCache unit behaviour -----------------------------------------


def test_cache_counters_and_eviction(stats_db, stats_workload):
    cache = CardinalityCache(capacity=8)
    tag = ("t",)
    queries = stats_workload[:12]
    for q in queries:
        assert cache.lookup(tag, q) is None
        cache.insert(tag, q, 7.0)
    assert len(cache) <= 8
    stats = cache.stats()
    assert stats["misses"] == 12
    assert stats["evictions"] == 4
    # The most recently inserted queries survive LRU eviction.
    assert cache.lookup(tag, queries[-1]) == 7.0
    assert cache.lookup(tag, queries[0]) is None
    assert cache.stats()["hits"] == 1
    cache.clear()
    assert len(cache) == 0
    assert cache.stats()["hits"] == 1  # counters survive clear()


def test_cache_get_or_compute(stats_db, stats_workload):
    cache = CardinalityCache()
    q = stats_workload[0]
    calls = []

    def compute(query):
        calls.append(1)
        return 99.0

    assert cache.get_or_compute(("a",), q, compute) == 99.0
    assert cache.get_or_compute(("a",), q, compute) == 99.0
    assert len(calls) == 1
    # A different tag is a different entry.
    assert cache.get_or_compute(("b",), q, compute) == 99.0
    assert len(calls) == 2
    assert 0.0 < cache.hit_rate < 1.0


def test_cache_key_distinguishes_equal_text_different_tag(stats_db, stats_workload):
    """Two estimators never share entries even for identical queries."""
    q = stats_workload[0]
    cache = CardinalityCache()
    e1 = HistogramEstimator(stats_db)
    e2 = HistogramEstimator(stats_db)
    cache.insert(estimator_cache_tag(e1), q, 1.0)
    assert cache.lookup(estimator_cache_tag(e2), q) is None


# -- cache tags track estimator and data changes ------------------------------


def test_tag_changes_on_refit(stats_db, stats_train_data):
    train_q, train_c = stats_train_data
    est = MLPQueryEstimator(stats_db, epochs=2, seed=0)
    est.fit(train_q, train_c)
    tag1 = estimator_cache_tag(est)
    est.fit(train_q, train_c)
    assert estimator_cache_tag(est) != tag1


def test_tag_changes_on_injection(stats_db, stats_workload):
    inj = InjectedCardinalities(HistogramEstimator(stats_db))
    tag1 = estimator_cache_tag(inj)
    inj.inject(stats_workload[0], 5.0)
    tag2 = estimator_cache_tag(inj)
    assert tag2 != tag1
    inj.clear()
    assert estimator_cache_tag(inj) != tag2


def test_tag_unwraps_scaling(stats_db):
    base = HistogramEstimator(stats_db)
    t1 = estimator_cache_tag(ScaledCardinalities(base, 2.0))
    t2 = estimator_cache_tag(ScaledCardinalities(base, 2.0))
    t3 = estimator_cache_tag(ScaledCardinalities(base, 4.0))
    # Recreated wrappers around the same base share entries; a different
    # factor does not.
    assert t1 == t2
    assert t1 != t3


def test_coster_recomputes_after_data_change():
    db = make_stats_lite(scale=0.1, seed=0)
    gen = WorkloadGenerator(db, seed=3)
    q = gen.workload(1, 2, 3, require_predicate=True)[0]
    cache = CardinalityCache()
    coster = PlanCoster(db, HistogramEstimator(db), cache=cache)
    coster.estimate_cardinality(q)
    coster.estimate_cardinality(q)
    assert cache.stats()["hits"] == 1
    v0 = db.data_version
    table = db.table(q.tables[0])
    table.append_rows(
        {c: table.values(c)[:1] for c in table.column_names}
    )
    assert db.data_version > v0
    misses_before = cache.stats()["misses"]
    coster.estimate_cardinality(q)  # stale entry must not be served
    assert cache.stats()["misses"] == misses_before + 1


# -- planner integration -------------------------------------------------------


def test_replanning_hits_cache_and_keeps_plan(stats_db):
    gen = WorkloadGenerator(stats_db, seed=13)
    query = gen.workload(1, 4, 4, require_predicate=True)[0]
    optimizer = Optimizer(stats_db)
    plan1 = optimizer.plan(query)
    after_first = optimizer.cache_stats()
    plan2 = optimizer.plan(query)
    after_second = optimizer.cache_stats()
    # Second planning answers every sub-query from the cache...
    assert after_second["misses"] == after_first["misses"]
    assert after_second["hits"] > after_first["hits"]
    # ...and produces the identical plan.
    assert plan1.signature() == plan2.signature()


def test_hint_sweep_shares_cache(stats_db):
    gen = WorkloadGenerator(stats_db, seed=17)
    queries = gen.workload(4, 3, 4, require_predicate=True)
    optimizer = Optimizer(stats_db)
    for q in queries:
        for arm in HintSet.bao_arms():
            optimizer.plan(q, hints=arm)
    assert optimizer.cache_stats()["hit_rate"] > 0.5


def test_with_estimator_shares_cache_object(stats_db):
    optimizer = Optimizer(stats_db)
    scaled = optimizer.with_estimator(
        ScaledCardinalities(optimizer.estimator, 10.0)
    )
    assert scaled.cache is optimizer.cache
    gen = WorkloadGenerator(stats_db, seed=19)
    q = gen.workload(1, 3, 3, require_predicate=True)[0]
    scaled.plan(q)
    hits_before = optimizer.cache_stats()["hits"]
    scaled2 = optimizer.with_estimator(
        ScaledCardinalities(optimizer.estimator, 10.0)
    )
    scaled2.plan(q)
    assert optimizer.cache_stats()["hits"] > hits_before


# -- Query-side memoization ----------------------------------------------------


def test_query_memos_and_cache_key(stats_db):
    gen = WorkloadGenerator(stats_db, seed=23)
    q = gen.workload(1, 3, 4, require_predicate=True)[0]
    t = q.tables[0]
    # Memoized accessors return the same object on repeat calls.
    assert q.predicates_on(t) is q.predicates_on(t)
    assert q.joins_on(t) is q.joins_on(t)
    assert q.join_adjacency() is q.join_adjacency()
    assert q.cache_key is q.cache_key
    assert q.cache_key == q.to_sql()
    adj = q.join_adjacency()
    for j in q.joins:
        assert j.right.table in adj[j.left.table]
        assert j.left.table in adj[j.right.table]
    # Sub-queries over the full table set are equivalent to the original.
    assert q.subquery(q.tables).cache_key == q.cache_key
    assert q.is_connected()
