"""Tests for tree-conv, set-conv, MADE, GBDT, k-means and Chow-Liu."""

import numpy as np
import pytest

from repro.ml import (
    GradientBoostedTrees,
    KMeans,
    MaskedAutoregressiveNetwork,
    PlanTreeBatch,
    SetConvNet,
    TreeConvNet,
    chow_liu_tree,
)
from repro.ml.chowliu import mutual_information
from repro.ml.gbdt import RegressionTree


def random_tree(rng, n_max=6, dim=4):
    """Random left-deep binary tree arrays."""
    n = int(rng.integers(1, n_max))
    feats = rng.normal(size=(n, dim))
    left = np.full(n, -1)
    right = np.full(n, -1)
    # chain: node i has children i+1 (left) for internal structure
    for i in range(n - 1):
        left[i] = i + 1
    return feats, left, right


class TestPlanTreeBatch:
    def test_null_row_zero(self):
        rng = np.random.default_rng(0)
        batch = PlanTreeBatch.from_trees([random_tree(rng)])
        assert np.all(batch.features[0] == 0.0)

    def test_offsets(self):
        rng = np.random.default_rng(0)
        trees = [random_tree(rng) for _ in range(3)]
        batch = PlanTreeBatch.from_trees(trees)
        total = sum(t[0].shape[0] for t in trees)
        assert batch.features.shape[0] == total + 1
        assert batch.n_trees == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PlanTreeBatch.from_trees([])

    def test_rejects_dim_mismatch(self):
        a = (np.ones((2, 3)), np.array([-1, -1]), np.array([-1, -1]))
        b = (np.ones((2, 4)), np.array([-1, -1]), np.array([-1, -1]))
        with pytest.raises(ValueError):
            PlanTreeBatch.from_trees([a, b])


class TestTreeConvNet:
    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        trees = [random_tree(rng) for _ in range(60)]
        y = np.array([t[0].sum() for t in trees])
        net = TreeConvNet(4, (16,), (8,), seed=0)
        losses = net.fit(trees, y, epochs=60, lr=5e-3)
        assert losses[-1] < losses[0] * 0.3

    def test_structure_sensitivity(self):
        # Same multiset of node features, different arrangement ->
        # different plan embedding (tree conv must see child positions).
        feats = np.eye(3)
        chain = (feats, np.array([1, 2, -1]), np.array([-1, -1, -1]))
        flipped = (feats[::-1].copy(), np.array([1, 2, -1]), np.array([-1, -1, -1]))
        net = TreeConvNet(3, (8,), (4,), seed=1)
        emb = net.embed(PlanTreeBatch.from_trees([chain, flipped]))
        assert not np.allclose(emb[0], emb[1])

    def test_sigmoid_output_bounds(self):
        rng = np.random.default_rng(2)
        trees = [random_tree(rng) for _ in range(10)]
        net = TreeConvNet(4, (8,), (4,), sigmoid_output=True, seed=0)
        out = net.forward(PlanTreeBatch.from_trees(trees))
        assert np.all(out > 0) and np.all(out < 1)

    def test_predict_empty(self):
        net = TreeConvNet(4)
        assert net.predict([]).shape == (0, 1)

    def test_fit_validates_lengths(self):
        net = TreeConvNet(4)
        with pytest.raises(ValueError):
            net.fit([random_tree(np.random.default_rng(0))], np.zeros(2))


class TestSetConvNet:
    def _samples(self, rng, n):
        out = []
        for _ in range(n):
            k = int(rng.integers(1, 4))
            out.append(
                {
                    "a": rng.normal(size=(k, 3)),
                    "b": rng.normal(size=(int(rng.integers(0, 3)), 2)),
                }
            )
        return out

    def test_fit_and_predict(self):
        rng = np.random.default_rng(0)
        samples = self._samples(rng, 80)
        y = np.array([0.1 + 0.5 * (s["a"].mean() > 0) for s in samples])
        net = SetConvNet({"a": 3, "b": 2}, hidden=16, seed=0)
        losses = net.fit(samples, y, epochs=40)
        assert losses[-1] < losses[0]
        preds = net.predict(samples)
        assert preds.shape == (80,)
        assert np.all((preds >= 0) & (preds <= 1))

    def test_empty_set_handled(self):
        net = SetConvNet({"a": 3}, hidden=8, seed=0)
        out = net.predict([{"a": np.zeros((0, 3))}])
        assert out.shape == (1,)

    def test_permutation_invariance(self):
        rng = np.random.default_rng(1)
        net = SetConvNet({"a": 3}, hidden=8, seed=0)
        items = rng.normal(size=(4, 3))
        a = net.predict([{"a": items}])[0]
        b = net.predict([{"a": items[::-1].copy()}])[0]
        assert a == pytest.approx(b, abs=1e-9)

    def test_rejects_no_modules(self):
        with pytest.raises(ValueError):
            SetConvNet({})


class TestMADE:
    def test_distribution_normalizes(self):
        rng = np.random.default_rng(0)
        rows = np.column_stack([rng.integers(0, 3, 200), rng.integers(0, 4, 200)])
        net = MaskedAutoregressiveNetwork([3, 4], hidden=(16,), seed=0)
        net.fit(rows, epochs=3)
        grid = np.array([[a, b] for a in range(3) for b in range(4)])
        total = np.exp(net.log_prob(grid)).sum()
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_autoregressive_masking(self):
        # Column 0's conditional must not depend on column 1's value.
        net = MaskedAutoregressiveNetwork([3, 4], hidden=(16, 16), seed=0)
        rows_a = np.array([[1, 0]])
        rows_b = np.array([[1, 3]])
        pa = net.conditional_distribution(rows_a, 0)
        pb = net.conditional_distribution(rows_b, 0)
        assert np.allclose(pa, pb)

    def test_training_learns_marginal(self):
        rng = np.random.default_rng(1)
        rows = np.column_stack(
            [rng.choice(2, 500, p=[0.9, 0.1]), rng.integers(0, 2, 500)]
        )
        net = MaskedAutoregressiveNetwork([2, 2], hidden=(16,), seed=0)
        net.fit(rows, epochs=40, lr=2e-2)
        p0 = net.conditional_distribution(np.zeros((1, 2), int), 0)[0]
        assert p0[0] > 0.7

    def test_learns_dependency(self):
        # col1 = col0 deterministic: P(x1=v | x0=v) should be high.
        rng = np.random.default_rng(2)
        c0 = rng.integers(0, 3, 600)
        rows = np.column_stack([c0, c0])
        net = MaskedAutoregressiveNetwork([3, 3], hidden=(32,), seed=0)
        net.fit(rows, epochs=30)
        probs = net.conditional_distribution(np.array([[2, 0]]), 1)[0]
        assert probs[2] > 0.8

    def test_sampling_matches_distribution(self):
        rng = np.random.default_rng(3)
        rows = np.column_stack([rng.choice(2, 500, p=[0.8, 0.2])])
        net = MaskedAutoregressiveNetwork([2], hidden=(8,), seed=0)
        net.fit(rows, epochs=40, lr=2e-2)
        samples = net.sample(500, np.random.default_rng(0))
        assert abs((samples == 0).mean() - 0.8) < 0.1

    def test_rejects_out_of_domain(self):
        net = MaskedAutoregressiveNetwork([3, 3])
        with pytest.raises(ValueError):
            net.encode(np.array([[3, 0]]))


class TestGBDT:
    def test_tree_splits_step_function(self):
        x = np.linspace(0, 1, 100)[:, None]
        y = (x[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2, min_samples_leaf=2).fit(x, y)
        preds = tree.predict(x)
        assert ((preds > 0.5) == (y > 0.5)).mean() > 0.95

    def test_boosting_improves_over_single_tree(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 3))
        y = np.sin(x[:, 0] * 2) + x[:, 1] ** 2
        single = RegressionTree(max_depth=3).fit(x, y)
        boosted = GradientBoostedTrees(n_estimators=40, max_depth=3, seed=0).fit(x, y)
        mse_single = float(((single.predict(x) - y) ** 2).mean())
        mse_boosted = float(((boosted.predict(x) - y) ** 2).mean())
        assert mse_boosted < mse_single * 0.5

    def test_staged_predictions_monotone_improvement(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(200, 2))
        y = x[:, 0] * 3
        model = GradientBoostedTrees(n_estimators=20, seed=0).fit(x, y)
        stages = model.staged_predict(x)
        first = float(((stages[0] - y) ** 2).mean())
        last = float(((stages[-1] - y) ** 2).mean())
        assert last < first

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(np.zeros((0, 2)), np.zeros(0))

    def test_subsample_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0.0)

    def test_constant_target(self):
        x = np.random.default_rng(0).normal(size=(50, 2))
        model = GradientBoostedTrees(n_estimators=5, seed=0).fit(x, np.full(50, 7.0))
        assert np.allclose(model.predict(x), 7.0, atol=1e-9)


class TestKMeans:
    def test_separates_clear_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.1, size=(50, 2))
        b = rng.normal(5, 0.1, size=(50, 2))
        km = KMeans(2, seed=0).fit(np.vstack([a, b]))
        labels = km.labels_
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[50]

    def test_predict_consistent_with_fit(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(40, 3))
        km = KMeans(3, seed=0).fit(x)
        assert np.array_equal(km.predict(x), km.labels_)

    def test_k_larger_than_n(self):
        x = np.array([[0.0], [1.0]])
        km = KMeans(5, seed=0).fit(x)
        assert km.centroids_.shape[0] <= 2

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((1, 2)))

    def test_inertia_nonnegative(self):
        x = np.random.default_rng(2).normal(size=(30, 2))
        km = KMeans(3, seed=0).fit(x)
        assert km.inertia_ >= 0.0


class TestChowLiu:
    def test_mutual_information_independent(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 5000)
        b = rng.integers(0, 4, 5000)
        assert mutual_information(a, b) < 0.01

    def test_mutual_information_identical(self):
        a = np.random.default_rng(1).integers(0, 4, 1000)
        assert mutual_information(a, a) > 1.0

    def test_tree_structure_follows_dependencies(self):
        rng = np.random.default_rng(2)
        c0 = rng.integers(0, 4, 2000)
        c1 = (c0 + rng.integers(0, 2, 2000)) % 4  # depends on c0
        c2 = rng.integers(0, 4, 2000)  # independent
        edges = chow_liu_tree(np.column_stack([c0, c1, c2]))
        assert len(edges) == 2
        # c0-c1 must be an edge (strongest MI pair).
        pairs = {frozenset(e) for e in edges}
        assert frozenset((0, 1)) in pairs

    def test_every_nonroot_has_one_parent(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 3, size=(500, 5))
        edges = chow_liu_tree(data, root=0)
        children = [c for _, c in edges]
        assert sorted(children) == [1, 2, 3, 4]

    def test_single_column(self):
        assert chow_liu_tree(np.zeros((10, 1), int)) == []
