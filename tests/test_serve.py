"""Tests for repro.serve: telemetry, deployment lifecycle, runtime."""

import json
from dataclasses import dataclass

import pytest

from repro.core.framework import CandidatePlan
from repro.e2e import BaoOptimizer
from repro.serve import (
    ConsoleBackend,
    DeploymentManager,
    Histogram,
    Rejected,
    RuntimeConfig,
    Served,
    ServingRuntime,
    Stage,
    TelemetryBus,
    build_schedule,
    injected_regression_scenario,
    steady_state_scenario,
)
from repro.serve.deployment import query_hash


# -- telemetry --------------------------------------------------------------------


class TestHistogram:
    def test_percentiles_and_summary(self):
        h = Histogram()
        for v in range(1, 101):
            h.record(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["p50"] == pytest.approx(50, abs=1)
        assert s["p99"] == pytest.approx(99, abs=1)
        assert s["max"] == 100
        assert s["mean"] == pytest.approx(50.5)

    def test_decimation_keeps_stream_totals(self):
        h = Histogram(capacity=64)
        for v in range(200):
            h.record(float(v))
        s = h.summary()
        assert s["count"] == 200  # stream totals survive decimation
        assert s["max"] == 199
        assert len(h._values) <= 64

    def test_empty(self):
        assert Histogram().summary()["p99"] == 0.0


class TestTelemetryBus:
    def test_counters_histograms_events(self):
        bus = TelemetryBus()
        bus.incr("a")
        bus.incr("a", 2)
        bus.observe("lat", 5.0)
        bus.event("rollback", reason="test")
        snap = bus.snapshot()
        assert snap["counters"]["a"] == 3
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["events"] == [{"kind": "rollback", "reason": "test"}]
        assert bus.events("rollback")

    def test_snapshot_is_json_and_sorted(self):
        bus = TelemetryBus()
        bus.incr("z")
        bus.incr("a")
        text = bus.to_json()
        snap = json.loads(text)
        assert list(snap["counters"]) == ["a", "z"]

    def test_trace_capacity(self):
        from repro.serve import TraceRecord

        bus = TelemetryBus(trace_capacity=2)
        for i in range(4):
            bus.trace(
                TraceRecord(
                    session_id=0,
                    seq=i,
                    query_hash="x",
                    outcome="served",
                    stage="live",
                    plan_source="native",
                    estimator_tag="t",
                    latency_ms=1.0,
                    wait_ms=0.0,
                )
            )
        snap = bus.snapshot()
        assert len(snap["traces"]) == 2
        assert snap["traces_dropped"] == 2

    def test_gauges_sampled_at_snapshot(self):
        bus = TelemetryBus()
        state = {"hits": 0}
        bus.attach_gauge("cache", lambda: dict(state))
        state["hits"] = 7
        assert bus.snapshot()["gauges"]["cache"]["hits"] == 7

    def test_render_text_mentions_everything(self):
        bus = TelemetryBus()
        bus.incr("served")
        bus.observe("lat", 2.0)
        bus.event("promote", to="live")
        text = bus.render_text()
        assert "served" in text and "lat" in text and "promote" in text


# -- deployment lifecycle ----------------------------------------------------------


@pytest.fixture()
def deployment(stats_db, stats_optimizer, stats_simulator):
    learned = BaoOptimizer(stats_optimizer, seed=0)
    return DeploymentManager(
        learned,
        stats_optimizer,
        stats_simulator,
        stage=Stage.SHADOW,
        canary_fraction=0.5,
        window=10,
        min_samples=4,
        regression_threshold=1.3,
    )


class TestDeploymentLifecycle:
    def test_promote_path_and_invalid_transitions(self, deployment):
        assert deployment.stage is Stage.SHADOW
        assert deployment.promote() is Stage.CANARY
        assert deployment.promote() is Stage.LIVE
        with pytest.raises(ValueError):
            deployment.promote()
        assert deployment.rollback("done") is Stage.ROLLED_BACK
        with pytest.raises(ValueError):
            deployment.promote()
        # Rolling back again is a no-op, not an error.
        assert deployment.rollback() is Stage.ROLLED_BACK
        events = deployment.telemetry.events("stage_transition")
        assert [e["to_stage"] for e in events] == [
            "canary",
            "live",
            "rolled_back",
        ]

    def test_shadow_never_affects_served_plans(
        self, deployment, stats_optimizer, stats_simulator, stats_workload
    ):
        # Every shadow decision serves the native plan at the native
        # latency, while the staged model still trains on the stream.
        for q in stats_workload[:20]:
            decision = deployment.serve(q)
            assert decision.stage == "shadow"
            assert not decision.served_learned
            assert decision.plan_source == "native"
            native_latency = stats_simulator.execute(
                stats_optimizer.plan(q)
            ).latency_ms
            assert decision.latency_ms == pytest.approx(native_latency)
            assert decision.shadow_latency_ms is not None
        assert len(deployment.learned.history) == 20

    def test_canary_split_is_deterministic_by_query_hash(
        self, deployment, stats_workload
    ):
        deployment.promote()
        sides = [deployment.is_canary_query(q) for q in stats_workload]
        assert sides == [deployment.is_canary_query(q) for q in stats_workload]
        assert any(sides) and not all(sides)  # 0.5 fraction splits both ways

    def test_canary_native_side_untouched(self, deployment, stats_workload):
        deployment.promote()
        native_side = [
            q for q in stats_workload if not deployment.is_canary_query(q)
        ]
        decision = deployment.serve(native_side[0])
        assert not decision.served_learned
        assert decision.plan_source == "native"
        assert decision.native_latency_ms is None  # no baseline re-run

    def test_guard_on_serving_path(
        self, stats_db, stats_optimizer, stats_simulator, stats_workload
    ):
        class VetoAll:
            decisions = 0
            interventions = 0

            def __call__(self, query, candidate, native_plan):
                VetoAll.decisions += 1
                if candidate.plan.signature() != native_plan.signature():
                    VetoAll.interventions += 1
                    return CandidatePlan(plan=native_plan, source="veto")
                return candidate

            @property
            def intervention_rate(self):
                return 0.0

        manager = DeploymentManager(
            BaoOptimizer(stats_optimizer, seed=0),
            stats_optimizer,
            stats_simulator,
            guards=(VetoAll(),),
            stage=Stage.LIVE,
            window=30,
            min_samples=30,
        )
        for q in stats_workload[:15]:
            decision = manager.serve(q)
            assert decision.served_learned
            # The guard pinned serving to the native plan, so there is
            # never a regression against the baseline.
            assert decision.regression == pytest.approx(1.0)
        assert VetoAll.decisions == 15

    def test_injected_regression_rolls_back_with_event(self):
        scenario = injected_regression_scenario(
            n_queries=80, n_sessions=8, trigger_at=10
        )
        scenario.run()
        assert scenario.deployment.stage is Stage.ROLLED_BACK
        snap = scenario.deployment.telemetry.snapshot()
        rollbacks = [
            e
            for e in snap["events"]
            if e["kind"] == "stage_transition"
            and e["to_stage"] == "rolled_back"
        ]
        assert len(rollbacks) == 1
        assert "regression_window" in rollbacks[0]["reason"]
        assert snap["counters"]["deployment.auto_rollbacks"] == 1
        # After rollback everything is served native again.
        post = [
            t
            for t in snap["traces"]
            if t["outcome"] == "served" and t["stage"] == "rolled_back"
        ]
        assert post and all(t["plan_source"] == "native" for t in post)

    def test_auto_promote_on_healthy_window(
        self, stats_optimizer, stats_simulator, stats_workload
    ):
        class MirrorNative:
            """A 'learned' model that always proposes the native plan."""

            name = "mirror"

            def choose_plan(self, query):
                return CandidatePlan(stats_optimizer.plan(query), "mirror")

            def record_feedback(self, query, candidate, latency_ms):
                pass

        manager = DeploymentManager(
            MirrorNative(),
            stats_optimizer,
            stats_simulator,
            stage=Stage.SHADOW,
            window=6,
            min_samples=3,
            auto_promote=True,
        )
        for q in stats_workload[:12]:
            manager.serve(q)
        assert manager.stage in (Stage.CANARY, Stage.LIVE)


# -- runtime ----------------------------------------------------------------------


@dataclass
class _FixedDecision:
    stage: str
    plan_source: str
    latency_ms: float
    cardinality: int


class FixedBackend:
    """Constant-latency backend for admission-control unit tests."""

    name = "fixed"

    def __init__(self, latency_ms: float) -> None:
        self.latency_ms = latency_ms
        self.served = 0

    def serve(self, query):
        self.served += 1
        return _FixedDecision("live", "native", self.latency_ms, 1)


class TestBuildSchedule:
    def test_deterministic_and_round_robin(self, stats_workload):
        a = build_schedule(stats_workload, 4, seed=1)
        b = build_schedule(stats_workload, 4, seed=1)
        assert a == b
        assert sum(len(s) for s in a) == len(stats_workload)
        # Round-robin assignment: session i gets queries i, i+4, ...
        assert a[1][0].query == stats_workload[1]
        # Global sequence is a permutation ordered by arrival time.
        flat = sorted(
            (r for sess in a for r in sess), key=lambda r: r.global_seq
        )
        arrivals = [r.arrival_ms for r in flat]
        assert arrivals == sorted(arrivals)
        assert [r.global_seq for r in flat] == list(range(len(flat)))

    def test_seed_changes_schedule(self, stats_workload):
        assert build_schedule(stats_workload, 4, seed=1) != build_schedule(
            stats_workload, 4, seed=2
        )


class TestServingRuntime:
    def test_all_served_when_unconstrained(self, stats_workload):
        backend = FixedBackend(latency_ms=5.0)
        runtime = ServingRuntime(
            backend, config=RuntimeConfig(timeout_ms=None, queue_capacity=None)
        )
        schedule = build_schedule(stats_workload, 8, seed=0)
        report = runtime.run(schedule)
        assert report.n_served == report.n_requests == len(stats_workload)
        assert report.rejected == {}
        assert backend.served == len(stats_workload)
        assert report.simulated_qps > 0 and report.wall_qps > 0
        # Outcomes come back sorted by (session, seq).
        keys = [
            (o.request.session_id, o.request.seq) for o in report.outcomes
        ]
        assert keys == sorted(keys)

    def test_timeout_shedding_is_typed_and_deterministic(self, stats_workload):
        # 200 ms of service per request against ~2 ms interarrival: queues
        # explode, so almost everything past the first request per session
        # times out -- identically on every run.
        def run_once():
            backend = FixedBackend(latency_ms=200.0)
            runtime = ServingRuntime(
                backend,
                config=RuntimeConfig(timeout_ms=50.0, queue_capacity=None),
            )
            schedule = build_schedule(
                stats_workload, 2, seed=0, mean_interarrival_ms=2.0
            )
            return runtime.run(schedule)

        first, second = run_once(), run_once()
        assert first.rejected.get("timeout", 0) > 0
        assert first.rejected == second.rejected
        shed = [o for o in first.outcomes if isinstance(o, Rejected)]
        assert all(o.reason == "timeout" for o in shed)
        assert all(o.wait_ms > 50.0 for o in shed)

    def test_queue_capacity_shedding(self, stats_workload):
        backend = FixedBackend(latency_ms=100.0)
        runtime = ServingRuntime(
            backend,
            config=RuntimeConfig(timeout_ms=None, queue_capacity=2),
        )
        schedule = build_schedule(
            stats_workload, 2, seed=0, mean_interarrival_ms=2.0
        )
        report = runtime.run(schedule)
        assert report.rejected.get("queue_full", 0) > 0
        assert report.n_served + sum(report.rejected.values()) == report.n_requests

    def test_max_in_flight_shedding(self, stats_workload):
        backend = FixedBackend(latency_ms=50.0)
        runtime = ServingRuntime(
            backend,
            config=RuntimeConfig(
                timeout_ms=None, queue_capacity=None, max_in_flight=1
            ),
        )
        schedule = build_schedule(
            stats_workload, 4, seed=0, mean_interarrival_ms=2.0
        )
        report = runtime.run(schedule)
        assert report.rejected.get("overload", 0) > 0

    def test_rejections_reach_telemetry(self, stats_workload):
        backend = FixedBackend(latency_ms=200.0)
        runtime = ServingRuntime(
            backend, config=RuntimeConfig(timeout_ms=50.0)
        )
        schedule = build_schedule(
            stats_workload, 2, seed=0, mean_interarrival_ms=2.0
        )
        report = runtime.run(schedule)
        snap = runtime.telemetry.snapshot()
        assert snap["counters"]["runtime.rejected.timeout"] == report.rejected[
            "timeout"
        ]
        assert any(t["outcome"] == "timeout" for t in snap["traces"])

    def test_backend_errors_propagate(self, stats_workload):
        class Exploding:
            def serve(self, query):
                raise RuntimeError("boom")

        runtime = ServingRuntime(
            Exploding(), config=RuntimeConfig(timeout_ms=None)
        )
        with pytest.raises(RuntimeError, match="boom"):
            runtime.run(build_schedule(stats_workload[:4], 2, seed=0))

    def test_hooks_run_at_global_seq(self, stats_workload):
        backend = FixedBackend(latency_ms=1.0)
        seen = []
        runtime = ServingRuntime(
            backend,
            config=RuntimeConfig(timeout_ms=None, queue_capacity=None),
            hooks={5: lambda: seen.append(backend.served)},
        )
        runtime.run(build_schedule(stats_workload[:10], 4, seed=0))
        assert seen == [5]  # exactly 5 requests served before the hook

    def test_console_backend(self, stats_db):
        from repro.pilotscope import PilotScopeConsole, SimulatedPostgreSQL
        from repro.sql import WorkloadGenerator

        console = PilotScopeConsole(SimulatedPostgreSQL(stats_db))
        runtime = ServingRuntime(
            ConsoleBackend(console),
            config=RuntimeConfig(timeout_ms=None, queue_capacity=None),
        )
        queries = WorkloadGenerator(stats_db, seed=2).workload(
            12, 1, 3, require_predicate=True
        )
        report = runtime.run(build_schedule(queries, 3, seed=0))
        assert report.n_served == 12
        assert console.queries_served == 12
        served = [o for o in report.outcomes if isinstance(o, Served)]
        assert all(o.plan_source == "native" for o in served)


class TestAcceptanceDeterminism:
    def test_byte_identical_snapshots_8_sessions(self):
        """Same seed + same config => byte-identical snapshot(), twice."""

        def run_once():
            scenario = steady_state_scenario(n_queries=64, n_sessions=8, seed=7)
            scenario.run()
            return scenario.deployment.telemetry.to_json()

        assert run_once() == run_once()


class TestQueryHash:
    def test_stable_across_equal_queries(self, stats_workload):
        q = stats_workload[0]
        assert query_hash(q) == query_hash(q)
        assert len(query_hash(q)) == 12
