"""Tests for the registry (Table 1), advisor extensions and bench support."""

import numpy as np
import pytest

from repro.bench import (
    apply_drift,
    build_estimator,
    data_driven_estimators,
    hybrid_estimators,
    make_workloads,
    query_driven_estimators,
    render_table,
)
from repro.bench.suite import fit_estimator, traditional_estimators
from repro.cardest.advisor import AutoCE, DatasetFeatures, flow_loss_weights
from repro.core import registry
from repro.core.registry import cardinality_estimator_rows
from repro.sql import WorkloadGenerator
from repro.storage import make_stats_lite, make_tpch_lite


class TestRegistry:
    def test_all_entries_resolve(self):
        for m in registry():
            cls = m.resolve()
            assert isinstance(cls, type)

    def test_component_filter(self):
        cards = registry("cardinality")
        assert all(m.component == "cardinality" for m in cards)
        with pytest.raises(ValueError):
            registry("teleportation")

    def test_table1_rows_cover_paper_categories(self):
        rows = cardinality_estimator_rows()
        categories = {c for c, _, _ in rows}
        # The paper's Table 1 category structure.
        assert any("Query-Driven" in c for c in categories)
        assert any("Data-Driven" in c for c in categories)
        assert any("Hybrid" in c for c in categories)
        assert any("Auto-Regression" in c for c in categories)
        assert any("Probabilistic" in c for c in categories)

    def test_key_methods_present(self):
        methods = {m.method for m in registry()}
        for expected in ("MSCN", "Naru", "DeepDB", "FLAT", "FactorJoin",
                         "Bao", "Lero", "Neo", "Balsa", "LEON", "Eraser"):
            assert expected in methods


class TestAdvisor:
    def test_dataset_features_shape(self, stats_db):
        feats = DatasetFeatures.of(stats_db)
        assert feats.vector().shape == (6,)
        assert feats.n_tables == 5.0

    def test_recommend_nearest_profile(self):
        advisor = AutoCE()
        stats = make_stats_lite(0.2, seed=1)
        tpch = make_tpch_lite(0.2, seed=1)
        advisor.record(stats, "fspn")
        advisor.record(tpch, "histogram")
        # A slightly different stats-like db should match the stats profile.
        other = make_stats_lite(0.25, seed=9)
        assert advisor.recommend(other) == "fspn"

    def test_recommend_requires_profiles(self, stats_db):
        with pytest.raises(RuntimeError):
            AutoCE().recommend(stats_db)

    def test_flow_loss_weights_normalized(self, stats_db, stats_optimizer):
        gen = WorkloadGenerator(stats_db, seed=110)
        queries = gen.workload(15, 2, 4, require_predicate=True)
        w = flow_loss_weights(queries, stats_optimizer)
        assert w.shape == (15,)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w >= 0)


class TestRenderTable:
    def test_contains_all_cells(self):
        out = render_table("T", ["a", "b"], [[1, 2.5], ["x", 10000.0]])
        assert "T" in out
        assert "2.50" in out
        assert "10,000" in out
        assert "x" in out

    def test_note_rendered(self):
        out = render_table("T", ["a"], [[1]], note="hello")
        assert "note: hello" in out

    def test_empty_rows(self):
        out = render_table("T", ["a"], [])
        assert "a" in out


class TestWorkloadRecipes:
    def test_make_workloads_split(self, stats_db):
        spec = make_workloads(stats_db, n_train=20, n_test=10)
        assert len(spec.train) == 20
        assert len(spec.test) == 10
        assert spec.train != spec.test

    def test_single_table_recipe(self, stats_db):
        spec = make_workloads(stats_db, n_train=5, n_test=5, single_table="posts")
        assert all(q.tables == ("posts",) for q in spec.train + spec.test)

    def test_apply_drift_grows_tables_and_shifts(self):
        db = make_stats_lite(0.2, seed=2)
        before_rows = db.table("posts").n_rows
        before_mean = float(db.table("posts").values("score").mean())
        changed = apply_drift(db, fraction=0.5, seed=0)
        assert "posts" in changed
        assert db.table("posts").n_rows > before_rows
        after_mean = float(db.table("posts").values("score").mean())
        assert after_mean > before_mean  # top-quantile inserts shift up

    def test_apply_drift_keeps_fk_integrity(self):
        db = make_stats_lite(0.2, seed=3)
        apply_drift(db, fraction=0.3, seed=1)
        for e in db.joins:
            if db.table(e.right_table).column(e.right_column).is_key:
                fk = db.table(e.left_table).values(e.left_column)
                pk = db.table(e.right_table).values(e.right_column)
                assert set(np.unique(fk)) <= set(np.unique(pk))

    def test_apply_drift_validates_fraction(self, stats_db):
        with pytest.raises(ValueError):
            apply_drift(make_stats_lite(0.1), fraction=0.0)


class TestSuiteBuilders:
    def test_name_lists_disjoint(self):
        all_names = (
            traditional_estimators()
            + query_driven_estimators()
            + data_driven_estimators()
            + hybrid_estimators()
        )
        assert len(all_names) == len(set(all_names))

    def test_build_unknown_estimator(self, stats_db):
        with pytest.raises(ValueError):
            build_estimator("oracle", stats_db)

    @pytest.mark.parametrize("name", ["histogram", "gbdt", "spn"])
    def test_build_and_fit(self, name, stats_db, stats_train_data):
        est = build_estimator(name, stats_db, budget="fast")
        fit_estimator(est, *stats_train_data)
        q = stats_train_data[0][0]
        assert est.estimate(q) >= 0
