"""Tests for drift detection/adaptation (DDUp, Warper), BASE calibration
and LOGER's epsilon-beam search."""

import numpy as np
import pytest

from repro.bench import apply_drift
from repro.cardest import DDUpDetector, GBDTQueryEstimator, Warper, q_error
from repro.costmodel import CalibratedCostModel
from repro.costmodel.calibrated import isotonic_fit
from repro.e2e import LogerOptimizer, OptimizationLoop
from repro.engine import CardinalityExecutor, ExecutionSimulator
from repro.optimizer import HintSet, Optimizer
from repro.sql import WorkloadGenerator
from repro.storage import make_stats_lite


class TestDDUpDetector:
    def test_no_drift_on_static_data(self, stats_db):
        detector = DDUpDetector(stats_db, seed=0)
        reports = detector.check()
        assert all(not r.drifted for r in reports)
        assert all(r.action == "none" for r in reports)

    def test_detects_heavy_drift(self):
        db = make_stats_lite(0.3, seed=4)
        detector = DDUpDetector(db, seed=0)
        apply_drift(db, fraction=0.6, seed=2)
        drifted = detector.drifted_tables()
        assert drifted, "60% shifted inserts must trip the detector"
        reports = {r.table: r for r in detector.check()}
        assert any(r.action in ("fine_tune", "retrain") for r in reports.values())

    def test_small_drift_prefers_fine_tune(self):
        db = make_stats_lite(0.3, seed=5)
        detector = DDUpDetector(db, retrain_js=0.5, seed=0)
        apply_drift(db, fraction=0.15, seed=3)
        actions = {r.action for r in detector.check() if r.drifted}
        assert actions <= {"fine_tune", "retrain"}
        # With a high retrain threshold, nothing escalates to retrain.
        assert "retrain" not in actions

    def test_resnapshot_resets(self):
        db = make_stats_lite(0.3, seed=6)
        detector = DDUpDetector(db, seed=0)
        apply_drift(db, fraction=0.6, seed=4)
        assert detector.drifted_tables()
        detector.snapshot()
        assert not detector.drifted_tables()

    def test_unknown_table(self, stats_db):
        detector = DDUpDetector(stats_db)
        with pytest.raises(KeyError):
            detector.check_table("nope")


class TestWarper:
    def test_rejects_unsupervised_estimator(self, stats_db):
        with pytest.raises(TypeError):
            Warper(stats_db, object())

    def test_adapt_noop_without_drift(self):
        db = make_stats_lite(0.3, seed=7)
        executor = CardinalityExecutor(db)
        gen = WorkloadGenerator(db, seed=1)
        train_q = gen.workload(100, 1, 3, require_predicate=True)
        train_c = np.array([executor.cardinality(q) for q in train_q])
        warper = Warper(db, GBDTQueryEstimator(db, n_estimators=15), seed=0)
        warper.fit_initial(train_q, train_c)
        warper.adapt()
        assert warper.adaptations == 0

    def test_adapt_recovers_accuracy_after_drift(self):
        db = make_stats_lite(0.4, seed=8)
        executor = CardinalityExecutor(db)
        gen = WorkloadGenerator(db, seed=1)
        train_q = gen.workload(250, 1, 3, require_predicate=True)
        train_c = np.array([executor.cardinality(q) for q in train_q])
        est = GBDTQueryEstimator(db, n_estimators=30)
        warper = Warper(db, est, queries_per_table=40, seed=0)
        warper.fit_initial(train_q, train_c)

        apply_drift(db, fraction=0.5, seed=9)
        executor.clear_cache()
        test_q = WorkloadGenerator(db, seed=97).workload(
            60, 1, 3, require_predicate=True
        )
        test_c = [executor.cardinality(q) for q in test_q]
        stale = np.median([q_error(est.estimate(q), c) for q, c in zip(test_q, test_c)])
        warper.adapt()
        assert warper.adaptations == 1
        fresh = np.median([q_error(est.estimate(q), c) for q, c in zip(test_q, test_c)])
        assert fresh <= stale * 1.05, f"adaptation should help: {stale} -> {fresh}"


class TestIsotonic:
    def test_monotone_output(self):
        rng = np.random.default_rng(0)
        x = rng.random(50) * 10
        y = x * 2 + rng.normal(0, 1, 50)
        xs, fitted = isotonic_fit(x, y)
        assert np.all(np.diff(fitted) >= -1e-12)
        assert np.all(np.diff(xs) >= 0)

    def test_recovers_monotone_function(self):
        x = np.linspace(0, 10, 100)
        y = x**2
        xs, fitted = isotonic_fit(x, y)
        assert np.allclose(fitted, y, atol=1e-9)

    def test_constant_on_decreasing_input(self):
        x = np.arange(10.0)
        y = -x
        _, fitted = isotonic_fit(x, y)
        assert np.allclose(fitted, fitted[0])


class TestCalibratedCostModel:
    def _corpus(self, optimizer, simulator, db, n=40):
        gen = WorkloadGenerator(db, seed=130)
        plans, lats = [], []
        for q in gen.workload(n, 2, 4, require_predicate=True):
            for arm in HintSet.bao_arms()[:3]:
                p = optimizer.plan(q, hints=arm)
                plans.append(p)
                lats.append(simulator.execute(p).latency_ms)
        return plans, np.array(lats)

    def test_calibration_fixes_scale(self, imdb_db, imdb_optimizer, imdb_simulator):
        plans, lats = self._corpus(imdb_optimizer, imdb_simulator, imdb_db)
        n = int(len(plans) * 0.7)
        model = CalibratedCostModel(imdb_optimizer).fit(plans[:n], lats[:n])
        err = model.calibration_error(plans[n:], lats[n:])
        # Raw cost is off by ~10x in absolute terms; calibrated should be
        # within tens of percent.
        raw_err = float(np.median(np.abs(
            np.array([imdb_optimizer.cost(p) for p in plans[n:]]) - lats[n:]
        ) / np.maximum(lats[n:], 1e-9)))
        assert err < raw_err * 0.2
        assert err < 0.5

    def test_observe_then_fit(self, imdb_db, imdb_optimizer, imdb_simulator):
        plans, lats = self._corpus(imdb_optimizer, imdb_simulator, imdb_db, n=10)
        model = CalibratedCostModel(imdb_optimizer)
        for p, l in zip(plans, lats):
            model.observe(p, l)
        assert model.n_observations == len(plans)
        model.fit()
        assert model.predict_latency(plans[0]) >= 0

    def test_fit_requires_data(self, imdb_optimizer):
        with pytest.raises(ValueError):
            CalibratedCostModel(imdb_optimizer).fit()

    def test_predict_before_fit(self, imdb_optimizer):
        with pytest.raises(RuntimeError):
            CalibratedCostModel(imdb_optimizer).predict_latency(None)


class TestLoger:
    def test_epsilon_validated(self, imdb_optimizer):
        with pytest.raises(ValueError):
            LogerOptimizer(imdb_optimizer, epsilon=1.0)

    def test_untrained_ships_native(self, imdb_optimizer, imdb_db):
        loger = LogerOptimizer(imdb_optimizer, seed=0)
        q = WorkloadGenerator(imdb_db, seed=131).random_query(3, 4)
        assert loger.choose_plan(q).source == "default"

    def test_bootstrap_and_search(self, imdb_db, imdb_optimizer, imdb_simulator):
        gen = WorkloadGenerator(imdb_db, seed=132)
        workload = gen.workload(20, 2, 4, require_predicate=True)
        loger = LogerOptimizer(imdb_optimizer, seed=0, retrain_every=0)
        loger.bootstrap_from_expert(workload[:12], imdb_simulator.latency)
        cand = loger.choose_plan(workload[15])
        assert cand.source == "search"
        assert cand.plan.root.tables == frozenset(workload[15].tables)

    def test_runs_in_loop(self, imdb_db, imdb_optimizer, imdb_simulator):
        gen = WorkloadGenerator(imdb_db, seed=133)
        workload = gen.workload(40, 2, 4, require_predicate=True)
        loger = LogerOptimizer(imdb_optimizer, seed=0)
        loop = OptimizationLoop(loger, imdb_simulator, imdb_optimizer)
        loop.run(workload)
        assert loop.summary()["n_queries"] == 40
