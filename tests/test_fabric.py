"""The sharded, multi-tenant serving fabric: routing, quotas, QoS,
telemetry merging, breaker failover and the byte-identical determinism
gate."""

import json

import pytest

from repro.core.errors import ConfigError
from repro.faults import BreakerState, FaultPlan, FaultSpec, shard_fault_plan
from repro.serve import RuntimeConfig, Served
from repro.serve.fabric import (
    FabricConfig,
    ShardRouter,
    TenantRegistry,
    TenantSpec,
    build_fabric_schedule,
    default_tenant_specs,
    hot_tenant_specs,
    sharded_fabric_scenario,
    synthetic_fabric,
    synthetic_queries,
)
from repro.serve.telemetry import Histogram, TelemetryBus, TraceRecord


# ---------------------------------------------------------------------------
# satellite 1: mergeable telemetry exports
# ---------------------------------------------------------------------------


def _make_bus(name: str, values, *, n_traces: int = 3) -> TelemetryBus:
    bus = TelemetryBus(trace_capacity=100)
    bus.incr("runtime.served", len(values))
    bus.incr(f"only.{name}", 1)
    for v in values:
        bus.observe("latency_ms", v)
    bus.event("stage_transition", deployment=name, to_stage="canary")
    bus.attach_gauge("g", lambda name=name: {"x": float(len(name))})
    for i in range(n_traces):
        bus.trace(
            TraceRecord(
                session_id=hash(name) % 7,
                seq=i,
                query_hash=f"{name}{i}",
                outcome="served",
                stage="live",
                plan_source="native",
                estimator_tag=name,
                latency_ms=float(i),
                wait_ms=0.0,
            )
        )
    return bus


class TestTelemetryMerge:
    def test_histogram_merge_is_exact_union(self):
        a, b = Histogram(), Histogram()
        for v in [1.0, 5.0, 9.0]:
            a.record(v)
        for v in [2.0, 4.0]:
            b.record(v)
        merged = Histogram.merged([a, b])
        assert merged.count == 5
        assert merged.total == pytest.approx(21.0)
        assert merged.summary()["max"] == 9.0
        assert merged.percentile(50) == 4.0

    def test_histogram_merge_order_independent_after_decimation(self):
        hists = []
        for k in range(3):
            h = Histogram(capacity=8)
            for i in range(40):
                h.record(float((i * 7 + k * 13) % 29))
            hists.append(h)
        fwd = Histogram.merged(hists).summary()
        rev = Histogram.merged(list(reversed(hists))).summary()
        assert fwd == rev

    def test_merge_commutativity_byte_identical(self):
        """Merge order must not change the export bytes."""

        def build():
            return {
                "shard00": _make_bus("shard00", [3.0, 7.0, 1.0]),
                "shard01": _make_bus("shard01", [2.0, 8.0]),
                "fabric": _make_bus("fabric", [5.0]),
            }

        buses = build()
        orders = [
            ["shard00", "shard01", "fabric"],
            ["fabric", "shard01", "shard00"],
            ["shard01", "fabric", "shard00"],
        ]
        exports = []
        for order in orders:
            merged = TelemetryBus.merged({k: buses[k] for k in order})
            exports.append(merged.to_json())
        assert exports[0] == exports[1] == exports[2]

    def test_merge_composes_not_rederives(self):
        """Counters/histograms survive even when traces were dropped."""
        bus = TelemetryBus(trace_capacity=1)
        for i in range(10):
            bus.incr("runtime.served")
            bus.observe("latency_ms", float(i))
            bus.trace(
                TraceRecord(
                    session_id=0,
                    seq=i,
                    query_hash=str(i),
                    outcome="served",
                    stage="live",
                    plan_source="native",
                    estimator_tag="t",
                    latency_ms=float(i),
                    wait_ms=0.0,
                )
            )
        merged = TelemetryBus.merged({"a": bus})
        snap = merged.snapshot()
        assert snap["counters"]["runtime.served"] == 10
        assert snap["histograms"]["latency_ms"]["count"] == 10
        assert len(snap["traces"]) == 1
        assert snap["traces_dropped"] == 9

    def test_merged_gauges_namespaced_by_source(self):
        buses = {"s1": _make_bus("s1", [1.0]), "s0": _make_bus("s0", [2.0])}
        snap = TelemetryBus.merged(buses).snapshot()
        assert snap["gauges"]["s0.g"] == {"x": 2.0}
        assert snap["gauges"]["s1.g"] == {"x": 2.0}


# ---------------------------------------------------------------------------
# router
# ---------------------------------------------------------------------------


class TestShardRouter:
    def test_candidates_deterministic_and_distinct(self):
        a = ShardRouter(16, seed=5)
        b = ShardRouter(16, seed=5)
        for i in range(200):
            key = f"key{i}"
            assert a.candidates(key) == b.candidates(key)
            first, second = a.candidates(key)
            assert first != second
        assert ShardRouter(16, seed=6).candidates("key0") != a.candidates(
            "key0"
        ) or True  # different seeds *may* collide on one key; just smoke

    def test_two_choice_balances_load(self):
        router = ShardRouter(16, seed=1)
        loads = [0] * 16
        healthy = [True] * 16

        class L:
            def __getitem__(self, i):
                return loads[i]

        class H:
            def __getitem__(self, i):
                return healthy[i]

        for i in range(4_000):
            s = router.route(f"k{i}", loads=L(), healthy=H())
            loads[s] += 1
        assert max(loads) <= 2 * min(loads)

    def test_unhealthy_candidates_fail_over_deterministically(self):
        router = ShardRouter(4, seed=0)
        key = "the-key"
        first, second = router.candidates(key)
        healthy = [True] * 4
        healthy[first] = False

        class L:
            def __getitem__(self, i):
                return 0

        class H:
            def __getitem__(self, i):
                return healthy[i]

        assert router.route(key, loads=L(), healthy=H()) == second
        assert router.reroutes == 1
        healthy[second] = False
        probe = router.route(key, loads=L(), healthy=H())
        assert probe not in (first, second)
        healthy[:] = [False] * 4
        assert router.route(key, loads=L(), healthy=H()) is None
        assert router.unroutable == 1

    def test_mode_validation(self):
        with pytest.raises(ConfigError):
            ShardRouter(4, mode="nope")
        with pytest.raises(ConfigError):
            ShardRouter(0)
        assert ShardRouter(4, mode="tenant").routing_key("qh", "t1") == "t1"
        assert ShardRouter(4).routing_key("qh", "t1") == "qh"


class TestPinnedRouter:
    def _views(self, healthy):
        class L:
            def __getitem__(self, i):
                return 0

        class H:
            def __getitem__(self, i):
                return healthy[i]

        return L(), H()

    def test_pinned_routes_to_assigned_shard(self):
        router = ShardRouter(
            4, mode="pinned", pinned={"a": 0, "b": 2, "c": 3}
        )
        loads, healthy = self._views([True] * 4)
        for tenant, shard in (("a", 0), ("b", 2), ("c", 3)):
            for _ in range(3):
                assert router.route(tenant, loads=loads, healthy=healthy) == shard
        assert router.reroutes == 0
        assert router.routing_key("qh", "b") == "b"

    def test_pinned_never_fails_over(self):
        """A pinned shard owns state no other shard can serve: an
        unhealthy pinned shard makes the request unroutable, never
        misrouted."""
        router = ShardRouter(2, mode="pinned", pinned={"a": 0, "b": 1})
        health = [True, False]
        loads, healthy = self._views(health)
        assert router.route("b", loads=loads, healthy=healthy) is None
        assert router.unroutable == 1
        assert router.route("a", loads=loads, healthy=healthy) == 0

    def test_pinned_unknown_tenant_raises(self):
        router = ShardRouter(2, mode="pinned", pinned={"a": 0})
        loads, healthy = self._views([True, True])
        with pytest.raises(ConfigError, match="pinned"):
            router.route("ghost", loads=loads, healthy=healthy)

    def test_pinned_config_validation(self):
        with pytest.raises(ConfigError):
            ShardRouter(2, mode="pinned")  # map required
        with pytest.raises(ConfigError):
            ShardRouter(2, pinned={"a": 0})  # map requires the mode
        with pytest.raises(ConfigError):
            ShardRouter(2, mode="pinned", pinned={"a": 5})  # out of range


# ---------------------------------------------------------------------------
# tenants: quotas and QoS
# ---------------------------------------------------------------------------


class TestTenantRegistry:
    def test_token_bucket_over_virtual_time(self):
        reg = TenantRegistry(
            [TenantSpec("t", qos="batch", rate_per_s=10.0, burst=2.0)]
        )
        # burst of 2 admits immediately, third is over quota
        assert reg.admit("t", 0.0) is None
        assert reg.admit("t", 0.0) is None
        assert reg.admit("t", 0.0) == "quota"
        # 10/s refills one token per 100 virtual ms
        assert reg.admit("t", 100.0) is None
        assert reg.admit("t", 100.0) == "quota"
        assert reg.stats()["t.admitted"] == 3.0
        assert reg.stats()["t.rejected"] == 2.0

    def test_unmetered_tenant_always_admits(self):
        reg = TenantRegistry([TenantSpec("free")])
        for i in range(50):
            assert reg.admit("free", float(i)) is None

    def test_unknown_tenant_and_bad_specs_raise(self):
        reg = TenantRegistry([TenantSpec("a")])
        with pytest.raises(ConfigError):
            reg.admit("ghost", 0.0)
        with pytest.raises(ConfigError):
            reg.register(TenantSpec("a"))
        with pytest.raises(ConfigError):
            TenantSpec("x", qos="platinum")
        with pytest.raises(ConfigError):
            TenantSpec("x", rate_per_s=-1.0)

    def test_qos_shedding_order(self):
        """Background sheds at a lower backlog than batch; interactive
        rides through fabric-level shedding entirely."""
        specs = (
            TenantSpec("int", qos="interactive"),
            TenantSpec("bat", qos="batch"),
            TenantSpec("bg", qos="background"),
        )
        scenario = synthetic_fabric(
            1,
            specs,
            seed=4,
            n_workers=1,
            shard_config=RuntimeConfig(
                timeout_ms=None, queue_capacity=None, max_in_flight=None
            ),
            fabric_config=FabricConfig(
                seed=4, background_shed_backlog=2, batch_shed_backlog=6
            ),
        )
        queries = synthetic_queries(60, seed=4)
        # saturating arrivals: backlog climbs steadily
        schedule = build_fabric_schedule(
            queries * 10, specs, seed=4, mean_interarrival_ms=0.2
        )
        report = scenario.fabric.run(schedule)
        by_tenant_served = {
            t: report.tenant_latency[t]["count"] for t in ("int", "bat", "bg")
        }
        assert report.rejected.get("qos_shed", 0) > 0
        # interactive is never qos-shed: everything it offered is served
        snap = scenario.fabric.telemetry.snapshot()
        assert snap["counters"].get("tenant.int.rejected", 0) == 0
        # background loses a larger fraction than batch
        offered = {t: 0 for t in ("int", "bat", "bg")}
        for freq in schedule:
            offered[freq.tenant_id] += 1
        frac = {
            t: by_tenant_served[t] / offered[t] for t in ("bat", "bg")
        }
        assert frac["bg"] < frac["bat"] <= 1.0


# ---------------------------------------------------------------------------
# the fabric loop: determinism, rebalancing, recovery
# ---------------------------------------------------------------------------


def _run_synthetic(seed=11, *, n_shards=8, fault_plan=None, n=4_000):
    specs = default_tenant_specs(6)
    scenario = synthetic_fabric(
        n_shards,
        specs,
        seed=seed,
        n_workers=2,
        shard_config=RuntimeConfig(timeout_ms=5_000.0, queue_capacity=64),
        fabric_config=FabricConfig(seed=seed),
        fault_plan=fault_plan,
    )
    queries = synthetic_queries(120, seed=seed)
    schedule = build_fabric_schedule(
        (queries * (n // len(queries) + 1))[:n],
        specs,
        seed=seed,
        mean_interarrival_ms=1.0,
    )
    report = scenario.fabric.run(schedule)
    return scenario, report


class TestFabricDeterminism:
    def test_same_seed_byte_identical_export_and_assignments(self):
        sa, ra = _run_synthetic(seed=11)
        sb, rb = _run_synthetic(seed=11)
        assert sa.fabric.router.assignments == sb.fabric.router.assignments
        assert ra.shard_served == rb.shard_served
        assert sa.fabric.export_json(include_traces=True) == sb.fabric.export_json(
            include_traces=True
        )

    def test_different_seed_differs(self):
        sa, _ = _run_synthetic(seed=11)
        sb, _ = _run_synthetic(seed=12)
        assert sa.fabric.export_json() != sb.fabric.export_json()

    def test_export_is_canonical_json(self):
        scenario, _ = _run_synthetic(seed=11, n=500)
        doc = json.loads(scenario.fabric.export_json())
        assert "counters" in doc and "histograms" in doc and "gauges" in doc

    def test_breaker_trip_reroutes_and_stays_deterministic(self):
        """Kill one shard's backend mid-run: its breaker trips, the
        router fails its keys over, and reruns stay byte-identical."""
        plan = shard_fault_plan(
            {"shard02": 1.0}, seed=11, kind="exception", end_call=6
        )
        sa, ra = _run_synthetic(seed=11, fault_plan=plan)
        sb, rb = _run_synthetic(seed=11, fault_plan=plan)
        broken = sa.fabric.shards[2]
        assert broken.breaker.trips >= 1
        assert ra.rejected.get("error", 0) > 0
        assert sa.fabric.router.reroutes > 0
        # once the fault window (6 backend calls) has been burned down by
        # half-open probes the shard recovers: the breaker closes again
        # and it serves traffic for the rest of the run
        assert broken.breaker.state is BreakerState.CLOSED
        assert broken.served > 0
        assert sa.fabric.export_json(include_traces=True) == sb.fabric.export_json(
            include_traces=True
        )

    def test_faulty_shard_load_redistributes(self):
        plan = shard_fault_plan({"shard02": 1.0}, seed=11, kind="exception")
        sa, ra = _run_synthetic(seed=11, fault_plan=plan)
        sh, rh = _run_synthetic(seed=11)
        # the permanently-broken shard serves (almost) nothing while the
        # healthy run's same shard carries real traffic
        assert ra.shard_served[2] < rh.shard_served[2] / 4
        assert ra.n_served > 0.8 * rh.n_served


class TestShardAdmission:
    def test_timeout_and_queue_bound(self):
        specs = (TenantSpec("t"),)
        scenario = synthetic_fabric(
            1,
            specs,
            seed=2,
            n_workers=1,
            base_latency_ms=50.0,
            spread_ms=0.0,
            shard_config=RuntimeConfig(timeout_ms=200.0, queue_capacity=None),
            fabric_config=FabricConfig(seed=2),
        )
        queries = synthetic_queries(40, seed=2)
        schedule = build_fabric_schedule(
            queries, specs, seed=2, mean_interarrival_ms=1.0
        )
        report = scenario.fabric.run(schedule)
        # 50ms service vs ~1ms arrivals: the wait exceeds 200ms quickly
        assert report.rejected.get("timeout", 0) > 0
        assert report.n_served >= 5
        served = [o for o in report.outcomes if isinstance(o, Served)]
        assert all(o.wait_ms <= 200.0 for o in served)


# ---------------------------------------------------------------------------
# the full per-shard production stack
# ---------------------------------------------------------------------------


class TestShardedFabricScenario:
    def test_full_stack_serves_and_is_deterministic(self):
        a = sharded_fabric_scenario(
            n_shards=3, scale=0.2, seed=9, n_queries=36
        )
        b = sharded_fabric_scenario(
            n_shards=3, scale=0.2, seed=9, n_queries=36
        )
        ra = a.run()
        rb = b.run()
        assert ra.n_served == rb.n_served > 0
        assert ra.shard_served == rb.shard_served
        assert a.fabric.export_json(include_traces=True) == b.fabric.export_json(
            include_traces=True
        )
        # every shard that saw traffic ran its own deployment stack
        for shard, served in zip(a.fabric.shards, ra.shard_served):
            if served:
                snap = shard.telemetry.snapshot()
                assert snap["counters"]["runtime.served"] == served
                assert "plan_cache" in snap["gauges"]
                assert "bound_guard" in snap["gauges"]

    def test_hot_tenant_specs_shape(self):
        specs = hot_tenant_specs(n_victims=2, hot_weight=6.0)
        assert [s.tenant_id for s in specs] == ["victim00", "victim01", "hot"]
        assert specs[-1].qos == "batch"
        assert specs[-1].weight == 6.0
