"""Tests for the SSB dataset, the theory helpers and the cost formulas."""

import numpy as np
import pytest

from repro.cardest import EnsembleEstimator, GBDTQueryEstimator, MLPQueryEstimator
from repro.cardest.theory import interval_coverage, pac_learning_curve
from repro.engine import CardinalityExecutor, ExecutionSimulator
from repro.engine.cost_formulas import CostConstants, OperatorCosts
from repro.optimizer import Optimizer
from repro.sql import WorkloadGenerator
from repro.storage import make_ssb_lite


@pytest.fixture(scope="module")
def ssb_db():
    return make_ssb_lite(scale=0.4, seed=0)


class TestSSB:
    def test_star_shape(self, ssb_db):
        # Every join edge touches the fact table: the defining SSB shape.
        for e in ssb_db.joins:
            assert "lineorder" in (e.left_table, e.right_table)

    def test_fk_integrity(self, ssb_db):
        for e in ssb_db.joins:
            fk = ssb_db.table(e.left_table).values(e.left_column)
            pk = ssb_db.table(e.right_table).values(e.right_column)
            assert set(np.unique(fk)) <= set(np.unique(pk))

    def test_full_pipeline_runs(self, ssb_db):
        opt = Optimizer(ssb_db)
        sim = ExecutionSimulator(ssb_db)
        gen = WorkloadGenerator(ssb_db, seed=5)
        for q in gen.workload(10, 2, 5, require_predicate=True):
            res = sim.execute(opt.plan(q))
            assert res.latency_ms > 0

    def test_deterministic(self):
        a = make_ssb_lite(0.3, seed=2)
        b = make_ssb_lite(0.3, seed=2)
        assert np.array_equal(
            a.table("lineorder").values("revenue"),
            b.table("lineorder").values("revenue"),
        )


class TestTheory:
    def test_pac_learning_curve_shrinks(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=160)
        train = gen.single_table_workload("posts", 300)
        test = WorkloadGenerator(stats_db, seed=161).single_table_workload("posts", 40)
        curve = pac_learning_curve(
            stats_db,
            lambda: GBDTQueryEstimator(stats_db, n_estimators=25),
            train,
            test,
            sample_sizes=[30, 100, 300],
        )
        sizes = [n for n, _ in curve]
        errors = [e for _, e in curve]
        assert sizes == [30, 100, 300]
        # PAC shape: the largest sample is at least as good as the smallest.
        assert errors[-1] <= errors[0] * 1.05

    def test_pac_curve_validates_sizes(self, stats_db):
        with pytest.raises(ValueError):
            pac_learning_curve(stats_db, lambda: None, [], [], [10])

    def test_interval_coverage_reasonable(self, stats_db, stats_train_data):
        queries, cards = stats_train_data
        members = [
            MLPQueryEstimator(stats_db, epochs=25, seed=s).fit(queries, cards)
            for s in range(4)
        ]
        ens = EnsembleEstimator(stats_db, members)
        executor = CardinalityExecutor(stats_db)
        test = WorkloadGenerator(stats_db, seed=162).workload(
            40, 1, 3, require_predicate=True
        )
        truth = [executor.cardinality(q) for q in test]
        coverage = interval_coverage(ens, test, truth)
        # Ensembles of few members under-cover; [55]'s finding.  We only
        # require the interval to be informative, not perfectly calibrated.
        assert 0.2 <= coverage <= 1.0

    def test_interval_coverage_validates(self, stats_db):
        ens = object.__new__(EnsembleEstimator)
        with pytest.raises(ValueError):
            interval_coverage(ens, [], [])


class TestCostFormulas:
    def setup_method(self):
        self.ops = OperatorCosts(CostConstants())

    def test_seq_scan_monotone_in_rows(self):
        assert self.ops.seq_scan(1000, 1) < self.ops.seq_scan(10_000, 1)

    def test_seq_scan_monotone_in_predicates(self):
        assert self.ops.seq_scan(1000, 1) <= self.ops.seq_scan(1000, 3)

    def test_index_scan_beats_seq_when_selective(self):
        seq = self.ops.seq_scan(100_000, 1)
        idx = self.ops.index_scan(100_000, 50, 1)
        assert idx < seq

    def test_index_scan_loses_when_unselective(self):
        seq = self.ops.seq_scan(100_000, 1)
        idx = self.ops.index_scan(100_000, 90_000, 1)
        assert idx > seq

    def test_hash_join_monotone(self):
        a = self.ops.hash_join(1000, 1000, 100)
        b = self.ops.hash_join(10_000, 1000, 100)
        assert b > a

    def test_indexed_nlj_beats_naive_for_small_outer(self):
        indexed = self.ops.nested_loop_indexed(10, 100_000, 50)
        naive = self.ops.nested_loop_naive(10, 100_000, 50)
        assert indexed < naive

    def test_naive_nlj_quadratic_blowup(self):
        small = self.ops.nested_loop_naive(100, 100, 10)
        big = self.ops.nested_loop_naive(10_000, 10_000, 10)
        assert big > small * 1000

    def test_merge_join_includes_sort_cost(self):
        merge = self.ops.merge_join(100_000, 100_000, 10)
        hash_ = self.ops.hash_join(100_000, 100_000, 10)
        assert merge > hash_  # sorting both sides dominates

    def test_all_costs_nonnegative(self):
        for value in (
            self.ops.seq_scan(0, 0),
            self.ops.index_scan(0, 0, 0),
            self.ops.hash_join(0, 0, 0),
            self.ops.nested_loop_indexed(0, 0, 0),
            self.ops.nested_loop_naive(0, 0, 0),
            self.ops.merge_join(0, 0, 0),
        ):
            assert value >= 0.0
