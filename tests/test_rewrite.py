"""Tests for the learned query-rewrite subsystem (repro.rewrite).

Every rule is checked for exact result preservation on engineered
fixtures -- including the > 2**53 deep-chain database and empty-result
edges -- plus the predicate algebra, the values catalog's cache-safety
contract, the retrieval store's anti-pattern down-weighting, the
promotion state machine, and the serving integrations (OptimizationLoop,
DeploymentManager, PilotScope console).

Values relations attach to the live database, so every test that can
mutate its database builds its own (the conftest fixtures are shared and
must stay pristine).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import CardinalityExecutor, ExecutionSimulator
from repro.e2e.loop import OptimizationLoop
from repro.optimizer import Optimizer
from repro.optimizer.plancache import PlanCache
from repro.oracle.fixtures import make_deep_chain
from repro.pilotscope.console import PilotScopeConsole
from repro.pilotscope.postgres_sim import SimulatedPostgreSQL
from repro.rewrite import (
    GoldExampleStore,
    PromotionLeaderboard,
    REWRITE_RULES,
    RewriteDriver,
    RewriteValidator,
    RewritingOptimizer,
    ValuesCatalog,
)
from repro.rewrite.rules import predicate_implies, predicates_disjoint
from repro.serve.deployment import DeploymentManager, Stage
from repro.sql import WorkloadGenerator, exact_count
from repro.sql.query import (
    ColumnRef,
    Join,
    Op,
    OrPredicate,
    Predicate,
    Query,
    query_hash,
)
from repro.storage import make_stats_lite


def fresh_db(scale: float = 0.15, seed: int = 0):
    return make_stats_lite(scale=scale, seed=seed)


def _count(db, query):
    n = exact_count(db, query)
    assert n is not None
    return n


def col(table, column):
    return ColumnRef(table, column)


# -- predicate algebra --------------------------------------------------------------


def test_predicates_disjoint_finite_and_intervals():
    c = col("t", "x")
    assert predicates_disjoint(
        Predicate(c, Op.EQ, 1.0), Predicate(c, Op.EQ, 2.0)
    )
    assert not predicates_disjoint(
        Predicate(c, Op.IN, (1.0, 5.0)), Predicate(c, Op.EQ, 5.0)
    )
    # touching intervals: disjoint only when at most one endpoint is closed
    assert predicates_disjoint(
        Predicate(c, Op.LT, 3.0), Predicate(c, Op.GE, 3.0)
    )
    assert not predicates_disjoint(
        Predicate(c, Op.LE, 3.0), Predicate(c, Op.GE, 3.0)
    )
    assert predicates_disjoint(
        Predicate(c, Op.BETWEEN, (0.0, 1.0)),
        Predicate(c, Op.BETWEEN, (2.0, 3.0)),
    )
    assert not predicates_disjoint(
        Predicate(c, Op.BETWEEN, (0.0, 2.0)),
        Predicate(c, Op.BETWEEN, (2.0, 3.0)),
    )


def test_predicate_implies_inclusivity():
    c = col("t", "x")
    assert predicate_implies(
        Predicate(c, Op.EQ, 2.0), Predicate(c, Op.BETWEEN, (0.0, 5.0))
    )
    assert predicate_implies(
        Predicate(c, Op.LE, 3.0), Predicate(c, Op.LE, 7.0)
    )
    assert not predicate_implies(
        Predicate(c, Op.LE, 7.0), Predicate(c, Op.LE, 3.0)
    )
    # strict inside closed at the same endpoint holds; the converse must not
    assert predicate_implies(
        Predicate(c, Op.LT, 3.0), Predicate(c, Op.LE, 3.0)
    )
    assert not predicate_implies(
        Predicate(c, Op.LE, 3.0), Predicate(c, Op.LT, 3.0)
    )
    assert not predicate_implies(
        Predicate(c, Op.BETWEEN, (0.0, 5.0)), Predicate(c, Op.IN, (0.0, 5.0))
    )


# -- per-rule result preservation ---------------------------------------------------


def _joined_query(db):
    """Two joined tables plus a range filter on one join column."""
    edge = db.joins[0]
    join = Join(
        ColumnRef(edge.left_table, edge.left_column),
        ColumnRef(edge.right_table, edge.right_column),
    )
    lo = float(np.quantile(db.table(edge.left_table).values(edge.left_column), 0.2))
    pred = Predicate(col(edge.left_table, edge.left_column), Op.GE, lo)
    return Query((edge.left_table, edge.right_table), (join,), (pred,))


def test_predicate_pushdown_preserves_count():
    db = fresh_db()
    query = _joined_query(db)
    candidate = REWRITE_RULES["predicate_pushdown"].apply(db, query)
    assert candidate is not None and candidate.servable
    assert len(candidate.rewritten.predicates) > len(query.predicates)
    assert _count(db, candidate.rewritten) == _count(db, query)


def test_pushdown_skips_when_nothing_to_push():
    db = fresh_db()
    t = db.joins[0].left_table
    no_joins = Query((t,), (), (Predicate(col(t, "id"), Op.GE, 1.0),))
    assert REWRITE_RULES["predicate_pushdown"].apply(db, no_joins) is None


def test_or_to_union_branches_sum_exactly():
    db = fresh_db()
    t = "users"
    c = col(t, "id")
    disjunct = OrPredicate(
        c,
        (
            Predicate(c, Op.BETWEEN, (0.0, 10.0)),
            Predicate(c, Op.BETWEEN, (20.0, 30.0)),
            Predicate(c, Op.GE, 40.0),
        ),
    )
    query = Query((t,), (), (disjunct,))
    candidate = REWRITE_RULES["or_to_union"].apply(db, query)
    assert candidate is not None and not candidate.servable
    assert len(candidate.queries) == 3
    total = sum(_count(db, branch) for branch in candidate.queries)
    assert total == _count(db, query)
    with pytest.raises(ValueError):
        candidate.rewritten  # union candidates are not single-plan servable


def test_or_to_union_refuses_overlapping_parts():
    db = fresh_db()
    t = "users"
    c = col(t, "id")
    overlapping = OrPredicate(
        c,
        (
            Predicate(c, Op.BETWEEN, (0.0, 20.0)),
            Predicate(c, Op.BETWEEN, (10.0, 30.0)),
        ),
    )
    query = Query((t,), (), (overlapping,))
    assert REWRITE_RULES["or_to_union"].apply(db, query) is None


def test_drop_redundant_subsumed_and_duplicate():
    db = fresh_db()
    t = "users"
    c = col(t, "id")
    query = Query(
        (t,),
        (),
        (
            Predicate(c, Op.LE, 50.0),
            Predicate(c, Op.LE, 200.0),  # subsumed by <= 50
            Predicate(c, Op.GE, 5.0),
        ),
    )
    candidate = REWRITE_RULES["drop_redundant"].apply(db, query)
    assert candidate is not None
    assert len(candidate.rewritten.predicates) == 2
    assert Predicate(c, Op.LE, 200.0) not in candidate.rewritten.predicates
    assert _count(db, candidate.rewritten) == _count(db, query)


def test_merge_ranges_closed_only():
    db = fresh_db()
    t = "users"
    c = col(t, "id")
    query = Query(
        (t,), (), (Predicate(c, Op.GE, 5.0), Predicate(c, Op.LE, 60.0))
    )
    candidate = REWRITE_RULES["merge_ranges"].apply(db, query)
    assert candidate is not None
    (merged,) = candidate.rewritten.predicates
    assert merged.op is Op.BETWEEN and merged.value == (5.0, 60.0)
    assert _count(db, candidate.rewritten) == _count(db, query)
    # a strict bound never folds into the inclusive BETWEEN
    strict = Query(
        (t,), (), (Predicate(c, Op.GE, 5.0), Predicate(c, Op.LT, 60.0))
    )
    assert REWRITE_RULES["merge_ranges"].apply(db, strict) is None


def test_in_to_join_preserves_count_and_registers_relation():
    db = fresh_db()
    optimizer = Optimizer(db)
    catalog = ValuesCatalog(db, stats=optimizer.stats)
    t = "users"
    c = col(t, "id")
    literals = tuple(float(v) for v in range(0, 24, 3))
    query = Query((t,), (), (Predicate(c, Op.IN, literals),))
    before = _count(db, query)
    version = db.data_version
    candidate = REWRITE_RULES["in_to_join"].apply(db, query, catalog=catalog)
    assert candidate is not None and candidate.servable
    (vals_name,) = candidate.values_tables
    assert vals_name in db.tables and vals_name.startswith("vals_")
    assert _count(db, candidate.rewritten) == before
    # attaching a relation must not invalidate caches or drift detection
    assert db.data_version == version
    # the planner can cost the new relation immediately
    optimizer.plan(candidate.rewritten)
    # re-applying reuses the content-addressed relation
    again = REWRITE_RULES["in_to_join"].apply(db, query, catalog=catalog)
    assert again.values_tables == (vals_name,)
    assert catalog.attachments == 1 and catalog.reuses == 1


def test_values_catalog_drops_non_integral_literals():
    db = fresh_db()
    catalog = ValuesCatalog(db)
    t = "users"
    c = col(t, "id")
    assert db.table(t).values("id").dtype.kind == "i"
    attached = catalog.attach(c, (1.0, 2.0, 2.5))
    assert attached is not None
    name, _ = attached
    assert db.table(name).values("v").tolist() == [1, 2]
    # all-non-integral on an integer column can never match anything
    assert catalog.attach(c, (0.5, 1.5)) is None


def test_rules_never_mutate_the_input_query():
    db = fresh_db()
    query = _joined_query(db)
    frozen = query_hash(query)
    for rule in REWRITE_RULES.values():
        rule.apply(db, query, catalog=ValuesCatalog(db))
    assert query_hash(query) == frozen


# -- extreme and empty fixtures -----------------------------------------------------


def test_pushdown_exact_past_float64_on_deep_chain():
    db, query, expected = make_deep_chain()
    assert expected > 2**53
    filtered = Query(
        query.tables,
        query.joins,
        (Predicate(col("c0", "key"), Op.LE, 4.0),),
    )
    candidate = REWRITE_RULES["predicate_pushdown"].apply(db, filtered)
    assert candidate is not None
    # key <= 4 keeps every key group, so the rewritten chain must
    # reproduce the closed-form python-int count exactly
    assert len(candidate.rewritten.predicates) == len(query.tables)
    assert _count(db, candidate.rewritten) == expected


def test_in_to_join_exact_past_float64_on_deep_chain():
    db, query, expected = make_deep_chain()
    catalog = ValuesCatalog(db)
    filtered = Query(
        query.tables,
        query.joins,
        (Predicate(col("c0", "key"), Op.IN, (0.0, 1.0, 2.0, 3.0, 4.0)),),
    )
    candidate = REWRITE_RULES["in_to_join"].apply(db, filtered, catalog=catalog)
    assert candidate is not None
    assert _count(db, candidate.rewritten) == expected


def test_rules_preserve_empty_results():
    db = fresh_db()
    t = "users"
    c = col(t, "id")
    empty = Predicate(c, Op.EQ, -12345.0)
    query = Query(
        (t,),
        (),
        (empty, Predicate(c, Op.GE, 5.0), Predicate(c, Op.LE, 60.0)),
    )
    assert _count(db, query) == 0
    merged = REWRITE_RULES["merge_ranges"].apply(db, query)
    assert merged is not None and _count(db, merged.rewritten) == 0
    validator = RewriteValidator(db)
    assert validator.validate(merged).ok


# -- identity, caching --------------------------------------------------------------


def test_rewrite_changes_query_hash_and_template_key():
    db = fresh_db()
    query = _joined_query(db)
    rewritten = REWRITE_RULES["predicate_pushdown"].apply(db, query).rewritten
    assert query_hash(rewritten) != query_hash(query)
    assert rewritten.template_key != query.template_key


def test_plan_cache_never_collides_original_with_rewrite():
    db = fresh_db()
    optimizer = Optimizer(db)
    query = _joined_query(db)
    rewritten = REWRITE_RULES["predicate_pushdown"].apply(db, query).rewritten
    cache = PlanCache()
    tag = ("test",)
    _, hit_a = cache.get_or_plan(query, tag, db.data_version, optimizer.plan)
    _, hit_b = cache.get_or_plan(rewritten, tag, db.data_version, optimizer.plan)
    assert not hit_a and not hit_b  # distinct templates -> distinct entries
    assert cache.stats()["entries"] == 2


# -- retrieval store ----------------------------------------------------------------


def test_store_cold_start_keeps_all_weights_at_one():
    db = fresh_db()
    store = GoldExampleStore(db)
    q = _joined_query(db)
    assert store.cluster_of(q) == -1
    weights = store.rule_weights(q, list(REWRITE_RULES))
    assert all(w == 1.0 for w in weights.values())


def test_store_anti_patterns_downweight_similar_queries():
    db = fresh_db()
    store = GoldExampleStore(db, n_clusters=2, seed=0)
    q = _joined_query(db)
    store.record_anti(q, "or_to_union", 0.5)
    store.record_anti(q, "or_to_union", 0.4)
    store.record_gold(q, "predicate_pushdown", 1.8)
    assert store.fit()
    weights = store.rule_weights(q, list(REWRITE_RULES))
    assert weights["or_to_union"] < 0.5  # below the selection cutoff
    assert weights["predicate_pushdown"] > 1.0
    assert weights["merge_ranges"] == 1.0
    # the floor keeps heavily-penalized rules non-negative
    for _ in range(10):
        store.record_anti(q, "or_to_union", 0.5)
    store.fit()
    assert store.rule_weights(q, list(REWRITE_RULES))["or_to_union"] == 0.05


# -- promotion leaderboard ----------------------------------------------------------


def _leaderboard(db, **kwargs):
    return PromotionLeaderboard(db, **kwargs)


def test_leaderboard_state_machine_and_idempotence():
    db = fresh_db()
    lb = _leaderboard(db)
    query = _joined_query(db)
    entries = lb.submit(query)
    assert entries
    statuses = {e.status for e in entries}
    assert statuses <= {"promoted", "demoted", "rejected", "skipped"}
    assert lb.counters["mismatches"] == 0
    snapshot = lb.counters.copy()
    assert lb.submit(query) == entries  # idempotent: cached verdicts
    assert lb.counters == snapshot


def test_leaderboard_promotes_and_serves_best_rewrite():
    db = fresh_db()
    lb = _leaderboard(db)
    workload = WorkloadGenerator(db, seed=11).rewrite_susceptible_workload(12)
    lb.submit_workload(workload)
    assert lb.counters["promoted"] > 0
    assert lb.geomean_promoted() >= lb.promote_threshold
    served = [q for q in workload if lb.promoted_for(q) is not None]
    assert served
    candidate, entry = lb.promoted_for(served[0])
    assert entry.status == "promoted" and candidate.servable
    assert entry.speedup >= lb.promote_threshold


def test_leaderboard_stale_promotions_invalidate_on_data_drift():
    db = fresh_db()
    lb = _leaderboard(db)
    workload = WorkloadGenerator(db, seed=11).rewrite_susceptible_workload(12)
    lb.submit_workload(workload)
    query = next(q for q in workload if lb.promoted_for(q) is not None)
    table = db.table(query.tables[0])
    table.append_rows(
        {name: np.array([table.values(name).max() + 1]) for name in table.columns}
    )
    assert lb.promoted_for(query) is None
    assert lb.counters["stale_invalidations"] == 1
    # resubmission re-validates against the drifted data
    lb.resubmit(query)
    hit = lb.promoted_for(query)
    assert hit is None or hit[1].data_version == db.data_version


def test_leaderboard_snapshot_deterministic_across_processes():
    exports = []
    for _ in range(2):
        db = fresh_db()
        store = GoldExampleStore(db, seed=0)
        lb = _leaderboard(db, store=store)
        workload = WorkloadGenerator(db, seed=7).rewrite_susceptible_workload(10)
        lb.submit_workload(workload)
        exports.append((lb.to_json(), store.export()))
    assert exports[0] == exports[1]


# -- serving integrations -----------------------------------------------------------


def test_rewriting_optimizer_in_optimization_loop():
    db = fresh_db()
    lb = _leaderboard(db)
    workload = WorkloadGenerator(db, seed=11).rewrite_susceptible_workload(12)
    rewriter = RewritingOptimizer(lb)
    loop = OptimizationLoop(
        rewriter, ExecutionSimulator(db, executor=lb.executor), lb.optimizer
    )
    results = loop.run(workload)
    assert rewriter.rewrites_served > 0
    assert lb.counters["served"] == rewriter.rewrites_served
    # non-rewritten queries serve the native plan itself: no regression
    assert min(r.speedup for r in results) >= 1.0
    rewritten = [r for r in results if r.source.startswith("rewrite:")]
    assert all(r.speedup >= lb.promote_threshold for r in rewritten)


def test_deployment_manager_shadow_then_live():
    db = fresh_db()
    lb = _leaderboard(db)
    workload = WorkloadGenerator(db, seed=11).rewrite_susceptible_workload(12)
    lb.submit_workload(workload)
    deployment = DeploymentManager(
        RewritingOptimizer(lb),
        lb.optimizer,
        ExecutionSimulator(db, executor=lb.executor),
    )
    shadow = [deployment.serve(q) for q in workload]
    assert all(not d.served_learned for d in shadow)
    assert all(d.plan_source == "native" for d in shadow)
    assert deployment.promote() is Stage.CANARY
    assert deployment.promote() is Stage.LIVE
    live = [deployment.serve(q) for q in workload]
    sources = {d.plan_source for d in live if d.served_learned}
    assert any(s.startswith("rewrite:") for s in sources)
    assert deployment.stage is Stage.LIVE  # no rollback on the way


def test_rewrite_driver_via_console():
    db = fresh_db()
    interactor = SimulatedPostgreSQL(db)
    lb = _leaderboard(db, optimizer=interactor.optimizer)
    workload = WorkloadGenerator(db, seed=11).rewrite_susceptible_workload(8)
    console = PilotScopeConsole(interactor)
    driver = RewriteDriver(lb)
    console.register_driver(driver)
    console.start_driver("rewrite")
    for query in workload:
        outcome = console.execute(query)
        assert outcome.cardinality == _count(db, query)
    assert driver.rewrites_served > 0


# -- compat + workload shapes -------------------------------------------------------


def test_metamorphic_transforms_compat_alias():
    from repro.oracle.metamorphic import TRANSFORMS
    from repro.sql import TRANSFORM_REGISTRY

    assert set(TRANSFORMS) == set(TRANSFORM_REGISTRY)
    for name, (fn, preserves) in TRANSFORMS.items():
        assert fn is TRANSFORM_REGISTRY[name].fn
        assert preserves == TRANSFORM_REGISTRY[name].preserves_query_hash


def test_rewrite_susceptible_workload_seeded_and_shaped():
    db = fresh_db()
    a = WorkloadGenerator(db, seed=5).rewrite_susceptible_workload(15)
    b = WorkloadGenerator(db, seed=5).rewrite_susceptible_workload(15)
    assert [query_hash(q) for q in a] == [query_hash(q) for q in b]
    assert all(q.predicates for q in a)
    # the workload must exercise every rule at least once
    applied = {
        name
        for q in a
        for name, rule in REWRITE_RULES.items()
        if rule.apply(db, q, catalog=ValuesCatalog(db)) is not None
    }
    assert applied == set(REWRITE_RULES)


def test_rewrite_susceptible_workload_rejects_bad_rates():
    db = fresh_db()
    gen = WorkloadGenerator(db, seed=5)
    with pytest.raises(ValueError):
        gen.rewrite_susceptible_workload(5, or_heavy_rate=1.5)
