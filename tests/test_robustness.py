"""Robustness and failure-injection tests across module boundaries."""

import numpy as np
import pytest

from repro.cardest import FSPNEstimator, HistogramEstimator
from repro.core.framework import CandidatePlan
from repro.core.interfaces import InjectedCardinalities
from repro.e2e import BaoOptimizer, OptimizationLoop
from repro.engine import ExecutionSimulator, SimulatorConfig
from repro.optimizer import Optimizer
from repro.pilotscope import PilotScopeConsole, SimulatedPostgreSQL
from repro.sql import Query, WorkloadGenerator
from repro.storage import make_stats_lite, make_tpch_lite


class TestBrokenEstimatorInjection:
    """The planner must survive arbitrarily broken estimators."""

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), -5.0, 0.0, 1e30]
    )
    def test_planner_survives_pathological_estimates(self, stats_db, value):
        class Broken:
            def estimate(self, query):
                return value

        opt = Optimizer(stats_db).with_estimator(Broken())
        gen = WorkloadGenerator(stats_db, seed=170)
        q = gen.random_query(2, 4, require_predicate=True)
        plan = opt.plan(q)  # must not raise
        assert plan.root.tables == frozenset(q.tables)

    def test_simulator_results_independent_of_estimator(self, stats_db):
        """Broken estimates change plans, never results."""

        class Broken:
            def estimate(self, query):
                return 1.0

        sim = ExecutionSimulator(stats_db)
        native = Optimizer(stats_db)
        broken = native.with_estimator(Broken())
        gen = WorkloadGenerator(stats_db, seed=171)
        for q in gen.workload(10, 1, 4, require_predicate=True):
            a = sim.execute(native.plan(q)).cardinality
            b = sim.execute(broken.plan(q)).cardinality
            assert a == b

    def test_injection_wrapper_rejects_bad_batch(self, stats_db):
        wrapped = InjectedCardinalities(HistogramEstimator(stats_db))
        with pytest.raises(ValueError):
            wrapped.inject_batch({"SELECT COUNT(*) FROM users": -3.0})


class TestNoisySimulator:
    def test_learning_still_works_under_noise(self, imdb_db, imdb_optimizer):
        noisy = ExecutionSimulator(
            imdb_db, SimulatorConfig(noise_sigma=0.15, noise_seed=7)
        )
        workload = WorkloadGenerator(imdb_db, seed=172).workload(
            120, 2, 4, require_predicate=True
        )
        bao = BaoOptimizer(imdb_optimizer, seed=0)
        loop = OptimizationLoop(bao, noisy, imdb_optimizer)
        loop.run(workload)
        s = loop.summary(tail=60)
        # Noise makes learning harder but must not break it outright.
        assert s["workload_speedup"] > 0.8

    def test_noise_preserves_cardinality(self, stats_db, stats_optimizer):
        noisy = ExecutionSimulator(
            stats_db, SimulatorConfig(noise_sigma=0.5, noise_seed=3)
        )
        clean = ExecutionSimulator(stats_db)
        gen = WorkloadGenerator(stats_db, seed=173)
        q = gen.random_query(2, 3, require_predicate=True)
        plan = stats_optimizer.plan(q)
        assert noisy.execute(plan).cardinality == clean.execute(plan).cardinality


class TestPilotScopeConfig:
    def test_greedy_algorithm_config(self, stats_db):
        pg = SimulatedPostgreSQL(stats_db)
        gen = WorkloadGenerator(stats_db, seed=174)
        q = gen.random_query(3, 4, require_predicate=True)
        with pg.open_session() as session:
            session.push_config("algorithm", "greedy")
            plan = session.pull_plan(q)
        assert plan.root.tables == frozenset(q.tables)

    def test_console_accepts_query_objects_and_sql(self, stats_db):
        console = PilotScopeConsole(SimulatedPostgreSQL(stats_db))
        q = Query(("users",))
        by_object = console.execute(q)
        by_sql = console.execute(q.to_sql())
        assert by_object.cardinality == by_sql.cardinality


class TestCrossDatabaseSanity:
    """Every major component must run on every bundled schema."""

    @pytest.mark.parametrize("maker", [make_stats_lite, make_tpch_lite])
    def test_fspn_and_bao_on_other_schemas(self, maker):
        db = maker(scale=0.25, seed=11)
        est = FSPNEstimator(db)
        opt = Optimizer(db)
        sim = ExecutionSimulator(db)
        gen = WorkloadGenerator(db, seed=175)
        workload = gen.workload(20, 1, 4, require_predicate=True)
        for q in workload[:5]:
            assert est.estimate(q) >= 0.0
        bao = BaoOptimizer(opt, seed=0)
        loop = OptimizationLoop(bao, sim, opt)
        loop.run(workload)
        assert loop.summary()["n_queries"] == 20

    def test_guard_on_tpch_uniform_data(self):
        """On uniform TPC-H-like data the native optimizer is hard to
        beat; the loop must remain stable anyway."""
        from repro.costmodel import PlanFeaturizer
        from repro.regression import Eraser

        db = make_tpch_lite(scale=0.25, seed=12)
        opt = Optimizer(db)
        sim = ExecutionSimulator(db)
        feat = PlanFeaturizer(db, opt.estimator)
        workload = WorkloadGenerator(db, seed=176).workload(
            40, 2, 4, require_predicate=True
        )
        loop = OptimizationLoop(
            BaoOptimizer(opt, seed=0), sim, opt, guard=Eraser(feat)
        )
        loop.run(workload)
        assert loop.summary()["worst_regression"] < 5.0
