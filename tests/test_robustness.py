"""Robustness and failure-injection tests across module boundaries."""

import numpy as np
import pytest

from repro.cardest import FSPNEstimator, HistogramEstimator
from repro.core.framework import CandidatePlan
from repro.core.interfaces import InjectedCardinalities
from repro.e2e import BaoOptimizer, OptimizationLoop
from repro.engine import ExecutionSimulator, SimulatorConfig
from repro.optimizer import Optimizer
from repro.pilotscope import PilotScopeConsole, SimulatedPostgreSQL
from repro.sql import Query, WorkloadGenerator
from repro.storage import make_stats_lite, make_tpch_lite


class TestBrokenEstimatorInjection:
    """The planner must survive arbitrarily broken estimators."""

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), -5.0, 0.0, 1e30]
    )
    def test_planner_survives_pathological_estimates(self, stats_db, value):
        class Broken:
            def estimate(self, query):
                return value

        opt = Optimizer(stats_db).with_estimator(Broken())
        gen = WorkloadGenerator(stats_db, seed=170)
        q = gen.random_query(2, 4, require_predicate=True)
        plan = opt.plan(q)  # must not raise
        assert plan.root.tables == frozenset(q.tables)

    def test_simulator_results_independent_of_estimator(self, stats_db):
        """Broken estimates change plans, never results."""

        class Broken:
            def estimate(self, query):
                return 1.0

        sim = ExecutionSimulator(stats_db)
        native = Optimizer(stats_db)
        broken = native.with_estimator(Broken())
        gen = WorkloadGenerator(stats_db, seed=171)
        for q in gen.workload(10, 1, 4, require_predicate=True):
            a = sim.execute(native.plan(q)).cardinality
            b = sim.execute(broken.plan(q)).cardinality
            assert a == b

    def test_injection_wrapper_rejects_bad_batch(self, stats_db):
        wrapped = InjectedCardinalities(HistogramEstimator(stats_db))
        with pytest.raises(ValueError):
            wrapped.inject_batch({"SELECT COUNT(*) FROM users": -3.0})


class TestNoisySimulator:
    def test_learning_still_works_under_noise(self, imdb_db, imdb_optimizer):
        noisy = ExecutionSimulator(
            imdb_db, SimulatorConfig(noise_sigma=0.15, noise_seed=7)
        )
        workload = WorkloadGenerator(imdb_db, seed=172).workload(
            120, 2, 4, require_predicate=True
        )
        bao = BaoOptimizer(imdb_optimizer, seed=0)
        loop = OptimizationLoop(bao, noisy, imdb_optimizer)
        loop.run(workload)
        s = loop.summary(tail=60)
        # Noise makes learning harder but must not break it outright.
        assert s["workload_speedup"] > 0.8

    def test_noise_preserves_cardinality(self, stats_db, stats_optimizer):
        noisy = ExecutionSimulator(
            stats_db, SimulatorConfig(noise_sigma=0.5, noise_seed=3)
        )
        clean = ExecutionSimulator(stats_db)
        gen = WorkloadGenerator(stats_db, seed=173)
        q = gen.random_query(2, 3, require_predicate=True)
        plan = stats_optimizer.plan(q)
        assert noisy.execute(plan).cardinality == clean.execute(plan).cardinality


class TestPilotScopeConfig:
    def test_greedy_algorithm_config(self, stats_db):
        pg = SimulatedPostgreSQL(stats_db)
        gen = WorkloadGenerator(stats_db, seed=174)
        q = gen.random_query(3, 4, require_predicate=True)
        with pg.open_session() as session:
            session.push_config("algorithm", "greedy")
            plan = session.pull_plan(q)
        assert plan.root.tables == frozenset(q.tables)

    def test_console_accepts_query_objects_and_sql(self, stats_db):
        console = PilotScopeConsole(SimulatedPostgreSQL(stats_db))
        q = Query(("users",))
        by_object = console.execute(q)
        by_sql = console.execute(q.to_sql())
        assert by_object.cardinality == by_sql.cardinality


class TestCrossDatabaseSanity:
    """Every major component must run on every bundled schema."""

    @pytest.mark.parametrize("maker", [make_stats_lite, make_tpch_lite])
    def test_fspn_and_bao_on_other_schemas(self, maker):
        db = maker(scale=0.25, seed=11)
        est = FSPNEstimator(db)
        opt = Optimizer(db)
        sim = ExecutionSimulator(db)
        gen = WorkloadGenerator(db, seed=175)
        workload = gen.workload(20, 1, 4, require_predicate=True)
        for q in workload[:5]:
            assert est.estimate(q) >= 0.0
        bao = BaoOptimizer(opt, seed=0)
        loop = OptimizationLoop(bao, sim, opt)
        loop.run(workload)
        assert loop.summary()["n_queries"] == 20

    def test_guard_on_tpch_uniform_data(self):
        """On uniform TPC-H-like data the native optimizer is hard to
        beat; the loop must remain stable anyway."""
        from repro.costmodel import PlanFeaturizer
        from repro.regression import Eraser

        db = make_tpch_lite(scale=0.25, seed=12)
        opt = Optimizer(db)
        sim = ExecutionSimulator(db)
        feat = PlanFeaturizer(db, opt.estimator)
        workload = WorkloadGenerator(db, seed=176).workload(
            40, 2, 4, require_predicate=True
        )
        loop = OptimizationLoop(
            BaoOptimizer(opt, seed=0), sim, opt, guard=Eraser(feat)
        )
        loop.run(workload)
        assert loop.summary()["worst_regression"] < 5.0


# ---------------------------------------------------------------------------
# PR 3: deterministic fault injection + the graceful-degradation ladder
# ---------------------------------------------------------------------------


class TestSanitizeEstimate:
    def test_nonfinite_and_negative_values(self):
        from repro.cardest.base import NONFINITE_FALLBACK, sanitize_estimate

        assert sanitize_estimate(float("nan")) == NONFINITE_FALLBACK
        assert sanitize_estimate(float("inf")) == NONFINITE_FALLBACK
        assert sanitize_estimate(float("-inf")) == NONFINITE_FALLBACK
        assert sanitize_estimate(-42.0) == 0.0
        assert sanitize_estimate(17.5) == 17.5

    def test_upper_bound_clamps(self):
        from repro.cardest.base import sanitize_estimate

        assert sanitize_estimate(1e12, upper=100.0) == 100.0
        assert sanitize_estimate(float("nan"), upper=100.0) == 100.0
        assert sanitize_estimate(50.0, upper=100.0) == 50.0

    def test_vectorized_matches_scalar(self):
        from repro.cardest.base import sanitize_estimate, sanitize_estimates

        values = [float("nan"), float("inf"), -3.0, 0.0, 2.5, 1e35]
        uppers = [10.0, None, 5.0, 5.0, None, 1e30]
        vec = sanitize_estimates(np.array(values), uppers)
        for got, v, u in zip(vec, values, uppers):
            assert got == sanitize_estimate(v, upper=u)

    def test_estimator_surface_is_always_finite(self, stats_db):
        class Broken:
            def _estimate(self, query):
                return float("nan")

        from repro.cardest.base import BaseCardinalityEstimator

        class BrokenEst(BaseCardinalityEstimator):
            name = "broken"

            def __init__(self, db):
                super().__init__(db)

            def _estimate(self, query):
                return float("inf")

        est = BrokenEst(stats_db)
        q = WorkloadGenerator(stats_db, seed=180).random_query(
            2, 3, require_predicate=True
        )
        assert np.isfinite(est.estimate(q))


class TestTypedErrors:
    def test_hierarchy(self):
        from repro.core.errors import (
            AdmissionRejected,
            ConfigError,
            DriverError,
            EstimationError,
            InjectedDriverError,
            InjectedEstimationError,
            InjectedFault,
            ReproError,
            SessionClosedError,
        )

        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, ReproError)
        assert issubclass(DriverError, RuntimeError)
        assert issubclass(SessionClosedError, DriverError)
        assert issubclass(EstimationError, ReproError)
        assert issubclass(AdmissionRejected, ReproError)
        assert issubclass(InjectedEstimationError, InjectedFault)
        assert issubclass(InjectedEstimationError, EstimationError)
        assert issubclass(InjectedDriverError, DriverError)

    def test_config_errors_still_catchable_as_valueerror(self, stats_db):
        console = PilotScopeConsole(SimulatedPostgreSQL(stats_db))
        with pytest.raises(ValueError):
            console.enable_background_updates(0)

    def test_driver_use_before_init_is_driver_error(self, stats_db):
        from repro.core.errors import DriverError
        from repro.pilotscope import CardinalityInjectionDriver

        driver = CardinalityInjectionDriver(HistogramEstimator(stats_db))
        q = Query(("users",))
        with pytest.raises(DriverError):
            driver.algo(q)


class TestCircuitBreaker:
    def _breaker(self, **kw):
        from repro.faults import CircuitBreaker, VirtualClock

        clock = VirtualClock()
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("cooldown_ms", 100.0)
        return CircuitBreaker(clock=clock, **kw), clock

    def test_trips_after_consecutive_failures(self):
        from repro.faults import BreakerState

        breaker, _ = self._breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        from repro.faults import BreakerState

        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_cooldown_then_close(self):
        from repro.faults import BreakerState

        breaker, clock = self._breaker(half_open_successes=2)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(100.0)
        assert breaker.allow()  # cooldown elapsed -> half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        from repro.faults import BreakerState

        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(100.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2


class TestFaultPlanDeterminism:
    def _plan(self, seed):
        from repro.faults import FaultPlan, FaultSpec

        return FaultPlan(
            (
                FaultSpec(kind="nan", rate=0.2, target="estimator"),
                FaultSpec(kind="exception", rate=0.1),
            ),
            seed=seed,
        )

    def test_same_seed_same_decisions(self):
        a = self._plan(seed=4)
        b = self._plan(seed=4)
        decisions_a = [a.decide("estimator", i) for i in range(200)]
        decisions_b = [b.decide("estimator", i) for i in range(200)]
        assert decisions_a == decisions_b
        assert any(d is not None for d in decisions_a)

    def test_different_seeds_differ(self):
        a = [self._plan(seed=1).decide("estimator", i) for i in range(200)]
        b = [self._plan(seed=2).decide("estimator", i) for i in range(200)]
        assert a != b

    def test_call_window_respected(self):
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan(
            (FaultSpec(kind="exception", rate=1.0, start_call=5, end_call=8),),
            seed=0,
        )
        fired = [i for i in range(20) if plan.decide("x", i) is not None]
        assert fired == [5, 6, 7]

    def test_rate_zero_and_one(self):
        from repro.faults import FaultPlan, FaultSpec

        never = FaultPlan((FaultSpec(kind="nan", rate=0.0),), seed=0)
        always = FaultPlan((FaultSpec(kind="nan", rate=1.0),), seed=0)
        assert all(never.decide("t", i) is None for i in range(50))
        assert all(always.decide("t", i) is not None for i in range(50))

    def test_garbage_value_reproducible(self):
        a = self._plan(seed=9)
        b = self._plan(seed=9)
        assert a.garbage_value("estimator", 3, 100.0) == b.garbage_value(
            "estimator", 3, 100.0
        )


class TestFallbackEstimator:
    def _resilient(self, stats_db, primary, **kw):
        from repro.faults import FallbackEstimator

        return FallbackEstimator(primary, HistogramEstimator(stats_db), **kw)

    def test_primary_exception_serves_fallback(self, stats_db):
        class Crashing:
            def estimate(self, query):
                raise RuntimeError("model exploded")

        est = self._resilient(stats_db, Crashing())
        q = WorkloadGenerator(stats_db, seed=181).random_query(
            2, 3, require_predicate=True
        )
        value = est.estimate(q)
        assert np.isfinite(value) and value >= 0.0
        assert est.fallback_served == 1
        assert est.primary_errors == 1

    def test_nonfinite_output_serves_fallback(self, stats_db):
        class NaNny:
            def estimate(self, query):
                return float("nan")

        est = self._resilient(stats_db, NaNny())
        q = WorkloadGenerator(stats_db, seed=182).random_query(
            2, 3, require_predicate=True
        )
        assert np.isfinite(est.estimate(q))
        assert est.nonfinite_outputs == 1

    def test_breaker_opens_and_denies_primary(self, stats_db):
        from repro.faults import BreakerState, CircuitBreaker

        class Crashing:
            calls = 0

            def estimate(self, query):
                Crashing.calls += 1
                raise RuntimeError("down")

        breaker = CircuitBreaker(failure_threshold=2, cooldown_ms=1e9)
        est = self._resilient(stats_db, Crashing(), breaker=breaker)
        q = WorkloadGenerator(stats_db, seed=183).random_query(
            2, 3, require_predicate=True
        )
        for _ in range(5):
            assert np.isfinite(est.estimate(q))
        assert breaker.state is BreakerState.OPEN
        assert Crashing.calls == 2  # breaker stopped further primary calls
        assert est.breaker_denied == 3

    def test_estimates_version_tracks_breaker_epoch(self, stats_db):
        from repro.faults import CircuitBreaker

        class Crashing:
            def estimate(self, query):
                raise RuntimeError("down")

        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=1e9)
        est = self._resilient(stats_db, Crashing(), breaker=breaker)
        before = est.estimates_version
        q = WorkloadGenerator(stats_db, seed=184).random_query(
            2, 3, require_predicate=True
        )
        est.estimate(q)  # trips the breaker
        assert est.estimates_version != before


class TestConsoleResilience:
    class FlakyDriver:
        """Raises DriverError on the first ``fail_first`` calls."""

        injection_type = "query_optimizer"
        name = "flaky"

        def __init__(self, fail_first=0, latency_ms=None):
            self.fail_first = fail_first
            self.latency_ms = latency_ms
            self.calls = 0

        def init(self, interactor, config=None):
            self.interactor = interactor

        def algo(self, query):
            from repro.core.errors import DriverError

            self.calls += 1
            if self.calls <= self.fail_first:
                raise DriverError("transient")
            outcome = self.interactor.execute_default(query)
            if self.latency_ms is not None:
                from dataclasses import replace

                outcome = replace(outcome, latency_ms=self.latency_ms)
            return outcome

        def background_update(self):
            pass

    def _console(self, stats_db, driver, **kw):
        console = PilotScopeConsole(SimulatedPostgreSQL(stats_db), **kw)
        console.register_driver(driver)
        console.start_driver("flaky")
        return console

    def test_transient_failure_is_retried(self, stats_db):
        from repro.faults import RetryPolicy

        driver = self.FlakyDriver(fail_first=1)
        console = self._console(
            stats_db, driver, retry_policy=RetryPolicy(max_attempts=3)
        )
        console.execute(Query(("users",)))
        assert console.query_log[-1].served_by == "flaky"
        assert console.retries == 1
        assert console.native_fallbacks == 0

    def test_exhausted_retries_degrade_to_native(self, stats_db):
        driver = self.FlakyDriver(fail_first=100)
        console = self._console(stats_db, driver)
        outcome = console.execute(Query(("users",)))
        assert outcome.cardinality >= 0
        assert console.query_log[-1].served_by == "native"
        assert console.native_fallbacks == 1
        assert console.driver_errors == 2  # default policy: 2 attempts

    def test_fallback_disabled_reraises(self, stats_db):
        from repro.core.errors import DriverError

        driver = self.FlakyDriver(fail_first=100)
        console = self._console(stats_db, driver, fallback_to_native=False)
        with pytest.raises(DriverError):
            console.execute(Query(("users",)))

    def test_latency_budget_times_out_driver(self, stats_db):
        driver = self.FlakyDriver(latency_ms=500.0)
        console = self._console(stats_db, driver, call_timeout_ms=100.0)
        console.execute(Query(("users",)))
        assert console.query_log[-1].served_by == "native"
        assert console.timeouts == 1

    def test_backoff_is_deterministic(self):
        from repro.faults import RetryPolicy

        policy = RetryPolicy(max_attempts=4, base_backoff_ms=5.0, multiplier=2.0)
        assert [policy.backoff_ms(i) for i in range(3)] == [5.0, 10.0, 20.0]


class TestGuardChainContainment:
    class CrashingGuard:
        def __call__(self, query, candidate, native_plan):
            raise RuntimeError("guard bug")

        def record(self, query, candidate, latency_ms, native_latency_ms):
            raise RuntimeError("feedback bug")

    class SwapGuard:
        def __init__(self, optimizer):
            self.optimizer = optimizer

        def __call__(self, query, candidate, native_plan):
            return CandidatePlan(plan=native_plan, source="swap")

    def test_crashing_guard_abstains(self, stats_db, stats_optimizer):
        from repro.regression import GuardChain

        chain = GuardChain(self.CrashingGuard(), self.SwapGuard(stats_optimizer))
        q = WorkloadGenerator(stats_db, seed=185).random_query(
            2, 3, require_predicate=True
        )
        native_plan = stats_optimizer.plan(q)
        candidate = CandidatePlan(plan=native_plan, source="learned")
        out = chain(q, candidate, native_plan)
        # First guard crashed (contained); second still ran and swapped.
        assert out.source == "swap"
        assert chain.errors == 1
        assert chain.last_errors[0][0] == "CrashingGuard"

    def test_feedback_containment(self, stats_db, stats_optimizer):
        from repro.regression import GuardChain

        chain = GuardChain(self.CrashingGuard())
        q = WorkloadGenerator(stats_db, seed=186).random_query(
            2, 3, require_predicate=True
        )
        plan = stats_optimizer.plan(q)
        chain.record(q, CandidatePlan(plan=plan, source="x"), 1.0, 1.0)
        assert chain.errors == 1

    def test_loop_survives_crashing_learned_and_guard(
        self, stats_db, stats_optimizer
    ):
        class CrashingLearned:
            def __init__(self):
                self.calls = 0

            def choose_plan(self, query):
                self.calls += 1
                if self.calls % 3 == 0:
                    raise RuntimeError("inference crashed")
                plan = stats_optimizer.plan(query)
                return CandidatePlan(plan=plan, source="learned")

            def record_feedback(self, query, candidate, latency_ms):
                pass

        sim = ExecutionSimulator(stats_db)
        workload = WorkloadGenerator(stats_db, seed=187).workload(
            12, 2, 3, require_predicate=True
        )
        loop = OptimizationLoop(
            CrashingLearned(), sim, stats_optimizer,
            guard=self.CrashingGuard(),
        )
        results = loop.run(workload)
        assert len(results) == 12
        assert loop.fallbacks == 4  # every 3rd choose_plan crashed
        assert loop.guard_errors == 24  # 12 decision + 12 feedback crashes
        assert sum(r.source == "native:fallback" for r in results) == 4

    def test_degrade_disabled_propagates(self, stats_db, stats_optimizer):
        class Crashing:
            def choose_plan(self, query):
                raise RuntimeError("boom")

            def record_feedback(self, *a):
                pass

        sim = ExecutionSimulator(stats_db)
        loop = OptimizationLoop(
            Crashing(), sim, stats_optimizer, degrade_on_error=False
        )
        q = WorkloadGenerator(stats_db, seed=188).random_query(
            2, 3, require_predicate=True
        )
        with pytest.raises(RuntimeError):
            loop.run_query(q)


class TestServeChaos:
    def test_chaos_workload_completes_every_query(self):
        from repro.serve import chaos_scenario

        scenario = chaos_scenario(seed=0, n_queries=80, scale=0.25)
        report = scenario.run()
        assert report.n_served == report.n_requests
        assert report.rejected == {}
        assert scenario.injector.total_injected() > 0

    def test_chaos_never_serves_a_broken_plan(self):
        from repro.serve import chaos_scenario

        scenario = chaos_scenario(seed=2, n_queries=60, scale=0.25)
        report = scenario.run()
        for outcome in report.outcomes:
            # Every served query carries a finite latency, a plan source
            # from the ladder, and a real cardinality -- injected NaN /
            # garbage estimates never surface to the client.
            assert np.isfinite(outcome.latency_ms)
            assert outcome.latency_ms >= 0.0
            assert outcome.cardinality >= 0
            assert outcome.plan_source != ""

    def test_chaos_telemetry_deterministic_across_runs(self):
        from repro.serve import chaos_scenario

        exports = []
        for _ in range(2):
            scenario = chaos_scenario(seed=5, n_queries=60, scale=0.25)
            scenario.run()
            exports.append(scenario.deployment.telemetry.to_json())
        assert exports[0] == exports[1]

    def test_breaker_trips_trigger_rollback(self):
        from repro.faults import FaultPlan, FaultSpec
        from repro.serve import chaos_scenario

        # The learned optimizer crashes on every call: the deployment
        # breaker must trip and, with the trigger armed, roll the model
        # back -- after which the run still completes natively.
        plan = FaultPlan(
            (FaultSpec(kind="exception", rate=1.0, target="learned"),),
            seed=0,
        )
        scenario = chaos_scenario(
            seed=4,
            n_queries=60,
            scale=0.25,
            plan=plan,
            canary_fraction=1.0,
            rollback_after_trips=1,
        )
        report = scenario.run()
        assert report.n_served == report.n_requests
        assert scenario.deployment.stage.value == "rolled_back"
        events = scenario.deployment.telemetry.events("stage_transition")
        assert any("breaker_trips" in e["reason"] for e in events)

    def test_fault_counters_on_bus_match_injector(self):
        from repro.serve import chaos_scenario

        scenario = chaos_scenario(seed=6, n_queries=60, scale=0.25)
        scenario.run()
        snap = scenario.deployment.telemetry.snapshot()
        total_on_bus = sum(
            v
            for k, v in snap["counters"].items()
            if k.startswith("faults.injected.")
        )
        assert total_on_bus == scenario.injector.total_injected()
