"""Tests for columnar storage, catalog and synthetic data generators."""

import numpy as np
import pytest

from repro.storage import Column, Database, JoinEdge, Table
from repro.storage.generate import (
    correlated_column,
    fk_column,
    mixture_column,
    uniform_int_column,
    zipf_column,
)


class TestColumn:
    def test_basic(self):
        c = Column("x", np.array([1, 2, 3]))
        assert c.n_distinct == 3
        assert c.min == 1.0 and c.max == 3.0

    def test_key_uniqueness_enforced(self):
        with pytest.raises(ValueError):
            Column("id", np.array([1, 1, 2]), is_key=True)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Column("x", np.zeros((2, 2)))

    def test_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            Column("x", np.array(["a", "b"]))


class TestTable:
    def _table(self):
        return Table(
            "t",
            [
                Column("id", np.arange(5), is_key=True),
                Column("v", np.array([1, 1, 2, 2, 3])),
            ],
        )

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a", np.zeros(3)), Column("b", np.zeros(2))])

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a", np.zeros(2)), Column("a", np.zeros(2))])

    def test_unknown_column_message(self):
        t = self._table()
        with pytest.raises(KeyError, match="available"):
            t.column("nope")

    def test_matrix_shape(self):
        t = self._table()
        assert t.matrix().shape == (5, 2)
        assert t.matrix(["v"]).shape == (5, 1)

    def test_append_rows(self):
        t = self._table()
        t.append_rows({"id": np.array([5, 6]), "v": np.array([9, 9])})
        assert t.n_rows == 7
        assert t.values("v")[-1] == 9

    def test_append_missing_column_rejected(self):
        t = self._table()
        with pytest.raises(ValueError, match="missing"):
            t.append_rows({"id": np.array([5])})

    def test_append_key_collision_rejected(self):
        t = self._table()
        with pytest.raises(ValueError, match="uniqueness"):
            t.append_rows({"id": np.array([0]), "v": np.array([1])})

    def test_sample_rows(self):
        t = self._table()
        s = t.sample_rows(3, np.random.default_rng(0))
        assert s.shape == (3, 2)


class TestDatabase:
    def _db(self):
        a = Table("a", [Column("id", np.arange(3), is_key=True)])
        b = Table("b", [Column("a_id", np.array([0, 0, 1, 2]))])
        return Database("d", [a, b], [JoinEdge("b", "a_id", "a", "id")])

    def test_edges_lookup(self):
        db = self._db()
        assert db.neighbors("a") == {"b"}
        assert len(db.edges_between("a", "b")) == 1
        assert db.edges_between("a", "a") == []

    def test_validates_edges(self):
        a = Table("a", [Column("id", np.arange(3), is_key=True)])
        with pytest.raises(ValueError, match="unknown table"):
            Database("d", [a], [JoinEdge("a", "id", "zz", "id")])
        with pytest.raises(ValueError, match="unknown column"):
            Database("d", [a], [JoinEdge("a", "id", "a", "zz")])

    def test_duplicate_table_rejected(self):
        a = Table("a", [Column("id", np.arange(3), is_key=True)])
        a2 = Table("a", [Column("id", np.arange(3), is_key=True)])
        with pytest.raises(ValueError):
            Database("d", [a, a2], [])

    def test_edge_normalization(self):
        db = self._db()
        e = db.joins[0]
        assert e.normalized() == e

    def test_edge_other_and_column_of(self):
        e = JoinEdge("b", "a_id", "a", "id")
        assert e.other("b") == "a"
        assert e.column_of("a") == "id"
        with pytest.raises(ValueError):
            e.other("c")

    def test_total_rows(self):
        assert self._db().total_rows() == 7


class TestGenerators:
    def test_zipf_skew_concentrates(self):
        rng = np.random.default_rng(0)
        flat = zipf_column(5000, 20, 0.0, rng)
        skewed = zipf_column(5000, 20, 2.0, rng)
        top_flat = (flat == 0).mean()
        top_skewed = (skewed == 0).mean()
        assert top_skewed > top_flat * 3

    def test_zipf_domain_respected(self):
        vals = zipf_column(1000, 7, 1.0, np.random.default_rng(1))
        assert vals.min() >= 0 and vals.max() < 7

    def test_correlated_column_strength(self):
        rng = np.random.default_rng(2)
        driver = rng.integers(0, 10, 5000)
        strong = correlated_column(driver, 10, 1.0, rng)
        weak = correlated_column(driver, 10, 0.0, rng)
        # Functional dependency: same driver value -> same output.
        for v in range(10):
            outs = set(strong[driver == v].tolist())
            assert len(outs) == 1
        # Independence: many outputs per driver value.
        assert len(set(weak[driver == 0].tolist())) > 3

    def test_correlation_bounds_checked(self):
        with pytest.raises(ValueError):
            correlated_column(np.zeros(5, int), 3, 1.5, np.random.default_rng(0))

    def test_fk_column_references_parents(self):
        rng = np.random.default_rng(3)
        parents = np.arange(100, 200)
        fks = fk_column(1000, parents, 1.5, rng)
        assert set(fks.tolist()) <= set(parents.tolist())

    def test_fk_skew(self):
        rng = np.random.default_rng(4)
        fks = fk_column(5000, np.arange(50), 1.8, rng)
        counts = np.bincount(fks, minlength=50)
        assert counts.max() > 5 * counts.mean()

    def test_mixture_column_modes(self):
        rng = np.random.default_rng(5)
        vals = mixture_column(4000, [(0.5, 0.0, 0.5), (0.5, 100.0, 0.5)], rng)
        near_zero = (np.abs(vals) < 5).mean()
        assert 0.3 < near_zero < 0.7

    def test_uniform_int_bounds(self):
        vals = uniform_int_column(1000, 5, 9, np.random.default_rng(6))
        assert vals.min() >= 5 and vals.max() <= 9


class TestDatasets:
    @pytest.mark.parametrize("fixture", ["stats_db", "imdb_db", "tpch_db"])
    def test_schema_integrity(self, fixture, request):
        db = request.getfixturevalue(fixture)
        assert len(db.tables) >= 5
        for e in db.joins:
            left = db.table(e.left_table).values(e.left_column)
            right = db.table(e.right_table).values(e.right_column)
            # FK side values must exist on the key side.
            if db.table(e.right_table).column(e.right_column).is_key:
                assert set(np.unique(left)) <= set(np.unique(right))

    def test_determinism(self):
        from repro.storage import make_stats_lite

        a = make_stats_lite(0.2, seed=5)
        b = make_stats_lite(0.2, seed=5)
        assert np.array_equal(
            a.table("posts").values("score"), b.table("posts").values("score")
        )

    def test_scale_changes_size(self):
        from repro.storage import make_imdb_lite

        small = make_imdb_lite(0.2)
        big = make_imdb_lite(0.5)
        assert big.total_rows() > small.total_rows()

    def test_stats_has_correlations(self, stats_db):
        # The generator builds dependencies through a *random* value map,
        # so measure mutual information, not (monotone) Pearson correlation.
        from repro.ml.chowliu import mutual_information

        posts = stats_db.table("posts")
        dependent = mutual_information(
            posts.values("score").astype(int), posts.values("view_count").astype(int)
        )
        rng = np.random.default_rng(0)
        shuffled = mutual_information(
            posts.values("score").astype(int),
            rng.permutation(posts.values("view_count")).astype(int),
        )
        assert dependent > 3 * shuffled
