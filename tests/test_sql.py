"""Tests for the query IR, the parser and the workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import (
    ColumnRef,
    Join,
    Op,
    Predicate,
    Query,
    SQLSyntaxError,
    WorkloadGenerator,
    parse_query,
)


def ref(t="t", c="x"):
    return ColumnRef(t, c)


class TestPredicate:
    @pytest.mark.parametrize(
        "op,value,inputs,expected",
        [
            (Op.EQ, 2.0, [1, 2, 3], [False, True, False]),
            (Op.LT, 2.0, [1, 2, 3], [True, False, False]),
            (Op.LE, 2.0, [1, 2, 3], [True, True, False]),
            (Op.GT, 2.0, [1, 2, 3], [False, False, True]),
            (Op.GE, 2.0, [1, 2, 3], [False, True, True]),
            (Op.BETWEEN, (1.5, 3.0), [1, 2, 3], [False, True, True]),
            (Op.IN, frozenset([1.0, 3.0]), [1, 2, 3], [True, False, True]),
        ],
    )
    def test_evaluate(self, op, value, inputs, expected):
        pred = Predicate(ref(), op, value)
        assert list(pred.evaluate(np.array(inputs, dtype=float))) == expected

    def test_between_validates_order(self):
        with pytest.raises(ValueError):
            Predicate(ref(), Op.BETWEEN, (3.0, 1.0))

    def test_in_rejects_empty(self):
        with pytest.raises(ValueError):
            Predicate(ref(), Op.IN, frozenset())

    def test_scalar_required(self):
        with pytest.raises(ValueError):
            Predicate(ref(), Op.LT, (1.0, 2.0))

    def test_to_range(self):
        assert Predicate(ref(), Op.EQ, 5.0).to_range() == (5.0, 5.0)
        lo, hi = Predicate(ref(), Op.LE, 5.0).to_range()
        assert lo == -np.inf and hi == 5.0

    @given(st.floats(-100, 100), st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_range_consistent_with_evaluate(self, threshold, values):
        pred = Predicate(ref(), Op.GE, threshold)
        arr = np.array(values)
        lo, hi = pred.to_range()
        mask = pred.evaluate(arr)
        in_range = (arr >= lo) & (arr <= hi)
        assert np.array_equal(mask, in_range)

    @pytest.mark.parametrize(
        "op,value,expected",
        [
            (Op.EQ, 5.0, (5.0, 5.0, True, True)),
            (Op.LT, 5.0, (-np.inf, 5.0, True, False)),
            (Op.LE, 5.0, (-np.inf, 5.0, True, True)),
            (Op.GT, 5.0, (5.0, np.inf, False, True)),
            (Op.GE, 5.0, (5.0, np.inf, True, True)),
            (Op.BETWEEN, (1.0, 3.0), (1.0, 3.0, True, True)),
            (Op.IN, frozenset([4.0, 1.0, 9.0]), (1.0, 9.0, True, True)),
        ],
    )
    def test_to_bounds(self, op, value, expected):
        assert Predicate(ref(), op, value).to_bounds() == expected

    def test_to_bounds_exact_at_large_magnitude(self):
        # The motivating case for replacing to_range's epsilon shift: at
        # 2e9 the 1e-9 epsilon vanishes in float64, so the hull cannot
        # distinguish > v from >= v -- the bounds flags still can.
        v = 2_000_000_000.0
        assert v + 1e-9 == v  # epsilon really is absorbed at this scale
        lo, hi, lo_inc, hi_inc = Predicate(ref(), Op.GT, v).to_bounds()
        assert (lo, lo_inc) == (v, False)
        ge = Predicate(ref(), Op.GE, v).to_bounds()
        assert (ge[0], ge[2]) == (v, True)

    @given(
        st.sampled_from([Op.LT, Op.LE, Op.GT, Op.GE, Op.EQ]),
        st.floats(-100, 100),
        st.lists(st.floats(-100, 100), min_size=1, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_consistent_with_evaluate(self, op, threshold, values):
        pred = Predicate(ref(), op, threshold)
        arr = np.array(values)
        lo, hi, lo_inc, hi_inc = pred.to_bounds()
        above = (arr > lo) | ((arr == lo) & lo_inc)
        below = (arr < hi) | ((arr == hi) & hi_inc)
        assert np.array_equal(pred.evaluate(arr), above & below)


class TestQuery:
    def _join_query(self):
        return Query(
            ("a", "b"),
            (Join(ColumnRef("a", "x"), ColumnRef("b", "y")),),
            (Predicate(ColumnRef("a", "z"), Op.GT, 1.0),),
        )

    def test_duplicate_tables_rejected(self):
        with pytest.raises(ValueError):
            Query(("a", "a"))

    def test_join_outside_from_rejected(self):
        with pytest.raises(ValueError):
            Query(("a",), (Join(ColumnRef("a", "x"), ColumnRef("b", "y")),))

    def test_self_join_rejected(self):
        with pytest.raises(ValueError):
            Query(("a",), (Join(ColumnRef("a", "x"), ColumnRef("a", "y")),))

    def test_predicate_outside_from_rejected(self):
        with pytest.raises(ValueError):
            Query(("a",), (), (Predicate(ColumnRef("b", "z"), Op.GT, 1.0),))

    def test_canonicalization_makes_equal(self):
        q1 = Query(("b", "a"), (Join(ColumnRef("b", "y"), ColumnRef("a", "x")),))
        q2 = Query(("a", "b"), (Join(ColumnRef("a", "x"), ColumnRef("b", "y")),))
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_subquery_keeps_internal_parts(self):
        q = self._join_query()
        sub = q.subquery(["a"])
        assert sub.tables == ("a",)
        assert sub.joins == ()
        assert len(sub.predicates) == 1

    def test_subquery_unknown_table(self):
        with pytest.raises(ValueError):
            self._join_query().subquery(["zz"])

    def test_connectivity(self):
        q = self._join_query()
        assert q.is_connected()
        disconnected = Query(("a", "b"))
        assert not disconnected.is_connected()

    def test_to_sql_roundtrip(self):
        q = self._join_query()
        assert parse_query(q.to_sql()) == q

    def test_predicates_on(self):
        q = self._join_query()
        assert len(q.predicates_on("a")) == 1
        assert q.predicates_on("b") == ()


class TestParser:
    def test_minimal(self):
        q = parse_query("SELECT COUNT(*) FROM t")
        assert q.tables == ("t",)

    def test_case_insensitive_keywords(self):
        q = parse_query("select count(*) from t where t.x > 5")
        assert len(q.predicates) == 1

    def test_all_operators(self):
        sql = (
            "SELECT COUNT(*) FROM a, b WHERE a.x = b.y AND a.u = 1 AND "
            "a.v < 2 AND a.w <= 3 AND a.p > 4 AND a.q >= 5 AND "
            "a.r BETWEEN 1 AND 9 AND a.s IN (1, 2, 3)"
        )
        q = parse_query(sql)
        assert len(q.joins) == 1
        assert len(q.predicates) == 7
        ops = {p.op for p in q.predicates}
        assert ops == {Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE, Op.BETWEEN, Op.IN}

    def test_negative_and_float_constants(self):
        q = parse_query("SELECT COUNT(*) FROM t WHERE t.x >= -2.5")
        assert q.predicates[0].value == -2.5

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT * FROM t",
            "SELECT COUNT(*) FROM",
            "SELECT COUNT(*) FROM t WHERE",
            "SELECT COUNT(*) FROM t WHERE x > 1",  # unqualified column
            "SELECT COUNT(*) FROM t WHERE t.x BETWEEN 1",
            "SELECT COUNT(*) FROM t WHERE t.x IN ()",
            "SELECT COUNT(*) FROM t WHERE t.x > 1 extra",
            "SELECT COUNT(*) FROM t, t",
            "SELECT COUNT(*) FROM t WHERE t.x ! 1",
        ],
    )
    def test_rejects_bad_sql(self, bad):
        with pytest.raises(SQLSyntaxError):
            parse_query(bad)

    def test_error_mentions_position(self):
        with pytest.raises(SQLSyntaxError, match="position"):
            parse_query("SELECT COUNT(*) FROM t WHERE t.x # 1")


class TestWorkloadGenerator:
    def test_deterministic(self, stats_db):
        a = WorkloadGenerator(stats_db, seed=9).workload(10)
        b = WorkloadGenerator(stats_db, seed=9).workload(10)
        assert a == b

    def test_queries_connected(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=1)
        for q in gen.workload(30, 2, 5):
            assert q.is_connected()

    def test_require_predicate(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=2)
        for q in gen.workload(30, 1, 3, require_predicate=True):
            assert q.predicates

    def test_table_count_bounds(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=3)
        for q in gen.workload(30, 2, 3):
            assert 2 <= q.n_tables <= 3

    def test_single_table_workload(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=4)
        qs = gen.single_table_workload("posts", 20)
        assert all(q.tables == ("posts",) for q in qs)
        assert all(q.predicates for q in qs)

    def test_join_template_workload_fixed_tables(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=5)
        qs = gen.join_template_workload(["posts", "users"], 10)
        assert all(q.tables == ("posts", "users") for q in qs)

    def test_join_template_rejects_disconnected(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=6)
        with pytest.raises(ValueError):
            gen.join_template_workload(["votes", "badges"], 5)

    def test_predicates_never_on_keys_or_join_columns(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=7)
        join_cols = set()
        for e in stats_db.joins:
            join_cols.add((e.left_table, e.left_column))
            join_cols.add((e.right_table, e.right_column))
        for q in gen.workload(40, 1, 4, require_predicate=True):
            for p in q.predicates:
                key = (p.column.table, p.column.column)
                assert key not in join_cols
                assert not stats_db.table(p.column.table).column(p.column.column).is_key

    def test_invalid_bounds(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=8)
        with pytest.raises(ValueError):
            gen.random_query(3, 2)


class TestDisconnectedSchemas:
    """Regression: the subgraph sampler used to assume one connected
    join graph and died after 50 futile retries on generated schemas
    with multiple components."""

    @pytest.fixture(scope="class")
    def disconnected_db(self):
        from repro.storage import SchemaGenConfig, generate_database

        cfg = SchemaGenConfig(
            n_tables=(6, 6), rows=(80, 150), attr_cols=(1, 2), n_components=2
        )
        db = generate_database(11, cfg)
        from repro.storage import topology_summary

        assert len(topology_summary(db)["components"]) == 2
        return db

    def _component_of(self, db, table):
        seen, stack = {table}, [table]
        while stack:
            t = stack.pop()
            for nb in db.neighbors(t):
                if nb not in seen:
                    seen.add(nb)
                    stack.append(nb)
        return frozenset(seen)

    def test_workload_on_disconnected_schema(self, disconnected_db):
        gen = WorkloadGenerator(disconnected_db, seed=0)
        cap = gen.max_component_size
        assert cap < len(disconnected_db.table_names)
        for q in gen.workload(40, 2, cap):
            assert q.is_connected()
            # every query lives inside exactly one component
            comp = self._component_of(disconnected_db, q.tables[0])
            assert set(q.tables) <= comp

    def test_oversized_request_names_components(self, disconnected_db):
        gen = WorkloadGenerator(disconnected_db, seed=0)
        too_many = gen.max_component_size + 1
        with pytest.raises(ValueError, match="component"):
            gen.random_query(too_many, too_many)

    def test_size_cap_respected_per_component(self, disconnected_db):
        """min_tables above the smallest component's size must still
        succeed by sampling only from components that are big enough."""
        sizes = sorted(len(c) for c in gen_components(disconnected_db))
        gen = WorkloadGenerator(disconnected_db, seed=2)
        if sizes[0] < sizes[-1]:
            n = sizes[0] + 1
            for q in gen.workload(15, n, sizes[-1]):
                comp = self._component_of(disconnected_db, q.tables[0])
                assert len(comp) >= n

    def test_connected_graph_sampling_unchanged(self, stats_db):
        """On a connected graph the component-aware path must not perturb
        the RNG draw sequence -- seeded workloads are a repo-wide
        determinism contract."""
        gen = WorkloadGenerator(stats_db, seed=13)
        assert len(gen._components) == 1
        assert gen.max_component_size == len(stats_db.table_names)
        qs = gen.workload(10, 2, 4)
        assert all(q.is_connected() for q in qs)


def gen_components(db):
    seen, comps = set(), []
    for start in db.table_names:
        if start in seen:
            continue
        comp, stack = {start}, [start]
        seen.add(start)
        while stack:
            t = stack.pop()
            for nb in db.neighbors(t):
                if nb not in seen:
                    seen.add(nb)
                    comp.add(nb)
                    stack.append(nb)
        comps.append(comp)
    return comps
