"""Unit tests for the numpy NN framework, including gradient checks."""

import numpy as np
import pytest

from repro.ml.nn import (
    MLP,
    Adam,
    Dense,
    Dropout,
    LayerNorm,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Tanh,
    binary_cross_entropy_loss,
    mae_loss,
    mse_loss,
)


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    g = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        hi = f()
        flat[i] = old - eps
        lo = f()
        flat[i] = old
        g[i] = (hi - lo) / (2 * eps)
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_backward_matches_numerical_gradient(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return float(((layer.forward(x) - target) ** 2).sum())

        layer.forward(x)
        grad_out = 2.0 * (layer.forward(x) - target)
        layer.backward(grad_out)
        num_dw = numerical_gradient(loss, layer.w)
        assert np.allclose(layer.dw, num_dw, atol=1e-4)
        num_db = numerical_gradient(loss, layer.b)
        assert np.allclose(layer.db, num_db, atol=1e-4)

    def test_input_gradient(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(2, 3))
        target = np.zeros((2, 2))

        def loss():
            return float(((layer.forward(x) - target) ** 2).sum())

        grad_out = 2.0 * (layer.forward(x) - target)
        grad_in = layer.backward(grad_out)
        num = numerical_gradient(loss, x)
        assert np.allclose(grad_in, num, atol=1e-4)


class TestActivations:
    @pytest.mark.parametrize("cls", [ReLU, Sigmoid, Tanh])
    def test_gradient(self, cls):
        rng = np.random.default_rng(2)
        layer = cls()
        x = rng.normal(size=(3, 4)) + 0.1  # avoid ReLU kink at 0
        target = rng.normal(size=(3, 4))

        def loss():
            return float(((layer.forward(x) - target) ** 2).sum())

        grad_out = 2.0 * (layer.forward(x) - target)
        grad_in = layer.backward(grad_out)
        num = numerical_gradient(loss, x)
        assert np.allclose(grad_in, num, atol=1e-4)

    def test_sigmoid_range(self):
        out = Sigmoid().forward(np.array([-1000.0, 0.0, 1000.0]))
        assert np.all(out >= 0.0) and np.all(out <= 1.0)
        assert out[1] == pytest.approx(0.5)

    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([-1.0, 2.0]))
        assert list(out) == [0.0, 2.0]


class TestDropout:
    def test_identity_at_inference(self):
        d = Dropout(0.5)
        x = np.ones((10, 10))
        assert np.array_equal(d.forward(x, training=False), x)

    def test_scales_at_training(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        out = d.forward(x, training=True)
        # Inverted dropout: surviving units scaled by 1/keep.
        assert set(np.unique(out)) <= {0.0, 2.0}
        assert abs(out.mean() - 1.0) < 0.05

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLayerNorm:
    def test_normalizes(self):
        ln = LayerNorm(8)
        x = np.random.default_rng(0).normal(3.0, 5.0, size=(4, 8))
        out = ln.forward(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gradient(self):
        rng = np.random.default_rng(3)
        ln = LayerNorm(5)
        x = rng.normal(size=(2, 5))
        target = rng.normal(size=(2, 5))

        def loss():
            return float(((ln.forward(x) - target) ** 2).sum())

        grad_out = 2.0 * (ln.forward(x) - target)
        grad_in = ln.backward(grad_out)
        num = numerical_gradient(loss, x)
        assert np.allclose(grad_in, num, atol=1e-4)


class TestOptimizers:
    def test_adam_reduces_quadratic(self):
        p = np.array([5.0, -3.0])
        opt = Adam(lr=0.1)
        for _ in range(200):
            opt.step([p], [2 * p])
        assert np.abs(p).max() < 0.1

    def test_sgd_momentum(self):
        p = np.array([5.0])
        opt = SGD(lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.step([p], [2 * p])
        assert abs(p[0]) < 0.1

    def test_adam_weight_decay_shrinks(self):
        p = np.array([1.0])
        opt = Adam(lr=0.01, weight_decay=1.0)
        for _ in range(100):
            opt.step([p], [np.zeros(1)])
        assert abs(p[0]) < 1.0


class TestLosses:
    def test_mse_zero_at_match(self):
        value, grad = mse_loss(np.ones(4), np.ones(4))
        assert value == 0.0
        assert np.all(grad == 0.0)

    def test_mae_gradient_sign(self):
        _, grad = mae_loss(np.array([2.0, -2.0]), np.zeros(2))
        assert grad[0] > 0 and grad[1] < 0

    def test_bce_bounds(self):
        value, _ = binary_cross_entropy_loss(np.array([0.9]), np.array([1.0]))
        assert 0.0 < value < 0.2
        value_bad, _ = binary_cross_entropy_loss(np.array([0.1]), np.array([1.0]))
        assert value_bad > value


class TestMLP:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 3))
        y = 2 * x[:, 0] - x[:, 1] + 0.5
        m = MLP(3, (32,), 1, seed=0)
        m.fit(x, y, epochs=80, lr=5e-3)
        mse = float(((m.predict(x) - y) ** 2).mean())
        assert mse < 0.05

    def test_single_sample_predict(self):
        m = MLP(3, (8,), 1, seed=0)
        m.fit(np.ones((20, 3)), np.ones(20), epochs=5)
        out = m.predict(np.ones(3))
        assert np.isscalar(out) or out.shape == ()

    def test_rejects_empty(self):
        m = MLP(3, (8,), 1)
        with pytest.raises(ValueError):
            m.fit(np.zeros((0, 3)), np.zeros(0))

    def test_rejects_mismatched_shapes(self):
        m = MLP(3, (8,), 1)
        with pytest.raises(ValueError):
            m.fit(np.zeros((5, 3)), np.zeros(4))

    def test_rejects_unknown_loss(self):
        m = MLP(2, (4,), 1)
        with pytest.raises(ValueError):
            m.fit(np.zeros((5, 2)), np.zeros(5), loss="huber")

    def test_early_stopping(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(200, 4))
        y = rng.normal(size=200)  # pure noise: val loss cannot improve long
        m = MLP(4, (32,), 1, seed=0)
        log = m.fit(x, y, epochs=500, val_fraction=0.3, patience=5)
        assert log.stopped_early
        assert log.epochs < 500

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 3))
        y = x[:, 0]
        a = MLP(3, (16,), 1, seed=42)
        a.fit(x, y, epochs=10)
        b = MLP(3, (16,), 1, seed=42)
        b.fit(x, y, epochs=10)
        assert np.allclose(a.predict(x), b.predict(x))

    def test_weights_roundtrip(self):
        m = MLP(3, (8,), 1, seed=0)
        x = np.random.default_rng(0).normal(size=(30, 3))
        m.fit(x, x[:, 0], epochs=5)
        weights = m.get_weights()
        before = m.predict(x)
        m2 = MLP(3, (8,), 1, seed=99)
        m2._x_mean, m2._x_std = m._x_mean, m._x_std
        m2.set_weights(weights)
        assert np.allclose(m2.predict(x), before)

    def test_set_weights_shape_mismatch(self):
        m = MLP(3, (8,), 1)
        with pytest.raises(ValueError):
            m.set_weights([np.zeros((2, 2))])

    def test_sample_weights_bias_fit(self):
        x = np.array([[0.0], [1.0]] * 50)
        y = np.array([0.0, 10.0] * 50)
        m = MLP(1, (8,), 1, seed=0)
        w = np.array([1.0, 0.0] * 50)  # only weight the x=0 samples
        m.fit(x, y, epochs=100, lr=1e-2, sample_weight=w)
        # Prediction at x=1 should NOT be pulled to 10 (weight 0).
        assert abs(m.predict(np.array([[0.0]]))[0]) < 1.5

    def test_sigmoid_output_in_unit_interval(self):
        m = MLP(2, (8,), 1, output_activation="sigmoid", seed=0)
        x = np.random.default_rng(0).normal(size=(20, 2)) * 100
        m.fit(x, np.ones(20) * 0.5, epochs=3)
        out = m.predict(x)
        assert np.all(out >= 0) and np.all(out <= 1)


class TestSequential:
    def test_collects_parameters(self):
        net = Sequential([Dense(3, 4), ReLU(), Dense(4, 2)])
        assert len(net.parameters()) == 4  # two dense layers x (w, b)
