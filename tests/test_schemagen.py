"""Seeded schema generator: determinism, topology coverage, validation.

The cross-schema transfer work (P10) stands on one invariant: a
generated database is a pure function of ``(seed, config)`` -- same
inputs give byte-identical data in *any* process, different seeds give
genuinely different schemas.  These tests pin that invariant, including
across two fresh interpreter processes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.errors import ConfigError
from repro.sql import WorkloadGenerator
from repro.sql.query import query_hash
from repro.storage import (
    TOPOLOGIES,
    SchemaGenConfig,
    database_fingerprint,
    generate_database,
    schema_family,
    topology_summary,
)

_SMALL = SchemaGenConfig(n_tables=(4, 6), rows=(80, 200), attr_cols=(1, 2))


def _workload_hashes(db, *, seed: int = 3, n: int = 12) -> list[str]:
    gen = WorkloadGenerator(db, seed=seed)
    cap = min(3, gen.max_component_size)
    return sorted(
        query_hash(q)
        for q in gen.workload(n, 1, cap, require_predicate=True)
    )


class TestDeterminism:
    def test_same_seed_same_process(self):
        a = generate_database(7, _SMALL)
        b = generate_database(7, _SMALL)
        assert database_fingerprint(a) == database_fingerprint(b)
        assert {t: a.tables[t].data_version for t in a.tables} == {
            t: b.tables[t].data_version for t in b.tables
        }
        assert _workload_hashes(a) == _workload_hashes(b)

    def test_same_seed_two_fresh_processes(self):
        """Fingerprint, data_version and workload hash set survive a
        process boundary -- no hidden global-RNG or hash-seed state."""
        script = (
            "import json\n"
            "from repro.storage import SchemaGenConfig, generate_database, "
            "database_fingerprint\n"
            "from repro.sql import WorkloadGenerator\n"
            "from repro.sql.query import query_hash\n"
            "cfg = SchemaGenConfig(n_tables=(4, 6), rows=(80, 200), "
            "attr_cols=(1, 2))\n"
            "db = generate_database(7, cfg)\n"
            "gen = WorkloadGenerator(db, seed=3)\n"
            "cap = min(3, gen.max_component_size)\n"
            "hashes = sorted(query_hash(q) for q in "
            "gen.workload(12, 1, cap, require_predicate=True))\n"
            "print(json.dumps({\n"
            "    'fingerprint': database_fingerprint(db),\n"
            "    'versions': {t: db.tables[t].data_version for t in "
            "sorted(db.tables)},\n"
            "    'hashes': hashes,\n"
            "}))\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"
        runs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            runs.append(json.loads(proc.stdout))
        assert runs[0] == runs[1]
        # and the child processes agree with this process
        here = generate_database(7, _SMALL)
        assert runs[0]["fingerprint"] == database_fingerprint(here)
        assert runs[0]["hashes"] == _workload_hashes(here)

    def test_different_seeds_distinct(self):
        fps = {database_fingerprint(generate_database(s, _SMALL)) for s in range(6)}
        assert len(fps) == 6


class TestTopologies:
    def _fixed(self, topology: str, n: int = 5) -> SchemaGenConfig:
        return SchemaGenConfig(
            n_tables=(n, n),
            rows=(80, 150),
            attr_cols=(1, 1),
            topology=topology,
            extra_edge_rate=0.0,
            many_to_many_rate=0.0,
        )

    def test_chain(self):
        db = generate_database(1, self._fixed("chain"))
        s = topology_summary(db)
        assert s["n_tables"] == 5
        assert s["n_edges"] == 4
        assert s["max_degree"] == 2
        assert s["components"] == [5]

    def test_star(self):
        db = generate_database(1, self._fixed("star"))
        s = topology_summary(db)
        assert s["n_edges"] == 4
        assert s["max_degree"] == 4

    def test_clique(self):
        db = generate_database(1, self._fixed("clique"))
        s = topology_summary(db)
        assert s["n_edges"] == 5 * 4 // 2
        assert s["max_degree"] == 4

    def test_random_is_connected_spanning(self):
        db = generate_database(2, self._fixed("random"))
        s = topology_summary(db)
        assert s["components"] == [5]
        assert s["n_edges"] >= 4

    def test_topology_coverage_across_seeds(self):
        """A family generated with ``topology='random'`` defaults still
        covers distinct shapes; explicit topologies give distinct
        fingerprints for the same seed."""
        fps = {
            t: database_fingerprint(generate_database(9, self._fixed(t)))
            for t in TOPOLOGIES
        }
        assert len(set(fps.values())) == len(TOPOLOGIES)

    def test_non_pk_fk_edges_present(self):
        cfg = SchemaGenConfig(
            n_tables=(4, 4),
            rows=(80, 150),
            many_to_many_rate=1.0,
        )
        db = generate_database(3, cfg)
        s = topology_summary(db)
        assert s["non_pk_fk_edges"] >= 1
        # the shared-domain columns really exist on both sides
        m2m = [
            e for e in db.joins
            if e.left_column.startswith("m2m") or e.right_column.startswith("m2m")
        ]
        assert m2m, "many-to-many join edges missing from the catalog"

    def test_multiple_components(self):
        cfg = SchemaGenConfig(
            n_tables=(6, 6), rows=(80, 150), n_components=2
        )
        db = generate_database(4, cfg)
        s = topology_summary(db)
        assert len(s["components"]) == 2
        assert sum(s["components"]) == 6


class TestFamilyAndValidation:
    def test_schema_family_names_and_distinctness(self):
        dbs = schema_family(4, seed=11, config=_SMALL)
        assert [db.name for db in dbs] == [f"gen{i:02d}" for i in range(4)]
        fps = {database_fingerprint(db) for db in dbs}
        assert len(fps) == 4

    def test_family_same_seed_identical(self):
        a = schema_family(3, seed=5, config=_SMALL)
        b = schema_family(3, seed=5, config=_SMALL)
        assert [database_fingerprint(x) for x in a] == [
            database_fingerprint(x) for x in b
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_tables": (0, 3)},
            {"n_tables": (5, 3)},
            {"rows": (0, 10)},
            {"topology": "ring"},
            {"n_components": 0},
            {"attr_cols": (0, 2)},
            {"extra_edge_rate": -0.1},
            {"many_to_many_rate": 1.5},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ConfigError):
            SchemaGenConfig(**kwargs)

    def test_fingerprint_sensitive_to_data(self):
        a = generate_database(7, _SMALL)
        b = generate_database(7, _SMALL)
        table = next(iter(b.tables.values()))
        col = next(
            table.column(c)
            for c in table.column_names
            if not table.column(c).is_key
        )
        col.values[0] += 1
        assert database_fingerprint(a) != database_fingerprint(b)
