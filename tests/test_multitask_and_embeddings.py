"""Tests for the MLMTF unified model and the Saturn plan autoencoder."""

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro.costmodel import PlanAutoencoder, PlanFeaturizer, UnifiedTransferableModel
from repro.engine import CardinalityExecutor
from repro.optimizer import HintSet
from repro.sql import WorkloadGenerator


@pytest.fixture(scope="module")
def featurizer(imdb_db, imdb_optimizer):
    return PlanFeaturizer(imdb_db, imdb_optimizer.estimator)


@pytest.fixture(scope="module")
def corpus(imdb_db, imdb_optimizer, imdb_simulator):
    """Plans + latencies + true cardinalities for multi-task training."""
    executor = CardinalityExecutor(imdb_db)
    gen = WorkloadGenerator(imdb_db, seed=140)
    plans, lats, cards = [], [], []
    for q in gen.workload(50, 2, 4, require_predicate=True):
        for arm in HintSet.bao_arms()[:3]:
            p = imdb_optimizer.plan(q, hints=arm)
            plans.append(p)
            lats.append(imdb_simulator.execute(p).latency_ms)
            cards.append(executor.cardinality(q))
    return plans, np.array(lats), np.array(cards)


class TestUnifiedTransferableModel:
    def test_pretrain_learns_both_tasks(self, featurizer, corpus):
        plans, lats, cards = corpus
        n = int(len(plans) * 0.75)
        model = UnifiedTransferableModel(featurizer, seed=0)
        losses = model.pretrain(plans[:n], lats[:n], cards[:n], epochs=40)
        assert losses[-1] < losses[0]
        lat_preds = [model.predict_latency(p) for p in plans[n:]]
        card_preds = [model.predict_cardinality(p) for p in plans[n:]]
        assert spearmanr(lat_preds, lats[n:]).statistic > 0.5
        assert spearmanr(card_preds, cards[n:]).statistic > 0.5

    def test_fine_tune_head_only_moves_task(self, featurizer, corpus):
        plans, lats, cards = corpus
        model = UnifiedTransferableModel(featurizer, seed=0)
        model.pretrain(plans[:60], lats[:60], cards[:60], epochs=20)
        trunk_before = [w.copy() for layer in model.net.conv_layers for w in layer.parameters()]
        # Fine-tune latency on a shifted target (e.g. a 3x slower machine).
        model.fine_tune("latency", plans[60:100], lats[60:100] * 3.0, epochs=20)
        trunk_after = [w for layer in model.net.conv_layers for w in layer.parameters()]
        for before, after in zip(trunk_before, trunk_after):
            assert np.array_equal(before, after), "trunk must stay frozen"

    def test_value_is_latency_head(self, featurizer, corpus):
        plans, lats, cards = corpus
        model = UnifiedTransferableModel(featurizer, seed=0)
        model.pretrain(plans[:40], lats[:40], cards[:40], epochs=10)
        v = model.value(plans[0])
        assert np.isfinite(v)

    def test_unknown_task(self, featurizer, corpus):
        plans, lats, cards = corpus
        model = UnifiedTransferableModel(featurizer, seed=0)
        model.pretrain(plans[:20], lats[:20], cards[:20], epochs=5)
        with pytest.raises(ValueError):
            model.fine_tune("quantum", plans[:5], lats[:5])

    def test_predict_before_train(self, featurizer):
        model = UnifiedTransferableModel(featurizer)
        with pytest.raises(RuntimeError):
            model.predict_latency(None)

    def test_embedding_shape(self, featurizer, corpus):
        plans, lats, cards = corpus
        model = UnifiedTransferableModel(featurizer, conv_channels=(16, 16), seed=0)
        model.pretrain(plans[:20], lats[:20], cards[:20], epochs=5)
        assert model.embed(plans[0]).shape == (16,)


class TestPlanAutoencoder:
    def test_training_reduces_reconstruction_error(self, featurizer, corpus):
        plans, _, _ = corpus
        ae = PlanAutoencoder(featurizer, seed=0)
        losses = ae.fit(plans, epochs=40)
        assert losses[-1] < losses[0] * 0.8

    def test_embeddings_cluster_by_join_count(self, featurizer, corpus, imdb_db,
                                              imdb_optimizer):
        # Saturn's claim: compressed vectors distinguish query types.
        gen = WorkloadGenerator(imdb_db, seed=141)
        small = [imdb_optimizer.plan(q) for q in gen.workload(15, 2, 2)]
        big = [imdb_optimizer.plan(q) for q in gen.workload(15, 4, 5)]
        ae = PlanAutoencoder(featurizer, seed=0)
        ae.fit(small + big, epochs=60)
        emb_small = ae.embed_batch(small)
        emb_big = ae.embed_batch(big)
        centroid_gap = np.linalg.norm(emb_small.mean(0) - emb_big.mean(0))
        within = 0.5 * (
            np.linalg.norm(emb_small - emb_small.mean(0), axis=1).mean()
            + np.linalg.norm(emb_big - emb_big.mean(0), axis=1).mean()
        )
        assert centroid_gap > within * 0.5

    def test_reconstruction_error_flags_unseen_shapes(
        self, featurizer, imdb_db, imdb_optimizer
    ):
        gen = WorkloadGenerator(imdb_db, seed=142)
        single = [imdb_optimizer.plan(q) for q in gen.workload(20, 1, 1)]
        ae = PlanAutoencoder(featurizer, seed=0)
        ae.fit(single, epochs=60)
        seen_err = np.mean([ae.reconstruction_error(p) for p in single])
        unseen = [imdb_optimizer.plan(q) for q in gen.workload(10, 4, 5)]
        unseen_err = np.mean([ae.reconstruction_error(p) for p in unseen])
        assert unseen_err > seen_err

    def test_embed_before_fit(self, featurizer):
        with pytest.raises(RuntimeError):
            PlanAutoencoder(featurizer).embed(None)

    def test_fit_rejects_empty(self, featurizer):
        with pytest.raises(ValueError):
            PlanAutoencoder(featurizer).fit([])
