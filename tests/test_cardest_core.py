"""Tests for estimator base utilities, binning and featurization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cardest.base import BaseCardinalityEstimator, q_error, q_error_summary
from repro.cardest.binning import ColumnBinner, DiscretizedTable, predicate_bins
from repro.cardest.featurize import FlatQueryFeaturizer, MSCNFeaturizer
from repro.cardest.joinutil import UnfilteredJoinSizes, uniform_join_estimate
from repro.sql import ColumnRef, Op, Predicate, Query, WorkloadGenerator


class TestQError:
    def test_symmetric(self):
        assert q_error(10, 100) == q_error(100, 10) == 10.0

    def test_floor_at_one(self):
        assert q_error(0, 0) == 1.0
        assert q_error(0.5, 0.1) == 1.0

    @given(st.floats(0, 1e6), st.floats(0, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_at_least_one(self, a, b):
        assert q_error(a, b) >= 1.0

    def test_summary_keys(self):
        s = q_error_summary(np.array([1.0, 10.0]), np.array([1.0, 1.0]))
        assert set(s) == {"p50", "p90", "p99", "max", "gmq"}
        assert s["max"] == 10.0

    def test_summary_rejects_mismatch(self):
        with pytest.raises(ValueError):
            q_error_summary(np.ones(2), np.ones(3))


class TestBaseEstimator:
    def test_clamps_to_upper_bound(self, stats_db):
        class Wild(BaseCardinalityEstimator):
            def _estimate(self, query):
                return 1e30

        q = Query(("users",))
        upper = stats_db.table("users").n_rows
        assert Wild(stats_db).estimate(q) == upper

    def test_clamps_negative_to_zero(self, stats_db):
        class Negative(BaseCardinalityEstimator):
            def _estimate(self, query):
                return -5.0

        assert Negative(stats_db).estimate(Query(("users",))) == 0.0

    def test_nonfinite_becomes_upper(self, stats_db):
        class Nan(BaseCardinalityEstimator):
            def _estimate(self, query):
                return float("nan")

        q = Query(("users",))
        assert Nan(stats_db).estimate(q) == stats_db.table("users").n_rows


class TestColumnBinner:
    def test_exact_for_small_domain(self):
        binner = ColumnBinner(np.array([1, 2, 5, 5, 5]), max_bins=32)
        assert binner.kind == "exact"
        assert binner.n_bins == 3
        assert list(binner.bin_of(np.array([1, 2, 5]))) == [0, 1, 2]

    def test_equidepth_for_large_domain(self):
        values = np.random.default_rng(0).normal(size=5000)
        binner = ColumnBinner(values, max_bins=16)
        assert binner.kind == "equidepth"
        codes = binner.bin_of(values)
        counts = np.bincount(codes, minlength=binner.n_bins)
        # Equi-depth: no bin should be wildly off the mean occupancy.
        assert counts.max() < counts.mean() * 3

    def test_eq_predicate_exact_domain(self):
        binner = ColumnBinner(np.array([1, 2, 5]), max_bins=32)
        bins, factor = binner.bins_for_predicate(
            Predicate(ColumnRef("t", "c"), Op.EQ, 2.0)
        )
        assert list(bins) == [1]
        assert factor == 1.0

    def test_eq_predicate_missing_value(self):
        binner = ColumnBinner(np.array([1, 2, 5]), max_bins=32)
        bins, _ = binner.bins_for_predicate(
            Predicate(ColumnRef("t", "c"), Op.EQ, 3.0)
        )
        assert bins.size == 0

    def test_range_predicate_covers(self):
        binner = ColumnBinner(np.array([1, 2, 3, 4, 5]), max_bins=32)
        bins, _ = binner.bins_for_predicate(
            Predicate(ColumnRef("t", "c"), Op.BETWEEN, (2.0, 4.0))
        )
        assert list(bins) == [1, 2, 3]

    def test_eq_correction_in_coarse_bins(self):
        values = np.arange(10_000)
        binner = ColumnBinner(values, max_bins=8)
        bins, factor = binner.bins_for_predicate(
            Predicate(ColumnRef("t", "c"), Op.EQ, 1234.0)
        )
        assert bins.size == 1
        assert 0.0 < factor < 0.01  # one value out of ~1250 in the bin

    @given(st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_bin_of_range_covers_value(self, v):
        values = np.random.default_rng(1).integers(0, 1000, 4000)
        binner = ColumnBinner(values, max_bins=20)
        pred = Predicate(ColumnRef("t", "c"), Op.BETWEEN, (float(v), float(v)))
        bins, _ = binner.bins_for_predicate(pred)
        assert int(binner.bin_of(np.array([v]))[0]) in set(bins.tolist())


class TestDiscretizedTable:
    def test_build_and_predicates(self, stats_db):
        disc = DiscretizedTable.build(stats_db.table("users"))
        assert disc.codes.shape == (
            stats_db.table("users").n_rows,
            len(disc.column_names),
        )
        allowed, corr = predicate_bins(
            disc, (Predicate(ColumnRef("users", "reputation"), Op.LE, 3.0),)
        )
        idx = disc.column_index("reputation")
        assert allowed[idx] is not None
        assert corr > 0

    def test_conflicting_predicates_intersect(self, stats_db):
        disc = DiscretizedTable.build(stats_db.table("users"))
        allowed, _ = predicate_bins(
            disc,
            (
                Predicate(ColumnRef("users", "reputation"), Op.LE, 3.0),
                Predicate(ColumnRef("users", "reputation"), Op.GE, 10.0),
            ),
        )
        idx = disc.column_index("reputation")
        assert allowed[idx].size == 0

    def test_unknown_column(self, stats_db):
        disc = DiscretizedTable.build(stats_db.table("users"))
        with pytest.raises(KeyError):
            disc.column_index("nope")


class TestFlatFeaturizer:
    def test_dim_and_determinism(self, stats_db):
        f = FlatQueryFeaturizer(stats_db)
        gen = WorkloadGenerator(stats_db, seed=30)
        q = gen.random_query(2, 4, require_predicate=True)
        a, b = f.featurize(q), f.featurize(q)
        assert a.shape == (f.dim,)
        assert np.array_equal(a, b)

    def test_tables_encoded(self, stats_db):
        f = FlatQueryFeaturizer(stats_db)
        q = Query(("users",))
        vec = f.featurize(q)
        pos = f.index.table_pos["users"]
        assert vec[pos] == 1.0
        assert vec[: len(f.index.tables)].sum() == 1.0

    def test_predicate_ranges_normalized(self, stats_db):
        f = FlatQueryFeaturizer(stats_db)
        q = Query(
            ("users",),
            (),
            (Predicate(ColumnRef("users", "reputation"), Op.LE, 5.0),),
        )
        vec = f.featurize(q)
        assert np.all(vec >= 0.0) and np.all(vec <= 1.0)

    def test_distinguishes_ranges(self, stats_db):
        f = FlatQueryFeaturizer(stats_db)
        q1 = Query(("users",), (), (Predicate(ColumnRef("users", "reputation"), Op.LE, 2.0),))
        q2 = Query(("users",), (), (Predicate(ColumnRef("users", "reputation"), Op.LE, 20.0),))
        assert not np.array_equal(f.featurize(q1), f.featurize(q2))


class TestMSCNFeaturizer:
    def test_set_shapes(self, stats_db):
        f = MSCNFeaturizer(stats_db, sample_size=16, seed=0)
        gen = WorkloadGenerator(stats_db, seed=31)
        q = gen.random_query(2, 3, require_predicate=True)
        sets = f.featurize(q)
        assert sets["tables"].shape == (q.n_tables, f.table_dim)
        assert sets["joins"].shape[1] == f.join_dim
        assert sets["preds"].shape[1] == f.pred_dim

    def test_bitmap_reflects_predicates(self, stats_db):
        f = MSCNFeaturizer(stats_db, sample_size=32, seed=0)
        all_rows = Query(("users",))
        none_rows = Query(
            ("users",),
            (),
            (Predicate(ColumnRef("users", "reputation"), Op.GT, 1e9),),
        )
        bits_all = f.featurize(all_rows)["tables"][0][-32:]
        bits_none = f.featurize(none_rows)["tables"][0][-32:]
        assert bits_all.sum() > bits_none.sum()
        assert bits_none.sum() == 0

    def test_drop_bitmaps(self, stats_db):
        f = MSCNFeaturizer(stats_db, sample_size=16, seed=0)
        q = Query(
            ("users",),
            (),
            (Predicate(ColumnRef("users", "reputation"), Op.GT, 1e9),),
        )
        bits = f.featurize(q, drop_bitmaps=True)["tables"][0][-16:]
        assert bits.sum() == 16

    def test_mask_rate_drops_predicates(self, stats_db):
        f = MSCNFeaturizer(stats_db, sample_size=8, seed=0)
        gen = WorkloadGenerator(stats_db, seed=32)
        q = gen.single_table_workload("users", 1, max_predicates=3)[0]
        rng = np.random.default_rng(0)
        masked = f.featurize(q, mask_rate=1.0, rng=rng)
        assert masked["preds"].shape[0] == 0


class TestJoinUtil:
    def test_unfiltered_join_size_exact(self, stats_db, stats_executor):
        sizes = UnfilteredJoinSizes(stats_db)
        gen = WorkloadGenerator(stats_db, seed=33)
        q = gen.random_query(2, 3, require_predicate=True)
        expected = stats_executor.cardinality(Query(q.tables, q.joins, ()))
        assert sizes.size(q) == expected

    def test_memoized(self, stats_db):
        sizes = UnfilteredJoinSizes(stats_db)
        gen = WorkloadGenerator(stats_db, seed=34)
        q = gen.random_query(2, 3)
        sizes.size(q)
        assert len(sizes._cache) == 1
        sizes.size(q)
        assert len(sizes._cache) == 1
        sizes.invalidate()
        assert len(sizes._cache) == 0

    def test_uniform_estimate_composition(self, stats_db):
        sizes = UnfilteredJoinSizes(stats_db)
        gen = WorkloadGenerator(stats_db, seed=35)
        q = gen.random_query(2, 3)
        est = uniform_join_estimate(q, sizes, lambda t: 0.5)
        assert est == pytest.approx(sizes.size(q) * 0.5 ** q.n_tables)

    def test_selectivity_clamped(self, stats_db):
        sizes = UnfilteredJoinSizes(stats_db)
        q = Query(("users",))
        est = uniform_join_estimate(q, sizes, lambda t: 2.0)
        assert est == sizes.size(q)
