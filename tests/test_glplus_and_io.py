"""Tests for GL+ segmentation [52] and workload save/load."""

import numpy as np
import pytest

from repro.bench import load_workload, save_workload
from repro.cardest import GLPlusEstimator, q_error
from repro.sql import Query, WorkloadGenerator


class TestGLPlus:
    def test_builds_local_models_with_enough_data(self, stats_db, stats_train_data):
        est = GLPlusEstimator(stats_db, n_segments=3, min_segment_size=20, epochs=25)
        est.fit(*stats_train_data)
        assert est.n_local_models >= 1

    def test_small_workload_falls_back_to_global(self, stats_db, stats_train_data):
        queries, cards = stats_train_data
        est = GLPlusEstimator(
            stats_db, n_segments=4, min_segment_size=10**6, epochs=10
        )
        est.fit(queries[:40], cards[:40])
        assert est.n_local_models == 0
        assert est.estimate(queries[0]) >= 0.0

    def test_accuracy_reasonable(self, stats_db, stats_train_data, stats_executor):
        est = GLPlusEstimator(stats_db, epochs=40)
        est.fit(*stats_train_data)
        test = WorkloadGenerator(stats_db, seed=190).workload(
            30, 1, 3, require_predicate=True
        )
        errs = [
            q_error(est.estimate(q), stats_executor.cardinality(q)) for q in test
        ]
        assert np.median(errs) < 20.0

    def test_estimate_before_fit(self, stats_db):
        with pytest.raises(RuntimeError):
            GLPlusEstimator(stats_db).estimate(Query(("users",)))

    def test_fit_rejects_empty(self, stats_db):
        with pytest.raises(ValueError):
            GLPlusEstimator(stats_db).fit([], np.zeros(0))

    def test_in_registry(self):
        from repro.core import registry

        rows = [m for m in registry("cardinality") if m.method == "GL+"]
        assert len(rows) == 1
        assert rows[0].resolve() is GLPlusEstimator


class TestWorkloadIO:
    def test_roundtrip(self, tmp_path, stats_db):
        gen = WorkloadGenerator(stats_db, seed=191, or_rate=0.3)
        workload = gen.workload(25, 1, 4, require_predicate=True)
        path = tmp_path / "workload.sql"
        save_workload(path, workload, header="test workload\nseed=191")
        loaded = load_workload(path)
        assert loaded == workload

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "w.sql"
        path.write_text(
            "-- a comment\n\nSELECT COUNT(*) FROM t WHERE t.x > 1\n\n",
            encoding="utf-8",
        )
        loaded = load_workload(path)
        assert len(loaded) == 1

    def test_broken_line_reports_lineno(self, tmp_path):
        path = tmp_path / "w.sql"
        path.write_text(
            "SELECT COUNT(*) FROM t\nSELECT nonsense\n", encoding="utf-8"
        )
        with pytest.raises(ValueError, match=":2:"):
            load_workload(path)

    def test_header_in_file(self, tmp_path, stats_db):
        gen = WorkloadGenerator(stats_db, seed=192)
        path = tmp_path / "w.sql"
        save_workload(path, gen.workload(3), header="frozen")
        assert path.read_text().startswith("-- frozen")
