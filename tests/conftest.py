"""Shared fixtures: small databases, workloads and engine objects.

Session-scoped where construction is expensive; tests must not mutate
these shared objects (drift tests build their own databases).
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make `python -m pytest` work from a plain checkout (no PYTHONPATH=src,
# no editable install) -- benchmarks/conftest.py does the same.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np
import pytest

from repro.engine import CardinalityExecutor, ExecutionSimulator
from repro.optimizer import Optimizer
from repro.sql import WorkloadGenerator
from repro.storage import make_imdb_lite, make_stats_lite, make_tpch_lite


@pytest.fixture(scope="session")
def stats_db():
    return make_stats_lite(scale=0.3, seed=0)


@pytest.fixture(scope="session")
def imdb_db():
    return make_imdb_lite(scale=0.3, seed=0)


@pytest.fixture(scope="session")
def tpch_db():
    return make_tpch_lite(scale=0.3, seed=0)


@pytest.fixture(scope="session")
def stats_executor(stats_db):
    return CardinalityExecutor(stats_db)


@pytest.fixture(scope="session")
def stats_optimizer(stats_db):
    return Optimizer(stats_db)


@pytest.fixture(scope="session")
def stats_simulator(stats_db):
    return ExecutionSimulator(stats_db)


@pytest.fixture(scope="session")
def imdb_optimizer(imdb_db):
    return Optimizer(imdb_db)


@pytest.fixture(scope="session")
def imdb_simulator(imdb_db):
    return ExecutionSimulator(imdb_db)


@pytest.fixture(scope="session")
def stats_workload(stats_db):
    gen = WorkloadGenerator(stats_db, seed=7)
    return gen.workload(40, 1, 4, require_predicate=True)


@pytest.fixture(scope="session")
def stats_train_data(stats_db, stats_executor):
    """(queries, true_cards) training pairs for supervised estimators."""
    gen = WorkloadGenerator(stats_db, seed=3)
    queries = gen.workload(120, 1, 4, require_predicate=True)
    cards = np.array([stats_executor.cardinality(q) for q in queries])
    return queries, cards


@pytest.fixture(scope="session")
def imdb_plan_corpus(imdb_db, imdb_optimizer, imdb_simulator):
    """(plans, latencies) corpus for cost-model tests."""
    from repro.optimizer import HintSet

    gen = WorkloadGenerator(imdb_db, seed=5)
    plans, lats = [], []
    arms = HintSet.bao_arms()[:4]
    for q in gen.workload(30, 2, 4, require_predicate=True):
        for arm in arms:
            p = imdb_optimizer.plan(q, hints=arm)
            plans.append(p)
            lats.append(imdb_simulator.execute(p).latency_ms)
    return plans, np.array(lats)
