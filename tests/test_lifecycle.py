"""Model lifecycle: experience store, registry, scheduler, gates, e2e loop."""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.bench import render_lifecycle_stats
from repro.cardest.drift import DDUpDetector, DriftReport
from repro.bench.workloads import apply_drift
from repro.core.errors import ConfigError
from repro.core.interfaces import Retrainable
from repro.e2e.bao import BaoOptimizer
from repro.e2e.loop import OptimizationLoop
from repro.e2e.risk_models import (
    EnsembleLatencyModel,
    PairwisePlanComparator,
    TreeConvLatencyModel,
)
from repro.lifecycle import (
    CadenceTrigger,
    DriftTrigger,
    EvalGate,
    ExperienceStore,
    ModelRegistry,
    QErrorTrigger,
    RetrainingScheduler,
    clone_model,
    default_retrainer,
    drift_recovery_scenario,
    lifecycle_stats,
    model_fingerprint,
)
from repro.lifecycle.scheduler import SchedulerContext
from repro.optimizer.cardcache import CardinalityCache
from repro.serve.deployment import DeploymentManager, Stage
from repro.serve.deployment import query_hash as deployment_query_hash
from repro.serve.telemetry import TelemetryBus
from repro.sql.query import ColumnRef, Join, Op, Predicate, Query, query_hash
from repro.storage.datasets import make_stats_lite


# -- the one query-identity scheme (satellite c) --------------------------------


def _equivalent_queries() -> tuple[Query, Query]:
    """The same query constructed with different member orderings."""
    j = Join(ColumnRef("posts", "owner_id"), ColumnRef("users", "id"))
    p1 = Predicate(ColumnRef("users", "reputation"), Op.GT, 100.0)
    p2 = Predicate(ColumnRef("posts", "score"), Op.LE, 10.0)
    a = Query(("users", "posts"), (j,), (p1, p2))
    b = Query(
        ("posts", "users"),
        (Join(ColumnRef("users", "id"), ColumnRef("posts", "owner_id")),),
        (p2, p1),
    )
    return a, b


def test_query_hash_stable_across_equivalent_constructions():
    a, b = _equivalent_queries()
    assert a is not b
    assert a.cache_key == b.cache_key
    assert query_hash(a) == query_hash(b)
    # The memo must not leak into equality/hashing.
    assert a == b and hash(a) == hash(b)


def test_query_hash_reexported_from_deployment():
    # serve.deployment re-exports the canonical scheme, not a copy.
    assert deployment_query_hash is query_hash


def test_cardinality_cache_hits_across_equivalent_instances():
    a, b = _equivalent_queries()
    cache = CardinalityCache(capacity=8)
    tag = ("est", 1, 0)
    cache.insert(tag, a, 42.0)
    # A different-but-equivalent instance must hit the same entry.
    assert cache.lookup(tag, b) == 42.0
    assert cache.hits == 1 and cache.misses == 0


# -- experience store (tentpole + satellite d) ----------------------------------


def _store_queries(n: int) -> list[Query]:
    return [
        Query(
            ("users",),
            (),
            (Predicate(ColumnRef("users", "reputation"), Op.GT, float(i)),),
        )
        for i in range(n)
    ]


class _FakeDecision:
    def __init__(self, query, latency=3.0, card=10):
        self.query = query
        self.plan_source = "learned"
        self.latency_ms = latency
        self.native_latency_ms = 4.0
        self.cardinality = card


def test_store_dedup_updates_in_place():
    store = ExperienceStore(capacity=10, seed=0)
    (q,) = _store_queries(1)
    store.add_decision(_FakeDecision(q, latency=3.0, card=10))
    store.add_decision(_FakeDecision(q, latency=5.0, card=12))
    assert len(store) == 1
    rec = store.records()[0]
    assert rec.hits == 2
    assert rec.latency_ms == 5.0  # latest observation wins
    assert rec.true_cardinality == 12.0
    assert store.stats()["deduped"] == 1


def test_store_eviction_is_bounded_and_deterministic():
    def run():
        store = ExperienceStore(capacity=8, seed=11)
        for q in _store_queries(50):
            store.add_decision(_FakeDecision(q))
        return store

    a, b = run(), run()
    assert len(a) == 8 and len(b) == 8
    assert a.stats()["evicted"] + a.stats()["dropped"] == 50 - 8
    # Same stream + same seed -> byte-identical retained set.
    assert a.snapshot_id() == b.snapshot_id()
    assert ExperienceStore(capacity=8, seed=12).seed != a.seed  # distinct knob
    c = ExperienceStore(capacity=8, seed=12)
    for q in _store_queries(50):
        c.add_decision(_FakeDecision(q))
    assert c.snapshot_id() != a.snapshot_id()  # the seed matters


def test_store_drift_tagging_and_labels():
    store = ExperienceStore(capacity=32, seed=0)
    qs = _store_queries(6)
    store.add_decision(_FakeDecision(qs[0]))
    store.mark_drift(True)
    store.add_decision(_FakeDecision(qs[1]))
    store.mark_drift(False)
    store.add_drift_queries(qs[2:4], [7.0, 8.0])
    assert {r.drift for r in store.records(kind="serve")} == {False, True}
    drift_queries = store.records(kind="drift_query")
    assert all(r.drift and r.source == "warper" for r in drift_queries)
    queries, cards = store.labelled()
    assert len(queries) == 4  # 2 serve decisions + 2 labelled drift queries
    assert set(cards) >= {7.0, 8.0}
    with pytest.raises(ConfigError):
        ExperienceStore(capacity=0)


# -- registry (tentpole) ---------------------------------------------------------


class _ToyModel:
    def __init__(self, weights):
        self.weights = np.asarray(weights, dtype=float)

    def retrain(self) -> None:
        self.weights = self.weights + 1.0


def test_registry_lineage_and_champion():
    registry = ModelRegistry()
    v0 = registry.register(_ToyModel([1.0]), trigger="initial")
    v1 = registry.register(
        _ToyModel([2.0]), parent=v0.version_id, trigger="retrain:drift"
    )
    chain = registry.lineage(v1.version_id)
    assert [v.version_id for v in chain] == [v0.version_id, v1.version_id]
    assert registry.champion_id is None
    registry.record_stage(v0.version_id, "live", reason="initial")
    assert registry.champion_id == v0.version_id
    registry.record_stage(v1.version_id, "shadow", reason="gate_passed")
    assert registry.champion_id == v0.version_id  # shadow does not promote
    registry.record_stage(v1.version_id, "live", reason="auto_promote")
    assert registry.champion_id == v1.version_id
    assert [s["stage"] for s in registry.stage_history(v1.version_id)] == [
        "shadow",
        "live",
    ]
    with pytest.raises(ConfigError):
        registry.register(_ToyModel([3.0]), parent="nope")
    with pytest.raises(ConfigError):
        registry.version("nope")


def test_registry_immutability_verification():
    registry = ModelRegistry()
    model = _ToyModel([1.0, 2.0])
    v = registry.register(model)
    assert registry.verify(v.version_id)
    model.weights[0] = 99.0  # mutate the frozen artifact
    assert not registry.verify(v.version_id)


def test_model_fingerprint_content_not_identity():
    a, b = _ToyModel([1.0, 2.0]), _ToyModel([1.0, 2.0])
    assert model_fingerprint(a) == model_fingerprint(b)
    b.weights[1] = 3.0
    assert model_fingerprint(a) != model_fingerprint(b)
    # Shared infrastructure is excluded: mutating it changes nothing.
    infra = {"rows": np.arange(5)}
    a.db = infra
    fp = model_fingerprint(a, shared=(infra,))
    infra["rows"] = np.arange(50)
    assert model_fingerprint(a, shared=(infra,)) == fp


def test_registry_export_is_deterministic():
    def build():
        r = ModelRegistry()
        v0 = r.register(_ToyModel([1.0]), trigger="initial")
        r.record_stage(v0.version_id, "live", reason="initial")
        r.register(_ToyModel([2.0]), parent=v0.version_id, trigger="retrain:x")
        return r.to_json()

    assert build() == build()
    assert json.loads(build())["champion"]


# -- retrainable protocol (satellite a) ------------------------------------------


def test_retrainable_protocol_covers_risk_models(stats_db):
    from repro.optimizer import Optimizer

    native = Optimizer(stats_db)
    # Non-data protocol: issubclass checks the surface without constructing.
    assert issubclass(TreeConvLatencyModel, Retrainable)
    assert issubclass(PairwisePlanComparator, Retrainable)
    assert issubclass(EnsembleLatencyModel, Retrainable)
    assert isinstance(BaoOptimizer(native, seed=0), Retrainable)

    class NotRetrainable:
        pass

    assert not isinstance(NotRetrainable(), Retrainable)


# -- triggers & scheduler (tentpole) ---------------------------------------------


def test_cadence_trigger_fires_on_query_interval():
    trig = CadenceTrigger(every_queries=10)
    ctx = SchedulerContext()
    ctx.queries = 9
    assert not trig.check(ctx).fired
    ctx.queries = 10
    d = trig.check(ctx)
    assert d.fired and d.action == "fine_tune"
    ctx.queries = 15
    assert not trig.check(ctx).fired  # re-armed from the last firing


def test_qerror_trigger_is_relative_to_its_own_baseline():
    trig = QErrorTrigger(degradation=3.0, window=8, min_samples=4, quantile=0.5)
    ctx = SchedulerContext()
    for _ in range(4):
        trig.observe(10.0, 5.0)  # q-error 2.0
    assert not trig.check(ctx).fired  # captures baseline ~2.0
    assert trig.baseline == pytest.approx(2.0)
    for _ in range(8):
        trig.observe(100.0, 5.0)  # q-error 20.0 -> 10x the baseline
    d = trig.check(ctx)
    assert d.fired and d.action == "retrain"
    trig.reset(ctx)
    assert trig.baseline is None and trig.current() == 1.0


class _FakeDetector:
    def __init__(self, reports):
        self.reports = reports
        self.checks = 0

    def check(self):
        self.checks += 1
        return self.reports


def test_drift_trigger_triage_escalates_to_retrain():
    fine = DriftReport("users", True, 5.0, 0.01, "fine_tune")
    big = DriftReport("posts", True, 9.0, 0.2, "retrain")
    clean = DriftReport("votes", False, 0.5, 0.0, "none")
    store = ExperienceStore(capacity=4, seed=0)
    trig = DriftTrigger(_FakeDetector([fine, clean]), check_every=5, store=store)
    ctx = SchedulerContext()
    ctx.queries = 4
    assert not trig.check(ctx).fired  # interval not reached: no check ran
    ctx.queries = 5
    d = trig.check(ctx)
    assert d.fired and d.action == "fine_tune" and "users" in d.reason
    assert store.drift_tag  # drift episodes tag subsequent experience
    trig2 = DriftTrigger(_FakeDetector([fine, big]), check_every=1)
    ctx.queries = 6
    assert trig2.check(ctx).action == "retrain"  # any retrain report escalates


def test_scheduler_composes_triggers_with_cooldown():
    registry = ModelRegistry()
    store = ExperienceStore(capacity=16, seed=0)
    v0 = registry.register(_ToyModel([1.0]), trigger="initial")
    registry.record_stage(v0.version_id, "live", reason="initial")
    sched = RetrainingScheduler(
        registry,
        store,
        default_retrainer(),
        triggers=[CadenceTrigger(every_queries=10)],
        cooldown_queries=25,
    )
    outcomes = [sched.step(1.0) for _ in range(40)]
    fired = [o for o in outcomes if o is not None]
    # Cadence alone would fire at 10/20/30/40; the cooldown holds triggers
    # unchecked until query 35 (10 + 25), where the cadence is overdue.
    assert [o.at_query for o in fired] == [10, 35]
    assert all(o.gate_passed and not o.deployed for o in fired)  # no gate/deployment
    # Lineage: each challenger's parent is the champion it was cloned from.
    assert fired[0].parent == v0.version_id
    assert len(registry) == 3
    assert sched.stats()["retrains"] == 2


def test_scheduler_rejects_mutating_retrainer():
    registry = ModelRegistry()
    store = ExperienceStore(capacity=4, seed=0)
    v0 = registry.register(_ToyModel([1.0]), trigger="initial")
    registry.record_stage(v0.version_id, "live", reason="initial")
    sched = RetrainingScheduler(
        registry,
        store,
        lambda champion, s, action: champion,  # returns the champion itself
        triggers=[CadenceTrigger(every_queries=1)],
        cooldown_queries=1,
    )
    with pytest.raises(ConfigError):
        sched.step(1.0)


def test_clone_model_shares_infrastructure():
    infra = {"db": np.arange(10)}
    model = _ToyModel([1.0])
    model.db = infra
    clone = clone_model(model, shared=(infra,))
    assert clone is not model and clone.weights is not model.weights
    assert clone.db is infra  # shared, not copied
    clone.retrain()
    assert model.weights[0] == 1.0  # champion untouched


# -- gates (tentpole): pass -> SHADOW, fail -> never deployed --------------------


@pytest.fixture(scope="module")
def gate_stack():
    """Small full stack for gate/deployment tests (module-local, mutable)."""
    from repro.engine import CardinalityExecutor, ExecutionSimulator
    from repro.optimizer import Optimizer
    from repro.sql import WorkloadGenerator

    db = make_stats_lite(scale=0.12, seed=0)
    native = Optimizer(db)
    simulator = ExecutionSimulator(db)
    executor = CardinalityExecutor(db)
    holdout = WorkloadGenerator(db, seed=9).workload(12, 1, 2, require_predicate=True)
    return db, native, simulator, executor, holdout


def test_gate_passes_equivalent_challenger_into_shadow(gate_stack):
    db, native, simulator, executor, holdout = gate_stack
    shared = (db, native, simulator, executor, native.stats, native.cache)
    telemetry = TelemetryBus()
    registry = ModelRegistry(shared=shared, telemetry=telemetry)
    store = ExperienceStore(capacity=64, seed=0)
    champion = BaoOptimizer(native, seed=0)
    v0 = registry.register(champion, trigger="initial")
    registry.record_stage(v0.version_id, "live", reason="initial")
    gate = EvalGate(holdout, simulator=simulator, executor=executor)
    deployment = DeploymentManager(
        champion,
        native,
        simulator,
        telemetry=telemetry,
        stage=Stage.LIVE,
        registry=registry,
        model_version=v0.version_id,
    )
    sched = RetrainingScheduler(
        registry,
        store,
        default_retrainer(shared=shared),
        gate=gate,
        deployment=deployment,
        telemetry=telemetry,
    )
    outcome = sched.force_retrain(reason="test")
    assert outcome.gate_passed and outcome.deployed
    # The challenger entered at SHADOW -- never straight to LIVE.
    assert deployment.stage is Stage.SHADOW
    assert deployment.learned is not champion
    assert deployment.model_version == outcome.version_id
    report = registry.gate_report(outcome.version_id)
    assert report["passed"] is True
    assert [s["stage"] for s in registry.stage_history(outcome.version_id)] == [
        "shadow"
    ]
    assert registry.champion_id == v0.version_id  # not champion until LIVE


def test_gate_failure_never_reaches_deployment(gate_stack):
    db, native, simulator, executor, holdout = gate_stack
    shared = (db, native, simulator, executor, native.stats, native.cache)
    registry = ModelRegistry(shared=shared)
    store = ExperienceStore(capacity=64, seed=0)
    champion = BaoOptimizer(native, seed=0)
    v0 = registry.register(champion, trigger="initial")
    registry.record_stage(v0.version_id, "live", reason="initial")
    gate = EvalGate(
        holdout, simulator=simulator, executor=executor, max_p50_ratio=0.0
    )
    deployment = DeploymentManager(
        champion,
        native,
        simulator,
        stage=Stage.LIVE,
        registry=registry,
        model_version=v0.version_id,
    )
    sched = RetrainingScheduler(
        registry,
        store,
        default_retrainer(shared=shared),
        gate=gate,
        deployment=deployment,
    )
    outcome = sched.force_retrain(reason="test")
    assert not outcome.gate_passed and not outcome.deployed
    # Hard constraint: the failing challenger never touched the deployment.
    assert deployment.learned is champion
    assert deployment.model_version == v0.version_id
    assert deployment.stage is Stage.LIVE
    report = registry.gate_report(outcome.version_id)
    assert report["passed"] is False and report["reasons"]
    assert sched.stats()["gate_failures"] == 1
    with pytest.raises(ConfigError):
        EvalGate([], simulator=simulator)
    with pytest.raises(ConfigError):
        EvalGate(holdout)


# -- experience wiring (tentpole) ------------------------------------------------


def test_optimization_loop_feeds_experience(stats_db, stats_simulator):
    from repro.optimizer import Optimizer

    native = Optimizer(stats_db)
    store = ExperienceStore(capacity=32, seed=0)
    loop = OptimizationLoop(
        BaoOptimizer(native, seed=0),
        stats_simulator,
        native,
        experience=store,
    )
    from repro.sql import WorkloadGenerator

    queries = WorkloadGenerator(stats_db, seed=13).workload(
        5, 1, 2, require_predicate=True
    )
    loop.run(queries)
    episodes = store.records(kind="episode")
    assert episodes and all(r.latency_ms is not None for r in episodes)
    assert store.stats()["ingested"] == 5


def test_deployment_manager_feeds_experience(stats_db, stats_simulator):
    from repro.optimizer import Optimizer
    from repro.sql import WorkloadGenerator

    native = Optimizer(stats_db)
    store = ExperienceStore(capacity=32, seed=0)
    deployment = DeploymentManager(
        BaoOptimizer(native, seed=0),
        native,
        stats_simulator,
        stage=Stage.LIVE,
        experience=store,
    )
    queries = WorkloadGenerator(stats_db, seed=14).workload(
        5, 1, 2, require_predicate=True
    )
    for q in queries:
        deployment.serve(q)
    serves = store.records(kind="serve")
    assert serves and all(r.true_cardinality is not None for r in serves)
    # The store's counters are exported as a telemetry gauge.
    snap = deployment.telemetry.snapshot()
    assert snap["gauges"]["experience_store"]["records"] == len(store)


# -- drift telemetry (satellite b) ----------------------------------------------


def test_drift_detector_emits_telemetry_events():
    db = make_stats_lite(scale=0.12, seed=0)
    bus = TelemetryBus()
    detector = DDUpDetector(db, seed=0, telemetry=bus)
    detector.check()  # clean: counters only
    apply_drift(db, fraction=0.5, seed=0)
    reports = detector.check()
    assert any(r.drifted for r in reports)
    snap = bus.snapshot()
    assert snap["counters"]["drift.checks"] == 2
    assert snap["counters"]["drift.detected"] >= 1
    events = [e for e in snap["events"] if e["kind"] == "drift_report"]
    assert events and all(e["drifted"] for e in events)
    assert {e["action"] for e in events} <= {"fine_tune", "retrain"}


# -- end to end (tentpole + satellite d) -----------------------------------------


def _tiny_scenario(seed=0, **kw):
    kw.setdefault("scale", 0.12)
    kw.setdefault("n_queries", 60)
    kw.setdefault("n_train", 40)
    kw.setdefault("n_holdout", 10)
    kw.setdefault("n_sessions", 4)
    kw.setdefault("drift_check_every", 10)
    kw.setdefault("cooldown_queries", 15)
    # A 10-query holdout makes the p50 ratio noisy; keep the accuracy and
    # regression-rate axes strict but relax the latency quantiles.
    kw.setdefault(
        "gate_kwargs", {"max_p50_ratio": 1.6, "max_p95_ratio": 1.6}
    )
    return drift_recovery_scenario(seed=seed, **kw)


def test_e2e_drift_recovery_is_seed_reproducible():
    def run(seed):
        s = _tiny_scenario(seed=seed)
        s.run()
        return s

    a, b = run(5), run(5)
    assert a.registry.to_json() == b.registry.to_json()
    assert a.telemetry.to_json() == b.telemetry.to_json()
    assert a.store.snapshot_id() == b.store.snapshot_id()
    c = run(6)
    assert c.telemetry.to_json() != a.telemetry.to_json()
    # The loop actually closed: drift -> retrain -> gated deploy.
    assert a.scheduler.stats()["retrains"] >= 1
    assert a.scheduler.stats()["deploys"] >= 1
    assert all(a.registry.verify(v.version_id) for v in a.registry.versions())
    # Registered challengers carry full lineage back to the initial model.
    last = a.registry.versions()[-1]
    chain = a.registry.lineage(last.version_id)
    assert chain[0].trigger == "initial" and chain[-1] is last
    assert last.snapshot_id  # training-data snapshot recorded
    stats = lifecycle_stats(a)
    rendered = render_lifecycle_stats(stats)
    assert "scheduler" in rendered and "registry" in rendered


# ---------------------------------------------------------------------------
# cross-schema transfer fleet
# ---------------------------------------------------------------------------


def _tiny_fleet(seed=0, **kw):
    from repro.lifecycle import transfer_fleet_scenario

    kw.setdefault("n_schemas", 2)
    kw.setdefault("queries_per_tenant", 10)
    kw.setdefault("n_train", 16)
    kw.setdefault("n_holdout", 6)
    return transfer_fleet_scenario(seed=seed, **kw)


class TestTransferFleet:
    def test_fleet_serves_every_request_on_its_pinned_shard(self):
        fleet = _tiny_fleet()
        fleet.run()
        served = sum(r.n_served for r in fleet.reports)
        assert served == fleet.n_requests
        # one tenant per shard, no cross-schema misrouting
        assert fleet.fabric.router.unroutable == 0
        assert fleet.fabric.router.reroutes == 0
        per_tenant = fleet.n_requests // len(fleet.tenants)
        assert fleet.fabric.router.assignments == [per_tenant] * len(
            fleet.tenants
        )

    def test_fleet_schedule_interleaves_all_tenants(self):
        fleet = _tiny_fleet()
        tenants = {r.tenant_id for r in fleet.schedule[:4]}
        assert tenants == {t.tenant_id for t in fleet.tenants}
        arrivals = [r.request.arrival_ms for r in fleet.schedule]
        assert arrivals == sorted(arrivals)

    def test_frozen_fleet_never_retrains(self):
        fleet = _tiny_fleet(closed_loop=False)
        fleet.run()
        stats = fleet.retrain_stats()
        assert all(v["retrains"] == 0 for v in stats.values())
        assert all(v["deploys"] == 0 for v in stats.values())

    def test_same_seed_fleets_are_byte_identical(self):
        def run():
            fleet = _tiny_fleet(seed=4)
            fleet.run()
            return fleet

        a, b = run(), run()
        assert a.export_json(include_traces=True) == b.export_json(
            include_traces=True
        )
        assert a.fingerprints() == b.fingerprints()
        assert _tiny_fleet(seed=5).fingerprints() != a.fingerprints()

    def test_drift_event_lands_mid_stream(self):
        fleet = _tiny_fleet()
        fleet.run()
        snap = json.loads(fleet.export_json())
        drift_events = [
            e for e in snap["events"] if e["kind"] == "fleet_drift"
        ]
        assert len(drift_events) == 1
        assert drift_events[0]["n_schemas"] == len(fleet.tenants)
