"""Tests for query templates and the parameterized plan cache.

Covers the template identity (:attr:`Query.template_key`), plan rebinding
(:func:`rebind_plan`), the :class:`PlanCache` LRU/invalidation semantics,
and -- the load-bearing property -- that a query served from a cached
plan produces *exactly* the count a cold planning and the independent
reference oracle produce, over generated parameterized workloads.
"""

import numpy as np
import pytest

from repro.optimizer import Optimizer, PlanCache, rebind_plan
from repro.core.interfaces import estimator_cache_tag
from repro.oracle.planexec import PlanInterpreter
from repro.oracle.reference import reference_count
from repro.sql import ColumnRef, Join, Op, OrPredicate, Predicate, Query
from repro.sql.generator import WorkloadGenerator
from repro.sql.query import predicate_template, query_hash


def _q(*predicates):
    return Query(
        ("posts", "users"),
        (Join(ColumnRef("posts", "uid"), ColumnRef("users", "id")),),
        predicates,
    )


AGE = ColumnRef("users", "age")
SCORE = ColumnRef("posts", "score")


class TestPredicateTemplate:
    def test_scalar_ops(self):
        assert predicate_template(Predicate(AGE, Op.EQ, 3.0)) == "users.age = ?"
        assert predicate_template(Predicate(AGE, Op.GE, 3.0)) == "users.age >= ?"

    def test_between(self):
        pred = Predicate(AGE, Op.BETWEEN, (1.0, 4.0))
        assert predicate_template(pred) == "users.age BETWEEN ? AND ?"

    def test_in_preserves_arity(self):
        two = Predicate(AGE, Op.IN, frozenset({1.0, 2.0}))
        three = Predicate(AGE, Op.IN, frozenset({1.0, 2.0, 3.0}))
        assert predicate_template(two) == "users.age IN (?, ?)"
        assert predicate_template(three) == "users.age IN (?, ?, ?)"
        assert predicate_template(two) != predicate_template(three)

    def test_or_parts_sorted_as_templates(self):
        # Two bindings whose parts sort differently *by literal* must
        # still produce one template.
        a = OrPredicate(
            AGE, (Predicate(AGE, Op.EQ, 9.0), Predicate(AGE, Op.LE, 1.0))
        )
        b = OrPredicate(
            AGE, (Predicate(AGE, Op.EQ, 0.0), Predicate(AGE, Op.LE, 5.0))
        )
        assert predicate_template(a) == predicate_template(b)
        assert predicate_template(a) == "(users.age <= ? OR users.age = ?)"


class TestTemplateKey:
    def test_same_template_different_literals(self):
        a = _q(Predicate(AGE, Op.LE, 1.0))
        b = _q(Predicate(AGE, Op.LE, 4.0))
        assert a.template_key == b.template_key
        assert a != b
        assert query_hash(a) != query_hash(b)  # hash still binding-specific

    def test_binding_order_does_not_matter(self):
        # Predicates sort by their literal-bearing str, so two bindings of
        # one template can store predicates in different orders; the
        # template key must not depend on that.
        a = _q(Predicate(AGE, Op.EQ, 0.0), Predicate(AGE, Op.LE, 5.0))
        b = _q(Predicate(AGE, Op.EQ, 9.0), Predicate(AGE, Op.LE, 1.0))
        assert a.template_key == b.template_key

    def test_different_ops_differ(self):
        a = _q(Predicate(AGE, Op.LE, 2.0))
        b = _q(Predicate(AGE, Op.GE, 2.0))
        assert a.template_key != b.template_key

    def test_different_columns_differ(self):
        a = _q(Predicate(AGE, Op.LE, 2.0))
        b = _q(Predicate(SCORE, Op.LE, 2.0))
        assert a.template_key != b.template_key

    def test_joins_part_of_template(self):
        with_join = _q()
        single = Query(("users",))
        assert with_join.template_key != single.template_key
        assert "posts.uid = users.id" in with_join.template_key

    def test_no_literals_leak(self):
        q = _q(
            Predicate(AGE, Op.BETWEEN, (13.0, 37.0)),
            Predicate(SCORE, Op.IN, frozenset({42.0})),
        )
        assert "13" not in q.template_key
        assert "42" not in q.template_key
        assert "?" in q.template_key

    def test_rebind_keeps_template(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=3)
        for _ in range(20):
            q = gen.random_query(1, 4, require_predicate=True)
            assert gen.rebind(q).template_key == q.template_key


class TestRebindPlan:
    def _plans(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=5)
        template = gen.random_query(2, 3, require_predicate=True)
        binding = gen.rebind(template)
        opt = Optimizer(stats_db)
        return template, binding, opt.plan(template)

    def test_identity_for_same_query(self, stats_db):
        template, _, plan = self._plans(stats_db)
        assert rebind_plan(plan, template) is plan

    def test_rebind_substitutes_scan_predicates(self, stats_db):
        template, binding, plan = self._plans(stats_db)
        rebound = rebind_plan(plan, binding)
        assert rebound.query == binding
        for scan in rebound.scan_nodes():
            assert scan.predicates == binding.predicates_on(scan.table)

    def test_rebind_shares_join_structure(self, stats_db):
        template, binding, plan = self._plans(stats_db)
        rebound = rebind_plan(plan, binding)
        assert rebound.join_order() == plan.join_order()
        assert [j.method for j in rebound.join_nodes()] == [
            j.method for j in plan.join_nodes()
        ]
        assert [j.conditions for j in rebound.join_nodes()] == [
            j.conditions for j in plan.join_nodes()
        ]

    def test_template_mismatch_raises(self, stats_db):
        _, _, plan = self._plans(stats_db)
        other = Query(("users",), (), (Predicate(AGE, Op.LE, 1.0),))
        with pytest.raises(ValueError, match="rebind"):
            rebind_plan(plan, other)


class TestPlanCache:
    TAG = ("native", "est", 0)

    def _plan_fn(self, db):
        opt = Optimizer(db)
        return opt.plan

    def test_miss_then_hit(self, tiny_plan_db):
        db, template, binding = tiny_plan_db
        cache = PlanCache()
        plan_fn = self._plan_fn(db)
        _, hit1 = cache.get_or_plan(template, self.TAG, 0, plan_fn)
        plan2, hit2 = cache.get_or_plan(binding, self.TAG, 0, plan_fn)
        assert (hit1, hit2) == (False, True)
        assert plan2.query == binding
        assert cache.hit_rate == 0.5

    def test_plan_fn_not_called_on_hit(self, tiny_plan_db):
        db, template, binding = tiny_plan_db
        cache = PlanCache()
        calls = []
        plan_fn = self._plan_fn(db)

        def counting(q):
            calls.append(q)
            return plan_fn(q)

        cache.get_or_plan(template, self.TAG, 0, counting)
        cache.get_or_plan(binding, self.TAG, 0, counting)
        assert calls == [template]

    def test_tag_and_data_version_partition(self, tiny_plan_db):
        db, template, binding = tiny_plan_db
        cache = PlanCache()
        plan_fn = self._plan_fn(db)
        cache.get_or_plan(template, self.TAG, 0, plan_fn)
        _, hit_tag = cache.get_or_plan(binding, ("other", "est", 1), 0, plan_fn)
        _, hit_ver = cache.get_or_plan(binding, self.TAG, 1, plan_fn)
        assert not hit_tag and not hit_ver
        assert len(cache) == 3

    def test_lru_eviction(self, tiny_plan_db):
        db, template, binding = tiny_plan_db
        single = Query(("users",), (), (Predicate(AGE, Op.LE, 1.0),))
        cache = PlanCache(capacity=1)
        plan_fn = self._plan_fn(db)
        cache.get_or_plan(template, self.TAG, 0, plan_fn)
        cache.get_or_plan(single, self.TAG, 0, plan_fn)  # evicts template
        assert cache.evictions == 1
        _, hit = cache.get_or_plan(binding, self.TAG, 0, plan_fn)
        assert not hit

    def test_invalidate(self, tiny_plan_db):
        db, template, binding = tiny_plan_db
        cache = PlanCache()
        plan_fn = self._plan_fn(db)
        cache.get_or_plan(template, self.TAG, 0, plan_fn)
        cache.invalidate(reason="stage:live")
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.last_invalidation_reason == "stage:live"
        _, hit = cache.get_or_plan(binding, self.TAG, 0, plan_fn)
        assert not hit
        # Counters survive the flush.
        assert cache.stats()["misses"] == 2

    def test_stats_shape(self):
        stats = PlanCache().stats()
        assert set(stats) == {
            "entries",
            "hits",
            "misses",
            "evictions",
            "hit_rate",
            "invalidations",
        }

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(capacity=0)

    @pytest.fixture(scope="class")
    def tiny_plan_db(self):
        from repro.storage import Column, Database, JoinEdge, Table

        rng = np.random.default_rng(0)
        users = Table(
            "users",
            [
                Column("id", np.arange(12), is_key=True),
                Column("age", rng.integers(0, 5, 12)),
            ],
        )
        posts = Table(
            "posts",
            [
                Column("id", np.arange(20), is_key=True),
                Column("uid", rng.integers(0, 12, 20)),
                Column("score", rng.integers(0, 4, 20)),
            ],
        )
        db = Database(
            "tiny",
            [users, posts],
            [JoinEdge("posts", "uid", "users", "id")],
        )
        template = _q(Predicate(AGE, Op.LE, 2.0))
        binding = _q(Predicate(AGE, Op.LE, 4.0))
        return db, template, binding


class TestCachedPlanCorrectness:
    """Satellite property: for every query of a generated parameterized
    workload, executing the *cached, rebound* plan yields exactly the same
    count as a cold planning of that query -- and both equal the
    independent reference oracle.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cached_equals_cold_equals_reference(self, stats_db, seed):
        gen = WorkloadGenerator(stats_db, seed=seed)
        workload = gen.parameterized_workload(
            4, 3, min_tables=1, max_tables=3, require_predicate=True
        )
        opt = Optimizer(stats_db)
        cache = PlanCache()
        tag = estimator_cache_tag(opt.estimator)
        interp = PlanInterpreter(stats_db)
        hits = 0
        for q in workload:
            cached_plan, hit = cache.get_or_plan(
                q, tag, stats_db.data_version, opt.plan
            )
            hits += hit
            cold_plan = opt.plan(q)
            cached_n = interp.count(cached_plan)
            assert cached_n == interp.count(cold_plan)
            assert cached_n == reference_count(stats_db, q)
        # The workload genuinely exercised the hit path.
        assert hits >= len(workload) - 4


class TestServingDeterminism:
    """Same seed + same config => byte-identical telemetry exports with
    the plan cache on the serving path; and the cache must not change any
    served result relative to cache-off execution.
    """

    def _run(self):
        from repro.serve import parameterized_scenario

        scenario = parameterized_scenario(
            n_templates=4, bindings_per_template=5, n_sessions=4, seed=11
        )
        scenario.run()
        return scenario

    def test_byte_identical_exports(self):
        a = self._run()
        b = self._run()
        assert a.deployment.telemetry.to_json() == b.deployment.telemetry.to_json()
        assert a.plan_cache.stats() == b.plan_cache.stats()

    def test_hit_rate_above_gate(self):
        scenario = self._run()
        assert scenario.plan_cache.hit_rate > 0.5
        snap = scenario.deployment.telemetry.snapshot()
        assert snap["gauges"]["plan_cache"]["hits"] == scenario.plan_cache.hits

    def test_cache_does_not_change_results(self, stats_db):
        """Console-level A/B: identical outcomes with and without cache."""
        from repro.pilotscope import PilotScopeConsole
        from repro.pilotscope.postgres_sim import SimulatedPostgreSQL

        queries = WorkloadGenerator(stats_db, seed=9).parameterized_workload(
            3, 4, min_tables=1, max_tables=3, require_predicate=True
        )

        def serve(plan_cache):
            console = PilotScopeConsole(
                SimulatedPostgreSQL(stats_db), plan_cache=plan_cache
            )
            return [console.execute(q) for q in queries]

        with_cache = serve(PlanCache())
        without = serve(None)
        # Counts must be bit-identical; latency may differ (a replayed
        # template plan is not always the plan a cold optimization of the
        # new binding would pick -- that is the trade the cache makes).
        assert [o.cardinality for o in with_cache] == [
            o.cardinality for o in without
        ]
        assert all(
            c.plan.query == w.plan.query
            for c, w in zip(with_cache, without)
        )
