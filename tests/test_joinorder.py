"""Tests for the join-order MDP and the four learned search methods."""

import numpy as np
import pytest

from repro.joinorder import (
    DQJoinOrderSearch,
    EddyJoinOrderSearch,
    JoinOrderEnv,
    MCTSJoinOrderSearch,
    RTOSJoinOrderSearch,
    plan_from_order,
)
from repro.sql import WorkloadGenerator


@pytest.fixture(scope="module")
def join_query(imdb_db):
    gen = WorkloadGenerator(imdb_db, seed=70)
    return next(q for q in gen.workload(30, 4, 4, require_predicate=True))


class TestJoinOrderEnv:
    def test_first_action_any_table(self, join_query):
        env = JoinOrderEnv(join_query)
        assert set(env.valid_actions()) == set(join_query.tables)

    def test_actions_stay_connected(self, join_query):
        env = JoinOrderEnv(join_query)
        rng = np.random.default_rng(0)
        while not env.done:
            actions = env.valid_actions()
            assert actions, "connected query must always have a valid action"
            choice = actions[rng.integers(len(actions))]
            env.step(choice)
            assert join_query.subquery(env.prefix).is_connected()

    def test_rejects_duplicate(self, join_query):
        env = JoinOrderEnv(join_query)
        first = env.valid_actions()[0]
        env.step(first)
        with pytest.raises(ValueError):
            env.step(first)

    def test_rejects_disconnected_extension(self, imdb_db):
        gen = WorkloadGenerator(imdb_db, seed=71)
        q = gen.join_template_workload(
            ["cast_info", "person", "title"], 1
        )[0]
        env = JoinOrderEnv(q)
        env.step("person")
        # title is not adjacent to person (only via cast_info).
        with pytest.raises(ValueError):
            env.step("title")

    def test_reset(self, join_query):
        env = JoinOrderEnv(join_query)
        env.step(env.valid_actions()[0])
        env.reset()
        assert env.prefix == []


class TestPlanFromOrder:
    def test_valid_plan(self, join_query, imdb_optimizer):
        order = list(join_query.tables)
        # Build a connected order by walking the env.
        env = JoinOrderEnv(join_query)
        while not env.done:
            env.step(env.valid_actions()[0])
        plan = plan_from_order(join_query, env.prefix, imdb_optimizer.coster)
        assert plan.root.tables == frozenset(join_query.tables)
        # The join *sequence* must follow the order: the k-th join (bottom
        # up) covers exactly the first k+1 tables of the prefix.  Leaf
        # order may flip because the coster picks build/probe sides.
        joins = sorted(plan.join_nodes(), key=lambda n: len(n.tables))
        for k, node in enumerate(joins):
            assert node.tables == frozenset(env.prefix[: k + 2])

    def test_rejects_wrong_tables(self, join_query, imdb_optimizer):
        with pytest.raises(ValueError):
            plan_from_order(join_query, ["title"], imdb_optimizer.coster)

    def test_rejects_disconnected_order(self, imdb_db, imdb_optimizer):
        gen = WorkloadGenerator(imdb_db, seed=72)
        q = gen.join_template_workload(["cast_info", "person", "title"], 1)[0]
        with pytest.raises(ValueError):
            plan_from_order(
                q, ["person", "title", "cast_info"], imdb_optimizer.coster
            )


@pytest.fixture(scope="module")
def trained_dq(imdb_db, imdb_optimizer):
    gen = WorkloadGenerator(imdb_db, seed=73)
    train = gen.workload(20, 3, 4, require_predicate=True)
    dq = DQJoinOrderSearch(imdb_optimizer, seed=0)
    dq.train(train, episodes_per_query=3)
    return dq


class TestDQ:
    def test_search_returns_valid_plan(self, trained_dq, join_query):
        plan = trained_dq.search(join_query)
        assert plan.root.tables == frozenset(join_query.tables)

    def test_cost_not_catastrophic(self, trained_dq, imdb_optimizer, imdb_db):
        gen = WorkloadGenerator(imdb_db, seed=74)
        ratios = []
        for q in gen.workload(10, 3, 4, require_predicate=True):
            learned_cost = imdb_optimizer.cost(trained_dq.search(q))
            dp_cost = imdb_optimizer.cost(imdb_optimizer.plan(q))
            ratios.append(learned_cost / max(dp_cost, 1e-9))
        assert np.median(ratios) < 3.0

    def test_training_populates_buffer(self, trained_dq):
        assert len(trained_dq._buffer_y) > 0
        assert trained_dq._trained


class TestRTOS:
    def test_trains_and_searches(self, imdb_db, imdb_optimizer):
        gen = WorkloadGenerator(imdb_db, seed=75)
        train = gen.workload(10, 3, 4, require_predicate=True)
        rtos = RTOSJoinOrderSearch(imdb_optimizer, seed=0)
        rtos.train(train, episodes_per_query=2)
        q = train[0]
        plan = rtos.search(q)
        assert plan.root.tables == frozenset(q.tables)


class TestMCTS:
    def test_search_with_latency_feedback(self, imdb_optimizer, imdb_simulator, join_query):
        mcts = MCTSJoinOrderSearch(imdb_optimizer, evaluate=imdb_simulator.latency, seed=0)
        plan, diag = mcts.search(join_query, iterations=25)
        assert plan.root.tables == frozenset(join_query.tables)
        assert len(diag["latencies"]) == 25
        assert diag["best_latency"] == min(diag["latencies"])

    def test_more_iterations_do_not_hurt(self, imdb_optimizer, imdb_simulator, join_query):
        mcts = MCTSJoinOrderSearch(imdb_optimizer, evaluate=imdb_simulator.latency, seed=1)
        _, few = mcts.search(join_query, iterations=5)
        mcts2 = MCTSJoinOrderSearch(imdb_optimizer, evaluate=imdb_simulator.latency, seed=1)
        _, many = mcts2.search(join_query, iterations=40)
        assert many["best_latency"] <= few["best_latency"] + 1e-9

    def test_single_table(self, imdb_optimizer, imdb_simulator, imdb_db):
        gen = WorkloadGenerator(imdb_db, seed=76)
        q = gen.single_table_workload("title", 1)[0]
        mcts = MCTSJoinOrderSearch(imdb_optimizer, evaluate=imdb_simulator.latency)
        plan, _ = mcts.search(q)
        assert plan.root.tables == frozenset(q.tables)


class TestEddy:
    def test_adaptive_order_valid(self, imdb_optimizer, join_query):
        eddy = EddyJoinOrderSearch(imdb_optimizer, n_chunks=4, seed=0)
        plan = eddy.search(join_query)
        assert plan.root.tables == frozenset(join_query.tables)

    def test_order_quality(self, imdb_optimizer, imdb_simulator, imdb_db):
        gen = WorkloadGenerator(imdb_db, seed=77)
        eddy = EddyJoinOrderSearch(imdb_optimizer, n_chunks=6, seed=0)
        ratios = []
        for q in gen.workload(8, 3, 4, require_predicate=True):
            lat = imdb_simulator.execute(eddy.search(q)).latency_ms
            dp = imdb_simulator.execute(imdb_optimizer.plan(q)).latency_ms
            ratios.append(lat / max(dp, 1e-9))
        # Eddies learn true fan-outs online; should be near the native plan.
        assert np.median(ratios) < 2.0
