"""Tests for the PilotScope middleware: sessions, console, drivers."""

import numpy as np
import pytest

from repro.cardest import GBDTQueryEstimator, HistogramEstimator
from repro.optimizer import HintSet
from repro.pilotscope import (
    BaoDriver,
    CardinalityInjectionDriver,
    DriverConfig,
    LeroDriver,
    PilotScopeConsole,
    SimulatedPostgreSQL,
)
from repro.pilotscope.interactor import enumerate_subqueries
from repro.sql import Query, WorkloadGenerator


@pytest.fixture(scope="module")
def pg(stats_db):
    return SimulatedPostgreSQL(stats_db)


@pytest.fixture(scope="module")
def workload(stats_db):
    return WorkloadGenerator(stats_db, seed=100).workload(
        25, 1, 3, require_predicate=True
    )


class TestSubqueryEnumeration:
    def test_covers_connected_subsets(self, workload):
        q = next(q for q in workload if q.n_tables >= 2)
        subs = enumerate_subqueries(q)
        assert Query(q.tables, q.joins, q.predicates) in subs
        for t in q.tables:
            assert any(s.tables == (t,) for s in subs)
        for s in subs:
            assert s.is_connected()


class TestSession:
    def test_push_cardinalities_changes_planning(self, pg, workload):
        q = next(q for q in workload if q.n_tables >= 2)
        with pg.open_session() as session:
            default_plan = session.pull_plan(q)
            # Inject absurd cardinalities for one side to flip decisions.
            subs = session.pull_subqueries(q)
            session.push_cardinalities({s.to_sql(): 1.0 for s in subs})
            injected_plan = session.pull_plan(q)
        assert default_plan.root.tables == injected_plan.root.tables

    def test_push_hint_respected(self, pg, workload):
        q = next(q for q in workload if q.n_tables >= 2)
        with pg.open_session() as session:
            session.push_hint_set(HintSet(enable_hash_join=False, enable_merge_join=False))
            plan = session.pull_plan(q)
        from repro.engine import JoinMethod

        for node in plan.join_nodes():
            assert node.method is JoinMethod.NESTED_LOOP

    def test_push_scale_validates(self, pg):
        with pg.open_session() as session:
            with pytest.raises(ValueError):
                session.push_cardinality_scale(-1.0)

    def test_push_config_unknown_key(self, pg):
        with pg.open_session() as session:
            with pytest.raises(KeyError):
                session.push_config("work_mem", "1GB")

    def test_reset_pushes_clears_state(self, pg, workload):
        q = next(q for q in workload if q.n_tables >= 2)
        with pg.open_session() as session:
            session.push_cardinality_scale(100.0)
            scaled = session.pull_plan(q)
            session.reset_pushes()
            back = session.pull_plan(q)
        assert back.signature() == pg.optimizer.plan(q).signature()

    def test_closed_session_rejects_ops(self, pg):
        session = pg.open_session()
        session.close()
        with pytest.raises(RuntimeError):
            session.push_cardinality_scale(2.0)

    def test_sessions_isolated(self, pg, workload):
        q = next(q for q in workload if q.n_tables >= 2)
        s1 = pg.open_session()
        s2 = pg.open_session()
        s1.push_cardinality_scale(100.0)
        # s2 must not see s1's pushed state.
        assert s2.pull_plan(q).signature() == pg.optimizer.plan(q).signature()
        s1.close()
        s2.close()

    def test_pull_execution_and_native_estimate(self, pg, workload):
        q = workload[0]
        with pg.open_session() as session:
            plan = session.pull_plan(q)
            res = session.pull_execution(plan)
            est = session.pull_native_estimate(q)
        assert res.latency_ms > 0
        assert est >= 0


class TestConsole:
    def test_native_execution_logged(self, pg, workload):
        console = PilotScopeConsole(pg)
        out = console.execute(workload[0].to_sql())
        assert out.cardinality >= 0
        assert console.query_log[0].served_by == "native"

    def test_driver_lifecycle(self, pg, workload):
        console = PilotScopeConsole(pg)
        driver = CardinalityInjectionDriver(HistogramEstimator(pg.db))
        console.register_driver(driver)
        with pytest.raises(KeyError):
            console.start_driver("nope")
        console.start_driver("cardinality_injection")
        assert console.active_drivers() == ["cardinality_injection"]
        console.execute(workload[0])
        assert console.query_log[-1].served_by == "cardinality_injection"
        console.stop_driver("cardinality_injection")
        console.execute(workload[0])
        assert console.query_log[-1].served_by == "native"

    def test_duplicate_registration_rejected(self, pg):
        console = PilotScopeConsole(pg)
        console.register_driver(BaoDriver())
        with pytest.raises(ValueError):
            console.register_driver(BaoDriver())

    def test_two_optimizer_drivers_conflict(self, pg):
        console = PilotScopeConsole(pg)
        console.register_driver(BaoDriver())
        console.register_driver(LeroDriver())
        console.start_driver("bao_driver")
        with pytest.raises(ValueError, match="already active"):
            console.start_driver("lero_driver")

    def test_driver_before_init_raises(self, pg, workload):
        driver = BaoDriver()
        with pytest.raises(RuntimeError, match="init"):
            driver.algo(workload[0])

    def test_background_updates_invoked(self, pg, workload):
        console = PilotScopeConsole(pg)
        calls = {"n": 0}

        class Spy(CardinalityInjectionDriver):
            def background_update(self):
                calls["n"] += 1

        console.register_driver(Spy(HistogramEstimator(pg.db)))
        console.start_driver("cardinality_injection")
        console.enable_background_updates(3)
        for q in workload[:7]:
            console.execute(q)
        assert calls["n"] == 2

    def test_background_update_period_validated(self, pg):
        console = PilotScopeConsole(pg)
        with pytest.raises(ValueError):
            console.enable_background_updates(0)


class TestCardinalityInjectionDriver:
    def test_injection_produces_correct_results(self, pg, workload, stats_executor):
        driver = CardinalityInjectionDriver(HistogramEstimator(pg.db))
        driver.init(pg)
        q = workload[0]
        out = driver.algo(q)
        # Whatever the plan, the *result* must equal the true cardinality.
        assert out.cardinality == stats_executor.cardinality(q)

    def test_collect_and_train_supervised(self, pg, workload):
        est = GBDTQueryEstimator(pg.db, n_estimators=10)
        driver = CardinalityInjectionDriver(est)
        driver.init(pg)
        driver.collect_training_data(workload[:15])
        driver.train()
        # Trained estimator serves injections without error.
        out = driver.algo(workload[16])
        assert out.latency_ms > 0

    def test_rejects_non_estimator(self):
        with pytest.raises(TypeError):
            CardinalityInjectionDriver(object())


class TestSteeringDrivers:
    def test_bao_driver_serves_queries(self, pg, workload):
        driver = BaoDriver(seed=0, retrain_every=10)
        driver.init(pg)
        for q in workload[:12]:
            out = driver.algo(q)
            assert out.latency_ms > 0

    def test_lero_driver_training_phase(self, pg, workload):
        driver = LeroDriver(seed=0)
        driver.init(pg)
        driver.collect_training_data(workload[:10])
        driver.train()
        out = driver.algo(workload[11])
        assert out.latency_ms > 0

    def test_lero_driver_factor_validation(self):
        with pytest.raises(ValueError):
            LeroDriver(factors=(2.0, 1.0))


class TestBoundedQueryLog:
    def test_log_capped_counters_keep_counting(self, pg, workload):
        console = PilotScopeConsole(pg, max_log_entries=5)
        for q in (workload * 3)[:12]:
            console.execute(q)
        assert len(console.query_log) == 5  # capped
        assert console.queries_served == 12  # totals survive the cap
        assert sum(console.served_by_counts.values()) == 12
        assert console.served_by_counts["native"] == 12

    def test_log_keeps_most_recent_entries(self, pg, workload):
        console = PilotScopeConsole(pg, max_log_entries=3)
        for q in workload[:5]:
            console.execute(q)
        logged = [e.sql for e in console.query_log]
        assert logged == [q.to_sql() for q in workload[2:5]]

    def test_unbounded_when_disabled(self, pg, workload):
        console = PilotScopeConsole(pg, max_log_entries=None)
        for q in (workload * 4)[:20]:
            console.execute(q)
        assert len(console.query_log) == 20
