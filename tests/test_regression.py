"""Tests for the regression-elimination plugins (Eraser, PerfGuard)."""

import numpy as np
import pytest

from repro.core.framework import CandidatePlan
from repro.costmodel import PlanFeaturizer
from repro.e2e import BaoOptimizer, OptimizationLoop
from repro.regression import Eraser, GuardChain, PerfGuard
from repro.regression.eraser import _plan_features
from repro.sql import WorkloadGenerator


@pytest.fixture(scope="module")
def featurizer(imdb_db, imdb_optimizer):
    return PlanFeaturizer(imdb_db, imdb_optimizer.estimator)


@pytest.fixture(scope="module")
def workload(imdb_db):
    return WorkloadGenerator(imdb_db, seed=90).workload(
        120, 2, 4, require_predicate=True
    )


def _first_divergent(optimizer, workload):
    """First (query, native, hinted) triple whose plans differ."""
    from repro.optimizer import HintSet

    for q in workload:
        native = optimizer.plan(q)
        risky = optimizer.plan(q, hints=HintSet(enable_hash_join=False))
        if risky.signature() != native.signature():
            return q, native, risky
    pytest.skip("no hint-sensitive query in this workload")


class TestPlanFeatures:
    def test_features_distinguish_methods(self, imdb_optimizer, workload):
        from repro.optimizer import HintSet

        q = workload[0]
        a = imdb_optimizer.plan(q)
        b = imdb_optimizer.plan(q, hints=HintSet(enable_hash_join=False))
        if a.signature() != b.signature():
            assert _plan_features(a) != _plan_features(b)


class TestEraser:
    def test_passes_native_plan_through(self, featurizer, imdb_optimizer, workload):
        eraser = Eraser(featurizer)
        q = workload[0]
        native = imdb_optimizer.plan(q)
        cand = CandidatePlan(native, "default")
        assert eraser(q, cand, native) is cand

    def test_coarse_filter_blocks_unseen(self, featurizer, imdb_optimizer, workload):
        from repro.optimizer import HintSet

        eraser = Eraser(featurizer, min_feature_count=1)
        q, native, risky = _first_divergent(imdb_optimizer, workload)
        out = eraser(q, CandidatePlan(risky, "arm"), native)
        assert out.source == "eraser:coarse"
        assert out.plan.signature() == native.signature()

    def test_seen_features_pass(self, featurizer, imdb_optimizer, imdb_simulator, workload):
        from repro.optimizer import HintSet

        eraser = Eraser(featurizer, min_feature_count=1, recluster_every=10**9)
        q, native, risky = _first_divergent(imdb_optimizer, workload)
        cand = CandidatePlan(risky, "arm")
        # Record the same plan once: its features are now 'seen'.
        eraser.record(q, cand, 1.0, 1.0)
        out = eraser(q, cand, native)
        assert out is cand

    def test_reduces_regressions_of_a_risky_chooser(
        self, imdb_optimizer, imdb_simulator, featurizer, workload
    ):
        # A frozen chooser that always proposes the nested-loop-only plan:
        # frequently a regression.  Frozen = no feedback divergence, so the
        # with/without-Eraser comparison is deterministic.
        from repro.optimizer import HintSet

        class RiskyChooser:
            def choose_plan(self, query):
                plan = imdb_optimizer.plan(
                    query, hints=HintSet(enable_hash_join=False, enable_merge_join=False)
                )
                return CandidatePlan(plan, "risky")

            def record_feedback(self, query, candidate, latency_ms):
                pass

        plain = OptimizationLoop(RiskyChooser(), imdb_simulator, imdb_optimizer)
        plain.run(workload)
        guarded = OptimizationLoop(
            RiskyChooser(),
            imdb_simulator,
            imdb_optimizer,
            guard=Eraser(featurizer, min_feature_count=2),
        )
        guarded.run(workload)
        p, g = plain.summary(tail=60), guarded.summary(tail=60)
        assert g["n_regressions"] < p["n_regressions"]
        assert g["total_latency_ms"] < p["total_latency_ms"]

    def test_intervention_rate_tracked(self, featurizer, imdb_optimizer, workload):
        eraser = Eraser(featurizer)
        q = workload[0]
        native = imdb_optimizer.plan(q)
        eraser(q, CandidatePlan(native, "default"), native)
        assert eraser.decisions == 1
        assert 0.0 <= eraser.intervention_rate <= 1.0


class TestPerfGuard:
    def test_untrained_passes_candidates(self, featurizer, imdb_optimizer, workload):
        from repro.optimizer import HintSet

        guard = PerfGuard(featurizer, confidence=0.45)
        q = workload[0]
        native = imdb_optimizer.plan(q)
        other = imdb_optimizer.plan(q, hints=HintSet(enable_hash_join=False))
        cand = CandidatePlan(other, "arm")
        out = guard(q, cand, native)
        # Untrained comparator returns P=0.5 > 1-0.45: candidate passes.
        assert out is cand

    def test_record_native_creates_pairs(
        self, featurizer, imdb_optimizer, imdb_simulator, workload
    ):
        from repro.optimizer import HintSet

        guard = PerfGuard(featurizer, retrain_every=10**9)
        made_pairs = 0
        for q in workload[:20]:
            native = imdb_optimizer.plan(q)
            other = imdb_optimizer.plan(q, hints=HintSet(enable_nested_loop=False))
            if other.signature() == native.signature():
                continue
            cand = CandidatePlan(other, "arm")
            guard.record(q, cand, imdb_simulator.execute(other).latency_ms, 1.0)
            guard.record_native(
                q, native, imdb_simulator.execute(native).latency_ms
            )
            made_pairs += 1
        if made_pairs == 0:
            pytest.skip("no plan diversity in this workload slice")
        assert guard.comparator.n_pairs >= 0  # pairs may tie-filter

    def test_eliminates_regressions_when_conservative(
        self, imdb_optimizer, imdb_simulator, featurizer, workload
    ):
        guard = PerfGuard(featurizer, confidence=0.45)
        loop = OptimizationLoop(
            BaoOptimizer(imdb_optimizer, seed=0),
            imdb_simulator,
            imdb_optimizer,
            guard=guard,
        )
        loop.run(workload)
        s = loop.summary(tail=60)
        # PerfGuard's contract: (almost) no regressions, possibly at the
        # cost of most of the improvement.
        assert s["worst_regression"] < 2.0


class _SpyGuard:
    """Stub guard: records what it saw, optionally swaps in native."""

    def __init__(self, tag, swap=False):
        self.tag = tag
        self.swap = swap
        self.seen_sources = []
        self.recorded = []

    def __call__(self, query, candidate, native_plan):
        self.seen_sources.append(candidate.source)
        if self.swap and candidate.plan.signature() != native_plan.signature():
            return CandidatePlan(plan=native_plan, source=self.tag)
        return candidate

    def record(self, query, candidate, latency_ms, native_latency_ms):
        self.recorded.append(candidate.source)


class TestGuardChain:
    def test_requires_guards(self):
        with pytest.raises(ValueError):
            GuardChain()

    def test_order_respected(self, imdb_optimizer, workload):
        # The second guard must see the *first* guard's output: after g1
        # swaps in the native plan, g2 observes source "g1", not "arm".
        q, native, risky = _first_divergent(imdb_optimizer, workload)
        g1, g2 = _SpyGuard("g1", swap=True), _SpyGuard("g2")
        chain = GuardChain(g1, g2)
        out = chain(q, CandidatePlan(risky, "arm"), native)
        assert g1.seen_sources == ["arm"]
        assert g2.seen_sources == ["g1"]
        assert out.source == "g1"
        assert chain.last_applied == ["g1"]

    def test_feedback_fans_out(self, imdb_optimizer, workload):
        q = workload[0]
        native = imdb_optimizer.plan(q)
        g1, g2 = _SpyGuard("g1"), _SpyGuard("g2")
        chain = GuardChain(g1, g2)
        chain.record(q, CandidatePlan(native, "default"), 1.0, 1.0)
        assert g1.recorded == ["default"]
        assert g2.recorded == ["default"]

    def test_eraser_and_perfguard_stacked_on_loop(
        self, featurizer, imdb_optimizer, imdb_simulator, workload
    ):
        # Eraser and PerfGuard on the same OptimizationLoop: both see every
        # decision (order: Eraser first), both learn from the shared
        # feedback stream, and an Eraser-guarded regression actually runs
        # the native plan.
        from repro.optimizer import HintSet

        class RiskyChooser:
            def choose_plan(self, query):
                plan = imdb_optimizer.plan(
                    query,
                    hints=HintSet(
                        enable_hash_join=False, enable_merge_join=False
                    ),
                )
                return CandidatePlan(plan, "risky")

            def record_feedback(self, query, candidate, latency_ms):
                pass

        eraser = Eraser(featurizer, min_feature_count=2)
        perfguard = PerfGuard(featurizer, confidence=0.45)
        chain = GuardChain(eraser, perfguard)
        loop = OptimizationLoop(
            RiskyChooser(), imdb_simulator, imdb_optimizer, guard=chain
        )
        results = loop.run(workload[:60])
        # Both guards were consulted for every query, in chain order.
        assert eraser.decisions == perfguard.decisions == len(results)
        guarded = [r for r in results if r.source.startswith("eraser")]
        assert guarded, "Eraser never intervened on the risky chooser"
        for r in guarded:
            # The fallback genuinely served the native plan.
            assert r.latency_ms == pytest.approx(r.native_latency_ms)
        # Feedback fan-out reached both members.
        assert eraser._feature_counts
        assert len(perfguard.comparator._by_query) > 0
