"""Tests for statistics, the traditional estimator, costing and planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interfaces import InjectedCardinalities, ScaledCardinalities
from repro.engine import JoinMethod, ScanMethod
from repro.engine.plans import JoinNode, ScanNode
from repro.optimizer import (
    DatabaseStats,
    HintSet,
    Optimizer,
    TraditionalCardinalityEstimator,
)
from repro.optimizer.statistics import ColumnStats
from repro.sql import ColumnRef, Op, Predicate, Query, WorkloadGenerator


class TestColumnStats:
    def test_eq_selectivity_mcv_exact(self):
        values = np.array([1] * 90 + [2] * 10)
        stats = ColumnStats.build(values, n_mcv=2)
        assert stats.eq_selectivity(1.0) == pytest.approx(0.9)
        assert stats.eq_selectivity(2.0) == pytest.approx(0.1)

    def test_eq_selectivity_unseen_value(self):
        values = np.arange(1000)
        stats = ColumnStats.build(values, n_mcv=5)
        sel = stats.eq_selectivity(123.0)
        assert 0.0 < sel < 0.01

    def test_range_selectivity_bounds(self):
        values = np.random.default_rng(0).integers(0, 100, 1000)
        stats = ColumnStats.build(values)
        assert stats.range_selectivity(-10, 1000) == pytest.approx(1.0, abs=0.01)
        assert stats.range_selectivity(200, 300) == pytest.approx(0.0, abs=0.01)

    @given(st.integers(0, 99), st.integers(0, 99))
    @settings(max_examples=30, deadline=None)
    def test_range_selectivity_close_to_truth_uniform(self, a, b):
        lo, hi = min(a, b), max(a, b)
        values = np.arange(100).repeat(10)
        stats = ColumnStats.build(values)
        true_sel = ((values >= lo) & (values <= hi)).mean()
        assert stats.range_selectivity(lo, hi) == pytest.approx(true_sel, abs=0.08)

    def test_empty_column(self):
        stats = ColumnStats.build(np.zeros(0))
        assert stats.eq_selectivity(1.0) == 0.0
        assert stats.range_selectivity(0, 1) == 0.0


class TestSelectivityDomainEdges:
    """S2/S3/S4 regressions: out-of-domain literals, open endpoints and
    degenerate histogram buckets at the domain edge."""

    def test_eq_out_of_domain_is_zero(self):
        values = np.arange(1000)
        stats = ColumnStats.build(values, n_mcv=5)
        assert stats.eq_selectivity(-5.0) == 0.0
        assert stats.eq_selectivity(1000.5) == 0.0
        assert stats.eq_selectivity(500.0) > 0.0

    def test_in_list_ignores_out_of_domain_members(self, stats_db):
        est = TraditionalCardinalityEstimator(stats_db)
        ref = ColumnRef("users", "reputation")

        def q(vals):
            return Query(
                ("users",), (), (Predicate(ref, Op.IN, frozenset(vals)),)
            )

        assert est.estimate(q({5.0, 1e12})) == pytest.approx(
            est.estimate(q({5.0}))
        )
        assert est.estimate(q({1e12, -1e12})) == 0.0

    def test_degenerate_bucket_open_endpoint(self):
        from repro.oracle.fixtures import make_probe_table

        skew = make_probe_table().values("skew")
        stats = ColumnStats.build(skew)
        point_mass = float((skew == skew.max()).mean())
        assert point_mass > 0.04  # the fixture really has mass at the max
        closed = stats.range_selectivity(5000, np.inf)
        assert closed == pytest.approx(point_mass, abs=0.01)
        assert stats.range_selectivity(5000, np.inf, inclusive_lo=False) == 0.0
        le = stats.range_selectivity(-np.inf, 5000)
        lt = stats.range_selectivity(-np.inf, 5000, inclusive_hi=False)
        assert le - lt == pytest.approx(point_mass, abs=0.01)

    def test_mcv_open_endpoint(self):
        values = np.array([1.0] * 90 + [2.0] * 10)
        stats = ColumnStats.build(values, n_mcv=2)
        assert stats.range_selectivity(1.0, 2.0) == pytest.approx(1.0)
        assert stats.range_selectivity(
            1.0, 2.0, inclusive_lo=False
        ) == pytest.approx(0.1)
        assert stats.range_selectivity(
            1.0, 2.0, inclusive_hi=False
        ) == pytest.approx(0.9)

    def test_open_point_interval_is_empty(self):
        stats = ColumnStats.build(np.arange(100))
        assert stats.range_selectivity(5, 5, inclusive_lo=False) == 0.0
        assert stats.range_selectivity(5, 5, inclusive_hi=False) == 0.0

    def test_strict_comparison_at_large_magnitude(self):
        # S4: at ~2e9 a 1e-9 epsilon shift vanishes in float64, so only
        # true open-endpoint bounds can distinguish > max from >= max.
        from repro.oracle.fixtures import make_probe_table
        from repro.storage import Database

        db = Database("probe_db", [make_probe_table()], [])
        est = TraditionalCardinalityEstimator(db)
        ref = ColumnRef("probe", "big")

        def q(op, value):
            return Query(("probe",), (), (Predicate(ref, op, value),))

        assert est.estimate(q(Op.GT, 2_000_000_000.0)) == 0.0
        assert est.estimate(q(Op.GE, 2_000_000_000.0)) > 0.0
        assert est.estimate(q(Op.LT, 1_999_999_000.0)) == 0.0


class TestDatabaseStats:
    def test_build_covers_all(self, stats_db):
        stats = DatabaseStats.build(stats_db)
        for t in stats_db.table_names:
            for c in stats_db.table(t).column_names:
                assert stats.table(t).column(c).n_rows == stats_db.table(t).n_rows

    def test_unknown_lookups(self, stats_db):
        stats = DatabaseStats.build(stats_db)
        with pytest.raises(KeyError):
            stats.table("nope")
        with pytest.raises(KeyError):
            stats.table("posts").column("nope")

    def test_refresh_tracks_appends(self):
        from repro.storage import make_stats_lite

        db = make_stats_lite(0.2, seed=1)
        stats = DatabaseStats.build(db)
        before = stats.table("posts").n_rows
        from repro.bench import apply_drift

        apply_drift(db, fraction=0.5, seed=0)
        assert stats.table("posts").n_rows == before  # stale until refresh
        stats.refresh(db, ["posts"])
        assert stats.table("posts").n_rows > before


class TestTraditionalEstimator:
    def test_single_table_accuracy_reasonable(self, stats_db, stats_executor):
        est = TraditionalCardinalityEstimator(stats_db)
        gen = WorkloadGenerator(stats_db, seed=11)
        errs = []
        for q in gen.single_table_workload("users", 30, max_predicates=1):
            true = stats_executor.cardinality(q)
            guess = est.estimate(q)
            errs.append(max(guess, 1) / max(true, 1))
        # One-predicate single-table estimates should be decent.
        assert np.median(errs) < 3.0

    def test_join_estimate_positive(self, stats_db):
        est = TraditionalCardinalityEstimator(stats_db)
        gen = WorkloadGenerator(stats_db, seed=12)
        q = gen.random_query(2, 3)
        assert est.estimate(q) >= 0.0

    def test_correlated_predicates_underestimated(self):
        # The classic failure mode motivating learned estimators: under a
        # functional dependency y = f(x), the independence assumption
        # multiplies two selectivities where the truth is just one.
        from repro.storage import Column, Database, Table

        rng = np.random.default_rng(0)
        x = rng.integers(0, 10, 2000)
        y = (x * 7 + 3) % 10  # deterministic function of x
        db = Database(
            "corr", [Table("t", [Column("x", x), Column("y", y)])], []
        )
        est = TraditionalCardinalityEstimator(db)
        q = Query(
            ("t",),
            (),
            (
                Predicate(ColumnRef("t", "x"), Op.EQ, 2.0),
                Predicate(ColumnRef("t", "y"), Op.EQ, float((2 * 7 + 3) % 10)),
            ),
        )
        true = float((x == 2).sum())  # y predicate is implied
        assert est.estimate(q) < true * 0.5


class TestHintSet:
    def test_default_enables_all(self):
        h = HintSet.default()
        assert len(h.join_methods) == 3
        assert len(h.scan_methods) == 2

    def test_cannot_disable_all_joins(self):
        with pytest.raises(ValueError):
            HintSet(
                enable_hash_join=False,
                enable_nested_loop=False,
                enable_merge_join=False,
            )

    def test_cannot_disable_all_scans(self):
        with pytest.raises(ValueError):
            HintSet(enable_seq_scan=False, enable_index_scan=False)

    def test_bao_arms_valid_and_distinct(self):
        arms = HintSet.bao_arms()
        assert len(arms) == len(set(arms))
        assert arms[0] == HintSet.default()

    def test_name_readable(self):
        assert HintSet.default().name() == "hash+nlj+merge/seq+idx"

    def test_without(self):
        h = HintSet.default().without(enable_hash_join=False)
        assert JoinMethod.HASH not in h.join_methods


class TestPlanner:
    def test_dp_at_most_greedy_cost(self, stats_optimizer, stats_db):
        gen = WorkloadGenerator(stats_db, seed=14)
        for q in gen.workload(15, 2, 5, require_predicate=True):
            dp = stats_optimizer.plan(q, algorithm="dp")
            greedy = stats_optimizer.plan(q, algorithm="greedy")
            assert stats_optimizer.cost(dp) <= stats_optimizer.cost(greedy) + 1e-6

    def test_left_deep_shape(self, stats_optimizer, stats_db):
        gen = WorkloadGenerator(stats_db, seed=15)
        q = gen.random_query(3, 5)
        plan = stats_optimizer.plan(q, algorithm="left_deep")
        for node in plan.join_nodes():
            assert isinstance(node.right, ScanNode)

    def test_plan_covers_query(self, stats_optimizer, stats_db):
        gen = WorkloadGenerator(stats_db, seed=16)
        for q in gen.workload(10, 1, 5):
            plan = stats_optimizer.plan(q)
            assert plan.root.tables == frozenset(q.tables)

    def test_hints_respected(self, stats_optimizer, stats_db):
        gen = WorkloadGenerator(stats_db, seed=17)
        hints = HintSet(enable_hash_join=False, enable_merge_join=False)
        for q in gen.workload(8, 2, 4):
            plan = stats_optimizer.plan(q, hints=hints)
            for node in plan.join_nodes():
                assert node.method is JoinMethod.NESTED_LOOP

    def test_index_only_hint_falls_back_on_predicate_free_table(
        self, stats_optimizer, stats_db
    ):
        q = Query(("users",))
        plan = stats_optimizer.plan(q, hints=HintSet(enable_seq_scan=False))
        # No predicate -> no index scan possible -> seq scan fallback.
        assert plan.root.method is ScanMethod.SEQ

    def test_unknown_algorithm(self, stats_optimizer, stats_db):
        q = WorkloadGenerator(stats_db, seed=18).random_query(1, 2)
        with pytest.raises(ValueError):
            stats_optimizer.plan(q, algorithm="quantum")

    def test_estimator_swap_changes_some_plans(self, stats_db, stats_executor):
        opt = Optimizer(stats_db)

        class Oracle:
            def estimate(self, query):
                return stats_executor.cardinality(query)

        oracle_opt = opt.with_estimator(Oracle())
        gen = WorkloadGenerator(stats_db, seed=19)
        changed = 0
        for q in gen.workload(25, 2, 5, require_predicate=True):
            if opt.plan(q).signature() != oracle_opt.plan(q).signature():
                changed += 1
        assert changed > 0

    def test_single_table_plan_is_scan(self, stats_optimizer, stats_db):
        q = WorkloadGenerator(stats_db, seed=20).single_table_workload("posts", 1)[0]
        plan = stats_optimizer.plan(q)
        assert isinstance(plan.root, ScanNode)


class TestEstimatorWrappers:
    def test_injection_overrides(self, stats_db):
        base = TraditionalCardinalityEstimator(stats_db)
        wrapped = InjectedCardinalities(base)
        q = Query(("users",))
        wrapped.inject(q, 42.0)
        assert wrapped.estimate(q) == 42.0

    def test_injection_fallback(self, stats_db):
        base = TraditionalCardinalityEstimator(stats_db)
        wrapped = InjectedCardinalities(base)
        q = Query(("users",))
        assert wrapped.estimate(q) == base.estimate(q)

    def test_injection_rejects_negative(self, stats_db):
        wrapped = InjectedCardinalities(TraditionalCardinalityEstimator(stats_db))
        with pytest.raises(ValueError):
            wrapped.inject(Query(("users",)), -1.0)

    def test_injection_clear(self, stats_db):
        base = TraditionalCardinalityEstimator(stats_db)
        wrapped = InjectedCardinalities(base)
        q = Query(("users",))
        wrapped.inject(q, 42.0)
        wrapped.clear()
        assert wrapped.estimate(q) == base.estimate(q)

    def test_scaling_grows_with_join_count(self, stats_db):
        base = TraditionalCardinalityEstimator(stats_db)
        scaled = ScaledCardinalities(base, 10.0)
        gen = WorkloadGenerator(stats_db, seed=21)
        q3 = next(q for q in gen.workload(50, 3, 3) if q.n_tables == 3)
        assert scaled.estimate(q3) == pytest.approx(base.estimate(q3) * 100.0)

    def test_scaling_rejects_nonpositive(self, stats_db):
        base = TraditionalCardinalityEstimator(stats_db)
        with pytest.raises(ValueError):
            ScaledCardinalities(base, 0.0)


class TestPlanCoster:
    def test_cost_additive_over_nodes(self, stats_optimizer, stats_db):
        gen = WorkloadGenerator(stats_db, seed=22)
        q = gen.random_query(2, 4, require_predicate=True)
        plan = stats_optimizer.plan(q)
        total = stats_optimizer.cost(plan)
        assert total > 0

    def test_exact_cards_make_cost_match_simulator_with_same_constants(
        self, stats_db, stats_executor
    ):
        from repro.engine import ExecutionSimulator, SimulatorConfig
        from repro.engine.cost_formulas import CostConstants

        class Oracle:
            def estimate(self, query):
                return stats_executor.cardinality(query)

        constants = CostConstants()
        opt = Optimizer(stats_db, estimator=Oracle(), constants=constants)
        sim = ExecutionSimulator(
            stats_db, SimulatorConfig(constants=constants, ms_per_cost_unit=1.0)
        )
        q = WorkloadGenerator(stats_db, seed=23).random_query(2, 3, require_predicate=True)
        plan = opt.plan(q)
        assert opt.cost(plan) == pytest.approx(sim.execute(plan).latency_ms, rel=1e-9)
