"""Tests for plan featurization and the learned cost models."""

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro.core.errors import ConfigError
from repro.costmodel import (
    ConcurrentCostModel,
    ConcurrentWorkload,
    LinearPlanCostModel,
    PlanFeaturizer,
    TreeConvCostModel,
    TreeRecurrentCostModel,
    ZeroShotCostModel,
    plan_to_tree_arrays,
)
from repro.ml.treeconv import PlanTreeBatch
from repro.sql import WorkloadGenerator


@pytest.fixture(scope="module")
def featurizer(imdb_db, imdb_optimizer):
    return PlanFeaturizer(imdb_db, imdb_optimizer.estimator)


@pytest.fixture(scope="module")
def split_corpus(imdb_plan_corpus):
    plans, lats = imdb_plan_corpus
    n = int(len(plans) * 0.75)
    return plans[:n], lats[:n], plans[n:], lats[n:]


class TestPlanFeaturizer:
    def test_node_features_shape(self, featurizer, imdb_plan_corpus):
        plans, _ = imdb_plan_corpus
        plan = plans[0]
        for node in plan.walk():
            vec = featurizer.node_features(plan, node)
            assert vec.shape == (featurizer.node_dim,)

    def test_tree_arrays_batchable(self, featurizer, imdb_plan_corpus):
        plans, _ = imdb_plan_corpus
        trees = [plan_to_tree_arrays(p, featurizer) for p in plans[:5]]
        batch = PlanTreeBatch.from_trees(trees)
        assert batch.n_trees == 5

    def test_tree_arrays_preorder_root_first(self, featurizer, imdb_plan_corpus):
        plans, _ = imdb_plan_corpus
        plan = next(p for p in plans if len(p.join_nodes()) >= 1)
        feats, left, right = plan_to_tree_arrays(plan, featurizer)
        assert feats.shape[0] == plan.root.n_nodes
        assert left[0] >= 0 and right[0] >= 0  # root is a join

    def test_flat_features(self, featurizer, imdb_plan_corpus):
        plans, _ = imdb_plan_corpus
        vec = featurizer.flat(plans[0])
        assert vec.shape == (featurizer.flat_dim,)
        assert featurizer.flat_batch(plans[:4]).shape == (4, featurizer.flat_dim)

    def test_transferable_has_no_table_identity(self, featurizer, imdb_plan_corpus):
        plans, _ = imdb_plan_corpus
        plan = plans[0]
        for node in plan.walk():
            vec = featurizer.transferable_node(plan, node)
            assert vec.shape == (featurizer.transferable_dim,)
        # Dim must not depend on the number of tables.
        assert featurizer.transferable_dim < featurizer.node_dim


class TestPointwiseCostModels:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda f: LinearPlanCostModel(f),
            lambda f: TreeConvCostModel(f, epochs=25),
            lambda f: TreeRecurrentCostModel(f, epochs=15),
        ],
        ids=["linear", "treeconv", "recurrent"],
    )
    def test_rank_correlation_on_holdout(self, factory, featurizer, split_corpus):
        train_p, train_l, test_p, test_l = split_corpus
        model = factory(featurizer).fit(train_p, train_l)
        preds = np.array([model.predict_latency(p) for p in test_p])
        rho = spearmanr(preds, test_l).statistic
        assert rho > 0.5

    def test_predict_before_fit_raises(self, featurizer):
        with pytest.raises(RuntimeError):
            TreeConvCostModel(featurizer).predict_latency(None)

    def test_fit_rejects_empty(self, featurizer):
        with pytest.raises(ValueError):
            LinearPlanCostModel(featurizer).fit([], np.zeros(0))

    def test_predictions_nonnegative(self, featurizer, split_corpus):
        train_p, train_l, test_p, _ = split_corpus
        model = TreeConvCostModel(featurizer, epochs=10).fit(train_p, train_l)
        assert all(model.predict_latency(p) >= 0 for p in test_p)

    def test_recurrent_embedding(self, featurizer, split_corpus):
        train_p, train_l, _, _ = split_corpus
        model = TreeRecurrentCostModel(featurizer, epochs=5).fit(
            train_p[:20], train_l[:20]
        )
        emb = model.embed(train_p[0])
        assert emb.shape == (model.hidden,)


class TestZeroShot:
    def test_transfers_to_unseen_database(
        self, imdb_db, imdb_optimizer, imdb_plan_corpus, stats_db, stats_optimizer, stats_simulator
    ):
        plans, lats = imdb_plan_corpus
        src_feat = PlanFeaturizer(imdb_db, imdb_optimizer.estimator)
        model = ZeroShotCostModel(epochs=30, seed=0)
        model.fit([(src_feat, list(plans), lats)])
        # Target: a database the model has never seen.
        tgt_feat = PlanFeaturizer(stats_db, stats_optimizer.estimator)
        gen = WorkloadGenerator(stats_db, seed=60)
        tgt_plans = [
            stats_optimizer.plan(q)
            for q in gen.workload(25, 2, 4, require_predicate=True)
        ]
        tgt_lats = np.array(
            [stats_simulator.execute(p).latency_ms for p in tgt_plans]
        )
        preds = np.array([model.predict_latency(p, tgt_feat) for p in tgt_plans])
        rho = spearmanr(preds, tgt_lats).statistic
        assert rho > 0.3  # zero-shot: weaker but meaningful transfer

    def test_requires_training_sets(self):
        with pytest.raises(ValueError):
            ZeroShotCostModel().fit([])

    def test_dim_mismatch_raises_config_error(
        self, imdb_db, imdb_optimizer, imdb_plan_corpus
    ):
        """A featurizer with the wrong transferable dimension must fail
        with a typed, self-diagnosing error -- not an opaque numpy shape
        error from inside the MLP (the old behavior)."""

        class _WideFeaturizer(PlanFeaturizer):
            def transferable_node(self, plan, node):
                row = super().transferable_node(plan, node)
                return np.concatenate([row, [0.0]])

        plans, lats = imdb_plan_corpus
        feat = PlanFeaturizer(imdb_db, imdb_optimizer.estimator)
        model = ZeroShotCostModel(epochs=5, seed=0)
        model.fit([(feat, list(plans[:10]), lats[:10])])
        wide = _WideFeaturizer(imdb_db, imdb_optimizer.estimator)
        with pytest.raises(ConfigError) as exc:
            model.predict_latency(plans[0], wide)
        msg = str(exc.value)
        assert "_WideFeaturizer" in msg
        # both dimensions are named so the mismatch is diagnosable
        assert str(feat.transferable_node(plans[0], next(plans[0].walk())).shape[0]) in msg

    def test_fit_rejects_mixed_dims(
        self, imdb_db, imdb_optimizer, imdb_plan_corpus
    ):
        class _WideFeaturizer(PlanFeaturizer):
            def transferable_node(self, plan, node):
                row = super().transferable_node(plan, node)
                return np.concatenate([row, [0.0]])

        plans, lats = imdb_plan_corpus
        feat = PlanFeaturizer(imdb_db, imdb_optimizer.estimator)
        wide = _WideFeaturizer(imdb_db, imdb_optimizer.estimator)
        with pytest.raises(ConfigError):
            ZeroShotCostModel(epochs=5, seed=0).fit(
                [
                    (feat, list(plans[:5]), lats[:5]),
                    (wide, list(plans[5:10]), lats[5:10]),
                ]
            )

    def test_samples_per_plan_subsamples(
        self, imdb_db, imdb_optimizer, imdb_plan_corpus, monkeypatch
    ):
        """``samples_per_plan`` really caps each plan's node rows (the
        old signature accepted the argument and silently ``del``'d it)."""
        import repro.costmodel.zeroshot as zs_mod

        plans, lats = imdb_plan_corpus
        feat = PlanFeaturizer(imdb_db, imdb_optimizer.estimator)
        probe = ZeroShotCostModel()
        assert max(
            probe._plan_matrix(p, feat).shape[0] for p in plans[:10]
        ) > 1, "corpus has no multi-node plans; subsampling untestable"
        captured = {}
        real_mlp = zs_mod.MLP

        class _SpyMLP(real_mlp):
            def fit(self, x, y, **kwargs):
                captured["n_rows"] = x.shape[0]
                return super().fit(x, y, **kwargs)

        monkeypatch.setattr(zs_mod, "MLP", _SpyMLP)
        capped = ZeroShotCostModel(epochs=5, seed=0)
        capped.fit([(feat, list(plans[:10]), lats[:10])], samples_per_plan=1)
        # exactly one training row per plan reached the MLP
        assert captured["n_rows"] == 10
        # predictions still sum over *all* nodes and stay finite
        pred = capped.predict_latency(plans[0], feat)
        assert np.isfinite(pred) and pred >= 0.0

    def test_samples_per_plan_validation_and_default(
        self, imdb_db, imdb_optimizer, imdb_plan_corpus
    ):
        plans, lats = imdb_plan_corpus
        feat = PlanFeaturizer(imdb_db, imdb_optimizer.estimator)
        with pytest.raises(ConfigError):
            ZeroShotCostModel(epochs=5, seed=0).fit(
                [(feat, list(plans[:5]), lats[:5])], samples_per_plan=0
            )
        # a cap larger than any plan is identical to the None default
        a = ZeroShotCostModel(epochs=5, seed=0)
        a.fit([(feat, list(plans[:10]), lats[:10])])
        b = ZeroShotCostModel(epochs=5, seed=0)
        b.fit([(feat, list(plans[:10]), lats[:10])], samples_per_plan=10_000)
        for p in plans[:5]:
            assert a.predict_latency(p, feat) == pytest.approx(
                b.predict_latency(p, feat)
            )


class TestConcurrent:
    def test_interference_increases_latency(self, imdb_simulator, imdb_plan_corpus):
        plans, _ = imdb_plan_corpus
        cw = ConcurrentWorkload(imdb_simulator, alpha=0.6)
        mix = plans[:4]
        solo = np.array([imdb_simulator.execute(p).latency_ms for p in mix])
        together = cw.run(mix)
        assert np.all(together >= solo - 1e-9)
        assert together.sum() > solo.sum()

    def test_disjoint_tables_do_not_interfere(self, imdb_simulator, imdb_optimizer, imdb_db):
        gen = WorkloadGenerator(imdb_db, seed=61)
        # Two single-table queries on different tables share nothing.
        qa = gen.single_table_workload("person", 1)[0]
        qb = gen.single_table_workload("company", 1)[0]
        pa, pb = imdb_optimizer.plan(qa), imdb_optimizer.plan(qb)
        cw = ConcurrentWorkload(imdb_simulator, alpha=0.6)
        together = cw.run([pa, pb])
        solo = np.array([imdb_simulator.execute(pa).latency_ms, imdb_simulator.execute(pb).latency_ms])
        assert np.allclose(together, solo)

    def test_model_learns_interference(self, featurizer, imdb_simulator, imdb_plan_corpus):
        plans, _ = imdb_plan_corpus
        cw = ConcurrentWorkload(imdb_simulator)
        rng = np.random.default_rng(0)
        mixes = []
        for _ in range(40):
            idx = rng.choice(len(plans), size=4, replace=False)
            mixes.append([plans[i] for i in idx])
        lats = [cw.run(m) for m in mixes]
        model = ConcurrentCostModel(featurizer, epochs=40, seed=0)
        model.fit(mixes[:30], lats[:30])
        preds, truths = [], []
        for m, l in zip(mixes[30:], lats[30:]):
            preds.extend(model.predict_mix(m))
            truths.extend(l)
        rho = spearmanr(preds, truths).statistic
        assert rho > 0.5

    def test_empty_mix(self, imdb_simulator):
        cw = ConcurrentWorkload(imdb_simulator)
        assert cw.run([]).shape == (0,)

    def test_predict_before_fit(self, featurizer):
        with pytest.raises(RuntimeError):
            ConcurrentCostModel(featurizer).predict_mix([])
