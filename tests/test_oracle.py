"""Tests for the plan-correctness oracle.

Covers the four oracle layers (differential plan equivalence, metamorphic
transforms, estimator contracts, sampled online audit), the purpose-built
fixtures, the seeded-mutation catalogue that validates the oracle against
re-introduced bugs, and the serving-runtime integration.
"""

import numpy as np
import pytest

from repro.cardest.querydriven import LinearQueryEstimator
from repro.engine import CardinalityExecutor
from repro.optimizer import Optimizer, TraditionalCardinalityEstimator
from repro.oracle import (
    EstimatorContractChecker,
    MetamorphicSuite,
    OnlineAuditor,
    OracleReport,
    PlanEquivalenceChecker,
    PlanInterpreter,
    PlanResultTooLarge,
    ReferenceTooLarge,
    Violation,
    apply_mutation,
    mutation_names,
    reference_count,
)
from repro.oracle.fixtures import chain_query, make_deep_chain, make_probe_table
from repro.oracle.metamorphic import TRANSFORMS
from repro.sql import ColumnRef, Join, Op, Predicate, Query, WorkloadGenerator
from repro.sql.query import query_hash


@pytest.fixture(scope="module")
def oracle_workload(stats_db):
    gen = WorkloadGenerator(stats_db, seed=21)
    return gen.workload(10, 1, 3, require_predicate=True)


@pytest.fixture(scope="module")
def triangle_query():
    """The stats_lite cyclic join (posts-users, comments-posts, comments-users)."""
    return Query(
        ("comments", "posts", "users"),
        (
            Join(ColumnRef("posts", "owner_id"), ColumnRef("users", "id")),
            Join(ColumnRef("comments", "post_id"), ColumnRef("posts", "id")),
            Join(ColumnRef("comments", "user_id"), ColumnRef("users", "id")),
        ),
    )


class TestReferenceCount:
    def test_matches_executor_on_workload(
        self, stats_db, stats_executor, oracle_workload
    ):
        for q in oracle_workload:
            assert reference_count(stats_db, q) == stats_executor.cardinality(q)

    def test_cyclic_query(self, stats_db, stats_executor, triangle_query):
        assert reference_count(
            stats_db, triangle_query
        ) == stats_executor.cardinality(triangle_query)

    def test_row_guard(self, stats_db, triangle_query):
        with pytest.raises(ReferenceTooLarge):
            reference_count(stats_db, triangle_query, max_rows=1)

    def test_or_and_in_predicates(self, stats_db, stats_executor):
        from repro.sql.query import OrPredicate

        ref = ColumnRef("users", "reputation")
        q = Query(
            ("users",),
            (),
            (
                OrPredicate(
                    ref,
                    (
                        Predicate(ref, Op.LE, 2.0),
                        Predicate(ref, Op.BETWEEN, (5.0, 9.0)),
                    ),
                ),
                Predicate(
                    ColumnRef("users", "upvotes"), Op.IN, frozenset({2.0, 3.0})
                ),
            ),
        )
        assert reference_count(stats_db, q) == stats_executor.cardinality(q)


class TestPlanInterpreter:
    def test_plans_reproduce_exact_count(
        self, stats_db, stats_executor, stats_optimizer, oracle_workload
    ):
        interp = PlanInterpreter(stats_db)
        for q in oracle_workload:
            plan = stats_optimizer.plan(q)
            assert interp.count(plan) == stats_executor.cardinality(q)

    def test_row_guard(self, stats_db, stats_optimizer, oracle_workload):
        joined = next(q for q in oracle_workload if q.n_tables >= 2)
        interp = PlanInterpreter(stats_db, max_rows=0)
        with pytest.raises(PlanResultTooLarge):
            interp.count(stats_optimizer.plan(joined))


class TestPlanEquivalence:
    def test_clean_workload(self, stats_db, oracle_workload):
        checker = PlanEquivalenceChecker(stats_db)
        assert checker.check_workload(oracle_workload) == []
        assert checker.plans_checked > len(oracle_workload)

    def test_catches_executor_bug(self, stats_db, oracle_workload):
        with apply_mutation("lookup_missing_counts_one"):
            checker = PlanEquivalenceChecker(stats_db)
            violations = checker.check_workload(oracle_workload)
        assert violations
        assert {v.layer for v in violations} == {"plan_equivalence"}


class TestMetamorphic:
    def test_clean_workload(self, stats_db, oracle_workload):
        suite = MetamorphicSuite(stats_db)
        assert suite.check_workload(oracle_workload) == []
        assert suite.checks_run > 0

    def test_every_transform_applies_somewhere(self, stats_db):
        ref = ColumnRef("posts", "score")
        q = Query(
            ("posts", "users"),
            (Join(ColumnRef("posts", "owner_id"), ColumnRef("users", "id")),),
            (
                Predicate(ref, Op.BETWEEN, (1.0, 8.0)),
                Predicate(
                    ColumnRef("users", "upvotes"), Op.IN, frozenset({2.0, 3.0})
                ),
            ),
        )
        for name, (transform, _) in TRANSFORMS.items():
            assert transform(stats_db, q) is not None, name

    def test_singleton_in_becomes_equality(self, stats_db):
        q = Query(
            ("users",),
            (),
            (Predicate(ColumnRef("users", "upvotes"), Op.IN, frozenset({2.0})),),
        )
        transformed = TRANSFORMS["expand_in_to_or"][0](stats_db, q)
        assert transformed.predicates[0].op is Op.EQ

    def test_permutation_preserves_hash(self, stats_db, oracle_workload):
        for q in oracle_workload:
            permuted = TRANSFORMS["permute_tables"][0](stats_db, q)
            if permuted is not None:
                assert query_hash(permuted) == query_hash(q)

    def test_catches_broken_canonicalization(self, stats_db, oracle_workload):
        with apply_mutation("join_normalize_identity"):
            suite = MetamorphicSuite(stats_db)
            violations = suite.check_workload(oracle_workload)
        assert any("query_hash" in v.check for v in violations)


class TestContracts:
    def test_clean_traditional(self, stats_db, oracle_workload):
        checker = EstimatorContractChecker(
            stats_db, TraditionalCardinalityEstimator(stats_db)
        )
        assert checker.check_workload(oracle_workload) == []
        assert checker.check_domain_contracts() == []

    def test_catches_negative_estimates(self, stats_db, oracle_workload):
        with apply_mutation("estimate_negative"):
            checker = EstimatorContractChecker(
                stats_db, TraditionalCardinalityEstimator(stats_db)
            )
            violations = checker.check_workload(oracle_workload[:3])
        assert any(v.check == "non_negative" for v in violations)

    def test_version_bump(self, stats_db, stats_executor, oracle_workload):
        cards = np.array(
            [stats_executor.cardinality(q) for q in oracle_workload], dtype=float
        )
        est = LinearQueryEstimator(stats_db).fit(list(oracle_workload), cards)
        checker = EstimatorContractChecker(stats_db, est, monotonic=False)
        assert (
            checker.check_version_bump(
                lambda e: e.fit(list(oracle_workload), cards), label="refit"
            )
            == []
        )
        with apply_mutation("version_bump_dropped"):
            violations = checker.check_version_bump(
                lambda e: e.fit(list(oracle_workload), cards), label="refit"
            )
        assert violations and violations[0].check == "version_bump:refit"

    def test_stateless_estimator_skipped(self, stats_db):
        checker = EstimatorContractChecker(
            stats_db, TraditionalCardinalityEstimator(stats_db)
        )
        assert checker.check_version_bump(lambda e: None) == []


class TestDeepChainFixture:
    def test_exact_past_float53(self):
        db, q, expected = make_deep_chain(8)
        assert expected > 2**53
        # An odd total above 2**53 has no float64 representation, so any
        # float accumulation would visibly diverge.
        assert expected % 2 == 1
        assert int(float(expected)) != expected
        assert CardinalityExecutor(db).cardinality(q) == expected
        assert reference_count(db, q) == expected

    def test_probe_columns(self):
        probe = make_probe_table()
        skew = probe.values("skew")
        big = probe.values("big")
        assert float(big.max()) == 2_000_000_000.0
        assert int((big == big.max()).sum()) >= 10  # point mass at the max
        assert int((skew == skew.max()).sum()) >= 20  # degenerate buckets

    def test_chain_query_shape(self):
        q = chain_query(4)
        assert q.n_tables == 4 and len(q.joins) == 3


class TestMutationCatalogue:
    def test_catalogue_size_and_reversibility(self, stats_db, stats_executor):
        assert len(mutation_names()) >= 10
        q = Query(
            ("users",),
            (),
            (Predicate(ColumnRef("users", "reputation"), Op.LE, 40.0),),
        )
        baseline = CardinalityExecutor(stats_db).cardinality(q)
        for name in mutation_names():
            with apply_mutation(name):
                pass  # enter/exit must restore every patch
            assert CardinalityExecutor(stats_db).cardinality(q) == baseline

    def test_float64_mutation_caught_by_chain_differential(self):
        db, q, expected = make_deep_chain(8)
        with apply_mutation("tree_count_float64"):
            got = CardinalityExecutor(db).cardinality(q)
        assert got != expected
        assert reference_count(db, q) == expected

    def test_unknown_mutation(self):
        with pytest.raises(KeyError):
            apply_mutation("nope")


class TestOnlineAuditor:
    def test_sampling_cadence(self, stats_db, stats_executor, oracle_workload):
        auditor = OnlineAuditor(stats_db, every=4)
        tags = [
            auditor.observe(q, stats_executor.cardinality(q))
            for q in oracle_workload[:8]
        ]
        assert [bool(t) for t in tags] == [True, False, False, False] * 2
        assert set(t for t in tags if t) == {"ok"}
        assert auditor.stats()["audited"] == 2
        assert auditor.n_violations == 0

    def test_detects_wrong_cardinality(self, stats_db, stats_executor, oracle_workload):
        auditor = OnlineAuditor(stats_db, every=1)
        q = oracle_workload[0]
        assert auditor.observe(q, stats_executor.cardinality(q) + 1) == "violation"
        assert auditor.n_violations == 1
        assert auditor.report.violations[0].check == "served_cardinality"

    def test_observe_plan(self, stats_db, stats_optimizer, oracle_workload):
        auditor = OnlineAuditor(stats_db, every=1)
        q = oracle_workload[0]
        assert auditor.observe_plan(q, stats_optimizer.plan(q)) == "ok"
        # A plan for a *different* query must not reproduce q's count
        # (picked so the counts genuinely differ).
        other = next(
            o
            for o in oracle_workload[1:]
            if auditor._executor.cardinality(o)
            != auditor._executor.cardinality(q)
        )
        assert auditor.observe_plan(q, stats_optimizer.plan(other)) == "violation"

    def test_bus_counters(self, stats_db, stats_executor, oracle_workload):
        from repro.serve.telemetry import TelemetryBus

        bus = TelemetryBus()
        auditor = OnlineAuditor(stats_db, every=1, telemetry=bus)
        q = oracle_workload[0]
        auditor.observe(q, stats_executor.cardinality(q))
        auditor.observe(q, stats_executor.cardinality(q) + 7)
        counters = bus.snapshot()["counters"]
        assert counters["oracle.audited"] == 2
        assert counters["oracle.violations"] == 1

    def test_invalid_period(self, stats_db):
        with pytest.raises(ValueError):
            OnlineAuditor(stats_db, every=0)


class TestServingIntegration:
    def test_audited_run_is_deterministic(self):
        from repro.serve.scenarios import steady_state_scenario

        snaps = []
        for _ in range(2):
            scenario = steady_state_scenario(
                scale=0.2, n_queries=32, n_sessions=4, audit_every=8
            )
            scenario.run()
            snaps.append(scenario.runtime.telemetry.to_json())
        assert snaps[0] == snaps[1]

    def test_audit_counters_and_trace_tags(self):
        from repro.serve.scenarios import steady_state_scenario

        scenario = steady_state_scenario(
            scale=0.2, n_queries=32, n_sessions=4, audit_every=8
        )
        scenario.run()
        snap = scenario.runtime.telemetry.snapshot()
        assert snap["counters"]["oracle.audited"] == 4
        assert "oracle.violations" not in snap["counters"]
        tagged = [t for t in snap["traces"] if t["audit"]]
        assert len(tagged) == 4
        assert {t["audit"] for t in tagged} == {"ok"}
        assert scenario.auditor.n_violations == 0

    def test_loop_audit(self, stats_db, stats_optimizer, stats_simulator):
        from repro.e2e.bao import BaoOptimizer
        from repro.e2e.loop import OptimizationLoop

        gen = WorkloadGenerator(stats_db, seed=33)
        queries = gen.workload(12, 1, 3, require_predicate=True)
        auditor = OnlineAuditor(stats_db, every=4)
        loop = OptimizationLoop(
            BaoOptimizer(stats_optimizer, seed=0),
            stats_simulator,
            stats_optimizer,
            auditor=auditor,
        )
        loop.run(queries)
        assert auditor.n_observed == 12
        assert auditor.stats()["audited"] == 3
        assert auditor.n_violations == 0


class TestOracleReport:
    def test_canonical_json(self):
        a = Violation("contract", "finite", "x", "f", "nan")
        b = Violation("audit", "served_cardinality", "y", "3", "4", detail="d")
        r1 = OracleReport()
        r1.extend([a, b])
        r1.record_check("contract", 2)
        r2 = OracleReport()
        r2.extend([b, a])  # insertion order must not matter
        r2.record_check("contract")
        r2.record_check("contract")
        assert r1.to_json() == r2.to_json()
        assert not r1.clean and r1.n_violations == 2
        assert r1.by_layer() == {"contract": 1, "audit": 1}

    def test_merge(self):
        r1, r2 = OracleReport(), OracleReport()
        r1.record_check("metamorphic", 3)
        r2.extend([Violation("metamorphic", "c", "s", "1", "2")])
        r2.record_check("metamorphic", 2)
        r1.merge(r2)
        assert r1.checks == {"metamorphic": 5}
        assert r1.n_violations == 1
