"""Tests for the unified framework and the end-to-end learned optimizers."""

import numpy as np
import pytest

from repro.core.framework import CandidatePlan, LearnedOptimizer
from repro.costmodel import PlanFeaturizer
from repro.e2e import (
    AutoSteerOptimizer,
    BalsaOptimizer,
    BaoOptimizer,
    CardinalityScalingExploration,
    EnsembleLatencyModel,
    HintSetExploration,
    HyperQOOptimizer,
    LeadingTableExploration,
    LeonOptimizer,
    LeroOptimizer,
    NeoOptimizer,
    OptimizationLoop,
    PairwisePlanComparator,
    TreeConvLatencyModel,
)
from repro.e2e.autosteer import discover_hint_sets
from repro.sql import WorkloadGenerator


@pytest.fixture(scope="module")
def workload(imdb_db):
    gen = WorkloadGenerator(imdb_db, seed=80)
    return gen.workload(60, 2, 4, require_predicate=True)


@pytest.fixture(scope="module")
def featurizer(imdb_db, imdb_optimizer):
    return PlanFeaturizer(imdb_db, imdb_optimizer.estimator)


class TestExplorationStrategies:
    def test_hint_exploration_includes_default(self, imdb_optimizer, workload):
        strat = HintSetExploration(imdb_optimizer)
        cands = strat.candidates(workload[0])
        assert cands
        assert cands[0].source == "default"
        sigs = [c.plan.signature() for c in cands]
        assert len(sigs) == len(set(sigs))  # deduplicated

    def test_scaling_exploration_default_first(self, imdb_optimizer, workload):
        strat = CardinalityScalingExploration(imdb_optimizer)
        cands = strat.candidates(workload[0])
        assert cands[0].source == "default"

    def test_leading_exploration_orders(self, imdb_optimizer, workload):
        strat = LeadingTableExploration(imdb_optimizer)
        q = next(q for q in workload if q.n_tables >= 3)
        cands = strat.candidates(q)
        assert any(c.source.startswith("leading=") for c in cands)
        for c in cands:
            assert c.plan.root.tables == frozenset(q.tables)

    def test_scaling_requires_factors(self, imdb_optimizer):
        with pytest.raises(ValueError):
            CardinalityScalingExploration(imdb_optimizer, factors=())


class TestRiskModels:
    def _feed(self, model, imdb_optimizer, imdb_simulator, queries, strat):
        for q in queries:
            for cand in strat.candidates(q)[:3]:
                model.observe(cand, imdb_simulator.execute(cand.plan).latency_ms)
        model.retrain()

    def test_treeconv_warmup_prefers_default(self, featurizer, imdb_optimizer, workload):
        model = TreeConvLatencyModel(featurizer, seed=0)
        strat = HintSetExploration(imdb_optimizer)
        cands = strat.candidates(workload[0])
        scores = model.scores(cands)
        assert scores[0] == min(scores)

    def test_treeconv_learns_latency_ranking(
        self, featurizer, imdb_optimizer, imdb_simulator, workload
    ):
        model = TreeConvLatencyModel(featurizer, thompson=False, seed=0)
        strat = HintSetExploration(imdb_optimizer)
        self._feed(model, imdb_optimizer, imdb_simulator, workload[:25], strat)
        assert model._trained
        cands = strat.candidates(workload[30])
        preds = model.predict(cands)
        lats = np.array([imdb_simulator.execute(c.plan).latency_ms for c in cands])
        # Predicted-best should be among the actually-reasonable plans.
        best = int(np.argmin(preds))
        assert lats[best] <= np.median(lats) * 1.5

    def test_pairwise_comparator_orders_pairs(
        self, featurizer, imdb_optimizer, imdb_simulator, workload
    ):
        model = PairwisePlanComparator(featurizer, seed=0)
        strat = CardinalityScalingExploration(imdb_optimizer)
        self._feed(model, imdb_optimizer, imdb_simulator, workload[:25], strat)
        if not model._trained:
            pytest.skip("not enough distinct pairs in this workload")
        correct = 0
        total = 0
        for q in workload[30:40]:
            cands = strat.candidates(q)
            if len(cands) < 2:
                continue
            a, b = cands[0].plan, cands[1].plan
            la = imdb_simulator.execute(a).latency_ms
            lb = imdb_simulator.execute(b).latency_ms
            if abs(la - lb) / max(la, lb) < 0.1:
                continue
            p = model.compare(a, b)
            correct += int((p > 0.5) == (la < lb))
            total += 1
        if total >= 4:
            assert correct / total >= 0.5

    def test_ensemble_variance_filter_behind_default(self, featurizer, imdb_optimizer, workload):
        model = EnsembleLatencyModel(featurizer, seed=0)
        strat = HintSetExploration(imdb_optimizer)
        cands = strat.candidates(workload[0])
        scores = model.scores(cands)  # untrained: default wins
        assert scores[0] == min(scores)


class TestLearnedOptimizerFramework:
    def test_choose_plan_requires_candidates(self, imdb_optimizer):
        class Empty:
            def candidates(self, query):
                return []

        class Dummy:
            def scores(self, c):
                return []

            def observe(self, c, l):
                pass

            def retrain(self):
                pass

        lo = LearnedOptimizer(Empty(), Dummy())
        with pytest.raises(ValueError):
            lo.choose_plan(None)

    def test_feedback_triggers_retrain(self, imdb_optimizer, featurizer, workload):
        calls = {"retrain": 0}

        class Spy(TreeConvLatencyModel):
            def retrain(self):
                calls["retrain"] += 1

        bao = BaoOptimizer(imdb_optimizer, retrain_every=5, seed=0)
        bao.risk_model = Spy(featurizer, seed=0)
        for q in workload[:5]:
            cand = bao.choose_plan(q)
            bao.record_feedback(q, cand, 1.0)
        assert calls["retrain"] == 1
        assert len(bao.history) == 5


def run_loop(learned, imdb_optimizer, imdb_simulator, workload, guard=None):
    loop = OptimizationLoop(learned, imdb_simulator, imdb_optimizer, guard=guard)
    loop.run(workload)
    return loop


class TestEndToEndOptimizers:
    def test_bao_improves_over_native(self, imdb_db, imdb_optimizer, imdb_simulator):
        # Needs enough feedback for the Thompson-sampled model to converge:
        # 120 queries, judged on the post-warm-up tail.
        long_workload = WorkloadGenerator(imdb_db, seed=80).workload(
            120, 2, 4, require_predicate=True
        )
        bao = BaoOptimizer(imdb_optimizer, seed=0)
        loop = run_loop(bao, imdb_optimizer, imdb_simulator, long_workload)
        s = loop.summary(tail=60)
        assert s["workload_speedup"] > 1.1

    def test_lero_offline_training_collects_pairs(
        self, imdb_optimizer, imdb_simulator, workload
    ):
        lero = LeroOptimizer(imdb_optimizer, seed=0)
        n_pairs = lero.train_offline(workload[:20], imdb_simulator.latency)
        assert n_pairs > 0

    def test_lero_rejects_bad_factor_order(self, imdb_optimizer):
        with pytest.raises(ValueError):
            LeroOptimizer(imdb_optimizer, factors=(0.5, 1.0))

    def test_neo_bootstrap_then_search(self, imdb_optimizer, imdb_simulator, workload):
        neo = NeoOptimizer(imdb_optimizer, seed=0, retrain_every=0)
        neo.bootstrap_from_expert(workload[:15], imdb_simulator.latency)
        assert neo._trained
        cand = neo.choose_plan(workload[20])
        assert cand.source == "search"
        assert cand.plan.root.tables == frozenset(workload[20].tables)

    def test_neo_untrained_uses_native(self, imdb_optimizer, workload):
        neo = NeoOptimizer(imdb_optimizer, seed=0)
        assert neo.choose_plan(workload[0]).source == "default"

    def test_balsa_sim_bootstrap(self, imdb_optimizer, workload):
        balsa = BalsaOptimizer(imdb_optimizer, seed=0, retrain_every=0)
        balsa.bootstrap_from_simulation(workload[:10], episodes_per_query=2)
        assert balsa._trained
        cand = balsa.choose_plan(workload[20])
        assert cand.source == "search"

    def test_leon_dp_candidates(self, imdb_optimizer, workload):
        leon = LeonOptimizer(imdb_optimizer, seed=0)
        q = next(q for q in workload if q.n_tables >= 3)
        entries = leon._dp_candidates(q)
        assert 1 <= len(entries) <= leon.keep_k
        for node, cost in entries:
            assert node.tables == frozenset(q.tables)
            assert cost > 0

    def test_leon_shadow_execution_builds_pairs(
        self, imdb_optimizer, imdb_simulator, workload
    ):
        leon = LeonOptimizer(
            imdb_optimizer, shadow_executor=imdb_simulator.latency,
            explore_every=2, seed=0,
        )
        loop = run_loop(leon, imdb_optimizer, imdb_simulator, workload[:20])
        assert leon.comparator.n_pairs > 0

    def test_hyperqo_runs_safely(self, imdb_optimizer, imdb_simulator, workload):
        hq = HyperQOOptimizer(imdb_optimizer, seed=0)
        loop = run_loop(hq, imdb_optimizer, imdb_simulator, workload)
        s = loop.summary(tail=30)
        assert s["worst_regression"] < 3.0

    def test_autosteer_discovers_impactful_arms(self, imdb_optimizer, workload):
        arms = discover_hint_sets(imdb_optimizer, workload[:8])
        assert arms[0].name() == "hash+nlj+merge/seq+idx"
        assert len(arms) >= 2

    def test_autosteer_runs(self, imdb_optimizer, imdb_simulator, workload):
        auto = AutoSteerOptimizer(imdb_optimizer, workload[:5], seed=0)
        loop = run_loop(auto, imdb_optimizer, imdb_simulator, workload[:20])
        assert len(loop.results) == 20


class TestOptimizationLoop:
    def test_summary_fields(self, imdb_optimizer, imdb_simulator, workload):
        bao = BaoOptimizer(imdb_optimizer, seed=1)
        loop = run_loop(bao, imdb_optimizer, imdb_simulator, workload[:10])
        s = loop.summary()
        assert s["n_queries"] == 10
        assert s["total_latency_ms"] > 0
        assert s["workload_speedup"] > 0

    def test_summary_empty_raises(self, imdb_optimizer, imdb_simulator):
        bao = BaoOptimizer(imdb_optimizer, seed=1)
        loop = OptimizationLoop(bao, imdb_simulator, imdb_optimizer)
        with pytest.raises(ValueError):
            loop.summary()

    def test_episode_properties(self, imdb_optimizer, imdb_simulator, workload):
        bao = BaoOptimizer(imdb_optimizer, seed=1)
        loop = run_loop(bao, imdb_optimizer, imdb_simulator, workload[:3])
        r = loop.results[0]
        assert r.speedup == pytest.approx(1.0 / r.regression)
