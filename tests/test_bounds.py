"""Pessimistic bounds, risk-bounded planning and the bound guard."""

import numpy as np
import pytest

from repro.cardest.base import sanitize_bound
from repro.cardest.bounds import AGMSketchBoundEstimator, MCVJoinBoundEstimator
from repro.bench.workloads import (
    adversarial_hot_key_drift,
    hot_key_probe_queries,
    hot_key_targets,
)
from repro.engine import CardinalityExecutor
from repro.faults import (
    BoundGuard,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.core.errors import ConfigError
from repro.optimizer import (
    Optimizer,
    RiskLambdaTuner,
    TraditionalCardinalityEstimator,
)
from repro.oracle import EstimatorContractChecker, apply_mutation
from repro.serve import Stage, bound_guard_scenario
from repro.serve.telemetry import TelemetryBus
from repro.sql import WorkloadGenerator
from repro.storage import make_stats_lite


@pytest.fixture(scope="module")
def bound_workload(stats_db):
    gen = WorkloadGenerator(stats_db, seed=81)
    return gen.workload(10, 1, 3, require_predicate=True)


class TestBoundSoundness:
    """The tentpole contract: bound >= true count, always."""

    @pytest.mark.parametrize(
        "cls", [MCVJoinBoundEstimator, AGMSketchBoundEstimator]
    )
    def test_bound_covers_exact_count_on_subqueries(
        self, stats_db, stats_executor, bound_workload, cls
    ):
        checker = EstimatorContractChecker(stats_db, cls(stats_db))
        violations = checker.check_bound_soundness(
            bound_workload, executor=stats_executor
        )
        assert checker.checks_run > 0
        assert violations == [], [str(v) for v in violations]

    def test_bound_dominates_point_estimates(self, stats_db, bound_workload):
        checker = EstimatorContractChecker(
            stats_db, MCVJoinBoundEstimator(stats_db)
        )
        violations = checker.check_bound_dominates(
            TraditionalCardinalityEstimator(stats_db),
            bound_workload,
            tolerance=1.1,
        )
        assert violations == [], [str(v) for v in violations]

    def test_batch_matches_scalar(self, stats_db, bound_workload):
        est = MCVJoinBoundEstimator(stats_db)
        batch = est.estimate_batch(list(bound_workload))
        scalars = np.array([est.estimate(q) for q in bound_workload])
        np.testing.assert_allclose(batch, scalars)

    def test_refresh_bumps_estimates_version(self, stats_db):
        est = MCVJoinBoundEstimator(stats_db)
        before = est.estimates_version
        est.refresh()
        assert est.estimates_version != before

    def test_oracle_catches_seeded_undercount(self, stats_db, bound_workload):
        with apply_mutation("bound_undercounts"):
            checker = EstimatorContractChecker(
                stats_db, MCVJoinBoundEstimator(stats_db)
            )
            violations = checker.check_bound_soundness(bound_workload)
        assert violations, "the /8 undercount mutation went undetected"
        assert all(v.check == "bound_soundness" for v in violations)


class TestSanitizeBound:
    """Poisoned bounds widen to the cross product -- never shrink."""

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), -float("inf"), -1.0, None, "x"]
    )
    def test_unusable_bound_widens_to_cross_product(self, bad):
        assert sanitize_bound(bad, 1e6) == 1e6

    def test_finite_bound_capped_at_cross_product(self):
        assert sanitize_bound(50.0, 1e6) == 50.0
        assert sanitize_bound(2e9, 1e6) == 1e6

    def test_injected_nan_inf_bounds_stay_loose_not_off(self, stats_db):
        """Regression: a nan bound must not silently disable the guard."""
        plan = FaultPlan(
            (
                FaultSpec(kind="nan", rate=1.0, target="bounds", end_call=4),
                FaultSpec(kind="inf", rate=1.0, target="bounds"),
            ),
            seed=5,
        )
        injector = FaultInjector(plan)
        guard = BoundGuard(
            TraditionalCardinalityEstimator(stats_db),
            injector.wrap_estimator(MCVJoinBoundEstimator(stats_db), "bounds"),
            TraditionalCardinalityEstimator(stats_db),
            db=stats_db,
        )
        q = WorkloadGenerator(stats_db, seed=82).random_query(
            2, 3, require_predicate=True
        )
        cross = 1.0
        for t in q.tables:
            cross *= stats_db.table(t).n_rows
        for _ in range(8):  # sweep both the nan and the inf window
            assert guard.certified_bound(q) == cross
            assert np.isfinite(guard.estimate(q))
        assert guard.estimate_violations == 0  # loose bound, honest point


class TestBoundGuard:
    def _guard(self, db, primary, **kwargs):
        kwargs.setdefault(
            "breaker", CircuitBreaker(failure_threshold=3, cooldown_ms=1e9)
        )
        kwargs.setdefault("telemetry", TelemetryBus())
        return BoundGuard(
            primary,
            MCVJoinBoundEstimator(db),
            TraditionalCardinalityEstimator(db),
            **kwargs,
        )

    def test_violation_trips_breaker_and_serves_fallback(self, stats_db):
        class Broken:
            def estimate(self, query):
                return 1e18

        guard = self._guard(stats_db, Broken())
        queries = WorkloadGenerator(stats_db, seed=83).workload(
            6, 2, 3, require_predicate=True
        )
        epoch_before = guard.breaker.epoch
        for q in queries:
            point = guard.estimate(q)
            assert point <= guard.certified_bound(q)
        assert guard.estimate_violations >= 3
        assert guard.breaker.trips == 1
        assert guard.breaker.epoch > epoch_before
        assert guard.fallback_served > 0
        snap = guard.telemetry.snapshot()
        assert snap["counters"]["bounds.estimate_violations"] == (
            guard.estimate_violations
        )
        events = [
            e for e in snap["events"] if e["kind"] == "bound_violation"
        ]
        assert len(events) == guard.violations

    def test_clean_estimator_never_trips(self, stats_db):
        guard = self._guard(stats_db, TraditionalCardinalityEstimator(stats_db))
        for q in WorkloadGenerator(stats_db, seed=84).workload(
            8, 1, 3, require_predicate=True
        ):
            guard.estimate(q)
        assert guard.violations == 0
        assert guard.breaker.trips == 0
        assert guard.fallback_served == 0

    def test_estimates_version_tracks_breaker_and_refresh(self, stats_db):
        guard = self._guard(stats_db, TraditionalCardinalityEstimator(stats_db))
        v0 = guard.estimates_version
        guard.bounds.refresh()
        v1 = guard.estimates_version
        assert v1 != v0
        for _ in range(3):
            guard.breaker.record_failure()
        assert guard.estimates_version != v1

    def test_tolerance_below_one_rejected(self, stats_db):
        with pytest.raises(ValueError):
            self._guard(
                stats_db,
                TraditionalCardinalityEstimator(stats_db),
                tolerance=0.5,
            )

    def test_observed_count_over_bound_trips(self):
        """Unrefreshed drift voids the certificate; the auditor's truth
        must trip the guard -- and a refresh must restore coverage."""
        db = make_stats_lite(scale=0.2, seed=11)
        guard = self._guard(db, TraditionalCardinalityEstimator(db))
        targets = hot_key_targets(db)
        probes = hot_key_probe_queries(db, targets)
        adversarial_hot_key_drift(db, fraction=1.0, seed=11, targets=targets)
        executor = CardinalityExecutor(db)
        tripped = 0
        for q in probes:
            truth = executor.cardinality(q)
            if guard.observe_count(q, truth):
                tripped += 1
        assert tripped > 0
        assert guard.bound_violations == tripped
        assert guard.breaker.trips >= 1
        guard.bounds.refresh()
        for q in probes:
            assert guard.certified_bound(q) >= executor.cardinality(q)


class TestRiskBoundedPlanning:
    def test_blended_lambda_zero_matches_expected(self, stats_db):
        bounds = MCVJoinBoundEstimator(stats_db)
        expected = Optimizer(stats_db)
        blended = Optimizer(
            stats_db, bound_estimator=bounds, risk="blended", risk_lambda=0.0
        )
        for q in WorkloadGenerator(stats_db, seed=85).workload(
            6, 2, 4, require_predicate=True
        ):
            assert blended.plan(q).signature() == expected.plan(q).signature()

    def test_worst_case_requires_bound_estimator(self, stats_db):
        with pytest.raises(ValueError):
            Optimizer(stats_db, risk="worst_case")

    def test_worst_case_minimizes_bound_cost(self, stats_db):
        bounds = MCVJoinBoundEstimator(stats_db)
        worst = Optimizer(stats_db, bound_estimator=bounds, risk="worst_case")
        expected = Optimizer(stats_db)
        gen = WorkloadGenerator(stats_db, seed=86)
        coster = worst._planning_coster("worst_case", None)
        for q in gen.workload(6, 2, 4, require_predicate=True):
            wp, ep = worst.plan(q), expected.plan(q)
            assert wp.root.tables == frozenset(q.tables)
            # The worst-case plan is at least as good under worst-case
            # costing as the expected-mode plan.
            assert coster.cost(wp) <= coster.cost(ep) * (1 + 1e-9)


class TestExecutorMemoStaleness:
    def test_memo_invalidated_by_data_mutation(self):
        """The exact oracle must never answer from pre-mutation data."""
        db = make_stats_lite(scale=0.2, seed=12)
        executor = CardinalityExecutor(db)
        targets = hot_key_targets(db)
        q = hot_key_probe_queries(db, targets)[0]
        before = executor.cardinality(q)
        adversarial_hot_key_drift(db, fraction=1.0, seed=12, targets=targets)
        after = executor.cardinality(q)
        assert after > before


class TestDeploymentBoundRollback:
    def test_canary_rolls_back_on_violation_rate(self):
        scenario = bound_guard_scenario(
            scale=0.2,
            seed=7,
            n_queries=64,
            n_sessions=4,
            bound_violation_rollback=0.001,
        )
        scenario.run()
        assert scenario.bound_guard.violations > 0
        assert scenario.deployment.stage is Stage.ROLLED_BACK
        snap = scenario.runtime.telemetry.snapshot()
        assert snap["counters"].get("deployment.auto_rollbacks", 0) >= 1

    def test_no_rollback_without_threshold(self):
        scenario = bound_guard_scenario(
            scale=0.2, seed=7, n_queries=64, n_sessions=4
        )
        scenario.run()
        assert scenario.bound_guard.violations > 0
        assert scenario.deployment.stage is not Stage.ROLLED_BACK


class TestRiskLambdaTuner:
    """Satellite 2: bound-guard violation rates close the loop on the
    planner's ``risk_lambda`` blend weight."""

    def _guard_and_opt(self, db, *, risk_lambda=0.2):
        bounds = MCVJoinBoundEstimator(db)
        opt = Optimizer(
            db, bound_estimator=bounds, risk="blended", risk_lambda=risk_lambda
        )
        guard = BoundGuard(
            TraditionalCardinalityEstimator(db),
            bounds,
            TraditionalCardinalityEstimator(db),
        )
        return opt, guard

    def test_raises_on_violations_decays_on_clean(
        self, stats_db, bound_workload
    ):
        opt, guard = self._guard_and_opt(stats_db)
        bus = TelemetryBus()
        tuner = RiskLambdaTuner(
            opt,
            guard,
            target_rate=0.05,
            window=5,
            step=0.2,
            decay=0.05,
            telemetry=bus,
        )
        q = bound_workload[0]
        # no adjustment before the window fills
        guard.observe_count(q, 0.0)
        assert tuner.tick() == pytest.approx(0.2)
        assert tuner.windows_observed == 0
        # a window full of audited bound violations raises the blend
        for _ in range(5):
            assert guard.observe_count(q, float("inf"))
        assert tuner.tick() == pytest.approx(0.4)
        assert opt.risk_lambda == pytest.approx(0.4)
        assert tuner.raises == 1
        snap = bus.snapshot()
        assert snap["counters"]["risk_tuner.violations"] == 1
        # clean windows decay it back toward expected-cost planning
        for _ in range(2):
            for _ in range(5):
                guard.observe_count(q, 0.0)
            tuner.tick()
        assert opt.risk_lambda == pytest.approx(0.3)
        assert tuner.decays == 2

    def test_lambda_clamped_to_configured_bounds(
        self, stats_db, bound_workload
    ):
        opt, guard = self._guard_and_opt(stats_db, risk_lambda=0.9)
        tuner = RiskLambdaTuner(
            opt, guard, target_rate=0.0, window=2, step=0.5, decay=2.0
        )
        q = bound_workload[0]
        for _ in range(2):
            guard.observe_count(q, float("inf"))
        assert tuner.tick() == pytest.approx(1.0)  # not 1.4
        for _ in range(2):
            guard.observe_count(q, 0.0)
        assert tuner.tick() == pytest.approx(0.0)  # not -1.0

    def test_config_validation(self, stats_db):
        opt, guard = self._guard_and_opt(stats_db)
        with pytest.raises(ConfigError):
            RiskLambdaTuner(opt, guard, window=0)
        with pytest.raises(ConfigError):
            RiskLambdaTuner(opt, guard, target_rate=1.5)
        with pytest.raises(ConfigError):
            RiskLambdaTuner(opt, guard, step=0.0)
        with pytest.raises(ConfigError):
            RiskLambdaTuner(opt, guard, min_lambda=0.8, max_lambda=0.2)

    def test_deployment_integration_raises_lambda(self):
        """A garbage-spewing estimator behind the guard drives the
        deployment-ticked tuner to plan more pessimistically."""
        from repro.e2e.bao import BaoOptimizer
        from repro.engine import ExecutionSimulator
        from repro.serve import DeploymentManager, TelemetryBus as _Bus

        db = make_stats_lite(scale=0.3, seed=7)
        bounds = MCVJoinBoundEstimator(db)
        planning = Optimizer(
            db, bound_estimator=bounds, risk="blended", risk_lambda=0.1
        )
        injector = FaultInjector(
            FaultPlan(
                (
                    FaultSpec(
                        kind="garbage",
                        rate=0.6,
                        target="estimator",
                        magnitude=1e12,
                    ),
                ),
                seed=7,
            )
        )
        guard = BoundGuard(
            injector.wrap_estimator(planning.estimator),
            bounds,
            TraditionalCardinalityEstimator(db),
        )
        subject = planning.with_estimator(guard)
        tuner = RiskLambdaTuner(subject, guard, window=25, step=0.2)
        bus = _Bus()
        deployment = DeploymentManager(
            BaoOptimizer(subject, seed=7),
            Optimizer(db),
            ExecutionSimulator(db),
            telemetry=bus,
            stage=Stage.CANARY,
            canary_fraction=0.5,
            regression_threshold=3.0,
            window=40,
            min_samples=15,
            bound_guard=guard,
            risk_tuner=tuner,
        )
        queries = WorkloadGenerator(db, seed=8).workload(
            24, 2, 4, require_predicate=True
        )
        for q in queries:
            deployment.serve(q)
        assert guard.violations > 0
        assert tuner.windows_observed >= 1
        assert tuner.raises >= 1
        assert subject.risk_lambda > 0.1
        # the gauge surfaces the tuner's state in the bus snapshot
        assert (
            bus.snapshot()["gauges"]["risk_tuner"]["risk_lambda"]
            == subject.risk_lambda
        )
