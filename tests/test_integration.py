"""Cross-module integration tests: the full pipelines users run."""

import numpy as np
import pytest

from repro.cardest import FSPNEstimator, q_error
from repro.core.interfaces import InjectedCardinalities
from repro.e2e import BaoOptimizer, OptimizationLoop
from repro.engine import CardinalityExecutor, ExecutionSimulator
from repro.optimizer import Optimizer
from repro.pilotscope import (
    CardinalityInjectionDriver,
    PilotScopeConsole,
    SimulatedPostgreSQL,
)
from repro.sql import WorkloadGenerator, parse_query
from repro.storage import make_stats_lite


class TestEstimatorToPlannerPipeline:
    def test_better_estimates_do_not_hurt_plans(self, stats_db, stats_executor):
        """Injecting exact cardinalities must never make the chosen plan
        worse *under the planner's own cost model* -- sanity of the whole
        estimate -> cost -> enumerate pipeline."""
        opt = Optimizer(stats_db)

        class Oracle:
            def estimate(self, query):
                return stats_executor.cardinality(query)

        oracle = Oracle()
        oracle_opt = opt.with_estimator(oracle)
        gen = WorkloadGenerator(stats_db, seed=120)
        for q in gen.workload(15, 2, 4, require_predicate=True):
            native_plan = opt.plan(q)
            oracle_plan = oracle_opt.plan(q)
            # Cost both under exact cards: the oracle-picked plan wins.
            coster = oracle_opt.coster
            assert coster.cost(oracle_plan) <= coster.cost(native_plan) + 1e-6

    def test_learned_estimator_via_injection_wrapper(self, stats_db, stats_executor):
        fspn = FSPNEstimator(stats_db)
        opt = Optimizer(stats_db)
        wrapped = InjectedCardinalities(fspn)
        learned_opt = opt.with_estimator(wrapped)
        gen = WorkloadGenerator(stats_db, seed=121)
        q = gen.random_query(2, 3, require_predicate=True)
        plan = learned_opt.plan(q)
        assert plan.root.tables == frozenset(q.tables)


class TestFullPilotScopeStack:
    def test_sql_to_latency_round_trip(self):
        db = make_stats_lite(scale=0.25, seed=7)
        console = PilotScopeConsole(SimulatedPostgreSQL(db))
        out = console.execute(
            "SELECT COUNT(*) FROM posts, users "
            "WHERE posts.owner_id = users.id AND users.reputation <= 5"
        )
        truth = CardinalityExecutor(db).cardinality(
            parse_query(
                "SELECT COUNT(*) FROM posts, users "
                "WHERE posts.owner_id = users.id AND users.reputation <= 5"
            )
        )
        assert out.cardinality == truth

    def test_driver_injection_end_to_end(self, stats_db, stats_executor):
        pg = SimulatedPostgreSQL(stats_db)
        console = PilotScopeConsole(pg)
        driver = CardinalityInjectionDriver(FSPNEstimator(stats_db))
        console.register_driver(driver)
        console.start_driver("cardinality_injection")
        gen = WorkloadGenerator(stats_db, seed=122)
        for q in gen.workload(5, 1, 3, require_predicate=True):
            out = console.execute(q)
            assert out.cardinality == stats_executor.cardinality(q)


class TestLearnedOptimizerConvergence:
    def test_bao_learns_to_avoid_repeated_mistakes(self, imdb_db):
        """On a *repeating* workload Bao must converge to plans at least
        as good as native (it can memorize the best arm per query)."""
        opt = Optimizer(imdb_db)
        sim = ExecutionSimulator(imdb_db)
        gen = WorkloadGenerator(imdb_db, seed=123)
        base_queries = gen.workload(10, 2, 4, require_predicate=True)
        workload = base_queries * 12  # the same 10 queries repeated
        bao = BaoOptimizer(opt, seed=0, retrain_every=20)
        loop = OptimizationLoop(bao, sim, opt)
        loop.run(workload)
        s = loop.summary(tail=30)
        assert s["workload_speedup"] >= 1.0

    def test_estimation_quality_correlates_with_plan_quality(
        self, stats_db, stats_executor
    ):
        """Plans chosen with exact cardinalities must on aggregate be no
        slower than plans chosen with a deliberately awful estimator."""
        opt = Optimizer(stats_db)
        sim = ExecutionSimulator(stats_db)

        class Awful:
            def estimate(self, query):
                return 1.0  # everything looks tiny

        class Oracle:
            def estimate(self, query):
                return stats_executor.cardinality(query)

        awful_opt = opt.with_estimator(Awful())
        oracle_opt = opt.with_estimator(Oracle())
        gen = WorkloadGenerator(stats_db, seed=124)
        awful_total = oracle_total = 0.0
        for q in gen.workload(20, 2, 4, require_predicate=True):
            awful_total += sim.execute(awful_opt.plan(q)).latency_ms
            oracle_total += sim.execute(oracle_opt.plan(q)).latency_ms
        assert oracle_total <= awful_total
