"""Property-based tests on cross-cutting invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import CardinalityExecutor, ExecutionSimulator, execute_cardinality
from repro.ml.setconv import SetConvNet
from repro.ml.treeconv import PlanTreeBatch, TreeConvNet
from repro.optimizer import Optimizer
from repro.sql import ColumnRef, Op, Predicate, Query, WorkloadGenerator, parse_query
from repro.storage import make_imdb_lite, make_stats_lite, make_tpch_lite


# ---------------------------------------------------------------------------
# Parser <-> printer round trip on arbitrary generated queries
# ---------------------------------------------------------------------------


class TestParserRoundTrip:
    @given(st.integers(0, 10_000), st.sampled_from(["stats", "imdb", "tpch"]))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_generated_queries(self, stats_db, imdb_db, tpch_db, seed, which):
        db = {"stats": stats_db, "imdb": imdb_db, "tpch": tpch_db}[which]
        gen = WorkloadGenerator(db, seed=seed)
        q = gen.random_query(1, 4, max_preds_per_table=3)
        assert parse_query(q.to_sql()) == q

    @given(st.integers(0, 3000))
    @settings(max_examples=25, deadline=None)
    def test_double_roundtrip_stable(self, stats_db, seed):
        gen = WorkloadGenerator(stats_db, seed=seed)
        q = gen.random_query(1, 3)
        once = parse_query(q.to_sql())
        twice = parse_query(once.to_sql())
        assert once == twice


# ---------------------------------------------------------------------------
# Executor invariants
# ---------------------------------------------------------------------------


class TestExecutorInvariants:
    @given(st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_adding_predicate_never_increases_cardinality(self, stats_db,
                                                          stats_executor, seed):
        gen = WorkloadGenerator(stats_db, seed=seed)
        q = gen.random_query(1, 3, max_preds_per_table=1)
        base = stats_executor.cardinality(q)
        # Conjoin one more predicate on some table.
        target = q.tables[0]
        values = None
        for c in stats_db.table(target).column_names:
            col = stats_db.table(target).column(c)
            if not col.is_key:
                values = (c, col.values)
                break
        if values is None:
            return
        cname, vals = values
        pred = Predicate(ColumnRef(target, cname), Op.LE, float(np.median(vals)))
        stricter = Query(q.tables, q.joins, q.predicates + (pred,))
        assert stats_executor.cardinality(stricter) <= base

    @given(st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_join_bounded_by_filtered_product(self, stats_db, stats_executor, seed):
        gen = WorkloadGenerator(stats_db, seed=seed)
        q = gen.random_query(2, 3, max_preds_per_table=1)
        card = stats_executor.cardinality(q)
        product = 1
        for t in q.tables:
            product *= stats_executor.cardinality(q.subquery([t]))
        assert card <= product

    @given(st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_cardinality_deterministic(self, imdb_db, seed):
        gen = WorkloadGenerator(imdb_db, seed=seed)
        q = gen.random_query(1, 4)
        a = execute_cardinality(imdb_db, q)
        b = execute_cardinality(imdb_db, q)
        assert a == b


# ---------------------------------------------------------------------------
# Planner / simulator invariants
# ---------------------------------------------------------------------------


class TestPlannerInvariants:
    @given(st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_dp_cost_is_minimum_over_algorithms(self, stats_db, stats_optimizer, seed):
        gen = WorkloadGenerator(stats_db, seed=seed)
        q = gen.random_query(2, 4, require_predicate=True)
        dp_cost = stats_optimizer.cost(stats_optimizer.plan(q, algorithm="dp"))
        for alg in ("greedy", "left_deep"):
            other = stats_optimizer.cost(stats_optimizer.plan(q, algorithm=alg))
            assert dp_cost <= other + 1e-6

    @given(st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_simulated_latency_positive_and_deterministic(
        self, stats_db, stats_optimizer, stats_simulator, seed
    ):
        gen = WorkloadGenerator(stats_db, seed=seed)
        q = gen.random_query(1, 4)
        plan = stats_optimizer.plan(q)
        a = stats_simulator.execute(plan).latency_ms
        b = stats_simulator.execute(plan).latency_ms
        assert a == b > 0

    @given(st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_every_enumerated_plan_is_executable(self, imdb_db, imdb_optimizer,
                                                 imdb_simulator, seed):
        from repro.optimizer import HintSet

        gen = WorkloadGenerator(imdb_db, seed=seed)
        q = gen.random_query(2, 4, require_predicate=True)
        for arm in HintSet.bao_arms():
            plan = imdb_optimizer.plan(q, hints=arm)
            result = imdb_simulator.execute(plan)
            assert result.cardinality >= 0


# ---------------------------------------------------------------------------
# Neural-net gradient checks on the structured models
# ---------------------------------------------------------------------------


def _numeric_grad(f, param, eps=1e-5):
    grad = np.zeros_like(param)
    flat, g = param.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        hi = f()
        flat[i] = old - eps
        lo = f()
        flat[i] = old
        g[i] = (hi - lo) / (2 * eps)
    return grad


class TestStructuredGradients:
    def test_treeconv_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        trees = [
            (rng.normal(size=(3, 4)), np.array([1, 2, -1]), np.array([-1, -1, -1])),
            (rng.normal(size=(2, 4)), np.array([1, -1]), np.array([-1, -1])),
        ]
        target = np.array([[1.0], [2.0]])
        net = TreeConvNet(4, (5,), (3,), seed=1)
        batch = PlanTreeBatch.from_trees(trees)

        def loss():
            return float(((net.forward(batch) - target) ** 2).sum())

        pred = net.forward(batch)
        net._backward(batch, 2.0 * (pred - target))
        analytic = net.gradients()
        params = net.parameters()
        for p, a in zip(params, analytic):
            numeric = _numeric_grad(loss, p)
            assert np.allclose(a, numeric, atol=1e-3), "treeconv gradient mismatch"

    def test_setconv_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        samples = [
            {"a": rng.normal(size=(2, 3))},
            {"a": rng.normal(size=(3, 3))},
        ]
        target = np.array([[0.3], [0.7]])
        net = SetConvNet({"a": 3}, hidden=4, seed=2)
        batch = {"a": [s["a"] for s in samples]}

        def loss():
            return float(((net.forward(batch) - target) ** 2).sum())

        pred = net.forward(batch)
        net._backward(2.0 * (pred - target))
        analytic = net.gradients()
        for p, a in zip(net.parameters(), analytic):
            numeric = _numeric_grad(loss, p)
            assert np.allclose(a, numeric, atol=1e-3), "setconv gradient mismatch"

    def test_made_gradient_matches_numerical(self):
        from repro.ml.autoregressive import MaskedAutoregressiveNetwork

        rng = np.random.default_rng(2)
        rows = rng.integers(0, 3, size=(6, 2))
        net = MaskedAutoregressiveNetwork([3, 3], hidden=(4,), seed=3)

        def loss():
            # NLL must be recomputed exactly as _loss_and_backward does.
            logits = net.forward(net.encode(rows))
            total = 0.0
            n = rows.shape[0]
            for i in range(2):
                block = net.column_logits(logits, i)
                shifted = block - block.max(axis=1, keepdims=True)
                lsm = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
                total -= lsm[np.arange(n), rows[:, i]].sum()
            return total / n

        net._loss_and_backward(rows)
        for w, gw in zip(net.weights, net._grads_w):
            numeric = _numeric_grad(loss, w)
            assert np.allclose(gw, numeric, atol=1e-4), "made weight gradient mismatch"
        for b, gb in zip(net.biases, net._grads_b):
            numeric = _numeric_grad(loss, b)
            assert np.allclose(gb, numeric, atol=1e-4), "made bias gradient mismatch"


# ---------------------------------------------------------------------------
# Determinism across whole databases
# ---------------------------------------------------------------------------


class TestGlobalDeterminism:
    @pytest.mark.parametrize("maker", [make_stats_lite, make_imdb_lite, make_tpch_lite])
    def test_database_pipeline_reproducible(self, maker):
        def fingerprint():
            db = maker(scale=0.2, seed=3)
            opt = Optimizer(db)
            sim = ExecutionSimulator(db)
            gen = WorkloadGenerator(db, seed=9)
            total = 0.0
            for q in gen.workload(8, 1, 4):
                total += sim.execute(opt.plan(q)).latency_ms
            return total

        assert fingerprint() == fingerprint()
