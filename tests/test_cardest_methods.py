"""Behavioural tests for every learned cardinality estimator.

Each estimator must (a) respect the estimator protocol, (b) achieve sane
accuracy on a held-out workload (far better than a constant guesser), and
(c) exhibit its method-specific behaviours (caching, masking, refresh...).
"""

import numpy as np
import pytest

from repro.cardest import (
    ALECEEstimator,
    BayesNetEstimator,
    EnsembleEstimator,
    FactorJoinEstimator,
    FSPNEstimator,
    GBDTQueryEstimator,
    GLUEEstimator,
    HistogramEstimator,
    JoinKDEEstimator,
    KDEEstimator,
    LinearQueryEstimator,
    LPCEEstimator,
    MLPQueryEstimator,
    MSCNEstimator,
    NaruEstimator,
    NeuroCardEstimator,
    QuickSelEstimator,
    RobustMSCNEstimator,
    SamplingEstimator,
    SPNEstimator,
    UAEEstimator,
    q_error,
)
from repro.sql import Query, WorkloadGenerator


@pytest.fixture(scope="module")
def test_workload(stats_db, stats_executor):
    gen = WorkloadGenerator(stats_db, seed=99)
    queries = gen.workload(40, 1, 3, require_predicate=True)
    cards = np.array([stats_executor.cardinality(q) for q in queries])
    return queries, cards


def median_q_error(estimator, queries, cards):
    errs = [q_error(estimator.estimate(q), c) for q, c in zip(queries, cards)]
    return float(np.median(errs))


SUPERVISED = [
    (LinearQueryEstimator, {}),
    (GBDTQueryEstimator, {"n_estimators": 25}),
    (MLPQueryEstimator, {"epochs": 30}),
    (MSCNEstimator, {"epochs": 25}),
    (RobustMSCNEstimator, {"epochs": 25}),
    (ALECEEstimator, {"epochs": 40}),
]

UNSUPERVISED = [
    (HistogramEstimator, {}),
    (SamplingEstimator, {"sample_rows": 200}),
    (KDEEstimator, {"sample": 300}),
    (JoinKDEEstimator, {"sample": 300}),
    (NaruEstimator, {"epochs": 4}),
    (BayesNetEstimator, {}),
    (SPNEstimator, {}),
    (FSPNEstimator, {}),
    (FactorJoinEstimator, {"sample_rows": 600}),
]


class TestSupervisedEstimators:
    @pytest.mark.parametrize("cls,kwargs", SUPERVISED, ids=[c.__name__ for c, _ in SUPERVISED])
    def test_fit_and_reasonable_accuracy(
        self, cls, kwargs, stats_db, stats_train_data, test_workload
    ):
        est = cls(stats_db, **kwargs)
        est.fit(*stats_train_data)
        queries, cards = test_workload
        assert median_q_error(est, queries, cards) < 20.0

    @pytest.mark.parametrize("cls,kwargs", SUPERVISED[:3], ids=[c.__name__ for c, _ in SUPERVISED[:3]])
    def test_estimate_before_fit_raises(self, cls, kwargs, stats_db):
        est = cls(stats_db, **kwargs)
        with pytest.raises(RuntimeError):
            est.estimate(Query(("users",)))

    def test_fit_rejects_empty(self, stats_db):
        with pytest.raises(ValueError):
            LinearQueryEstimator(stats_db).fit([], np.zeros(0))


class TestUnsupervisedEstimators:
    @pytest.mark.parametrize(
        "cls,kwargs", UNSUPERVISED, ids=[c.__name__ for c, _ in UNSUPERVISED]
    )
    def test_reasonable_accuracy(self, cls, kwargs, stats_db, test_workload):
        est = cls(stats_db, **kwargs)
        queries, cards = test_workload
        assert median_q_error(est, queries, cards) < 20.0

    @pytest.mark.parametrize(
        "cls,kwargs", UNSUPERVISED, ids=[c.__name__ for c, _ in UNSUPERVISED]
    )
    def test_estimates_within_bounds(self, cls, kwargs, stats_db, test_workload):
        est = cls(stats_db, **kwargs)
        queries, _ = test_workload
        for q in queries[:10]:
            val = est.estimate(q)
            upper = 1.0
            for t in q.tables:
                upper *= stats_db.table(t).n_rows
            assert 0.0 <= val <= upper


class TestQuickSel:
    def test_needs_single_table_queries(self, stats_db, stats_train_data):
        queries, cards = stats_train_data
        multi_only = [(q, c) for q, c in zip(queries, cards) if q.n_tables > 1]
        qs = QuickSelEstimator(stats_db)
        with pytest.raises(ValueError):
            qs.fit([q for q, _ in multi_only], np.array([c for _, c in multi_only]))

    def test_single_table_accuracy(self, stats_db, stats_executor):
        gen = WorkloadGenerator(stats_db, seed=41)
        train = gen.single_table_workload("users", 120)
        cards = np.array([stats_executor.cardinality(q) for q in train])
        qs = QuickSelEstimator(stats_db).fit(train, cards)
        test = WorkloadGenerator(stats_db, seed=43).single_table_workload("users", 30)
        test_cards = np.array([stats_executor.cardinality(q) for q in test])
        assert median_q_error(qs, test, test_cards) < 15.0


class TestLPCE:
    def test_feedback_cache_exact(self, stats_db, stats_train_data, test_workload):
        est = LPCEEstimator(stats_db)
        est.fit(*stats_train_data)
        q = test_workload[0][0]
        est.observe(q, 777.0)
        assert est.estimate(q) == 777.0

    def test_refinement_improves_bias(self, stats_db, stats_executor, stats_train_data):
        est = LPCEEstimator(stats_db, refit_every=30)
        est.fit(*stats_train_data)
        feedback = WorkloadGenerator(stats_db, seed=44).workload(
            60, 1, 3, require_predicate=True
        )
        for q in feedback:
            est.observe(q, stats_executor.cardinality(q))
        assert est._correction is not None


class TestRobustMSCN:
    def test_masked_inference_path(self, stats_db, stats_train_data):
        est = RobustMSCNEstimator(stats_db, epochs=15)
        est.fit(*stats_train_data)
        gen = WorkloadGenerator(stats_db, seed=45)
        q = gen.random_query(1, 2, require_predicate=True)
        masked = est.estimate_masked(q)
        assert masked >= 0.0

    def test_masked_before_fit_raises(self, stats_db):
        est = RobustMSCNEstimator(stats_db)
        with pytest.raises(RuntimeError):
            est.estimate_masked(Query(("users",)))


class TestNeuroCard:
    def test_template_caching(self, stats_db):
        est = NeuroCardEstimator(stats_db, epochs=2, n_samples=200)
        gen = WorkloadGenerator(stats_db, seed=46)
        qs = gen.join_template_workload(["posts", "users"], 3)
        for q in qs:
            est.estimate(q)
        assert len(est._templates) == 1  # one join template

    def test_refresh_clears_templates(self, stats_db):
        est = NeuroCardEstimator(stats_db, epochs=2, n_samples=200)
        gen = WorkloadGenerator(stats_db, seed=47)
        est.estimate(gen.random_query(2, 2, require_predicate=True))
        est.refresh()
        assert len(est._templates) == 0

    def test_full_join_sampler_uniformity(self, stats_db, stats_executor):
        from repro.cardest.neurocard import FullJoinSampler

        gen = WorkloadGenerator(stats_db, seed=48)
        q = gen.join_template_workload(["posts", "users"], 1)[0]
        template = Query(q.tables, q.joins, ())
        sampler = FullJoinSampler(stats_db, template)
        assert sampler.join_size == stats_executor.cardinality(template)
        rows = sampler.sample(50, np.random.default_rng(0))
        # Every sampled row must satisfy the join condition.
        join = template.joins[0]
        lv = stats_db.table(join.left.table).values(join.left.column)[
            rows[join.left.table]
        ]
        rv = stats_db.table(join.right.table).values(join.right.column)[
            rows[join.right.table]
        ]
        assert np.array_equal(lv, rv)


class TestSPNFamily:
    def test_fspn_at_least_as_good_on_correlated_pairs(self, stats_db, stats_executor):
        # users.upvotes is strongly dependent on users.reputation; FSPN's
        # joint leaves should model the pair at least as well as the SPN.
        from repro.sql import ColumnRef, Op, Predicate

        spn = SPNEstimator(stats_db)
        fspn = FSPNEstimator(stats_db)
        gen = WorkloadGenerator(stats_db, seed=49)
        queries = gen.single_table_workload("users", 40, max_predicates=3)
        spn_err, fspn_err = [], []
        for q in queries:
            true = stats_executor.cardinality(q)
            spn_err.append(q_error(spn.estimate(q), true))
            fspn_err.append(q_error(fspn.estimate(q), true))
        assert np.median(fspn_err) <= np.median(spn_err) * 1.5

    def test_structure_size_reported(self, stats_db):
        spn = SPNEstimator(stats_db)
        assert spn.structure_size("users") >= 1

    def test_refresh_rebuilds(self, stats_db):
        spn = SPNEstimator(stats_db)
        before = spn._models["users"]
        spn.refresh()
        assert spn._models["users"] is not before


class TestHybrid:
    def test_uae_correction_learns(self, stats_db, stats_executor, stats_train_data):
        est = UAEEstimator(stats_db, epochs=3)
        queries, cards = stats_train_data
        est.fit_queries(queries[:60], cards[:60])
        assert est._correction is not None

    def test_glue_wraps_any_single_table_estimator(self, stats_db, test_workload):
        inner = BayesNetEstimator(stats_db)
        glue = GLUEEstimator(stats_db, inner)
        queries, cards = test_workload
        assert median_q_error(glue, queries, cards) < 20.0

    def test_glue_rejects_bad_inner(self, stats_db):
        with pytest.raises(TypeError):
            GLUEEstimator(stats_db, object())

    def test_alece_refresh_changes_tokens(self, stats_db):
        est = ALECEEstimator(stats_db, epochs=2)
        before = est.tokens.copy()
        est.refresh()
        assert np.array_equal(before, est.tokens)  # same data -> same tokens


class TestEnsemble:
    def test_interval_contains_point(self, stats_db, stats_train_data, test_workload):
        queries, cards = stats_train_data
        members = [
            MLPQueryEstimator(stats_db, epochs=15, seed=s).fit(queries, cards)
            for s in range(3)
        ]
        ens = EnsembleEstimator(stats_db, members)
        q = test_workload[0][0]
        lo, hi = ens.predict_interval(q)
        assert lo <= ens.estimate(q) <= hi
        assert ens.uncertainty(q) >= 0.0

    def test_rejects_empty(self, stats_db):
        with pytest.raises(ValueError):
            EnsembleEstimator(stats_db, [])
