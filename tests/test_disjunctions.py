"""Tests for disjunctive (mixed) predicates through the whole stack [42]."""

import numpy as np
import pytest

from repro.cardest import FSPNEstimator, HistogramEstimator, MSCNEstimator, q_error
from repro.cardest.binning import ColumnBinner
from repro.engine import execute_cardinality
from repro.optimizer import Optimizer, TraditionalCardinalityEstimator
from repro.sql import (
    ColumnRef,
    Op,
    OrPredicate,
    Predicate,
    Query,
    WorkloadGenerator,
    parse_query,
)


def or_pred(table, column, *parts):
    ref = ColumnRef(table, column)
    return OrPredicate(ref, tuple(Predicate(ref, op, v) for op, v in parts))


class TestOrPredicate:
    def test_requires_two_parts(self):
        ref = ColumnRef("t", "c")
        with pytest.raises(ValueError):
            OrPredicate(ref, (Predicate(ref, Op.EQ, 1.0),))

    def test_requires_same_column(self):
        a = ColumnRef("t", "a")
        b = ColumnRef("t", "b")
        with pytest.raises(ValueError, match="references"):
            OrPredicate(a, (Predicate(a, Op.EQ, 1.0), Predicate(b, Op.EQ, 2.0)))

    def test_evaluate_is_union(self):
        pred = or_pred("t", "c", (Op.LT, 2.0), (Op.GT, 8.0))
        values = np.array([0.0, 2.0, 5.0, 9.0])
        assert list(pred.evaluate(values)) == [True, False, False, True]

    def test_hull_range(self):
        pred = or_pred("t", "c", (Op.BETWEEN, (1.0, 3.0)), (Op.BETWEEN, (7.0, 9.0)))
        assert pred.to_range() == (1.0, 9.0)

    def test_canonical_part_order(self):
        a = or_pred("t", "c", (Op.EQ, 1.0), (Op.EQ, 5.0))
        b = or_pred("t", "c", (Op.EQ, 5.0), (Op.EQ, 1.0))
        assert a == b and hash(a) == hash(b)


class TestParserOr:
    def test_parse_or_group(self):
        q = parse_query(
            "SELECT COUNT(*) FROM t WHERE (t.x < 2 OR t.x BETWEEN 5 AND 7)"
        )
        assert len(q.predicates) == 1
        assert isinstance(q.predicates[0], OrPredicate)
        assert len(q.predicates[0].parts) == 2

    def test_roundtrip(self):
        sql = "SELECT COUNT(*) FROM t WHERE (t.x < 2 OR t.x > 9) AND t.y = 1"
        q = parse_query(sql)
        assert parse_query(q.to_sql()) == q

    def test_or_mixed_columns_rejected(self):
        with pytest.raises(Exception, match="references"):
            parse_query("SELECT COUNT(*) FROM t WHERE (t.x < 2 OR t.y > 9)")

    def test_single_part_group_rejected(self):
        from repro.sql import SQLSyntaxError

        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT COUNT(*) FROM t WHERE (t.x < 2)")


class TestOrExecution:
    def test_exact_count_matches_union(self, stats_db, stats_executor):
        vals = stats_db.table("users").values("reputation")
        lo = float(np.percentile(vals, 20))
        hi = float(np.percentile(vals, 80))
        pred = or_pred("users", "reputation", (Op.LE, lo), (Op.GE, hi))
        q = Query(("users",), (), (pred,))
        expected = int(((vals <= lo) | (vals >= hi)).sum())
        assert execute_cardinality(stats_db, q) == expected

    def test_or_with_join(self, stats_db, stats_executor):
        gen = WorkloadGenerator(stats_db, seed=180, or_rate=1.0)
        q = gen.join_template_workload(["posts", "users"], 1)[0]
        card = stats_executor.cardinality(q)
        unfiltered = stats_executor.cardinality(Query(q.tables, q.joins, ()))
        assert 0 <= card <= unfiltered


class TestOrEstimation:
    def test_traditional_selectivity_reasonable(self, stats_db, stats_executor):
        est = TraditionalCardinalityEstimator(stats_db)
        vals = stats_db.table("users").values("reputation")
        lo = float(np.percentile(vals, 25))
        hi = float(np.percentile(vals, 75))
        pred = or_pred("users", "reputation", (Op.LE, lo), (Op.GE, hi))
        q = Query(("users",), (), (pred,))
        true = stats_executor.cardinality(q)
        assert q_error(est.estimate(q), true) < 3.0

    def test_or_selectivity_at_least_single_part(self, stats_db):
        est = TraditionalCardinalityEstimator(stats_db)
        ref = ColumnRef("users", "reputation")
        part = Predicate(ref, Op.LE, 3.0)
        disj = OrPredicate(ref, (part, Predicate(ref, Op.GE, 30.0)))
        assert est.predicate_selectivity(disj) >= est.predicate_selectivity(part)

    def test_binner_union(self):
        binner = ColumnBinner(np.arange(10), max_bins=32)
        ref = ColumnRef("t", "c")
        pred = OrPredicate(
            ref,
            (Predicate(ref, Op.LE, 2.0), Predicate(ref, Op.GE, 8.0)),
        )
        bins, factor = binner.bins_for_predicate(pred)
        assert list(bins) == [0, 1, 2, 8, 9]
        assert factor == 1.0

    def test_learned_estimators_handle_or_workload(self, stats_db, stats_executor):
        gen = WorkloadGenerator(stats_db, seed=181, or_rate=0.5)
        workload = gen.workload(60, 1, 3, require_predicate=True)
        assert any(
            isinstance(p, OrPredicate) for q in workload for p in q.predicates
        )
        cards = np.array([stats_executor.cardinality(q) for q in workload])
        mscn = MSCNEstimator(stats_db, epochs=20).fit(workload, cards)
        fspn = FSPNEstimator(stats_db)
        hist = HistogramEstimator(stats_db)
        for est in (mscn, fspn, hist):
            errs = [
                q_error(est.estimate(q), c) for q, c in zip(workload[:25], cards[:25])
            ]
            assert np.median(errs) < 25.0, type(est).__name__

    def test_planner_plans_or_queries(self, stats_db, stats_simulator):
        opt = Optimizer(stats_db)
        gen = WorkloadGenerator(stats_db, seed=182, or_rate=0.7)
        for q in gen.workload(10, 1, 4, require_predicate=True):
            res = stats_simulator.execute(opt.plan(q))
            assert res.latency_ms > 0

    def test_generator_default_has_no_ors(self, stats_db):
        gen = WorkloadGenerator(stats_db, seed=183)
        for q in gen.workload(30, 1, 4, require_predicate=True):
            assert not any(isinstance(p, OrPredicate) for p in q.predicates)

    def test_generator_validates_or_rate(self, stats_db):
        with pytest.raises(ValueError):
            WorkloadGenerator(stats_db, seed=0, or_rate=1.5)
