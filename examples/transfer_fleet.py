"""Cross-schema transfer: generated schemas, zero-shot costs, a fleet.

Three demonstrations, all deterministic per seed:

1. **Schema generation.**  One seed produces a whole family of databases
   -- variable table counts, chain/star/clique/random join topologies,
   non-PK-FK many-to-many edges, per-column skew/correlation/mixture
   profiles -- each certified by a byte-level fingerprint that two fresh
   processes reproduce exactly.

2. **Zero-shot cost transfer.**  The transferable cost model trains on
   executed plans from the first schemas and predicts plan latencies on
   a held-out schema it never saw, landing far closer to the
   train-on-target ceiling than to a random predictor (gated in
   benchmarks/bench_p10_transfer.py: >= 2x better than random, within
   3x of the ceiling).

3. **The transfer fleet.**  Every schema gets its own complete
   drift-recovery lifecycle stack (champion, triggers, gate, staged
   deployment) mounted on its own shard of the serving fabric, one
   tenant per schema pinned to its shard.  Halfway through the global
   stream every database drifts; the closed loop detects, retrains and
   recovers on each schema concurrently -- and two same-seed runs export
   byte-identical merged telemetry.

Run:  python examples/transfer_fleet.py
"""

import numpy as np

from repro.bench import render_table
from repro.costmodel import PlanFeaturizer, ZeroShotCostModel
from repro.engine import ExecutionSimulator
from repro.lifecycle import transfer_fleet_scenario
from repro.optimizer import HintSet, Optimizer
from repro.sql import WorkloadGenerator
from repro.storage import (
    SchemaGenConfig,
    database_fingerprint,
    schema_family,
    topology_summary,
)


def generate() -> list:
    config = SchemaGenConfig(n_tables=(4, 7), rows=(200, 800), attr_cols=(1, 2))
    dbs = schema_family(5, seed=0, config=config)
    rows = []
    for db in dbs:
        s = topology_summary(db)
        rows.append(
            (
                db.name,
                database_fingerprint(db),
                s["n_tables"],
                s["n_edges"],
                s["non_pk_fk_edges"],
                s["total_rows"],
            )
        )
    print(
        render_table(
            "one seed, five databases",
            ["schema", "fingerprint", "tables", "joins", "m2m", "rows"],
            rows,
            note="same seed => byte-identical data, in any process",
        )
    )
    return dbs


def _corpus(db, n_queries=24, seed=5):
    opt = Optimizer(db)
    sim = ExecutionSimulator(db)
    feat = PlanFeaturizer(db, opt.estimator)
    gen = WorkloadGenerator(db, seed=seed)
    cap = min(4, gen.max_component_size)
    plans, lats = [], []
    for q in gen.workload(n_queries, 1, cap, require_predicate=True):
        for arm in HintSet.bao_arms()[:4]:
            p = opt.plan(q, hints=arm)
            plans.append(p)
            lats.append(sim.execute(p).latency_ms)
    return feat, plans, np.array(lats)


def zero_shot(dbs) -> None:
    corpora = [_corpus(db) for db in dbs]
    sources, (tgt_feat, tgt_plans, tgt_lats) = corpora[:-1], corpora[-1]
    model = ZeroShotCostModel(epochs=80, seed=0)
    model.fit([(f, list(p), l) for f, p, l in sources])
    n_test = len(tgt_plans) // 2
    test_plans, test_lats = tgt_plans[:n_test], tgt_lats[:n_test]

    def geomean_q(preds):
        preds = np.maximum(np.asarray(preds, dtype=float), 1e-6)
        actual = np.maximum(test_lats, 1e-6)
        return float(
            np.exp(np.mean(np.log(np.maximum(preds / actual, actual / preds))))
        )

    zs = geomean_q([model.predict_latency(p, tgt_feat) for p in test_plans])
    rng = np.random.default_rng((0, 0xBA5E))
    lo, hi = np.log(max(test_lats.min(), 1e-6)), np.log(test_lats.max())
    rand = geomean_q(np.exp(rng.uniform(lo, hi, size=n_test)))
    ceiling = ZeroShotCostModel(epochs=80, seed=0)
    ceiling.fit([(tgt_feat, list(tgt_plans[n_test:]), tgt_lats[n_test:])])
    ceil = geomean_q(
        [ceiling.predict_latency(p, tgt_feat) for p in test_plans]
    )
    print(
        render_table(
            f"zero-shot latency prediction on never-seen {dbs[-1].name}",
            ["predictor", "geomean q-error"],
            [
                ("zero-shot (4 schemas pooled)", round(zs, 2)),
                ("train-on-target ceiling", round(ceil, 2)),
                ("random (log-uniform)", round(rand, 2)),
            ],
            note="trained purely on the other schemas' executed plans",
        )
    )


def fleet() -> None:
    runs = []
    for _ in range(2):
        f = transfer_fleet_scenario(n_schemas=8, seed=0)
        f.run()
        runs.append(f)
    f = runs[0]
    stats, qerrs = f.retrain_stats(), f.holdout_qerrors()
    print(
        render_table(
            "the transfer fleet: 8 schemas, 8 shards, one mid-stream drift",
            ["tenant", "retrains", "deploys", "drift_detections", "holdout_q90"],
            [
                (
                    t,
                    stats[t]["retrains"],
                    stats[t]["deploys"],
                    stats[t]["drift_detections"],
                    round(qerrs[t], 2),
                )
                for t in sorted(stats)
            ],
            note="every tenant pinned to its own shard; no failover possible",
        )
    )
    a = runs[0].export_json(include_traces=True)
    b = runs[1].export_json(include_traces=True)
    print(
        f"\nmerged telemetry export: {len(a):,} bytes, "
        f"byte-identical across two same-seed runs: {a == b}"
    )


if __name__ == "__main__":
    dbs = generate()
    zero_shot(dbs)
    fleet()
