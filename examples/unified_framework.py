"""Build your own learned optimizer from the unified framework (§2.2).

The tutorial's key abstraction: every end-to-end learned optimizer =
a *plan exploration strategy* + a *learned risk model*.  This example
composes a brand-new optimizer from spare parts -- a custom exploration
strategy (union of hint-set and cardinality-scaling candidates) with the
variance-filtered ensemble risk model -- drops it into the generic
``LearnedOptimizer`` loop, and protects it with Eraser.  No new learning
code required.

Run:  python examples/unified_framework.py
"""

from repro.bench import render_table
from repro.core.framework import LearnedOptimizer
from repro.costmodel import PlanFeaturizer
from repro.e2e import (
    CardinalityScalingExploration,
    EnsembleLatencyModel,
    HintSetExploration,
    OptimizationLoop,
)
from repro.engine import ExecutionSimulator
from repro.optimizer import Optimizer
from repro.regression import Eraser
from repro.sql import WorkloadGenerator
from repro.storage import make_imdb_lite


class UnionExploration:
    """Custom strategy: explore hint sets *and* cardinality scalings."""

    def __init__(self, optimizer):
        self.hints = HintSetExploration(optimizer)
        self.scales = CardinalityScalingExploration(optimizer)

    def candidates(self, query):
        merged, seen = [], set()
        for cand in self.hints.candidates(query) + self.scales.candidates(query):
            sig = cand.plan.signature()
            if sig not in seen:
                seen.add(sig)
                merged.append(cand)
        return merged


def main() -> None:
    db = make_imdb_lite(scale=0.6, seed=0)
    optimizer = Optimizer(db)
    simulator = ExecutionSimulator(db)
    featurizer = PlanFeaturizer(db, optimizer.estimator)

    mine = LearnedOptimizer(
        exploration=UnionExploration(optimizer),
        risk_model=EnsembleLatencyModel(featurizer, seed=0),
        retrain_every=25,
        name="union+variance",
    )
    guard = Eraser(featurizer)
    loop = OptimizationLoop(mine, simulator, optimizer, guard=guard)

    workload = WorkloadGenerator(db, seed=33).workload(
        200, 2, 5, require_predicate=True
    )
    loop.run(workload)

    s = loop.summary(tail=100)
    print(render_table(
        "custom optimizer: union exploration + variance risk + eraser guard",
        ["metric", "value"],
        [
            ("workload speedup vs native", s["workload_speedup"]),
            ("p99 latency (ms)", s["p99_latency_ms"]),
            ("native p99 (ms)", s["native_p99_latency_ms"]),
            ("regressions (>1.1x)", s["n_regressions"]),
            ("worst regression", s["worst_regression"]),
            ("eraser intervention rate", guard.intervention_rate),
        ],
    ))
    sources = {}
    for r in loop.results[-100:]:
        sources[r.source] = sources.get(r.source, 0) + 1
    print("\nwinning candidate sources on the tail:", sources)


if __name__ == "__main__":
    main()
