"""Learned query rewriting: rules, oracle gate, promotion, serving.

Walks the whole rewrite subsystem end to end on a rewrite-susceptible
workload:

1. **Candidates** -- every query runs the rule library (predicate
   pushdown, IN -> join, OR -> UNION, redundant-predicate elimination,
   range merging); each applicable rule emits a candidate with
   provenance.
2. **Validation** -- candidates pass the zero-tolerance exact-count gate
   (the same machinery as the metamorphic oracle) before any timing.
3. **Promotion** -- validated candidates are timed on the execution
   simulator; >= 1.05x promotes (gold example), <= 0.95x demotes
   (anti-pattern for that query cluster), and the leaderboard serves the
   best promoted rewrite per query.
4. **Learning** -- after fitting the retrieval store, a second pass over
   the same workload skips the rules that regressed on structurally
   similar queries.
5. **Serving** -- the ``RewritingOptimizer`` wraps the leaderboard behind
   the standard learned-optimizer surface and runs through the
   OptimizationLoop with per-query speedups.

Run:  python examples/rewrite_leaderboard.py
"""

from collections import Counter

from repro.bench import render_rewrite_stats, render_table
from repro.e2e.loop import OptimizationLoop
from repro.engine.simulator import ExecutionSimulator
from repro.rewrite import (
    GoldExampleStore,
    PromotionLeaderboard,
    RewritingOptimizer,
)
from repro.sql import WorkloadGenerator
from repro.storage import make_stats_lite


def main() -> None:
    db = make_stats_lite(scale=0.15, seed=0)
    workload = WorkloadGenerator(db, seed=11).rewrite_susceptible_workload(30)

    # -- cold pass: every applicable rule is tried, the oracle gates all
    store = GoldExampleStore(db, n_clusters=4, seed=0)
    leaderboard = PromotionLeaderboard(db, store=store)
    leaderboard.submit_workload(workload)
    print(render_rewrite_stats(leaderboard.stats(), title="cold pass"))

    outcomes = Counter((e.rule, e.status) for e in leaderboard.entries)
    print(
        render_table(
            "per-rule outcomes (cold)",
            ["rule", "status", "count"],
            [(r, s, c) for (r, s), c in sorted(outcomes.items())],
        )
    )

    # -- learning: anti-patterns shift rule selection on similar queries
    store.fit()
    warm = PromotionLeaderboard(db, store=store)
    warm.submit_workload(workload)
    print(
        render_table(
            "feedback shift",
            ["", "candidates", "demoted", "skipped by weight"],
            [
                ("cold", leaderboard.counters["candidates"],
                 leaderboard.counters["demoted"], 0),
                ("warm", warm.counters["candidates"],
                 warm.counters["demoted"],
                 warm.counters["skipped_by_weight"]),
            ],
            note="rules that regressed on a cluster are skipped there",
        )
    )

    # -- serving: promoted rewrites through the standard loop
    rewriter = RewritingOptimizer(leaderboard)
    loop = OptimizationLoop(
        rewriter,
        ExecutionSimulator(db, executor=leaderboard.executor),
        leaderboard.optimizer,
    )
    results = loop.run(workload)
    served = [r for r in results if r.source.startswith("rewrite:")]
    print(
        render_table(
            "serving",
            ["queries", "rewrites served", "geomean promoted", "min speedup"],
            [(
                len(results),
                len(served),
                f"{leaderboard.geomean_promoted():.3f}x",
                f"{min(r.speedup for r in results):.3f}x",
            )],
            note="non-rewritten queries serve the native plan: no regression",
        )
    )


if __name__ == "__main__":
    main()
