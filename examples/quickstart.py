"""Quickstart: plan and execute SQL against the bundled engine.

Shows the core loop every other example builds on: make a database, parse
a query, let the native optimizer plan it, execute on the simulator, then
steer the same planner with hints and with injected cardinalities.

Run:  python examples/quickstart.py
"""

from repro import ExecutionSimulator, HintSet, Optimizer, quickstart_database
from repro.core.interfaces import InjectedCardinalities
from repro.engine import CardinalityExecutor
from repro.pilotscope.interactor import enumerate_subqueries
from repro.sql import parse_query


def main() -> None:
    db = quickstart_database()
    print(f"database: {db}\n")

    optimizer = Optimizer(db)
    simulator = ExecutionSimulator(db)

    sql = (
        "SELECT COUNT(*) FROM comments, posts, users "
        "WHERE comments.post_id = posts.id AND posts.owner_id = users.id "
        "AND users.reputation <= 5 AND posts.score >= 3"
    )
    query = parse_query(sql)
    print(f"query:\n  {sql}\n")

    # 1. The native optimizer's plan.
    plan = optimizer.plan(query)
    result = simulator.execute(plan)
    print("native plan:")
    print(plan.pretty())
    print(f"-> {result.cardinality} rows in {result.latency_ms:.2f} ms "
          f"(estimated cost {optimizer.cost(plan):.1f})\n")

    # 2. Steer with a hint set (Bao's knob): forbid hash joins.
    hinted = optimizer.plan(query, hints=HintSet(enable_hash_join=False))
    print("hint-steered plan (no hash joins):")
    print(hinted.pretty())
    print(f"-> {simulator.execute(hinted).latency_ms:.2f} ms\n")

    # 3. Inject exact cardinalities (PilotScope's knob): the oracle plan.
    exact = CardinalityExecutor(db)
    injected = InjectedCardinalities(optimizer.estimator)
    for sub in enumerate_subqueries(query):
        injected.inject(sub, exact.cardinality(sub))
    oracle_plan = optimizer.with_estimator(injected).plan(query)
    print("plan under exact cardinalities:")
    print(oracle_plan.pretty())
    print(f"-> {simulator.execute(oracle_plan).latency_ms:.2f} ms")


if __name__ == "__main__":
    main()
