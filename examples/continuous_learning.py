"""Continuous learning: drift the data, watch the model retrain itself.

Assembles the closed lifecycle loop -- a GBDT-steered optimizer serving
LIVE, an experience store accumulating execution feedback, drift and
q-error triggers watching the stream -- then mutates the database halfway
through the workload.  The stale model's q-error degrades, the scheduler
clones the champion, a Warper adapts the clone on drift-targeted labelled
queries, the challenger passes the champion-vs-challenger eval gate,
enters deployment at SHADOW, and auto-promotes back to LIVE.  A frozen
baseline running the identical stream shows what that machinery bought.

Run:  python examples/continuous_learning.py
"""

from repro.bench import render_lifecycle_stats, render_table
from repro.lifecycle import drift_recovery_scenario, lifecycle_stats


def run_arm(closed_loop: bool):
    scenario = drift_recovery_scenario(
        scale=0.2,
        seed=0,
        n_queries=160,
        n_train=80,
        n_holdout=24,
        drift_check_every=15,
        cooldown_queries=30,
        closed_loop=closed_loop,
    )
    scenario.run()
    return scenario


def main() -> None:
    closed = run_arm(closed_loop=True)
    frozen = run_arm(closed_loop=False)

    print(
        render_table(
            "continuous learning: closed loop vs frozen model",
            ["arm", "holdout_qerror_p90", "retrains", "deploys", "versions"],
            [
                (
                    "closed_loop",
                    round(closed.holdout_qerror(), 2),
                    closed.scheduler.stats()["retrains"],
                    closed.scheduler.stats()["deploys"],
                    len(closed.registry),
                ),
                (
                    "frozen",
                    round(frozen.holdout_qerror(), 2),
                    0,
                    0,
                    len(frozen.registry),
                ),
            ],
            note=f"database drifted at request {closed.drift_at} of "
            f"{closed.n_requests}",
        )
    )
    print(render_lifecycle_stats(lifecycle_stats(closed)))

    # The registry keeps the whole story: who was trained from whom, why,
    # on which data snapshot, and how deployment went.
    print("\n=== version lineage ===")
    for v in closed.registry.versions():
        stages = " -> ".join(
            s["stage"] for s in closed.registry.stage_history(v.version_id)
        )
        champion = "  <- champion" if v.version_id == closed.registry.champion_id else ""
        print(f"{v.version_id}  trigger={v.trigger}")
        print(f"  parent={v.parent or '-'}  snapshot={v.snapshot_id or '-'}  "
              f"stages={stages or '-'}{champion}")
        report = closed.registry.gate_report(v.version_id)
        if report:
            print(
                f"  gate: passed={report['passed']} "
                f"champion_qerror={report['champion'].get('qerror_q')} "
                f"challenger_qerror={report['challenger'].get('qerror_q')}"
            )

    # Immutability: serving and retraining never mutated a frozen version.
    ok = all(
        closed.registry.verify(v.version_id) for v in closed.registry.versions()
    )
    print(f"\nall registered versions verified immutable: {ok}")


if __name__ == "__main__":
    main()
