"""Pessimistic serving: certified bounds, risk-bounded plans, the guard.

Two demonstrations on one synthetic STATS-style database:

1. **Adversarial drift, optimistic vs pessimistic.** Halfway through a
   served workload, new rows pile every child table's foreign keys onto
   a previously-cold parent key.  The point estimator keeps its stale
   pre-drift statistics and believes the exploding joins are empty; the
   optimistic planner walks into nested-loop plans over huge
   intermediates, while the pessimistic arm (``risk="worst_case"``
   against refreshed bound sketches -- a cheap ANALYZE, no retraining)
   keeps picking hash joins.  Same seed, same workload, same drift:
   only the risk mode differs, and only the tail latency does.

2. **The bound guard under a fault storm.** A :class:`repro.faults.
   BoundGuard` checks every served estimate against its certified upper
   bound.  A fault injector poisons the primary estimator (NaN, Inf,
   garbage magnitudes, crashes); every estimate that crosses its bound
   trips the circuit breaker and serves from the histogram fallback --
   capped at the bound -- with the whole funnel visible in ``bounds.*``
   telemetry.

Run:  python examples/risk_bounded_serving.py
"""

import numpy as np

from repro.bench import render_bounds_stats, render_table
from repro.serve import adversarial_drift_scenario, bound_guard_scenario


def drift_comparison(seed: int = 0) -> None:
    rows = []
    for arm, pessimistic in (("optimistic", False), ("pessimistic", True)):
        scenario = adversarial_drift_scenario(pessimistic=pessimistic, seed=seed)
        report = scenario.run()
        lat = np.array(
            [r.latency_ms for r in report.outcomes if hasattr(r, "latency_ms")]
        )
        rows.append(
            (
                arm,
                int(lat.size),
                report.n_requests - int(lat.size),
                round(float(np.percentile(lat, 50)), 2),
                round(float(np.percentile(lat, 99)), 2),
                round(float(lat.max()), 2),
            )
        )
    print(
        render_table(
            "adversarial hot-key drift: only the risk mode differs",
            ["arm", "served", "rejected", "p50_ms", "p99_ms", "max_ms"],
            rows,
            note="pessimistic = risk='worst_case' + sketch refresh at the drift",
        )
    )


def guard_drill(seed: int = 0) -> None:
    scenario = bound_guard_scenario(seed=seed)
    scenario.run()
    guard = scenario.bound_guard
    print(
        render_bounds_stats(
            guard.stats(),
            title="bound guard under the default fault storm",
            note="every violation is also a bound_violation telemetry event",
        )
    )
    snap = scenario.runtime.telemetry.snapshot()
    events = [e for e in snap["events"] if e.get("kind") == "bound_violation"]
    print(
        f"breaker epoch {guard.breaker.epoch}, "
        f"{len(events)} bound_violation events "
        f"(= {guard.violations} violations recorded by the guard)"
    )


def main() -> None:
    drift_comparison(seed=0)
    guard_drill(seed=0)


if __name__ == "__main__":
    main()
