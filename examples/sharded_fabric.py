"""The sharded, multi-tenant serving fabric: scale-out + a hot-tenant drill.

Two demonstrations, all in virtual time (seconds of wall clock):

1. **Horizontal scale-out.**  The same saturating 40k-request workload
   is served on 1 shard and on 16; deterministic two-choice routing by
   canonical query hash keeps the shards balanced, and simulated
   throughput scales near-linearly (the P9 benchmark gates this at
   >= 0.7x ideal; it measures ~0.93x).

2. **Hot-tenant drill.**  One batch tenant floods the fabric at 8x the
   weight of three interactive victim tenants -- total offered load far
   above capacity.  QoS-aware shedding (batch sheds when its target
   shard's backlog passes a watermark; interactive never fabric-sheds)
   plus an optional per-tenant token-bucket quota absorb the flood: the
   victims' p99 stays within a small multiple of their fair-share
   baseline at the *same* absolute victim arrival rate.

Both runs export one merged telemetry blob; merging is commutative and
two same-seed runs produce byte-identical bytes (the repo's standing
determinism gate, extended to the fabric).

Run:  python examples/sharded_fabric.py
"""

from repro.bench import render_shard_stats, render_table
from repro.serve import RuntimeConfig
from repro.serve.fabric import (
    FabricConfig,
    TenantSpec,
    build_fabric_schedule,
    hot_tenant_specs,
    synthetic_fabric,
    synthetic_queries,
)

N_REQUESTS = 40_000


def _open_config() -> RuntimeConfig:
    return RuntimeConfig(timeout_ms=None, queue_capacity=None, max_in_flight=None)


def _schedule(specs, n, interarrival_ms, seed):
    queries = synthetic_queries(240, seed=seed)
    return build_fabric_schedule(
        (queries * (n // len(queries) + 1))[:n],
        specs,
        seed=seed,
        mean_interarrival_ms=interarrival_ms,
    )


def scale_out(seed: int = 0) -> None:
    specs = tuple(TenantSpec(f"tenant{i:02d}") for i in range(8))
    rows, qps = [], {}
    last = None
    for shards in (1, 16):
        scenario = synthetic_fabric(
            shards,
            specs,
            seed=seed,
            n_workers=2,
            shard_config=_open_config(),
            fabric_config=FabricConfig(seed=seed, keep_outcomes=False),
        )
        report = scenario.fabric.run(
            _schedule(specs, N_REQUESTS, 0.05, seed)
        )
        qps[shards] = report.simulated_qps
        rows.append((shards, report.n_served, round(report.simulated_qps, 1)))
        last = scenario
    print(
        render_table(
            "horizontal scale-out: same workload, 1 vs 16 shards",
            ["shards", "served", "simulated_qps"],
            rows,
            note=f"efficiency = {qps[16] / (16 * qps[1]):.3f} of ideal 16x",
        )
    )
    print(render_shard_stats(last.fabric, title="16-shard balance (two-choice)"))


def hot_tenant_drill(seed: int = 0) -> None:
    fair = hot_tenant_specs(n_victims=3, hot_weight=1.0)
    flood = hot_tenant_specs(n_victims=3, hot_weight=8.0)
    quota = hot_tenant_specs(n_victims=3, hot_weight=8.0, hot_rate_per_s=500.0)
    rows = []
    baseline = None
    for label, specs, interarrival in (
        ("fair share", fair, 0.6),
        ("8x flood", flood, 0.6 * 4.0 / 11.0),
        ("8x flood + quota", quota, 0.6 * 4.0 / 11.0),
    ):
        scenario = synthetic_fabric(
            8,
            specs,
            seed=seed,
            n_workers=2,
            shard_config=_open_config(),
            fabric_config=FabricConfig(
                seed=seed,
                background_shed_backlog=4,
                batch_shed_backlog=8,
                keep_outcomes=False,
            ),
        )
        report = scenario.fabric.run(
            _schedule(specs, N_REQUESTS // 2, interarrival, seed)
        )
        victim_p99 = max(
            report.tenant_latency[t]["p99"]
            for t in report.tenant_latency
            if t.startswith("victim")
        )
        if baseline is None:
            baseline = victim_p99
        rows.append(
            (
                label,
                report.n_served,
                report.rejected.get("qos_shed", 0),
                report.rejected.get("quota", 0),
                round(victim_p99, 1),
                round(victim_p99 / baseline, 2),
            )
        )
    print(
        render_table(
            "hot-tenant drill: victims' p99 vs their fair-share baseline",
            ["arm", "served", "qos_shed", "quota", "victim_p99", "ratio"],
            rows,
            note="same absolute victim arrival rate in every arm",
        )
    )


def determinism(seed: int = 0) -> None:
    exports = []
    for _ in range(2):
        specs = hot_tenant_specs(n_victims=3, hot_weight=8.0)
        scenario = synthetic_fabric(
            8, specs, seed=seed, fabric_config=FabricConfig(seed=seed)
        )
        scenario.fabric.run(_schedule(specs, 5_000, 0.5, seed))
        exports.append(scenario.fabric.export_json(include_traces=True))
    print(
        f"\nmerged telemetry export: {len(exports[0]):,} bytes, "
        f"byte-identical across two same-seed runs: {exports[0] == exports[1]}"
    )


if __name__ == "__main__":
    scale_out()
    hot_tenant_drill()
    determinism()
