"""Living with dynamic data: drift detection and model adaptation.

Walks through the §2.2.2 model-updating pipeline: a supervised estimator
trains on today's data, the data drifts (shifted inserts), DDUp's
two-stage detector notices, and Warper regenerates targeted training
queries to heal the model -- while an ALECE-style estimator only needs its
data tokens refreshed, and the data-driven FSPN just rebuilds.

Run:  python examples/dynamic_data.py
"""

import numpy as np

from repro.bench import apply_drift, render_table
from repro.cardest import (
    ALECEEstimator,
    DDUpDetector,
    FSPNEstimator,
    GBDTQueryEstimator,
    Warper,
    q_error,
)
from repro.engine import CardinalityExecutor
from repro.sql import WorkloadGenerator
from repro.storage import make_stats_lite


def median_qerr(est, queries, cards):
    return float(np.median([q_error(est.estimate(q), c) for q, c in zip(queries, cards)]))


def main() -> None:
    db = make_stats_lite(scale=0.5, seed=0)
    executor = CardinalityExecutor(db)

    gen = WorkloadGenerator(db, seed=1)
    train_q = gen.workload(300, 1, 3, require_predicate=True)
    train_c = np.array([executor.cardinality(q) for q in train_q])

    gbdt = GBDTQueryEstimator(db)
    warper = Warper(db, gbdt, seed=0)
    warper.fit_initial(train_q, train_c)
    alece = ALECEEstimator(db, epochs=80).fit(train_q, train_c)
    fspn = FSPNEstimator(db)
    detector = DDUpDetector(db, seed=0)

    print("no drift yet ->", detector.drifted_tables() or "detector quiet")

    # The world changes: 40% of new, distribution-shifted rows arrive.
    apply_drift(db, fraction=0.4, seed=7)
    executor.clear_cache()
    test_q = WorkloadGenerator(db, seed=97).workload(80, 1, 3, require_predicate=True)
    test_c = np.array([executor.cardinality(q) for q in test_q])

    reports = detector.check()
    print("\nDDUp drift reports:")
    for r in reports:
        print(f"  {r.table:10s} drifted={r.drifted} stage1_z={r.stage1_score:.1f} "
              f"js={r.stage2_divergence:.3f} action={r.action}")

    rows = []
    stale = {
        "gbdt (Warper-wrapped)": median_qerr(gbdt, test_q, test_c),
        "alece": median_qerr(alece, test_q, test_c),
        "fspn": median_qerr(fspn, test_q, test_c),
    }
    # Heal each model its own way.
    warper.adapt()                      # targeted queries + refit
    alece.refresh()                     # recompute data tokens only
    fspn.refresh()                      # rebuild the SPN structure
    fresh = {
        "gbdt (Warper-wrapped)": median_qerr(gbdt, test_q, test_c),
        "alece": median_qerr(alece, test_q, test_c),
        "fspn": median_qerr(fspn, test_q, test_c),
    }
    for name in stale:
        rows.append((name, stale[name], fresh[name]))
    print(render_table(
        "median q-error on post-drift queries",
        ["estimator", "stale", "after adaptation"],
        rows,
        note=f"warper adaptations: {warper.adaptations} "
             f"(regenerated targeted queries for {len(detector._reference)} tables)",
    ))


if __name__ == "__main__":
    main()
