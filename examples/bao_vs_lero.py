"""Bao vs Lero with execution feedback, then Eraser on top.

Runs the two flagship end-to-end learned optimizers (paper §2.2) against
the native optimizer on a JOB-style workload, prints their learning
curves, and shows the Eraser plugin (§2.2.2) trimming the regression tail.

Run:  python examples/bao_vs_lero.py
"""

from repro.bench import render_table
from repro.costmodel import PlanFeaturizer
from repro.e2e import BaoOptimizer, LeroOptimizer, OptimizationLoop
from repro.engine import ExecutionSimulator
from repro.optimizer import Optimizer
from repro.regression import Eraser
from repro.sql import WorkloadGenerator
from repro.storage import make_imdb_lite


def window_speedups(loop, window=50):
    rows = []
    for start in range(0, len(loop.results), window):
        chunk = loop.results[start : start + window]
        native = sum(r.native_latency_ms for r in chunk)
        learned = sum(r.latency_ms for r in chunk)
        rows.append(native / max(learned, 1e-9))
    return rows


def main() -> None:
    db = make_imdb_lite(scale=0.6, seed=0)
    optimizer = Optimizer(db)
    simulator = ExecutionSimulator(db)
    gen = WorkloadGenerator(db, seed=21)
    train = gen.workload(60, 2, 5, require_predicate=True)
    workload = WorkloadGenerator(db, seed=22).workload(
        250, 2, 5, require_predicate=True
    )

    # Bao: learns online from its own executions.
    bao = BaoOptimizer(optimizer, seed=0)
    bao_loop = OptimizationLoop(bao, simulator, optimizer)
    bao_loop.run(workload)

    # Lero: collect plan pairs offline first, then serve.
    lero = LeroOptimizer(optimizer, seed=0)
    pairs = lero.train_offline(train, simulator.latency)
    lero_loop = OptimizationLoop(lero, simulator, optimizer)
    lero_loop.run(workload)
    print(f"lero trained on {pairs} labelled plan pairs\n")

    curves = [
        (f"{i*50}-{(i+1)*50}", b, l)
        for i, (b, l) in enumerate(
            zip(window_speedups(bao_loop), window_speedups(lero_loop))
        )
    ]
    print(render_table(
        "workload speedup over native (windows of 50 queries)",
        ["queries", "bao", "lero"],
        curves,
    ))

    rows = []
    for name, loop in (("bao", bao_loop), ("lero", lero_loop)):
        s = loop.summary(tail=125)
        rows.append((name, s["workload_speedup"], s["n_regressions"], s["worst_regression"]))
    print(render_table(
        "post-warm-up tail (125 queries)",
        ["system", "speedup", "regressions", "worst regression"],
        rows,
    ))

    # Eraser as a plugin on top of Bao: trade some speedup for tail safety.
    featurizer = PlanFeaturizer(db, optimizer.estimator)
    guarded = OptimizationLoop(
        BaoOptimizer(optimizer, seed=0), simulator, optimizer,
        guard=Eraser(featurizer),
    )
    guarded.run(workload)
    s = guarded.summary(tail=125)
    print(f"\nbao + eraser: speedup={s['workload_speedup']:.2f}, "
          f"regressions={s['n_regressions']}, worst={s['worst_regression']:.2f}x")


if __name__ == "__main__":
    main()
