"""A chaos drill: break the learned stack on purpose, watch it degrade.

Assembles the full serving stack behind a seeded fault plan -- the
cardinality estimator crashes, returns NaN/garbage and serves stale
statistics; the learned optimizer crashes and stalls -- then runs a
concurrent workload through it twice with the same seed.  Every query is
answered (fallback estimator, circuit breakers, degraded native serving),
every fault is accounted on the telemetry bus, and the two runs' telemetry
exports are byte-identical: chaos here is a reproducible experiment, not
noise.

Run:  python examples/chaos_drill.py
"""

from repro.bench import render_fault_stats, render_table
from repro.faults import FaultPlan, FaultSpec
from repro.serve import chaos_scenario


def run_once(seed: int):
    # A harsher mix than the default plan, to make every rung visible:
    # a burst window (calls 40-80) where the learned optimizer always
    # crashes trips its breaker and demonstrates degraded serving.
    plan = FaultPlan(
        (
            FaultSpec(kind="exception", rate=0.10, target="estimator"),
            FaultSpec(kind="nan", rate=0.08, target="estimator"),
            FaultSpec(kind="stale", rate=0.10, target="estimator"),
            FaultSpec(
                kind="exception",
                rate=1.0,
                target="learned",
                start_call=40,
                end_call=48,
            ),
            FaultSpec(
                kind="latency", rate=0.08, target="learned", magnitude=400.0
            ),
        ),
        seed=seed,
    )
    scenario = chaos_scenario(seed=seed, n_queries=150, plan=plan)
    report = scenario.run()
    return scenario, report


def main() -> None:
    scenario, report = run_once(seed=11)
    deployment = scenario.deployment
    print(
        render_table(
            "chaos drill: availability under injected faults",
            ["served", "requests", "faults_injected", "learned_failures",
             "degraded_serves", "breaker_trips"],
            [(
                report.n_served,
                report.n_requests,
                scenario.injector.total_injected(),
                deployment.learned_failures,
                deployment.degraded_serves,
                deployment.breaker.trips,
            )],
            note="every query answered; failures absorbed by the ladder",
        )
    )
    print(render_fault_stats(scenario.injector.stats()))

    transitions = deployment.telemetry.events("breaker_transition")
    if transitions:
        print(
            render_table(
                "breaker transitions",
                ["breaker", "from", "to", "reason"],
                [
                    (e["breaker"], e["from_state"], e["to_state"], e["reason"])
                    for e in transitions
                ],
            )
        )

    # Same seed, same chaos, byte for byte.
    scenario2, _ = run_once(seed=11)
    a = deployment.telemetry.to_json()
    b = scenario2.deployment.telemetry.to_json()
    print(
        "\ndeterminism: two same-seed runs produced "
        + ("IDENTICAL" if a == b else "DIVERGENT")
        + f" telemetry exports ({len(a)} bytes)"
    )


if __name__ == "__main__":
    main()
