"""A tour of the learned cardinality estimators (paper Table 1, live).

Trains/builds one representative of each family on the STATS-style
database, compares their q-errors on a held-out workload, demonstrates
uncertainty intervals (Fauce-style ensembles) and the AutoCE model
advisor's recommendation.

Run:  python examples/cardinality_tour.py
"""

import numpy as np

from repro.bench import render_table
from repro.cardest import (
    BayesNetEstimator,
    EnsembleEstimator,
    FactorJoinEstimator,
    FSPNEstimator,
    GBDTQueryEstimator,
    HistogramEstimator,
    MLPQueryEstimator,
    MSCNEstimator,
    NaruEstimator,
    SamplingEstimator,
)
from repro.cardest.advisor import AutoCE
from repro.cardest.base import q_error_summary
from repro.engine import CardinalityExecutor
from repro.sql import WorkloadGenerator
from repro.storage import make_stats_lite, make_tpch_lite


def main() -> None:
    db = make_stats_lite(scale=0.5, seed=0)
    executor = CardinalityExecutor(db)

    # Training workload: executed once to collect true cardinalities
    # (what PilotScope's data-collection phase does).
    train_gen = WorkloadGenerator(db, seed=1)
    train_q = train_gen.workload(300, 1, 4, require_predicate=True)
    train_c = np.array([executor.cardinality(q) for q in train_q])

    test_gen = WorkloadGenerator(db, seed=97)
    test_q = test_gen.workload(80, 1, 4, require_predicate=True)
    test_c = np.array([executor.cardinality(q) for q in test_q])

    estimators = {
        "histogram (native)": HistogramEstimator(db),
        "sampling": SamplingEstimator(db, 150),
        "gbdt [9,10]": GBDTQueryEstimator(db).fit(train_q, train_c),
        "mlp [32]": MLPQueryEstimator(db, epochs=60).fit(train_q, train_c),
        "mscn [23]": MSCNEstimator(db, epochs=50).fit(train_q, train_c),
        "naru [71]": NaruEstimator(db, epochs=8),
        "bayesnet [57,65]": BayesNetEstimator(db),
        "fspn [81]": FSPNEstimator(db),
        "factorjoin [64]": FactorJoinEstimator(db),
    }
    rows = []
    for name, est in estimators.items():
        preds = np.array([est.estimate(q) for q in test_q])
        s = q_error_summary(preds, test_c)
        rows.append((name, s["p50"], s["p90"], s["max"], s["gmq"]))
    print(render_table(
        "q-error on 80 held-out STATS-style queries",
        ["estimator", "p50", "p90", "max", "gmq"],
        rows,
    ))

    # Uncertainty: a Fauce-style ensemble of differently-seeded MLPs.
    members = [
        MLPQueryEstimator(db, epochs=40, seed=s).fit(train_q, train_c)
        for s in range(4)
    ]
    ensemble = EnsembleEstimator(db, members)
    q = test_q[0]
    lo, hi = ensemble.predict_interval(q)
    print(f"\nuncertainty demo on: {q.to_sql()}")
    print(f"  point estimate {ensemble.estimate(q):.0f}, "
          f"95% interval [{lo:.0f}, {hi:.0f}], "
          f"true {executor.cardinality(q)}")

    # Model advisor: profile two very different databases, then ask for a
    # recommendation on a third.
    advisor = AutoCE()
    advisor.record(db, "fspn")  # correlated, skewed -> structure models
    advisor.record(make_tpch_lite(0.5), "histogram")  # uniform -> cheap wins
    new_db = make_stats_lite(scale=0.7, seed=42)
    print(f"\nAutoCE recommends for a new STATS-like database: "
          f"{advisor.recommend(new_db)!r}")


if __name__ == "__main__":
    main()
