"""Writing and deploying a custom PilotScope driver (paper §3.2).

Demonstrates the middleware's programming model end to end: implement a
new AI4DB driver by overriding ``init()`` (via ``_prepare``) and
``algo()``, interact with the database exclusively through push/pull
operators, register it on the console and serve user SQL transparently.

The custom driver here is a miniature "re-optimizer": it plans the query,
executes it, and -- when the native cardinality estimate for the full
query was badly wrong -- feeds the *observed* cardinality back so the next
occurrence of the same query plans with corrected numbers (a tiny
LPCE-flavoured loop built only from middleware primitives).

Run:  python examples/pilotscope_driver.py
"""

from repro.pilotscope import (
    Driver,
    PilotScopeConsole,
    SimulatedPostgreSQL,
)
from repro.pilotscope.interactor import ExecutionOutcome
from repro.sql import Query, WorkloadGenerator
from repro.storage import make_stats_lite


class FeedbackDriver(Driver):
    """Re-optimizing driver: remembers observed cardinalities."""

    injection_type = "cardinality"
    name = "feedback_reoptimizer"

    def _prepare(self) -> None:
        # init(): preparations -- here, the feedback store.
        self.observed: dict[str, float] = {}
        self.corrections = 0

    def algo(self, query: Query) -> ExecutionOutcome:
        interactor = self._require_started()
        with interactor.open_session() as session:
            # Push everything we have observed about this query's
            # sub-queries before planning.
            known = {
                sub.to_sql(): self.observed[sub.to_sql()]
                for sub in session.pull_subqueries(query)
                if sub.to_sql() in self.observed
            }
            if known:
                session.push_cardinalities(known)
                self.corrections += 1
            plan = session.pull_plan(query)
            result = session.pull_execution(plan)
            # Pull-side feedback: record true cardinalities of every plan
            # node for future queries over the same sub-expressions.
            for node, card in result.node_cards.items():
                sub = plan.node_subquery(node)
                self.observed[sub.to_sql()] = float(card)
        return ExecutionOutcome(
            cardinality=result.cardinality,
            latency_ms=result.latency_ms,
            plan=plan,
        )


def main() -> None:
    db = make_stats_lite(scale=0.5, seed=0)
    pg = SimulatedPostgreSQL(db)
    console = PilotScopeConsole(pg)

    driver = FeedbackDriver()
    console.register_driver(driver)
    console.start_driver("feedback_reoptimizer")
    print("driver started:", console.active_drivers())

    # A workload with repeats: the driver's feedback pays off on re-runs.
    gen = WorkloadGenerator(db, seed=5)
    base = gen.workload(15, 2, 4, require_predicate=True)
    workload = base * 3

    first_pass = sum(console.execute(q).latency_ms for q in workload[:15])
    second_pass = sum(console.execute(q).latency_ms for q in workload[15:30])
    third_pass = sum(console.execute(q).latency_ms for q in workload[30:])
    print(f"pass 1 latency: {first_pass:.1f} ms  (cold: native estimates)")
    print(f"pass 2 latency: {second_pass:.1f} ms  (observed cards pushed)")
    print(f"pass 3 latency: {third_pass:.1f} ms")
    print(f"queries planned with corrected cardinalities: {driver.corrections}")
    print(f"distinct sub-queries learned: {len(driver.observed)}")

    # The user-facing log never mentions ML internals -- transparency.
    served = {e.served_by for e in console.query_log}
    print("query log served_by values:", served)


if __name__ == "__main__":
    main()
