"""Staged rollout of a learned optimizer: shadow -> canary -> live.

Demonstrates the serving runtime end to end: a Bao-style learned
optimizer is placed behind a :class:`~repro.serve.DeploymentManager` and
walked through the production rollout stages while 8 concurrent sessions
stream queries through :class:`~repro.serve.ServingRuntime`:

1. **SHADOW** -- every query is planned by both sides but served native;
   the learned candidate runs hypothetically off the serving path, so we
   learn what its speedup *would* be at zero user-visible risk.
2. **CANARY** -- after ``promote()``, a deterministic query-hash fraction
   of traffic is served by the learned optimizer; the rest stays native.
3. **LIVE** -- all traffic served learned, still monitored against the
   native baseline.
4. **Rollback** -- finally, a deployment whose model turns adversarial
   mid-stream: the rolling regression window breaches its threshold and
   the manager rolls the model back automatically.

Run:  python examples/serving_canary.py
"""

from repro.bench import render_table
from repro.e2e.bao import BaoOptimizer
from repro.engine.simulator import ExecutionSimulator
from repro.optimizer.planner import Optimizer
from repro.serve import (
    DeploymentManager,
    ServingRuntime,
    Stage,
    build_schedule,
    injected_regression_scenario,
)
from repro.sql import WorkloadGenerator
from repro.storage import make_stats_lite


def main() -> None:
    db = make_stats_lite(scale=0.3, seed=0)
    native = Optimizer(db)
    simulator = ExecutionSimulator(db)
    learned = BaoOptimizer(native, seed=0)

    deployment = DeploymentManager(
        learned,
        native,
        simulator,
        stage=Stage.SHADOW,
        canary_fraction=0.5,
        window=30,
        min_samples=10,
        regression_threshold=1.5,
    )
    runtime = ServingRuntime(deployment)
    queries = WorkloadGenerator(db, seed=1).workload(240, 2, 4, require_predicate=True)

    # One batch of concurrent traffic per rollout stage.
    batches = [queries[:80], queries[80:160], queries[160:]]
    rows = []
    for batch in batches:
        report = runtime.run(build_schedule(batch, n_sessions=8, seed=0))
        snap = deployment.telemetry.snapshot()
        rows.append((
            deployment.stage.value,
            report.n_served,
            snap["counters"].get("serve.learned", 0),
            snap["counters"].get("serve.native", 0),
            f"{deployment.window_mean() or 1.0:.3f}",
        ))
        if deployment.stage is not Stage.LIVE:
            deployment.promote()
    print(
        render_table(
            "staged rollout (counters are cumulative)",
            ["stage", "served", "learned_total", "native_total", "window_mean"],
            rows,
        )
    )
    cache = deployment.cache_stats()
    print(f"planner cardinality cache: {cache['hits']} hits, "
          f"{cache['misses']} misses ({cache['hit_rate']:.1%} hit rate)")

    # A canary that goes bad: automatic rollback, visible in telemetry.
    scenario = injected_regression_scenario(scale=0.3, seed=0, n_queries=120)
    scenario.run()
    print(f"\ninjected-regression canary ended in: {scenario.deployment.stage.value}")
    print(
        render_table(
            "stage transitions",
            ["from", "to", "reason", "at_query"],
            [
                (e["from_stage"], e["to_stage"], e["reason"], e["at_query"])
                for e in scenario.deployment.telemetry.events("stage_transition")
            ],
        )
    )


if __name__ == "__main__":
    main()
