"""Shared columnar join/filter kernels and the key-index cache.

Before this module existed, every consumer of the columnar store hand-rolled
its own ``argsort`` + ``searchsorted`` + offset-expansion join:
``CardinalityExecutor._materialized_count``, the oracle's
:class:`~repro.oracle.planexec.PlanInterpreter` and the tree-count message
pass each carried a subtly different copy, and each paid the ``argsort`` /
``np.unique`` of the build side's key column *once per join per plan* --
even though the underlying column never changed between plans.

This module is the single implementation all of them now share:

- :class:`GroupIndex` -- a sort-based "hash table" over a key array
  (unique keys, group extents, the permutation sorting positions by key);
- :func:`match_counts` / :func:`expand_matches` -- the ``np.searchsorted``
  semi-join and the vectorized probe-order match expansion, i.e. one
  sort-merge/expand join kernel used by the materializer and the plan
  interpreter alike;
- :func:`grouped_sums` / :func:`lookup_sums` -- the group-by-sum and
  semi-join lookup primitives of the tree-count message pass, integer-exact
  past the int64/float64 limits;
- :func:`compile_predicates` -- predicate conjunctions compiled once into a
  boolean-mask evaluator closure (no per-row, per-call ``Op`` dispatch);
- :class:`KeyIndexCache` -- a bounded LRU of *full-column* group indexes
  keyed by ``(table, column, data_version)``, with :meth:`~KeyIndexCache.
  restricted` deriving the index of any filtered row subset in O(n) from
  the cached O(n log n) sort.  Data mutations bump ``data_version``, so
  stale indexes are simply never looked up again and age out of the LRU.

The pure-Python :mod:`repro.oracle.reference` counter deliberately does
*not* use this module -- it is the independent cross-check that keeps the
kernels honest.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sql.query import Op
from repro.storage.table import Table

__all__ = [
    "GroupIndex",
    "KeyIndexCache",
    "match_counts",
    "expand_matches",
    "grouped_sums",
    "lookup_sums",
    "compile_predicates",
    "is_strictly_increasing",
]


def is_strictly_increasing(rows: np.ndarray) -> bool:
    """True when ``rows`` is a strictly increasing index array.

    The shape ``np.flatnonzero`` produces -- and the precondition for
    :meth:`KeyIndexCache.restricted`.  Join intermediates (gathered, with
    duplicates) fail this and must be indexed directly.
    """
    return rows.size == 0 or bool(np.all(rows[1:] > rows[:-1]))

#: Promote int64 arithmetic to Python-int (object dtype) once a float64
#: shadow of the running value crosses this bound; one power of two of
#: headroom below ``2**63 - 1`` makes the check sound (the shadow tracks
#: the true integer value to ~1e-13 relative error).
_INT64_PROMOTE_LIMIT = float(2**62)

_EMPTY_I64 = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class GroupIndex:
    """Sort-based 'hash table' over a key array.

    ``perm`` holds positions into the original key array in key-sorted
    order; ``uniq`` the sorted distinct keys; ``start``/``length`` the
    extent of each key's group within ``perm``.  Built once per key array
    (or once per *column* via :class:`KeyIndexCache`), probed many times.
    """

    uniq: np.ndarray
    start: np.ndarray  # int64 offsets into perm
    length: np.ndarray  # int64 group sizes
    perm: np.ndarray  # positions into the indexed array, key-sorted

    @classmethod
    def from_keys(cls, keys: np.ndarray) -> "GroupIndex":
        """Index an arbitrary key array (one stable argsort)."""
        if keys.size == 0:
            return cls(keys, _EMPTY_I64, _EMPTY_I64, _EMPTY_I64)
        perm = np.argsort(keys, kind="stable")
        return cls._from_sorted(keys[perm], perm)

    @classmethod
    def _from_sorted(cls, sorted_keys: np.ndarray, perm: np.ndarray) -> "GroupIndex":
        """Index already-key-sorted data: O(n), no sort."""
        if sorted_keys.size == 0:
            return cls(sorted_keys, _EMPTY_I64, _EMPTY_I64, perm.astype(np.int64))
        boundary = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
        start = np.concatenate(([0], boundary)).astype(np.int64)
        length = np.diff(np.append(start, sorted_keys.shape[0])).astype(np.int64)
        return cls(sorted_keys[start], start, length, perm.astype(np.int64))

    @property
    def n_keys(self) -> int:
        return int(self.uniq.shape[0])


def match_counts(
    index: GroupIndex, probe_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``np.searchsorted`` semi-join: per-probe group position and match count.

    Returns ``(pos, counts)`` where ``pos[i]`` is the probe's group slot in
    the index (clipped; only meaningful where ``counts[i] > 0``) and
    ``counts[i]`` the number of build-side matches.
    """
    if index.uniq.size == 0:
        zeros = np.zeros(probe_keys.shape[0], dtype=np.int64)
        return zeros, zeros
    pos = np.searchsorted(index.uniq, probe_keys)
    pos = np.clip(pos, 0, index.uniq.shape[0] - 1)
    hit = index.uniq[pos] == probe_keys
    counts = np.where(hit, index.length[pos], 0).astype(np.int64)
    return pos, counts


def expand_matches(
    index: GroupIndex, probe_pos: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Build-side positions matching each probe, expanded in probe order.

    The companion of :func:`match_counts`: given the per-probe group slots
    and match counts, emit for probe ``i`` the ``counts[i]`` positions of
    its matching build rows, concatenated over probes.  Pure vector code --
    the offset-within-group trick both the materializer and the plan
    interpreter used to hand-roll.
    """
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_I64
    starts = np.where(counts > 0, index.start[probe_pos], 0)
    cum = np.cumsum(counts)
    idx = np.arange(total)
    probe_of_idx = np.searchsorted(cum, idx, side="right")
    offset = idx - (cum[probe_of_idx] - counts[probe_of_idx])
    return index.perm[starts[probe_of_idx] + offset]


def grouped_sums(
    keys: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Group-by-sum ``(unique_keys, summed_weights)``, integer-exact.

    Weights are integer counts (int64, or object-dtype Python ints once
    promoted).  Accumulating them in float64 silently rounds past 2**53 --
    and long multiply chains well before that -- so sums stay in integer
    arithmetic, promoting to arbitrary-precision Python ints when a float64
    shadow shows the int64 range is at risk.  Uses one stable sort plus
    ``np.add.reduceat`` over group extents (faster than the historical
    ``np.unique`` + ``np.add.at`` formulation, same results).
    """
    if keys.size == 0:
        return keys, weights
    index = GroupIndex.from_keys(keys)
    ordered = weights[index.perm]
    if ordered.dtype != object:
        shadow = np.add.reduceat(ordered.astype(np.float64), index.start)
        if np.max(shadow, initial=0.0) < _INT64_PROMOTE_LIMIT:
            return index.uniq, np.add.reduceat(ordered, index.start)
        ordered = ordered.astype(object)
    return index.uniq, np.add.reduceat(ordered, index.start)


def lookup_sums(
    uniq: np.ndarray, sums: np.ndarray, keys: np.ndarray
) -> np.ndarray:
    """Semi-join lookup: map each key to its summed weight (0 when absent)."""
    if uniq.size == 0:
        return np.zeros(keys.shape[0], dtype=sums.dtype if sums.size else np.int64)
    pos = np.searchsorted(uniq, keys)
    pos = np.clip(pos, 0, uniq.shape[0] - 1)
    hit = uniq[pos] == keys
    return np.where(hit, sums[pos], 0)


# -- compiled predicate evaluators -------------------------------------------------


def _compile_one(pred) -> Callable[[np.ndarray], np.ndarray]:
    """One predicate -> a mask closure with the Op dispatch resolved now."""
    op = pred.op
    if op is Op.OR:
        parts = [_compile_one(p) for p in pred.parts]

        def run_or(values: np.ndarray) -> np.ndarray:
            mask = parts[0](values)
            for fn in parts[1:]:
                mask = mask | fn(values)
            return mask

        return run_or
    if op is Op.EQ:
        value = pred.value
        return lambda values: values == value
    if op is Op.LT:
        value = pred.value
        return lambda values: values < value
    if op is Op.LE:
        value = pred.value
        return lambda values: values <= value
    if op is Op.GT:
        value = pred.value
        return lambda values: values > value
    if op is Op.GE:
        value = pred.value
        return lambda values: values >= value
    if op is Op.BETWEEN:
        lo, hi = pred.value
        return lambda values: (values >= lo) & (values <= hi)
    if op is Op.IN:
        members = np.asarray(sorted(pred.value))
        return lambda values: np.isin(values, members)
    raise AssertionError(f"unhandled op {op}")


def compile_predicates(predicates) -> Callable[[Table], np.ndarray] | None:
    """Compile a predicate conjunction into one table -> bool-mask closure.

    Returns ``None`` for an empty conjunction (all rows pass) so callers
    can skip mask allocation entirely.  The closure fetches each referenced
    column once and AND-folds the per-predicate masks; the ``Op`` dispatch
    and literal coercion happen here, at compile time, not per evaluation.
    """
    if not predicates:
        return None
    compiled = [(p.column.column, _compile_one(p)) for p in predicates]

    def run(table: Table) -> np.ndarray:
        mask: np.ndarray | None = None
        for column, fn in compiled:
            m = fn(table.values(column))
            mask = m if mask is None else mask & m
        return mask

    return run


# -- the key-index cache ------------------------------------------------------------


class KeyIndexCache:
    """Bounded LRU of full-column :class:`GroupIndex` objects.

    Keys are ``(table_name, column, data_version)``: the ``argsort`` of a
    join column is paid once per column per data version instead of once
    per join per plan.  :meth:`restricted` then derives the group index of
    any *filtered* row subset from the cached full-column sort in linear
    time -- the filtered rows are walked in cached key order, so no new
    sort is ever needed on the hot path.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, GroupIndex]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def full(self, table: Table, column: str) -> GroupIndex:
        """The (cached) group index over the whole column."""
        key = (table.name, column, table.data_version)
        index = self._entries.get(key)
        if index is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return index
        self.misses += 1
        index = GroupIndex.from_keys(table.values(column))
        self._entries[key] = index
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return index

    def restricted(self, table: Table, column: str, rows: np.ndarray) -> GroupIndex:
        """Group index of ``column`` over the filtered row subset ``rows``.

        ``rows`` must be strictly increasing row indices (the shape
        ``np.flatnonzero`` produces).  The returned index's ``perm`` holds
        positions *into* ``rows`` -- aligned with any arrays gathered by
        ``rows`` -- exactly like ``GroupIndex.from_keys(values[rows])``,
        but without re-sorting: the cached full-column order is filtered
        down in O(n).
        """
        if rows.size == 0:
            return GroupIndex(
                table.values(column)[:0], _EMPTY_I64, _EMPTY_I64, _EMPTY_I64
            )
        full = self.full(table, column)
        if rows.size == table.n_rows:
            # Unfiltered: positions into `rows` equal row ids.
            return full
        keep = np.zeros(table.n_rows, dtype=bool)
        keep[rows] = True
        selected = keep[full.perm]
        rows_in_key_order = full.perm[selected]
        # Map absolute row ids to positions within the (sorted) `rows`.
        position_of = np.empty(table.n_rows, dtype=np.int64)
        position_of[rows] = np.arange(rows.shape[0], dtype=np.int64)
        perm = position_of[rows_in_key_order]
        sorted_keys = table.values(column)[rows_in_key_order]
        return GroupIndex._from_sorted(sorted_keys, perm)

    def stats(self) -> dict[str, float]:
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }

    def clear(self) -> None:
        """Drop all entries (counters are kept; they describe the session)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
