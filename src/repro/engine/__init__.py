"""Execution engine: exact cardinalities, physical plans, latency simulation.

This package is the stand-in for PostgreSQL's executor.  It provides:

- :func:`repro.engine.executor.execute_cardinality` -- exact COUNT(*) of any
  SPJ query over the real (synthetic) data, via message passing on acyclic
  join graphs and a guarded materializing hash join otherwise;
- :mod:`repro.engine.plans` -- physical plan trees (scans and binary joins
  with hash/nested-loop/merge methods);
- :class:`repro.engine.simulator.ExecutionSimulator` -- a deterministic
  cost-based latency model evaluated on *true* cardinalities.  Running a
  plan through the simulator is this repo's equivalent of executing it on
  the DBMS: plans picked with bad cardinality estimates really do run
  slower, which is the feedback signal every learned optimizer consumes.
"""

from repro.engine.executor import CardinalityExecutor, execute_cardinality
from repro.engine.kernels import GroupIndex, KeyIndexCache
from repro.engine.plans import JoinMethod, JoinNode, Plan, PlanNode, ScanMethod, ScanNode
from repro.engine.simulator import ExecutionResult, ExecutionSimulator, SimulatorConfig

__all__ = [
    "CardinalityExecutor",
    "execute_cardinality",
    "GroupIndex",
    "KeyIndexCache",
    "JoinMethod",
    "JoinNode",
    "Plan",
    "PlanNode",
    "ScanMethod",
    "ScanNode",
    "ExecutionResult",
    "ExecutionSimulator",
    "SimulatorConfig",
]
