"""Exact COUNT(*) evaluation of SPJ queries over the columnar store.

Two strategies, picked automatically:

- **Message passing** for acyclic join graphs: the classic
  variable-elimination / semijoin-program trick.  Each filtered table starts
  with per-row weight 1; leaves send ``groupby(join_key) -> sum(weight)``
  messages toward a root, parents multiply the message into their row
  weights, and the root's weight sum is the exact join cardinality.  Runs in
  near-linear time and never materializes the join.

- **Materializing hash join** for cyclic graphs: builds the intermediate
  result table-by-table with hash joins, applying extra (cycle-closing)
  edges as filters.  Guarded by ``max_intermediate_rows`` so pathological
  queries fail loudly instead of exhausting memory.

A :class:`CardinalityExecutor` instance memoizes results per query, since
optimizers repeatedly ask for the same sub-query cardinalities.
"""

from __future__ import annotations

import numpy as np

from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["CardinalityExecutor", "execute_cardinality", "IntermediateTooLarge"]


class IntermediateTooLarge(RuntimeError):
    """Raised when a cyclic-join materialization exceeds the row guard."""


def _filtered_indices(db: Database, query: Query, table: str) -> np.ndarray:
    """Row indices of ``table`` passing all of the query's predicates on it."""
    tbl = db.table(table)
    mask = np.ones(tbl.n_rows, dtype=bool)
    for pred in query.predicates_on(table):
        mask &= pred.evaluate(tbl.values(pred.column.column))
    return np.flatnonzero(mask)


#: Promote int64 message passing to Python-int (object dtype) arithmetic
#: once a float64 shadow of the running value crosses this bound.  The
#: shadow tracks the true (integer) value to ~1e-13 relative error, so one
#: power of two of headroom below ``2**63 - 1`` makes the check sound: any
#: computation that could overflow int64 is promoted first.
_INT64_PROMOTE_LIMIT = float(2**62)


def _group_sum(keys: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (unique_keys, summed_weights), integer-exact.

    Weights are integer counts (int64, or object-dtype Python ints once
    promoted).  Accumulating them in float64 silently rounds past 2**53 --
    and long multiply chains well before that -- so sums stay in integer
    arithmetic, promoting to arbitrary-precision Python ints when a float64
    shadow shows the int64 range is at risk.
    """
    if keys.size == 0:
        return keys, weights
    uniq, inverse = np.unique(keys, return_inverse=True)
    if weights.dtype != object:
        shadow = np.zeros(uniq.shape[0])
        np.add.at(shadow, inverse, weights.astype(np.float64))
        if np.max(shadow, initial=0.0) < _INT64_PROMOTE_LIMIT:
            sums = np.zeros(uniq.shape[0], dtype=np.int64)
            np.add.at(sums, inverse, weights)
            return uniq, sums
        weights = weights.astype(object)
    sums = np.zeros(uniq.shape[0], dtype=object)
    np.add.at(sums, inverse, weights)
    return uniq, sums


def _lookup(uniq: np.ndarray, sums: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Map each key to its summed weight (0 when absent)."""
    if uniq.size == 0:
        return np.zeros(keys.shape[0], dtype=sums.dtype if sums.size else np.int64)
    pos = np.searchsorted(uniq, keys)
    pos = np.clip(pos, 0, uniq.shape[0] - 1)
    hit = uniq[pos] == keys
    out = np.where(hit, sums[pos], 0)
    return out


def _weight_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise integer product, promoting past the int64 range."""
    if a.dtype == object or b.dtype == object:
        return a.astype(object) * b.astype(object)
    shadow = a.astype(np.float64) * b.astype(np.float64)
    if shadow.size and np.max(shadow, initial=0.0) >= _INT64_PROMOTE_LIMIT:
        return a.astype(object) * b.astype(object)
    return a * b


def _weight_total(weights: np.ndarray) -> int:
    """Exact integer sum of a weight array."""
    if weights.dtype == object:
        return int(sum(weights.tolist()))
    if (
        weights.size
        and weights.astype(np.float64).sum() >= _INT64_PROMOTE_LIMIT
    ):
        return int(sum(int(w) for w in weights))
    return int(weights.sum())


def _join_graph_is_tree(query: Query) -> bool:
    """Connected + exactly n-1 edges over distinct table pairs (no cycles,
    and no parallel edges between a table pair, which message passing on a
    single key per edge cannot express)."""
    pairs = set()
    for j in query.joins:
        pair = frozenset((j.left.table, j.right.table))
        if pair in pairs:
            return False  # parallel edge: treat as cyclic, use materializer
        pairs.add(pair)
    return query.is_connected() and len(pairs) == len(query.tables) - 1


class CardinalityExecutor:
    """Exact-cardinality oracle over a database, with per-query memoization."""

    def __init__(
        self, db: Database, max_intermediate_rows: int = 50_000_000
    ) -> None:
        self.db = db
        self.max_intermediate_rows = max_intermediate_rows
        self._cache: dict[Query, int] = {}

    def cardinality(self, query: Query) -> int:
        """Exact COUNT(*) of the query.

        Disconnected join graphs are rejected (the surveyed systems never
        produce cross joins); single-table queries count filtered rows.
        """
        cached = self._cache.get(query)
        if cached is not None:
            return cached
        if not query.is_connected():
            raise ValueError(
                f"query join graph is disconnected (cross join unsupported): {query}"
            )
        if query.n_tables == 1:
            result = int(_filtered_indices(self.db, query, query.tables[0]).size)
        elif _join_graph_is_tree(query):
            result = self._tree_count(query)
        else:
            result = self._materialized_count(query)
        self._cache[query] = result
        return result

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- acyclic: message passing --------------------------------------------------

    def _tree_count(self, query: Query) -> int:
        # Build adjacency: table -> list of (neighbor, my_col, their_col).
        adj: dict[str, list[tuple[str, str, str]]] = {t: [] for t in query.tables}
        for j in query.joins:
            adj[j.left.table].append((j.right.table, j.left.column, j.right.column))
            adj[j.right.table].append((j.left.table, j.right.column, j.left.column))

        rows = {
            t: _filtered_indices(self.db, query, t) for t in query.tables
        }
        weights = {
            t: np.ones(rows[t].shape[0], dtype=np.int64) for t in query.tables
        }

        root = query.tables[0]
        # Post-order traversal (iterative).
        order: list[tuple[str, str | None, str | None, str | None]] = []
        stack: list[tuple[str, str | None, str | None, str | None]] = [
            (root, None, None, None)
        ]
        visited = {root}
        while stack:
            entry = stack.pop()
            order.append(entry)
            table = entry[0]
            for neighbor, my_col, their_col in adj[table]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    # neighbor joins to `table` on neighbor.their? careful:
                    # (neighbor, neighbor_col=their_col) = (table, my_col)
                    stack.append((neighbor, table, their_col, my_col))

        # Process children before parents.
        for table, parent, my_col, parent_col in reversed(order):
            if parent is None:
                continue
            keys = self.db.table(table).values(my_col)[rows[table]]
            uniq, sums = _group_sum(keys, weights[table])
            parent_keys = self.db.table(parent).values(parent_col)[rows[parent]]
            weights[parent] = _weight_product(
                weights[parent], _lookup(uniq, sums, parent_keys)
            )
        return _weight_total(weights[root])

    # -- cyclic: guarded materialization ---------------------------------------------

    def _materialized_count(self, query: Query) -> int:
        # Greedy table order: start at the smallest filtered table, then
        # repeatedly add a joined neighbor.
        rows = {t: _filtered_indices(self.db, query, t) for t in query.tables}
        remaining = set(query.tables)
        start = min(remaining, key=lambda t: rows[t].size)
        inter: dict[str, np.ndarray] = {start: rows[start]}
        remaining.discard(start)
        done_edges: set[int] = set()

        while remaining:
            candidates = [
                (i, j)
                for i, j in enumerate(query.joins)
                if i not in done_edges
                and (
                    (j.left.table in inter) != (j.right.table in inter)
                )
            ]
            if not candidates:
                raise AssertionError("connected query ran out of join edges")
            edge_i, edge = candidates[0]
            if edge.left.table in inter:
                old_ref, new_ref = edge.left, edge.right
            else:
                old_ref, new_ref = edge.right, edge.left
            new_table = new_ref.table

            build_keys = self.db.table(new_table).values(new_ref.column)[
                rows[new_table]
            ]
            probe_keys = self.db.table(old_ref.table).values(old_ref.column)[
                inter[old_ref.table]
            ]
            uniq, counts_start, counts_len, perm = _hash_index(build_keys)
            probe_pos = np.searchsorted(uniq, probe_keys)
            probe_pos = np.clip(probe_pos, 0, max(uniq.shape[0] - 1, 0))
            hit = (
                uniq[probe_pos] == probe_keys
                if uniq.size
                else np.zeros(probe_keys.shape[0], dtype=bool)
            )
            match_counts = np.where(hit, counts_len[probe_pos], 0).astype(np.int64)
            total = int(match_counts.sum())
            if total > self.max_intermediate_rows:
                raise IntermediateTooLarge(
                    f"intermediate of {total} rows exceeds guard "
                    f"({self.max_intermediate_rows}) for query {query}"
                )
            # Expand: repeat each intermediate row by its match count and
            # gather the matching new-table row indices.
            left_repeat = np.repeat(np.arange(probe_keys.shape[0]), match_counts)
            gather = _expand_matches(
                probe_pos, match_counts, counts_start, perm
            )
            inter = {t: idx[left_repeat] for t, idx in inter.items()}
            inter[new_table] = rows[new_table][gather]
            remaining.discard(new_table)
            done_edges.add(edge_i)

            # Apply any cycle-closing edges now internal to the intermediate.
            for i, j in enumerate(query.joins):
                if i in done_edges:
                    continue
                if j.left.table in inter and j.right.table in inter:
                    lv = self.db.table(j.left.table).values(j.left.column)[
                        inter[j.left.table]
                    ]
                    rv = self.db.table(j.right.table).values(j.right.column)[
                        inter[j.right.table]
                    ]
                    keep = lv == rv
                    inter = {t: idx[keep] for t, idx in inter.items()}
                    done_edges.add(i)
        first = next(iter(inter.values()))
        return int(first.shape[0])


def _hash_index(
    keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sort-based 'hash table': returns (unique_keys, group_start, group_len,
    permutation sorting rows by key)."""
    if keys.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return keys, empty, empty, empty
    perm = np.argsort(keys, kind="stable")
    sorted_keys = keys[perm]
    uniq, start = np.unique(sorted_keys, return_index=True)
    lengths = np.diff(np.append(start, sorted_keys.shape[0]))
    return uniq, start.astype(np.int64), lengths.astype(np.int64), perm


def _expand_matches(
    probe_pos: np.ndarray,
    match_counts: np.ndarray,
    group_start: np.ndarray,
    perm: np.ndarray,
) -> np.ndarray:
    """Row indices (into the build side's filtered rows) matching each probe,
    expanded in probe order."""
    total = int(match_counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.where(match_counts > 0, group_start[probe_pos], 0)
    # offsets within each probe's group: 0..count-1
    cum = np.cumsum(match_counts)
    idx = np.arange(total)
    probe_of_idx = np.searchsorted(cum, idx, side="right")
    offset = idx - (cum[probe_of_idx] - match_counts[probe_of_idx])
    return perm[starts[probe_of_idx] + offset]


def execute_cardinality(db: Database, query: Query) -> int:
    """Convenience one-shot exact cardinality (no memoization)."""
    return CardinalityExecutor(db).cardinality(query)
