"""Exact COUNT(*) evaluation of SPJ queries over the columnar store.

Two strategies, picked automatically:

- **Message passing** for acyclic join graphs: the classic
  variable-elimination / semijoin-program trick.  Each filtered table starts
  with per-row weight 1; leaves send ``groupby(join_key) -> sum(weight)``
  messages toward a root, parents multiply the message into their row
  weights, and the root's weight sum is the exact join cardinality.  Runs in
  near-linear time and never materializes the join.

- **Materializing hash join** for cyclic graphs: builds the intermediate
  result table-by-table with hash joins, applying extra (cycle-closing)
  edges as filters.  Guarded by ``max_intermediate_rows`` so pathological
  queries fail loudly instead of exhausting memory.

The numeric kernels (group-by-sum, semi-join lookup, sort-merge/expand
join, key-index cache) live in :mod:`repro.engine.kernels` and are shared
with the oracle's plan interpreter.  The module-level wrappers below
(`_filtered_indices`, `_group_sum`, `_lookup`, ...) are kept as the live
call path on purpose: the oracle's seeded mutations patch these names to
re-introduce known bug classes, so they must remain where the executor
actually dispatches through.

A :class:`CardinalityExecutor` instance memoizes results per query in a
bounded LRU, since optimizers repeatedly ask for the same sub-query
cardinalities (and under serving the query stream is unbounded).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.engine.kernels import (
    _INT64_PROMOTE_LIMIT,
    KeyIndexCache,
    expand_matches,
    grouped_sums,
    lookup_sums,
    match_counts,
)
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["CardinalityExecutor", "execute_cardinality", "IntermediateTooLarge"]


class IntermediateTooLarge(RuntimeError):
    """Raised when a cyclic-join materialization exceeds the row guard."""


def _filtered_indices(db: Database, query: Query, table: str) -> np.ndarray:
    """Row indices of ``table`` passing all of the query's predicates on it.

    Deliberately dispatches through ``Predicate.evaluate`` (not the compiled
    evaluators in :mod:`repro.engine.kernels`): predicate-semantics
    mutations patch ``evaluate``, and the differential oracle catches them
    by this path diverging from the pure-Python reference.
    """
    tbl = db.table(table)
    mask = np.ones(tbl.n_rows, dtype=bool)
    for pred in query.predicates_on(table):
        mask &= pred.evaluate(tbl.values(pred.column.column))
    return np.flatnonzero(mask)


def _group_sum(keys: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (unique_keys, summed_weights), integer-exact (see kernels)."""
    return grouped_sums(keys, weights)


def _lookup(uniq: np.ndarray, sums: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Map each key to its summed weight (0 when absent)."""
    return lookup_sums(uniq, sums, keys)


def _weight_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise integer product, promoting past the int64 range."""
    if a.dtype == object or b.dtype == object:
        return a.astype(object) * b.astype(object)
    shadow = a.astype(np.float64) * b.astype(np.float64)
    if shadow.size and np.max(shadow, initial=0.0) >= _INT64_PROMOTE_LIMIT:
        return a.astype(object) * b.astype(object)
    return a * b


def _weight_total(weights: np.ndarray) -> int:
    """Exact integer sum of a weight array."""
    if weights.dtype == object:
        return int(sum(weights.tolist()))
    if (
        weights.size
        and weights.astype(np.float64).sum() >= _INT64_PROMOTE_LIMIT
    ):
        return int(sum(int(w) for w in weights))
    return int(weights.sum())


def _join_graph_is_tree(query: Query) -> bool:
    """Connected + exactly n-1 edges over distinct table pairs (no cycles,
    and no parallel edges between a table pair, which message passing on a
    single key per edge cannot express)."""
    pairs = set()
    for j in query.joins:
        pair = frozenset((j.left.table, j.right.table))
        if pair in pairs:
            return False  # parallel edge: treat as cyclic, use materializer
        pairs.add(pair)
    return query.is_connected() and len(pairs) == len(query.tables) - 1


class CardinalityExecutor:
    """Exact-cardinality oracle over a database, with bounded memoization.

    The per-query memo is an LRU capped at ``cache_capacity`` (serving
    streams are unbounded; the old dict grew without limit) with hit/miss/
    eviction counters surfaced through :meth:`cache_stats` in the same
    shape the optimizer's ``CardinalityCache`` reports.  The memo is
    pinned to ``db.data_version`` and drops itself whenever a table
    mutates -- an exact oracle that answers from pre-mutation data is
    worse than a slow one, and the drift scenarios mutate mid-stream.
    Join-column sort indexes are shared through a
    :class:`~repro.engine.kernels.KeyIndexCache` so repeated cyclic-join
    materializations never re-sort an unchanged column (that cache keys
    on ``data_version`` natively).
    """

    def __init__(
        self,
        db: Database,
        max_intermediate_rows: int = 50_000_000,
        cache_capacity: int = 100_000,
        key_index: KeyIndexCache | None = None,
    ) -> None:
        if cache_capacity <= 0:
            raise ValueError(f"cache_capacity must be positive, got {cache_capacity}")
        self.db = db
        self.max_intermediate_rows = max_intermediate_rows
        self.cache_capacity = cache_capacity
        self.key_index = key_index if key_index is not None else KeyIndexCache()
        self._cache: "OrderedDict[Query, int]" = OrderedDict()
        self._cache_version = db.data_version
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def cardinality(self, query: Query) -> int:
        """Exact COUNT(*) of the query.

        Disconnected join graphs are rejected (the surveyed systems never
        produce cross joins); single-table queries count filtered rows.
        """
        version = self.db.data_version
        if version != self._cache_version:
            self._cache.clear()
            self._cache_version = version
        cached = self._cache.get(query)
        if cached is not None:
            self._hits += 1
            self._cache.move_to_end(query)
            return cached
        self._misses += 1
        if not query.is_connected():
            raise ValueError(
                f"query join graph is disconnected (cross join unsupported): {query}"
            )
        if query.n_tables == 1:
            result = int(_filtered_indices(self.db, query, query.tables[0]).size)
        elif _join_graph_is_tree(query):
            result = self._tree_count(query)
        else:
            result = self._materialized_count(query)
        self._cache[query] = result
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
            self._evictions += 1
        return result

    def clear_cache(self) -> None:
        """Drop memoized results (counters survive; they describe the session)."""
        self._cache.clear()
        self.key_index.clear()

    def cache_stats(self) -> dict[str, float]:
        """Memo stats in the shape ``render_cache_stats`` expects."""
        total = self._hits + self._misses
        return {
            "entries": len(self._cache),
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "hit_rate": self._hits / total if total else 0.0,
        }

    # -- acyclic: message passing --------------------------------------------------

    def _tree_count(self, query: Query) -> int:
        # Build adjacency: table -> list of (neighbor, my_col, their_col).
        adj: dict[str, list[tuple[str, str, str]]] = {t: [] for t in query.tables}
        for j in query.joins:
            adj[j.left.table].append((j.right.table, j.left.column, j.right.column))
            adj[j.right.table].append((j.left.table, j.right.column, j.left.column))

        rows = {
            t: _filtered_indices(self.db, query, t) for t in query.tables
        }
        weights = {
            t: np.ones(rows[t].shape[0], dtype=np.int64) for t in query.tables
        }

        root = query.tables[0]
        # Post-order traversal (iterative).
        order: list[tuple[str, str | None, str | None, str | None]] = []
        stack: list[tuple[str, str | None, str | None, str | None]] = [
            (root, None, None, None)
        ]
        visited = {root}
        while stack:
            entry = stack.pop()
            order.append(entry)
            table = entry[0]
            for neighbor, my_col, their_col in adj[table]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    # neighbor joins to `table` on neighbor.their? careful:
                    # (neighbor, neighbor_col=their_col) = (table, my_col)
                    stack.append((neighbor, table, their_col, my_col))

        # Process children before parents.
        for table, parent, my_col, parent_col in reversed(order):
            if parent is None:
                continue
            keys = self.db.table(table).values(my_col)[rows[table]]
            uniq, sums = _group_sum(keys, weights[table])
            parent_keys = self.db.table(parent).values(parent_col)[rows[parent]]
            weights[parent] = _weight_product(
                weights[parent], _lookup(uniq, sums, parent_keys)
            )
        return _weight_total(weights[root])

    # -- cyclic: guarded materialization ---------------------------------------------

    def _materialized_count(self, query: Query) -> int:
        # Greedy table order: start at the smallest filtered table, then
        # repeatedly join in the frontier neighbor with the smallest build
        # side.  (Declaration order used to decide ties among frontier
        # edges, which could force a huge table in before a tiny one and
        # trip the intermediate guard on queries a better order completes.)
        rows = {t: _filtered_indices(self.db, query, t) for t in query.tables}
        remaining = set(query.tables)
        start = min(remaining, key=lambda t: rows[t].size)
        inter: dict[str, np.ndarray] = {start: rows[start]}
        remaining.discard(start)
        done_edges: set[int] = set()

        def _build_table(join) -> str:
            return join.right.table if join.left.table in inter else join.left.table

        while remaining:
            candidates = [
                (i, j)
                for i, j in enumerate(query.joins)
                if i not in done_edges
                and (
                    (j.left.table in inter) != (j.right.table in inter)
                )
            ]
            if not candidates:
                raise AssertionError("connected query ran out of join edges")
            edge_i, edge = min(candidates, key=lambda c: rows[_build_table(c[1])].size)
            if edge.left.table in inter:
                old_ref, new_ref = edge.left, edge.right
            else:
                old_ref, new_ref = edge.right, edge.left
            new_table = new_ref.table

            build_rows = rows[new_table]
            index = self.key_index.restricted(
                self.db.table(new_table), new_ref.column, build_rows
            )
            probe_keys = self.db.table(old_ref.table).values(old_ref.column)[
                inter[old_ref.table]
            ]
            probe_pos, counts = match_counts(index, probe_keys)
            total = int(counts.sum())
            if total > self.max_intermediate_rows:
                raise IntermediateTooLarge(
                    f"intermediate of {total} rows exceeds guard "
                    f"({self.max_intermediate_rows}) for query {query}"
                )
            # Expand: repeat each intermediate row by its match count and
            # gather the matching new-table row indices.
            left_repeat = np.repeat(np.arange(probe_keys.shape[0]), counts)
            gather = expand_matches(index, probe_pos, counts)
            inter = {t: idx[left_repeat] for t, idx in inter.items()}
            inter[new_table] = build_rows[gather]
            remaining.discard(new_table)
            done_edges.add(edge_i)

            # Apply any cycle-closing edges now internal to the intermediate.
            for i, j in enumerate(query.joins):
                if i in done_edges:
                    continue
                if j.left.table in inter and j.right.table in inter:
                    lv = self.db.table(j.left.table).values(j.left.column)[
                        inter[j.left.table]
                    ]
                    rv = self.db.table(j.right.table).values(j.right.column)[
                        inter[j.right.table]
                    ]
                    keep = lv == rv
                    inter = {t: idx[keep] for t, idx in inter.items()}
                    done_edges.add(i)
        first = next(iter(inter.values()))
        return int(first.shape[0])


def execute_cardinality(db: Database, query: Query) -> int:
    """Convenience one-shot exact cardinality (no memoization)."""
    return CardinalityExecutor(db).cardinality(query)
