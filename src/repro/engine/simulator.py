"""Deterministic plan-execution simulator (the repo's "PostgreSQL executor").

Executing a plan means: compute the *true* cardinality of every plan node
(via the exact executor), feed those cardinalities through the shared
operator cost formulas, sum, and convert to milliseconds.  Optionally a
small signature-seeded lognormal noise term models run-to-run variance.

Because true cardinalities are exact, a plan picked using bad estimates
genuinely runs slower here -- the feedback loop every learned optimizer in
this repo trains on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.engine.cost_formulas import (
    CostConstants,
    OperatorCosts,
    TRUE_HARDWARE_CONSTANTS,
)
from repro.engine.executor import CardinalityExecutor
from repro.engine.plans import JoinMethod, JoinNode, Plan, PlanNode, ScanMethod, ScanNode
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["SimulatorConfig", "ExecutionResult", "ExecutionSimulator"]


@dataclass(frozen=True)
class SimulatorConfig:
    """Execution-simulator knobs.

    ``noise_sigma`` is the std-dev of a multiplicative lognormal noise term;
    0 (default) gives perfectly repeatable latencies.  ``ms_per_cost_unit``
    converts planner cost units to milliseconds.  ``constants`` default to
    :data:`repro.engine.cost_formulas.TRUE_HARDWARE_CONSTANTS`, which
    deliberately diverge from the planner's beliefs (see that module).
    """

    ms_per_cost_unit: float = 0.05
    noise_sigma: float = 0.0
    noise_seed: int = 0
    constants: CostConstants = field(
        default_factory=lambda: TRUE_HARDWARE_CONSTANTS
    )


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one plan."""

    plan: Plan
    latency_ms: float
    cardinality: int
    total_cost: float
    node_cards: dict[PlanNode, int]
    node_costs: dict[PlanNode, float]


class ExecutionSimulator:
    """Executes plans against a database, returning latency + cardinality."""

    def __init__(
        self,
        db: Database,
        config: SimulatorConfig | None = None,
        executor: CardinalityExecutor | None = None,
    ) -> None:
        self.db = db
        self.config = config if config is not None else SimulatorConfig()
        self.executor = executor if executor is not None else CardinalityExecutor(db)
        self.costs = OperatorCosts(self.config.constants)
        self.queries_executed = 0
        self.total_latency_ms = 0.0

    # -- node cardinalities -------------------------------------------------------

    def _node_cardinality(self, plan: Plan, node: PlanNode) -> int:
        return self.executor.cardinality(plan.node_subquery(node))

    def _index_fetched(self, node: ScanNode) -> int:
        """Rows fetched by the index predicate (first predicate by
        canonical order) before residual filtering."""
        if not node.predicates:
            return self.db.table(node.table).n_rows
        single = Query((node.table,), (), (node.predicates[0],))
        return self.executor.cardinality(single)

    def _scan_cost(self, node: ScanNode, out_rows: int) -> float:
        base_rows = self.db.table(node.table).n_rows
        n_preds = len(node.predicates)
        if node.method is ScanMethod.SEQ:
            return self.costs.seq_scan(base_rows, n_preds)
        return self.costs.index_scan(base_rows, self._index_fetched(node), n_preds)

    def _join_cost(
        self, node: JoinNode, left_rows: int, right_rows: int, out_rows: int
    ) -> float:
        if node.method is JoinMethod.HASH:
            return self.costs.hash_join(left_rows, right_rows, out_rows)
        if node.method is JoinMethod.MERGE:
            return self.costs.merge_join(left_rows, right_rows, out_rows)
        # Nested loop: indexed form available when the inner (right) side is
        # a bare table scan -- the executor can probe the base table's index
        # on the join column.
        if isinstance(node.right, ScanNode):
            inner_base = self.db.table(node.right.table).n_rows
            return self.costs.nested_loop_indexed(left_rows, inner_base, out_rows)
        return self.costs.nested_loop_naive(left_rows, right_rows, out_rows)

    # -- execution ----------------------------------------------------------------

    def execute(self, plan: Plan) -> ExecutionResult:
        """Run the plan; returns latency, result cardinality and per-node stats."""
        node_cards: dict[PlanNode, int] = {}
        node_costs: dict[PlanNode, float] = {}
        total = 0.0
        for node in plan.walk():
            card = self._node_cardinality(plan, node)
            node_cards[node] = card
            if isinstance(node, ScanNode):
                cost = self._scan_cost(node, card)
            else:
                assert isinstance(node, JoinNode)
                cost = self._join_cost(
                    node,
                    self._node_cardinality(plan, node.left),
                    self._node_cardinality(plan, node.right),
                    card,
                )
            node_costs[node] = cost
            total += cost

        latency = total * self.config.ms_per_cost_unit
        if self.config.noise_sigma > 0:
            digest = hashlib.sha256(
                f"{plan.signature()}|{self.config.noise_seed}".encode()
            ).digest()
            rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
            latency *= float(
                np.exp(rng.normal(0.0, self.config.noise_sigma))
            )
        self.queries_executed += 1
        self.total_latency_ms += latency
        return ExecutionResult(
            plan=plan,
            latency_ms=latency,
            cardinality=node_cards[plan.root],
            total_cost=total,
            node_cards=node_cards,
            node_costs=node_costs,
        )

    def latency(self, plan: Plan) -> float:
        """Latency-only convenience wrapper."""
        return self.execute(plan).latency_ms
