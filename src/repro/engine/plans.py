"""Physical plan trees: scans and binary joins.

Plans are immutable trees of :class:`ScanNode` and :class:`JoinNode`.  Every
node knows which base tables it covers, which makes it trivial to derive the
sub-query whose cardinality the node produces -- the handle through which
cardinality estimators, cost models and the execution simulator all consume
plans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.sql.query import Join, Predicate, Query

__all__ = ["ScanMethod", "JoinMethod", "PlanNode", "ScanNode", "JoinNode", "Plan"]


class ScanMethod(enum.Enum):
    SEQ = "SeqScan"
    INDEX = "IndexScan"


class JoinMethod(enum.Enum):
    HASH = "HashJoin"
    NESTED_LOOP = "NestedLoop"
    MERGE = "MergeJoin"


@dataclass(frozen=True)
class PlanNode:
    """Base class for plan nodes; concrete nodes define ``tables``."""

    @property
    def tables(self) -> frozenset[str]:
        raise NotImplementedError

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self

    @property
    def n_nodes(self) -> int:
        return sum(1 for _ in self.walk())

    def signature(self) -> str:
        """Canonical string identifying operator tree + methods + tables."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """Leaf: scan of one base table with the query's pushed-down predicates."""

    table: str
    method: ScanMethod = ScanMethod.SEQ
    predicates: tuple[Predicate, ...] = ()

    @property
    def tables(self) -> frozenset[str]:
        return frozenset((self.table,))

    def signature(self) -> str:
        return f"{self.method.value}({self.table})"

    def __str__(self) -> str:
        return self.signature()


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """Binary join of two sub-plans.

    ``conditions`` holds the equi-join edges connecting the two sides (there
    is at least one; cycle-closing edges may add more).
    """

    left: PlanNode
    right: PlanNode
    method: JoinMethod = JoinMethod.HASH
    conditions: tuple[Join, ...] = ()

    def __post_init__(self) -> None:
        overlap = self.left.tables & self.right.tables
        if overlap:
            raise ValueError(f"join children overlap on tables {sorted(overlap)}")
        if not self.conditions:
            raise ValueError("join node needs at least one condition (no cross joins)")
        for cond in self.conditions:
            lt, rt = cond.left.table, cond.right.table
            spans = (lt in self.left.tables and rt in self.right.tables) or (
                rt in self.left.tables and lt in self.right.tables
            )
            if not spans:
                raise ValueError(f"condition {cond} does not span the two join sides")

    @property
    def tables(self) -> frozenset[str]:
        return self.left.tables | self.right.tables

    def walk(self) -> Iterator[PlanNode]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def signature(self) -> str:
        return (
            f"{self.method.value}({self.left.signature()},{self.right.signature()})"
        )

    def __str__(self) -> str:
        return self.signature()


@dataclass(frozen=True)
class Plan:
    """A complete physical plan for a query."""

    query: Query
    root: PlanNode

    def __post_init__(self) -> None:
        if self.root.tables != frozenset(self.query.tables):
            raise ValueError(
                f"plan covers {sorted(self.root.tables)} but query needs "
                f"{sorted(self.query.tables)}"
            )

    def walk(self) -> Iterator[PlanNode]:
        return self.root.walk()

    def signature(self) -> str:
        return self.root.signature()

    def node_subquery(self, node: PlanNode) -> Query:
        """The sub-query whose result the given node produces."""
        return self.query.subquery(node.tables)

    def join_order(self) -> list[str]:
        """Base tables in left-to-right leaf order."""
        order: list[str] = []

        def visit(node: PlanNode) -> None:
            if isinstance(node, ScanNode):
                order.append(node.table)
            else:
                assert isinstance(node, JoinNode)
                visit(node.left)
                visit(node.right)

        visit(self.root)
        return order

    def scan_nodes(self) -> list[ScanNode]:
        return [n for n in self.walk() if isinstance(n, ScanNode)]

    def join_nodes(self) -> list[JoinNode]:
        return [n for n in self.walk() if isinstance(n, JoinNode)]

    def pretty(self) -> str:
        """Multi-line indented rendering for debugging and examples."""
        lines: list[str] = []

        def visit(node: PlanNode, depth: int) -> None:
            if isinstance(node, ScanNode):
                preds = (
                    " [" + " AND ".join(str(p) for p in node.predicates) + "]"
                    if node.predicates
                    else ""
                )
                lines.append("  " * depth + f"{node.method.value} {node.table}{preds}")
            else:
                assert isinstance(node, JoinNode)
                conds = " AND ".join(str(c) for c in node.conditions)
                lines.append("  " * depth + f"{node.method.value} on {conds}")
                visit(node.left, depth + 1)
                visit(node.right, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def scan_for(query: Query, table: str, method: ScanMethod = ScanMethod.SEQ) -> ScanNode:
    """Build a scan node with the query's predicates on ``table`` pushed down."""
    return ScanNode(table=table, method=method, predicates=query.predicates_on(table))
