"""Operator cost formulas shared by the simulator and the optimizer.

One set of PostgreSQL-flavoured formulas, evaluated twice:

- by :class:`repro.engine.simulator.ExecutionSimulator` on **true**
  cardinalities -> the plan's actual latency;
- by :class:`repro.optimizer.cost.TraditionalCostModel` on **estimated**
  cardinalities -> the optimizer's belief.

Keeping the formulas identical means the *only* source of plan-choice error
in this system is cardinality misestimation (plus whatever a learned cost
model gets wrong), which mirrors the diagnosis of Leis et al. [27] that the
tutorial builds on.

Constants follow PostgreSQL's planner defaults where they exist, with a
clustering factor making index scans competitive below ~5% selectivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CostConstants", "OperatorCosts", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostConstants:
    """Tunable cost-model constants (PostgreSQL-style)."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_operator_cost: float = 0.0025
    cpu_index_tuple_cost: float = 0.005
    rows_per_page: int = 100
    #: fraction of random page cost actually paid per index fetch
    #: (models clustering + buffer cache)
    index_cluster_factor: float = 0.1
    #: per-probe B-tree descent cost multiplier
    index_probe_factor: float = 0.125


class OperatorCosts:
    """Cost formulas over (possibly estimated) cardinalities."""

    def __init__(self, constants: CostConstants | None = None) -> None:
        self.c = constants if constants is not None else CostConstants()

    def seq_scan(self, base_rows: float, n_predicates: int) -> float:
        c = self.c
        pages = math.ceil(max(base_rows, 1) / c.rows_per_page)
        return (
            pages * c.seq_page_cost
            + base_rows * c.cpu_tuple_cost
            + base_rows * n_predicates * c.cpu_operator_cost
        )

    def index_scan(
        self, base_rows: float, fetched_rows: float, n_predicates: int
    ) -> float:
        """Index scan driven by one predicate fetching ``fetched_rows``,
        with the remaining predicates applied as a filter."""
        c = self.c
        descent = math.log2(base_rows + 2) * c.cpu_operator_cost * 50
        per_fetch = (
            c.random_page_cost * c.index_cluster_factor + c.cpu_index_tuple_cost
        )
        residual = max(n_predicates - 1, 0)
        return (
            descent
            + fetched_rows * per_fetch
            + fetched_rows * residual * c.cpu_operator_cost
        )

    def hash_join(self, left_rows: float, right_rows: float, out_rows: float) -> float:
        """Build on the right input, probe with the left."""
        c = self.c
        build = right_rows * c.cpu_operator_cost * 3
        probe = left_rows * c.cpu_operator_cost * 2
        return 10 * c.cpu_operator_cost + build + probe + out_rows * c.cpu_tuple_cost

    def nested_loop_indexed(
        self,
        left_rows: float,
        inner_base_rows: float,
        out_rows: float,
    ) -> float:
        """Index nested-loop: inner side is a base table probed by index."""
        c = self.c
        probe = math.log2(inner_base_rows + 2) * c.cpu_operator_cost * 50
        probe *= self.c.index_probe_factor * 8  # descent is cheaper when hot
        fetch = c.random_page_cost * c.index_cluster_factor + c.cpu_index_tuple_cost
        return left_rows * probe + out_rows * (fetch + c.cpu_tuple_cost)

    def nested_loop_naive(
        self, left_rows: float, right_rows: float, out_rows: float
    ) -> float:
        """Materialized nested-loop: quadratic inner rescans."""
        c = self.c
        return (
            left_rows * max(right_rows, 1) * c.cpu_operator_cost * 0.1
            + out_rows * c.cpu_tuple_cost
        )

    def merge_join(self, left_rows: float, right_rows: float, out_rows: float) -> float:
        c = self.c
        sort = (
            left_rows * math.log2(left_rows + 2)
            + right_rows * math.log2(right_rows + 2)
        ) * c.cpu_operator_cost * 2
        merge = (left_rows + right_rows) * c.cpu_tuple_cost * 0.5
        return sort + merge + out_rows * c.cpu_tuple_cost


DEFAULT_COSTS = OperatorCosts()

#: The execution simulator's "true hardware" constants.  They deliberately
#: diverge from the planner defaults above (SSD-era cheap random reads,
#: pricier hashing/CPU, hotter index probes), reproducing the systematic
#: cost-model miscalibration that Bao [37] exploits: the native optimizer's
#: beliefs are self-consistent but wrong about the machine, so hint-steered
#: or latency-trained optimizers have real headroom (~1.4x median, ~2.3x
#: p90 on the bundled workloads).
TRUE_HARDWARE_CONSTANTS = CostConstants(
    seq_page_cost=1.0,
    random_page_cost=0.8,
    cpu_tuple_cost=0.015,
    cpu_operator_cost=0.006,
    cpu_index_tuple_cost=0.003,
    rows_per_page=60,
    index_cluster_factor=0.03,
    index_probe_factor=0.04,
)
