"""Column discretization shared by the data-driven estimators.

Naru/BN/SPN-style models operate on discrete, modest-domain columns.  A
:class:`ColumnBinner` maps raw column values to bin ids: exact value
dictionaries for small domains, equi-depth bins otherwise.  Predicates are
translated into sets of admissible bins, with an equality-correction factor
for coarse bins (a point predicate selects ~1/ndv(bin) of a bin's mass).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sql.query import Op, OrPredicate, Predicate
from repro.storage.table import Table

__all__ = ["ColumnBinner", "DiscretizedTable", "predicate_bins"]


class ColumnBinner:
    """Maps one column's values to integer bins and predicates to bin sets."""

    def __init__(self, values: np.ndarray, max_bins: int = 32) -> None:
        values = np.asarray(values)
        uniq = np.unique(values)
        if uniq.size <= max_bins:
            self.kind = "exact"
            self.values_ = uniq.astype(float)
            self.n_bins = max(int(uniq.size), 1)
            self._distinct_per_bin = np.ones(self.n_bins)
        else:
            self.kind = "equidepth"
            qs = np.linspace(0.0, 1.0, max_bins + 1)
            edges = np.quantile(values.astype(float), qs)
            # Collapse duplicate edges (heavy skew) while keeping coverage.
            edges = np.unique(edges)
            if edges.size < 2:
                edges = np.array([edges[0], edges[0] + 1.0])
            self.edges_ = edges
            self.n_bins = edges.size - 1
            codes = self.bin_of(values)
            self._distinct_per_bin = np.ones(self.n_bins)
            for b in range(self.n_bins):
                sel = values[codes == b]
                self._distinct_per_bin[b] = max(np.unique(sel).size, 1)

    def bin_of(self, values: np.ndarray) -> np.ndarray:
        """Bin ids for raw values (unseen values clamp to edge bins)."""
        values = np.asarray(values, dtype=float)
        if self.kind == "exact":
            pos = np.searchsorted(self.values_, values)
            return np.clip(pos, 0, self.n_bins - 1).astype(np.int64)
        pos = np.searchsorted(self.edges_, values, side="right") - 1
        return np.clip(pos, 0, self.n_bins - 1).astype(np.int64)

    def bins_for_predicate(self, pred) -> tuple[np.ndarray, float]:
        """Admissible bins and a multiplicative correction factor.

        Disjunctions (:class:`repro.sql.query.OrPredicate`) take the union
        of their parts' bins; the correction factor is the bin-count
        weighted average of the parts' factors over the union
        (approximation: overlapping parts are not double-discounted).

        For exact binners the bin set is exact and the factor is 1.  For
        equi-depth binners a point/IN predicate selects whole bins, so the
        correction ``1/ndv(bin)`` (averaged over the selected bins) scales
        the over-covered mass down; range predicates select covering bins
        with factor 1 (boundary-bin overcoverage is the usual
        discretization error).
        """
        if isinstance(pred, OrPredicate):
            union = np.zeros(0, dtype=np.int64)
            weighted = 0.0
            for part in pred.parts:
                bins, factor = self.bins_for_predicate(part)
                weighted += factor * bins.size
                union = np.union1d(union, bins)
            if union.size == 0:
                return union, 1.0
            return union.astype(np.int64), float(min(weighted / union.size, 1.0))
        if self.kind == "exact":
            if pred.op in (Op.EQ, Op.IN):
                wanted = (
                    [float(pred.value)]  # type: ignore[arg-type]
                    if pred.op is Op.EQ
                    else [float(v) for v in pred.value]  # type: ignore[union-attr]
                )
                bins = []
                for v in wanted:
                    pos = int(np.searchsorted(self.values_, v))
                    if pos < self.n_bins and self.values_[pos] == v:
                        bins.append(pos)
                return np.array(sorted(set(bins)), dtype=np.int64), 1.0
            lo, hi = pred.to_range()
            mask = (self.values_ >= lo) & (self.values_ <= hi)
            return np.flatnonzero(mask).astype(np.int64), 1.0

        if pred.op in (Op.EQ, Op.IN):
            wanted = (
                [float(pred.value)]  # type: ignore[arg-type]
                if pred.op is Op.EQ
                else [float(v) for v in pred.value]  # type: ignore[union-attr]
            )
            bins = sorted(set(int(self.bin_of(np.array([v]))[0]) for v in wanted))
            bins_arr = np.array(bins, dtype=np.int64)
            if bins_arr.size == 0:
                return bins_arr, 1.0
            # Each wanted value takes ~1/ndv of its bin.
            factor = float(
                len(wanted) / max(self._distinct_per_bin[bins_arr].sum(), 1.0)
            )
            return bins_arr, min(factor, 1.0)
        lo, hi = pred.to_range()
        lo_bin = 0 if lo == -np.inf else int(self.bin_of(np.array([lo]))[0])
        hi_bin = self.n_bins - 1 if hi == np.inf else int(self.bin_of(np.array([hi]))[0])
        return np.arange(lo_bin, hi_bin + 1, dtype=np.int64), 1.0


@dataclass
class DiscretizedTable:
    """Integer-coded view of a table used by the data-driven models."""

    table: str
    column_names: list[str]
    binners: dict[str, ColumnBinner]
    codes: np.ndarray  # [n_rows, n_cols] int64

    @classmethod
    def build(
        cls,
        table: Table,
        max_bins: int = 32,
        columns: list[str] | None = None,
    ) -> "DiscretizedTable":
        names = columns if columns is not None else table.column_names
        binners = {c: ColumnBinner(table.values(c), max_bins) for c in names}
        codes = np.column_stack([binners[c].bin_of(table.values(c)) for c in names])
        return cls(table=table.name, column_names=list(names), binners=binners, codes=codes)

    @property
    def domain_sizes(self) -> list[int]:
        return [self.binners[c].n_bins for c in self.column_names]

    def column_index(self, column: str) -> int:
        try:
            return self.column_names.index(column)
        except ValueError:
            raise KeyError(
                f"column {column!r} not discretized for table {self.table!r}"
            ) from None


def predicate_bins(
    disc: DiscretizedTable, predicates: tuple[Predicate, ...]
) -> tuple[list[np.ndarray | None], float]:
    """Per-column admissible bins for a conjunction of predicates.

    Returns (allowed, correction): ``allowed[i]`` is None when column ``i``
    is unconstrained, else the sorted array of admissible bin ids (empty
    array => provably empty result).  ``correction`` multiplies the model's
    box probability (equality-in-coarse-bin adjustment).
    """
    allowed: list[np.ndarray | None] = [None] * len(disc.column_names)
    correction = 1.0
    for pred in predicates:
        idx = disc.column_index(pred.column.column)
        bins, factor = disc.binners[pred.column.column].bins_for_predicate(pred)
        correction *= factor
        if allowed[idx] is None:
            allowed[idx] = bins
        else:
            allowed[idx] = np.intersect1d(allowed[idx], bins)
    return allowed, correction
