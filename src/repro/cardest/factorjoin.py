"""FactorJoin-style estimator [64]: per-table conditioning + binned
join-key message passing.

FactorJoin's insight is to decompose a join query into single-table
conditional distributions over *join keys*, then combine them with a
message-passing scheme over binned key domains.  This implementation keeps
that structure:

- per table, a row sample provides predicate-conditioned key histograms
  (``count(key bin | predicates)``, scaled to full-table counts);
- per join-key column, an equi-depth binner plus the full table's
  distinct-key count per bin;
- a query is answered by bottom-up message passing over a spanning tree of
  its join graph, assuming within-bin key uniformity
  (``matches(v) ~= count_child(bin(v)) / ndv_child(bin(v))``);
- cycle-closing edges contribute the classic ``1/max(ndv)`` correction.

Unlike the join-uniformity family this *does* capture predicate/join-key
correlation (the sample is filtered before histogramming), which is exactly
what the STATS benchmark credits FactorJoin-style methods for.
"""

from __future__ import annotations

import numpy as np

from repro.cardest.base import BaseCardinalityEstimator
from repro.cardest.binning import ColumnBinner
from repro.sql.query import Join, Query
from repro.storage.catalog import Database

__all__ = ["FactorJoinEstimator"]


class FactorJoinEstimator(BaseCardinalityEstimator):
    """Binned join-histogram estimator in the style of FactorJoin [64]."""

    name = "factorjoin"

    def __init__(
        self,
        db: Database,
        sample_rows: int = 1500,
        key_bins: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(db)
        self.sample_rows = sample_rows
        self.key_bins = key_bins
        self.seed = seed
        self._build()

    def _build(self) -> None:
        rng = np.random.default_rng(self.seed)
        # Which columns serve as join keys anywhere in the schema.
        key_columns: dict[str, set[str]] = {t: set() for t in self.db.table_names}
        for e in self.db.joins:
            key_columns[e.left_table].add(e.left_column)
            key_columns[e.right_table].add(e.right_column)

        self._samples: dict[str, dict[str, np.ndarray]] = {}
        self._scales: dict[str, float] = {}
        self._binners: dict[tuple[str, str], ColumnBinner] = {}
        self._bin_ndv: dict[tuple[str, str], np.ndarray] = {}
        for tname, table in self.db.tables.items():
            n = table.n_rows
            take = rng.choice(n, size=min(self.sample_rows, n), replace=False)
            self._samples[tname] = {
                c: table.values(c)[take] for c in table.column_names
            }
            self._scales[tname] = n / max(take.shape[0], 1)
            for key_col in key_columns[tname]:
                values = table.values(key_col)
                binner = ColumnBinner(values, max_bins=self.key_bins)
                self._binners[(tname, key_col)] = binner
                codes = binner.bin_of(values)
                ndv = np.ones(binner.n_bins)
                for b in range(binner.n_bins):
                    in_bin = values[codes == b]
                    ndv[b] = max(np.unique(in_bin).size, 1)
                self._bin_ndv[(tname, key_col)] = ndv

    def refresh(self) -> None:
        """Rebuild samples and key histograms from current data."""
        self._build()

    # -- per-table filtered sample --------------------------------------------------

    def _filtered_sample_mask(self, query: Query, table: str) -> np.ndarray:
        sample = self._samples[table]
        any_col = next(iter(sample.values()))
        mask = np.ones(any_col.shape[0], dtype=bool)
        for pred in query.predicates_on(table):
            mask &= pred.evaluate(sample[pred.column.column])
        return mask

    # -- estimation --------------------------------------------------------------------

    def _spanning_tree(
        self, query: Query
    ) -> tuple[list[tuple[str, str, str, str]], list[Join]]:
        """(tree edges as (child, child_col, parent, parent_col) in
        leaf-to-root processing order, cycle-closing extra joins)."""
        root = query.tables[0]
        visited = {root}
        order: list[tuple[str, str, str, str]] = []
        extras: list[Join] = []
        remaining = list(query.joins)
        progress = True
        while remaining and progress:
            progress = False
            still = []
            for j in remaining:
                lt, rt = j.left.table, j.right.table
                if lt in visited and rt in visited:
                    extras.append(j)
                    progress = True
                elif lt in visited:
                    visited.add(rt)
                    order.append((rt, j.right.column, lt, j.left.column))
                    progress = True
                elif rt in visited:
                    visited.add(lt)
                    order.append((lt, j.left.column, rt, j.right.column))
                    progress = True
                else:
                    still.append(j)
            remaining = still
        # Children must be processed before their parents: the discovery
        # order above goes root-outward, so reverse it.
        return list(reversed(order)), extras

    def _estimate(self, query: Query) -> float:
        if query.n_tables == 1:
            t = query.tables[0]
            mask = self._filtered_sample_mask(query, t)
            return float(mask.sum() * self._scales[t])

        weights: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray] = {}
        for t in query.tables:
            mask = self._filtered_sample_mask(query, t)
            masks[t] = mask
            weights[t] = np.full(int(mask.sum()), self._scales[t])

        order, extras = self._spanning_tree(query)
        for child, child_col, parent, parent_col in order:
            binner = self._binners.get((child, child_col))
            if binner is None:
                # Join on an undeclared key: build a binner on the fly.
                binner = ColumnBinner(
                    self.db.table(child).values(child_col), max_bins=self.key_bins
                )
                self._binners[(child, child_col)] = binner
                values = self.db.table(child).values(child_col)
                codes = binner.bin_of(values)
                ndv = np.ones(binner.n_bins)
                for b in range(binner.n_bins):
                    ndv[b] = max(np.unique(values[codes == b]).size, 1)
                self._bin_ndv[(child, child_col)] = ndv
            child_keys = self._samples[child][child_col][masks[child]]
            bins = binner.bin_of(child_keys)
            counts = np.zeros(binner.n_bins)
            np.add.at(counts, bins, weights[child])
            ndv = self._bin_ndv[(child, child_col)]
            per_key = counts / ndv  # expected matching child weight per key
            parent_keys = self._samples[parent][parent_col][masks[parent]]
            parent_bins = binner.bin_of(parent_keys)
            weights[parent] = weights[parent] * per_key[parent_bins]

        root = order[-1][2] if order else query.tables[0]
        card = float(weights[root].sum())
        # Cycle-closing edges: classic NDV correction.
        for j in extras:
            l_ndv = self.db.table(j.left.table).column(j.left.column).n_distinct
            r_ndv = self.db.table(j.right.table).column(j.right.column).n_distinct
            card /= max(l_ndv, r_ndv, 1)
        return card
