"""Query featurization for the query-driven estimators.

Two featurizers, matching the two model families:

- :class:`FlatQueryFeaturizer` -- one fixed-length vector per query (table
  one-hots, join one-hots, per-column range slots), used by the linear /
  GBDT / plain-MLP estimators [36, 9, 10, 32];
- :class:`MSCNFeaturizer` -- the multi-set representation of MSCN [23]:
  a *table set* (table one-hot + bitmap of a materialized per-table sample
  evaluated against the query's predicates), a *join set* (join-edge
  one-hots) and a *predicate set* (column one-hot + operator one-hot +
  normalized constants).  Robust-MSCN's query masking [45] is provided via
  ``mask_rate`` / ``drop_bitmaps`` switches.
"""

from __future__ import annotations

import numpy as np

from repro.sql.query import Op, Predicate, Query
from repro.storage.catalog import Database

__all__ = ["FlatQueryFeaturizer", "MSCNFeaturizer"]

_OPS = [Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE, Op.BETWEEN, Op.IN, Op.OR]


class _ColumnIndex:
    """Stable indices for tables, columns and join edges of a database."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.tables = list(db.table_names)
        self.table_pos = {t: i for i, t in enumerate(self.tables)}
        self.columns: list[tuple[str, str]] = []
        for t in self.tables:
            for c in db.table(t).column_names:
                self.columns.append((t, c))
        self.column_pos = {tc: i for i, tc in enumerate(self.columns)}
        self.join_keys = [
            (e.left_table, e.left_column, e.right_table, e.right_column)
            for e in db.joins
        ]
        self.join_pos = {k: i for i, k in enumerate(self.join_keys)}
        self._bounds: dict[tuple[str, str], tuple[float, float]] = {}
        for t, c in self.columns:
            col = db.table(t).column(c)
            self._bounds[(t, c)] = (col.min, col.max)

    def normalize(self, table: str, column: str, value: float) -> float:
        lo, hi = self._bounds[(table, column)]
        if hi <= lo:
            return 0.5
        return float(np.clip((value - lo) / (hi - lo), 0.0, 1.0))

    def join_index(self, query_join) -> int:
        key = (
            query_join.left.table,
            query_join.left.column,
            query_join.right.table,
            query_join.right.column,
        )
        rev = (key[2], key[3], key[0], key[1])
        if key in self.join_pos:
            return self.join_pos[key]
        if rev in self.join_pos:
            return self.join_pos[rev]
        raise KeyError(f"join {query_join} not in the database's declared join graph")


class FlatQueryFeaturizer:
    """Fixed-length query vectors: tables + joins + per-column range slots.

    Per column the 4 slots are ``[has_predicate, lo_norm, hi_norm,
    point_fraction]`` where the point fraction is ``n_values / ndv`` for
    EQ/IN predicates (0 for ranges).
    """

    def __init__(self, db: Database) -> None:
        self.index = _ColumnIndex(db)
        self._ndv = {
            (t, c): max(db.table(t).column(c).n_distinct, 1)
            for t, c in self.index.columns
        }

    @property
    def dim(self) -> int:
        return (
            len(self.index.tables)
            + len(self.index.join_keys)
            + 4 * len(self.index.columns)
        )

    def featurize(self, query: Query) -> np.ndarray:
        idx = self.index
        vec = np.zeros(self.dim)
        for t in query.tables:
            vec[idx.table_pos[t]] = 1.0
        off = len(idx.tables)
        for j in query.joins:
            vec[off + idx.join_index(j)] = 1.0
        off += len(idx.join_keys)
        # Default slots: no predicate, full range.
        for i in range(len(idx.columns)):
            base = off + 4 * i
            vec[base + 1] = 0.0
            vec[base + 2] = 1.0
        # Merge predicates per column (conjunction -> range intersection).
        for pred in query.predicates:
            t, c = pred.column.table, pred.column.column
            i = idx.column_pos[(t, c)]
            base = off + 4 * i
            lo, hi = pred.to_range()
            lo_n = 0.0 if lo == -np.inf else idx.normalize(t, c, lo)
            hi_n = 1.0 if hi == np.inf else idx.normalize(t, c, hi)
            if vec[base] == 0.0:
                vec[base] = 1.0
                vec[base + 1], vec[base + 2] = lo_n, hi_n
            else:
                vec[base + 1] = max(vec[base + 1], lo_n)
                vec[base + 2] = min(vec[base + 2], hi_n)
            if pred.op in (Op.EQ, Op.IN):
                n_vals = 1 if pred.op is Op.EQ else len(pred.value)  # type: ignore[arg-type]
                vec[base + 3] = min(n_vals / self._ndv[(t, c)], 1.0)
        return vec

    def featurize_batch(self, queries: list[Query]) -> np.ndarray:
        return np.stack([self.featurize(q) for q in queries])


class MSCNFeaturizer:
    """Multi-set query featurization (MSCN / Robust-MSCN).

    Parameters
    ----------
    db:
        The database (provides schema indices and sample rows).
    sample_size:
        Rows in the per-table materialized sample used for bitmaps.
    seed:
        Sample-draw seed.
    """

    def __init__(self, db: Database, sample_size: int = 64, seed: int = 0) -> None:
        self.db = db
        self.index = _ColumnIndex(db)
        self.sample_size = sample_size
        rng = np.random.default_rng(seed)
        self._samples: dict[str, dict[str, np.ndarray]] = {}
        for t in self.index.tables:
            table = db.table(t)
            n = table.n_rows
            take = rng.choice(n, size=min(sample_size, n), replace=False)
            self._samples[t] = {
                c: table.values(c)[take] for c in table.column_names
            }

    # -- per-set dims ------------------------------------------------------------

    @property
    def table_dim(self) -> int:
        return len(self.index.tables) + self.sample_size

    @property
    def join_dim(self) -> int:
        return max(len(self.index.join_keys), 1)

    @property
    def pred_dim(self) -> int:
        return len(self.index.columns) + len(_OPS) + 2

    def module_dims(self) -> dict[str, int]:
        return {
            "tables": self.table_dim,
            "joins": self.join_dim,
            "preds": self.pred_dim,
        }

    # -- featurization --------------------------------------------------------------

    def _table_bitmap(self, query: Query, table: str) -> np.ndarray:
        sample = self._samples[table]
        n = next(iter(sample.values())).shape[0] if sample else 0
        bits = np.ones(self.sample_size)
        if n == 0:
            return bits
        mask = np.ones(n, dtype=bool)
        for pred in query.predicates_on(table):
            mask &= pred.evaluate(sample[pred.column.column])
        bits[:n] = mask.astype(float)
        if n < self.sample_size:
            bits[n:] = 0.0
        return bits

    def featurize(
        self,
        query: Query,
        *,
        drop_bitmaps: bool = False,
        mask_rate: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> dict[str, np.ndarray]:
        """Set-dict for one query.

        ``drop_bitmaps`` replaces sample bitmaps with all-ones (Robust-MSCN
        inference-time masking); ``mask_rate`` randomly drops predicate
        elements (training-time augmentation).
        """
        idx = self.index
        table_rows = []
        for t in query.tables:
            onehot = np.zeros(len(idx.tables))
            onehot[idx.table_pos[t]] = 1.0
            bitmap = (
                np.ones(self.sample_size)
                if drop_bitmaps
                else self._table_bitmap(query, t)
            )
            table_rows.append(np.concatenate([onehot, bitmap]))
        tables = np.stack(table_rows)

        if query.joins:
            join_rows = []
            for j in query.joins:
                onehot = np.zeros(self.join_dim)
                onehot[idx.join_index(j)] = 1.0
                join_rows.append(onehot)
            joins = np.stack(join_rows)
        else:
            joins = np.zeros((0, self.join_dim))

        pred_rows = []
        preds: tuple[Predicate, ...] = query.predicates
        if mask_rate > 0.0 and preds:
            rng = rng if rng is not None else np.random.default_rng(0)
            preds = tuple(p for p in preds if rng.random() >= mask_rate)
        for pred in preds:
            t, c = pred.column.table, pred.column.column
            col_onehot = np.zeros(len(idx.columns))
            col_onehot[idx.column_pos[(t, c)]] = 1.0
            op_onehot = np.zeros(len(_OPS))
            op_onehot[_OPS.index(pred.op)] = 1.0
            lo, hi = pred.to_range()
            lo_n = 0.0 if lo == -np.inf else idx.normalize(t, c, lo)
            hi_n = 1.0 if hi == np.inf else idx.normalize(t, c, hi)
            pred_rows.append(np.concatenate([col_onehot, op_onehot, [lo_n, hi_n]]))
        preds_arr = (
            np.stack(pred_rows) if pred_rows else np.zeros((0, self.pred_dim))
        )
        return {"tables": tables, "joins": joins, "preds": preds_arr}
