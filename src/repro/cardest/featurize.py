"""Query featurization for the query-driven estimators.

Two featurizers, matching the two model families:

- :class:`FlatQueryFeaturizer` -- one fixed-length vector per query (table
  one-hots, join one-hots, per-column range slots), used by the linear /
  GBDT / plain-MLP estimators [36, 9, 10, 32];
- :class:`MSCNFeaturizer` -- the multi-set representation of MSCN [23]:
  a *table set* (table one-hot + bitmap of a materialized per-table sample
  evaluated against the query's predicates), a *join set* (join-edge
  one-hots) and a *predicate set* (column one-hot + operator one-hot +
  normalized constants).  Robust-MSCN's query masking [45] is provided via
  ``mask_rate`` / ``drop_bitmaps`` switches.
"""

from __future__ import annotations

import numpy as np

from repro.sql.query import Op, Predicate, Query
from repro.storage.catalog import Database

__all__ = ["FlatQueryFeaturizer", "MSCNFeaturizer"]

_OPS = [Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE, Op.BETWEEN, Op.IN, Op.OR]


class _ColumnIndex:
    """Stable indices for tables, columns and join edges of a database."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.tables = list(db.table_names)
        self.table_pos = {t: i for i, t in enumerate(self.tables)}
        self.columns: list[tuple[str, str]] = []
        for t in self.tables:
            for c in db.table(t).column_names:
                self.columns.append((t, c))
        self.column_pos = {tc: i for i, tc in enumerate(self.columns)}
        self.join_keys = [
            (e.left_table, e.left_column, e.right_table, e.right_column)
            for e in db.joins
        ]
        self.join_pos = {k: i for i, k in enumerate(self.join_keys)}
        self._join_memo: dict = {}
        self._bounds: dict[tuple[str, str], tuple[float, float]] = {}
        for t, c in self.columns:
            col = db.table(t).column(c)
            self._bounds[(t, c)] = (col.min, col.max)

    def normalize(self, table: str, column: str, value: float) -> float:
        lo, hi = self._bounds[(table, column)]
        if hi <= lo:
            return 0.5
        x = (value - lo) / (hi - lo)
        return 0.0 if x < 0.0 else 1.0 if x > 1.0 else x

    def normalize_range(
        self, table: str, column: str, lo: float, hi: float
    ) -> tuple[float, float]:
        """Normalized ``(lo, hi)`` with open ends mapping to 0 / 1."""
        blo, bhi = self._bounds[(table, column)]
        if bhi <= blo:
            return (0.0 if lo == -np.inf else 0.5, 1.0 if hi == np.inf else 0.5)
        scale = bhi - blo
        if lo == -np.inf:
            lo_n = 0.0
        else:
            x = (lo - blo) / scale
            lo_n = 0.0 if x < 0.0 else 1.0 if x > 1.0 else x
        if hi == np.inf:
            hi_n = 1.0
        else:
            x = (hi - blo) / scale
            hi_n = 0.0 if x < 0.0 else 1.0 if x > 1.0 else x
        return lo_n, hi_n

    def join_index(self, query_join) -> int:
        hit = self._join_memo.get(query_join)
        if hit is not None:
            return hit
        key = (
            query_join.left.table,
            query_join.left.column,
            query_join.right.table,
            query_join.right.column,
        )
        rev = (key[2], key[3], key[0], key[1])
        if key in self.join_pos:
            idx = self.join_pos[key]
        elif rev in self.join_pos:
            idx = self.join_pos[rev]
        else:
            raise KeyError(
                f"join {query_join} not in the database's declared join graph"
            )
        self._join_memo[query_join] = idx
        return idx


class FlatQueryFeaturizer:
    """Fixed-length query vectors: tables + joins + per-column range slots.

    Per column the 4 slots are ``[has_predicate, lo_norm, hi_norm,
    point_fraction]`` where the point fraction is ``n_values / ndv`` for
    EQ/IN predicates (0 for ranges).
    """

    def __init__(self, db: Database) -> None:
        self.index = _ColumnIndex(db)
        self._ndv = {
            (t, c): max(db.table(t).column(c).n_distinct, 1)
            for t, c in self.index.columns
        }

    @property
    def dim(self) -> int:
        return (
            len(self.index.tables)
            + len(self.index.join_keys)
            + 4 * len(self.index.columns)
        )

    def featurize(self, query: Query) -> np.ndarray:
        idx = self.index
        vec = np.zeros(self.dim)
        for t in query.tables:
            vec[idx.table_pos[t]] = 1.0
        off = len(idx.tables)
        for j in query.joins:
            vec[off + idx.join_index(j)] = 1.0
        off += len(idx.join_keys)
        # Default slots: no predicate, full range.
        for i in range(len(idx.columns)):
            base = off + 4 * i
            vec[base + 1] = 0.0
            vec[base + 2] = 1.0
        # Merge predicates per column (conjunction -> range intersection).
        for pred in query.predicates:
            t, c = pred.column.table, pred.column.column
            i = idx.column_pos[(t, c)]
            base = off + 4 * i
            lo, hi = pred.to_range()
            lo_n, hi_n = idx.normalize_range(t, c, lo, hi)
            if vec[base] == 0.0:
                vec[base] = 1.0
                vec[base + 1], vec[base + 2] = lo_n, hi_n
            else:
                vec[base + 1] = max(vec[base + 1], lo_n)
                vec[base + 2] = min(vec[base + 2], hi_n)
            if pred.op in (Op.EQ, Op.IN):
                n_vals = 1 if pred.op is Op.EQ else len(pred.value)  # type: ignore[arg-type]
                vec[base + 3] = min(n_vals / self._ndv[(t, c)], 1.0)
        return vec

    def _pred_info(self, pred) -> tuple[int, float, float, float]:
        """Per-predicate flat-feature ingredients, memoized on the predicate.

        Returns ``(column_slot, lo_norm, hi_norm, point_fraction)`` with
        ``point_fraction < 0`` meaning "not an EQ/IN predicate".  Predicates
        are immutable (and heavily shared: every sub-query of a join query
        reuses its parent's predicate objects), so the result is cached on
        the predicate itself, tagged with this featurizer's column index --
        the tag keeps memos from different featurizers (whose normalization
        bounds may differ) from colliding.
        """
        idx = self.index
        memo = pred.__dict__.get("_flatfeat")
        if memo is not None and memo[0] is idx:
            return memo[1]
        col = pred.column
        tc = (col.table, col.column)
        slot = 4 * idx.column_pos[tc]
        # Inlined Predicate.to_range() for the scalar ops (same constants);
        # IN and OR (whose predicates have no scalar .value) fall back to
        # the real method.
        op = pred.op
        inf = np.inf
        if op is Op.EQ:
            lo = hi = pred.value
        elif op is Op.LE:
            lo, hi = -inf, pred.value
        elif op is Op.LT:
            lo, hi = -inf, pred.value - 1e-9
        elif op is Op.GE:
            lo, hi = pred.value, inf
        elif op is Op.GT:
            lo, hi = pred.value + 1e-9, inf
        elif op is Op.BETWEEN:
            lo, hi = pred.value
        else:
            lo, hi = pred.to_range()
        lo_n, hi_n = idx.normalize_range(tc[0], tc[1], lo, hi)
        point = -1.0
        if op is Op.EQ or op is Op.IN:
            n_vals = 1 if op is Op.EQ else len(pred.value)  # type: ignore[arg-type]
            point = min(n_vals / self._ndv[tc], 1.0)
        info = (slot, lo_n, hi_n, point)
        object.__setattr__(pred, "_flatfeat", (idx, info))
        return info

    def featurize_batch(self, queries: list[Query]) -> np.ndarray:
        """One feature matrix for N queries, bit-identical to row-stacking
        :meth:`featurize` but several times faster.

        Per-query model inference is featurization-bound (the forward pass
        amortizes almost to nothing in a batch), so this path fills default
        slots vectorized, hoists attribute lookups, and reuses the memoized
        per-predicate ingredients from :meth:`_pred_info`.
        """
        queries = list(queries)
        idx = self.index
        n_tables = len(idx.tables)
        off = n_tables + len(idx.join_keys)
        mat = np.zeros((len(queries), self.dim))
        # Default slots for every column: no predicate, full [0, 1] range.
        mat[:, off + 2 :: 4] = 1.0
        table_pos = idx.table_pos
        join_index = idx.join_index
        pred_info = self._pred_info
        for i, q in enumerate(queries):
            row = mat[i]
            for t in q.tables:
                row[table_pos[t]] = 1.0
            for j in q.joins:
                row[n_tables + join_index(j)] = 1.0
            for pred in q.predicates:
                slot, lo_n, hi_n, point = pred_info(pred)
                base = off + slot
                if row[base] == 0.0:
                    row[base] = 1.0
                    row[base + 1] = lo_n
                    row[base + 2] = hi_n
                else:
                    if lo_n > row[base + 1]:
                        row[base + 1] = lo_n
                    if hi_n < row[base + 2]:
                        row[base + 2] = hi_n
                if point >= 0.0:
                    row[base + 3] = point
        return mat


class MSCNFeaturizer:
    """Multi-set query featurization (MSCN / Robust-MSCN).

    Parameters
    ----------
    db:
        The database (provides schema indices and sample rows).
    sample_size:
        Rows in the per-table materialized sample used for bitmaps.
    seed:
        Sample-draw seed.
    """

    def __init__(self, db: Database, sample_size: int = 64, seed: int = 0) -> None:
        self.db = db
        self.index = _ColumnIndex(db)
        self.sample_size = sample_size
        rng = np.random.default_rng(seed)
        self._samples: dict[str, dict[str, np.ndarray]] = {}
        for t in self.index.tables:
            table = db.table(t)
            n = table.n_rows
            take = rng.choice(n, size=min(sample_size, n), replace=False)
            self._samples[t] = {
                c: table.values(c)[take] for c in table.column_names
            }
        # Bitmaps depend only on (table, predicates-on-table); plan
        # enumeration and Bao/Lero re-planning ask for the same pairs over
        # and over, so a small bounded memo pays for itself immediately.
        self._bitmap_cache: dict[tuple, np.ndarray] = {}
        self._bitmap_cache_limit = 4096

    # -- per-set dims ------------------------------------------------------------

    @property
    def table_dim(self) -> int:
        return len(self.index.tables) + self.sample_size

    @property
    def join_dim(self) -> int:
        return max(len(self.index.join_keys), 1)

    @property
    def pred_dim(self) -> int:
        return len(self.index.columns) + len(_OPS) + 2

    def module_dims(self) -> dict[str, int]:
        return {
            "tables": self.table_dim,
            "joins": self.join_dim,
            "preds": self.pred_dim,
        }

    # -- featurization --------------------------------------------------------------

    def _table_bitmap(self, query: Query, table: str) -> np.ndarray:
        preds = query.predicates_on(table)
        key = (table, preds)
        hit = self._bitmap_cache.get(key)
        if hit is not None:
            return hit
        sample = self._samples[table]
        n = next(iter(sample.values())).shape[0] if sample else 0
        bits = np.ones(self.sample_size)
        if n > 0:
            mask = np.ones(n, dtype=bool)
            for pred in preds:
                mask &= pred.evaluate(sample[pred.column.column])
            bits[:n] = mask.astype(float)
            if n < self.sample_size:
                bits[n:] = 0.0
        if len(self._bitmap_cache) >= self._bitmap_cache_limit:
            self._bitmap_cache.clear()
        self._bitmap_cache[key] = bits
        return bits

    def _table_bitmap_fast(self, query: Query, table: str) -> np.ndarray:
        """Identity-memoized bitmap lookup for the batch path.

        The shared ``_bitmap_cache`` keys on the predicate tuple, whose hash
        is not cheap; benchmark loops and repeated plannings present the
        *same query objects* over and over, so the batch path memoizes the
        bitmap directly on the query (tagged with this featurizer) and only
        falls back to the shared cache on first sight.
        """
        memo = query.__dict__.get("_mscn_bitmaps")
        if memo is None:
            memo = {}
            object.__setattr__(query, "_mscn_bitmaps", memo)
        key = (self, table)
        hit = memo.get(key)
        if hit is None:
            hit = self._table_bitmap(query, table)
            memo[key] = hit
        return hit

    def _pred_row_info(self, pred: Predicate) -> tuple[int, int, float, float]:
        """Memoized ``(col_slot, op_slot, lo_norm, hi_norm)`` per predicate.

        Same trick as ``FlatQueryFeaturizer._pred_info``: predicates are
        immutable and shared across sub-queries, so the normalized range is
        computed once per (featurizer, predicate) pair.
        """
        idx = self.index
        memo = pred.__dict__.get("_mscnfeat")
        if memo is not None and memo[0] is idx:
            return memo[1]
        tc = (pred.column.table, pred.column.column)
        lo, hi = pred.to_range()
        lo_n, hi_n = idx.normalize_range(tc[0], tc[1], lo, hi)
        info = (
            idx.column_pos[tc],
            len(idx.columns) + _OPS.index(pred.op),
            lo_n,
            hi_n,
        )
        object.__setattr__(pred, "_mscnfeat", (idx, info))
        return info

    def featurize(
        self,
        query: Query,
        *,
        drop_bitmaps: bool = False,
        mask_rate: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> dict[str, np.ndarray]:
        """Set-dict for one query.

        ``drop_bitmaps`` replaces sample bitmaps with all-ones (Robust-MSCN
        inference-time masking); ``mask_rate`` randomly drops predicate
        elements (training-time augmentation).
        """
        idx = self.index
        table_rows = []
        for t in query.tables:
            onehot = np.zeros(len(idx.tables))
            onehot[idx.table_pos[t]] = 1.0
            bitmap = (
                np.ones(self.sample_size)
                if drop_bitmaps
                else self._table_bitmap(query, t)
            )
            table_rows.append(np.concatenate([onehot, bitmap]))
        tables = np.stack(table_rows)

        if query.joins:
            join_rows = []
            for j in query.joins:
                onehot = np.zeros(self.join_dim)
                onehot[idx.join_index(j)] = 1.0
                join_rows.append(onehot)
            joins = np.stack(join_rows)
        else:
            joins = np.zeros((0, self.join_dim))

        pred_rows = []
        preds: tuple[Predicate, ...] = query.predicates
        if mask_rate > 0.0 and preds:
            rng = rng if rng is not None else np.random.default_rng(0)
            preds = tuple(p for p in preds if rng.random() >= mask_rate)
        for pred in preds:
            t, c = pred.column.table, pred.column.column
            col_onehot = np.zeros(len(idx.columns))
            col_onehot[idx.column_pos[(t, c)]] = 1.0
            op_onehot = np.zeros(len(_OPS))
            op_onehot[_OPS.index(pred.op)] = 1.0
            lo, hi = pred.to_range()
            lo_n, hi_n = idx.normalize_range(t, c, lo, hi)
            pred_rows.append(np.concatenate([col_onehot, op_onehot, [lo_n, hi_n]]))
        preds_arr = (
            np.stack(pred_rows) if pred_rows else np.zeros((0, self.pred_dim))
        )
        return {"tables": tables, "joins": joins, "preds": preds_arr}

    def featurize_workload(
        self, queries: list[Query], *, drop_bitmaps: bool = False
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Pre-padded ``{set: (padded [B, S, d], mask [B, S])}`` for N queries.

        Produces exactly what :meth:`repro.ml.setconv.SetConvNet._pad` would
        build from per-query :meth:`featurize` dicts, but fills the padded
        arrays directly -- skipping N intermediate set-dicts and the
        per-element ``np.concatenate``/``np.stack`` calls that dominate
        MSCN's per-query inference cost.  Feed the result to
        ``SetConvNet.predict_padded``.
        """
        queries = list(queries)
        idx = self.index
        b = len(queries)
        n_tables = len(idx.tables)

        s_tab = max(max((q.n_tables for q in queries), default=0), 1)
        s_join = max(max((len(q.joins) for q in queries), default=0), 1)
        s_pred = max(max((len(q.predicates) for q in queries), default=0), 1)
        tab_padded = np.zeros((b, s_tab, self.table_dim))
        tab_mask = np.zeros((b, s_tab))
        join_padded = np.zeros((b, s_join, self.join_dim))
        join_mask = np.zeros((b, s_join))
        pred_padded = np.zeros((b, s_pred, self.pred_dim))
        pred_mask = np.zeros((b, s_pred))

        table_pos = idx.table_pos
        join_index = idx.join_index
        table_bitmap = self._table_bitmap_fast
        pred_row_info = self._pred_row_info
        for i, q in enumerate(queries):
            for k, t in enumerate(q.tables):
                row = tab_padded[i, k]
                row[table_pos[t]] = 1.0
                if drop_bitmaps:
                    row[n_tables:] = 1.0
                else:
                    row[n_tables:] = table_bitmap(q, t)
            tab_mask[i, : q.n_tables] = 1.0
            if q.joins:
                for k, j in enumerate(q.joins):
                    join_padded[i, k, join_index(j)] = 1.0
                join_mask[i, : len(q.joins)] = 1.0
            if q.predicates:
                for k, pred in enumerate(q.predicates):
                    row = pred_padded[i, k]
                    col_slot, op_slot, lo_n, hi_n = pred_row_info(pred)
                    row[col_slot] = 1.0
                    row[op_slot] = 1.0
                    row[-2] = lo_n
                    row[-1] = hi_n
                pred_mask[i, : len(q.predicates)] = 1.0
        return {
            "tables": (tab_padded, tab_mask),
            "joins": (join_padded, join_mask),
            "preds": (pred_padded, pred_mask),
        }
