"""NeuroCard-style estimator [70]: one autoregressive model per join
template, trained on exact uniform samples of the (unfiltered) join.

NeuroCard's idea is to learn a single deep autoregressive model over the
*join* of the schema rather than per-table models, removing the
join-uniformity assumption entirely.  This implementation realizes it as:

- :class:`FullJoinSampler` -- draws **exactly uniform** samples from the
  unfiltered join result of a template using two-pass message passing
  (bottom-up join counts per row, top-down weighted ancestor sampling);
  cycle-closing join edges are honoured by rejection;
- per distinct join template (table set + join edges), a MADE is trained
  over the concatenated non-key columns of the joined sample;
- a query's cardinality is ``P(box | join) * |join|`` with the box
  probability from Naru-style progressive sampling and ``|join|`` exact
  from the executor.

Templates are built lazily and cached, mirroring how NeuroCard trains one
model per (schema) join template.
"""

from __future__ import annotations

import numpy as np

from repro.cardest.base import BaseCardinalityEstimator
from repro.cardest.binning import ColumnBinner
from repro.engine.executor import CardinalityExecutor
from repro.ml.autoregressive import MaskedAutoregressiveNetwork
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["FullJoinSampler", "NeuroCardEstimator"]


class FullJoinSampler:
    """Uniform sampling from an unfiltered join result.

    Works on a spanning tree of the template's join graph; extra
    (cycle-closing) edges are enforced by rejection, which preserves
    uniformity over the cyclic join result.
    """

    def __init__(self, db: Database, template: Query) -> None:
        self.db = db
        self.template = Query(template.tables, template.joins, ())
        self._tree, self._extras = self._spanning_tree(self.template)
        self._prepare()

    @staticmethod
    def _spanning_tree(query: Query):
        root = query.tables[0]
        visited = {root}
        tree: list[tuple[str, str, str, str]] = []  # (child, ccol, parent, pcol)
        extras = []
        remaining = list(query.joins)
        progress = True
        while remaining and progress:
            progress = False
            still = []
            for j in remaining:
                lt, rt = j.left.table, j.right.table
                if lt in visited and rt in visited:
                    extras.append(j)
                    progress = True
                elif lt in visited:
                    visited.add(rt)
                    tree.append((rt, j.right.column, lt, j.left.column))
                    progress = True
                elif rt in visited:
                    visited.add(lt)
                    tree.append((lt, j.left.column, rt, j.right.column))
                    progress = True
                else:
                    still.append(j)
            remaining = still
        if remaining:
            raise ValueError(f"join graph of {query} is disconnected")
        return tree, extras

    def _prepare(self) -> None:
        """Bottom-up pass: per-row weights = number of join rows through it."""
        db = self.db
        self._weights: dict[str, np.ndarray] = {
            t: np.ones(db.table(t).n_rows) for t in self.template.tables
        }
        # Child groupings per tree edge for top-down sampling.
        self._edge_groups: dict[tuple[str, str], dict] = {}
        for child, ccol, parent, pcol in reversed(self._tree):
            keys = db.table(child).values(ccol)
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            uniq, start = np.unique(sorted_keys, return_index=True)
            lengths = np.diff(np.append(start, sorted_keys.shape[0]))
            self._edge_groups[(child, parent)] = {
                "uniq": uniq,
                "start": start,
                "lengths": lengths,
                "perm": order,
                "ccol": ccol,
                "pcol": pcol,
            }
            # Sum of child weights per key -> multiply into parent weights.
            sums = np.zeros(uniq.shape[0])
            np.add.at(sums, np.searchsorted(uniq, sorted_keys), self._weights[child][order])
            pkeys = db.table(parent).values(pcol)
            pos = np.searchsorted(uniq, pkeys)
            pos = np.clip(pos, 0, max(uniq.shape[0] - 1, 0))
            hit = uniq[pos] == pkeys if uniq.size else np.zeros(pkeys.shape[0], bool)
            self._weights[parent] *= np.where(hit, sums[pos], 0.0)
        self._root = self._tree[0][2] if self._tree else self.template.tables[0]
        self.join_size = float(self._weights[self._root].sum())

    def sample(self, n: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
        """``n`` uniform join rows as per-table row-index arrays.

        Raises ValueError when the join is empty.  With cycle-closing edges
        the effective sample may be smaller than requested if acceptance is
        very low; at least one accepted row is guaranteed or an error raised.
        """
        if self.join_size <= 0:
            raise ValueError(f"unfiltered join of {self.template} is empty")
        out: dict[str, list[int]] = {t: [] for t in self.template.tables}
        root_w = self._weights[self._root]
        probs = root_w / root_w.sum()
        attempts = 0
        accepted = 0
        max_attempts = max(20 * n, 200)
        # Children of each parent in top-down order.
        children: dict[str, list[str]] = {t: [] for t in self.template.tables}
        for child, _, parent, _ in self._tree:
            children[parent].append(child)

        while accepted < n and attempts < max_attempts:
            attempts += 1
            row: dict[str, int] = {self._root: int(rng.choice(root_w.shape[0], p=probs))}
            ok = True
            frontier = [self._root]
            while frontier and ok:
                parent = frontier.pop()
                for child in children[parent]:
                    group = self._edge_groups[(child, parent)]
                    pkey = self.db.table(parent).values(group["pcol"])[row[parent]]
                    pos = int(np.searchsorted(group["uniq"], pkey))
                    if pos >= group["uniq"].shape[0] or group["uniq"][pos] != pkey:
                        ok = False
                        break
                    start, length = group["start"][pos], group["lengths"][pos]
                    members = group["perm"][start : start + length]
                    w = self._weights[child][members]
                    total = w.sum()
                    if total <= 0:
                        ok = False
                        break
                    row[child] = int(rng.choice(members, p=w / total))
                    frontier.append(child)
            if not ok:
                continue
            # Cycle-closing edges: rejection.
            valid = True
            for j in self._extras:
                lv = self.db.table(j.left.table).values(j.left.column)[row[j.left.table]]
                rv = self.db.table(j.right.table).values(j.right.column)[row[j.right.table]]
                if lv != rv:
                    valid = False
                    break
            if not valid:
                continue
            for t, i in row.items():
                out[t].append(i)
            accepted += 1
        if accepted == 0:
            raise ValueError(
                f"could not draw any sample from cyclic join {self.template}"
            )
        return {t: np.array(idx, dtype=np.int64) for t, idx in out.items()}


class _TemplateModel:
    """MADE over a joined sample of one template."""

    def __init__(
        self,
        db: Database,
        template: Query,
        n_samples: int,
        max_bins: int,
        hidden: tuple[int, ...],
        epochs: int,
        seed: int,
        executor: CardinalityExecutor,
    ) -> None:
        rng = np.random.default_rng(seed)
        sampler = FullJoinSampler(db, template)
        try:
            rows = sampler.sample(n_samples, rng)
        except ValueError:
            rows = None
        if rows is None or rows[template.tables[0]].shape[0] < max(n_samples // 10, 20):
            # Cyclic template with a tiny acceptance rate: fall back to the
            # spanning-tree join for the *sample* (the scale factor below
            # still uses the exact cyclic join size).  This assumes the
            # predicate-column distribution over the cyclic join resembles
            # that over its spanning tree -- NeuroCard-lite's documented
            # approximation for cyclic schemas.
            tree_joins = tuple(
                j for j in template.joins if j not in sampler._extras
            )
            tree_template = Query(template.tables, tree_joins, ())
            sampler = FullJoinSampler(db, tree_template)
            rows = sampler.sample(n_samples, rng)
        # Columns: all non-key columns of every table in the template.
        self.columns: list[tuple[str, str]] = []
        data_cols: list[np.ndarray] = []
        for t in template.tables:
            tbl = db.table(t)
            for c in tbl.column_names:
                if tbl.column(c).is_key:
                    continue
                self.columns.append((t, c))
                data_cols.append(tbl.values(c)[rows[t]])
        if not self.columns:
            raise ValueError(f"template {template} has no non-key columns")
        self.binners = [
            ColumnBinner(db.table(t).values(c), max_bins=max_bins)
            for t, c in self.columns
        ]
        codes = np.column_stack(
            [b.bin_of(v) for b, v in zip(self.binners, data_cols)]
        )
        self.net = MaskedAutoregressiveNetwork(
            [b.n_bins for b in self.binners], hidden=hidden, seed=seed
        )
        self.net.fit(codes, epochs=epochs)
        self.join_size = float(executor.cardinality(Query(template.tables, template.joins, ())))
        self._rng = np.random.default_rng(seed + 1)

    def estimate(self, query: Query, n_samples: int) -> float:
        allowed: list[np.ndarray | None] = [None] * len(self.columns)
        correction = 1.0
        for pred in query.predicates:
            key = (pred.column.table, pred.column.column)
            if key not in self.columns:
                continue
            i = self.columns.index(key)
            bins, factor = self.binners[i].bins_for_predicate(pred)
            correction *= factor
            if allowed[i] is None:
                allowed[i] = bins
            else:
                allowed[i] = np.intersect1d(allowed[i], bins)
        for bins in allowed:
            if bins is not None and bins.size == 0:
                return 0.0
        # Progressive sampling over the MADE.
        n_cols = len(self.columns)
        rows = np.zeros((n_samples, n_cols), dtype=int)
        mass = np.ones(n_samples)
        for col in range(n_cols):
            probs = self.net.conditional_distribution(rows, col)
            if allowed[col] is not None:
                mask = np.zeros(probs.shape[1])
                mask[allowed[col]] = 1.0
                probs = probs * mask[None, :]
            col_mass = probs.sum(axis=1)
            mass *= col_mass
            safe = np.where(col_mass[:, None] > 0, probs, 1.0 / probs.shape[1])
            safe = safe / safe.sum(axis=1, keepdims=True)
            cdf = safe.cumsum(axis=1)
            u = self._rng.random((n_samples, 1))
            rows[:, col] = (u > cdf).sum(axis=1)
        return float(mass.mean()) * correction * self.join_size


class NeuroCardEstimator(BaseCardinalityEstimator):
    """One autoregressive model per join template (NeuroCard [70])."""

    name = "neurocard"

    def __init__(
        self,
        db: Database,
        n_samples: int = 1500,
        max_bins: int = 24,
        hidden: tuple[int, ...] = (64,),
        epochs: int = 10,
        inference_samples: int = 128,
        seed: int = 0,
    ) -> None:
        super().__init__(db)
        self.n_samples = n_samples
        self.max_bins = max_bins
        self.hidden = hidden
        self.epochs = epochs
        self.inference_samples = inference_samples
        self.seed = seed
        self._executor = CardinalityExecutor(db)
        self._templates: dict[tuple, _TemplateModel] = {}

    def _template_key(self, query: Query) -> tuple:
        return (query.tables, tuple(str(j) for j in query.joins))

    def _model_for(self, query: Query) -> _TemplateModel:
        key = self._template_key(query)
        model = self._templates.get(key)
        if model is None:
            model = _TemplateModel(
                self.db,
                query,
                self.n_samples,
                self.max_bins,
                self.hidden,
                self.epochs,
                self.seed,
                self._executor,
            )
            self._templates[key] = model
        return model

    def prebuild(self, queries: list[Query]) -> None:
        """Train models for every distinct template in a workload upfront."""
        for q in queries:
            self._model_for(q)

    def refresh(self) -> None:
        """Drop cached templates (after data change); they rebuild lazily."""
        self._templates.clear()
        self._executor.clear_cache()

    def _estimate(self, query: Query) -> float:
        return self._model_for(query).estimate(query, self.inference_samples)
