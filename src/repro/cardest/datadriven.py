"""Data-driven learned cardinality estimators (paper §2.1.1, Table 1).

Unsupervised models of the joint data distribution:

- :class:`KDEEstimator` / :class:`JoinKDEEstimator` -- kernel density
  models [14, 21];
- :class:`NaruEstimator` -- deep autoregressive model with progressive
  sampling [71];
- :class:`NeuroCardEstimator` -- a single autoregressive model over join
  samples (:mod:`repro.cardest.neurocard`) [70];
- :class:`BayesNetEstimator` -- Chow-Liu tree Bayesian network with exact
  tree inference [57, 65];
- :class:`SPNEstimator` / :class:`FSPNEstimator` -- sum-product networks
  and their factorized extension (:mod:`repro.cardest.spn`) [17, 81];
- :class:`FactorJoinEstimator` -- per-table conditioning + binned join-key
  message passing (:mod:`repro.cardest.factorjoin`) [64].

Single-table models compose join estimates under join uniformity (see
:mod:`repro.cardest.joinutil`); NeuroCard and FactorJoin instead model the
join itself, which is exactly the axis the STATS benchmark [12]
differentiates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cardest.base import BaseCardinalityEstimator
from repro.cardest.binning import DiscretizedTable, predicate_bins
from repro.cardest.joinutil import UnfilteredJoinSizes, uniform_join_estimate
from repro.cardest.factorjoin import FactorJoinEstimator
from repro.cardest.neurocard import NeuroCardEstimator
from repro.cardest.spn import FSPNEstimator, SPNEstimator
from repro.ml.autoregressive import MaskedAutoregressiveNetwork
from repro.ml.chowliu import chow_liu_tree
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = [
    "KDEEstimator",
    "JoinKDEEstimator",
    "NaruEstimator",
    "NeuroCardEstimator",
    "BayesNetEstimator",
    "SPNEstimator",
    "FSPNEstimator",
    "FactorJoinEstimator",
    "PerTableModelEstimator",
]


class PerTableModelEstimator(BaseCardinalityEstimator):
    """Base for estimators owning one distribution model per table.

    Subclasses implement :meth:`_build_table_model` and
    :meth:`_table_selectivity`; joins compose under join uniformity.
    :meth:`refresh` rebuilds everything from current data (used by the
    drift experiments; *not* calling it models a stale estimator).
    """

    def __init__(self, db: Database) -> None:
        super().__init__(db)
        self._join_sizes = UnfilteredJoinSizes(db)
        self._models: dict[str, object] = {}
        self._build_all()

    def _build_all(self) -> None:
        for name in self.db.table_names:
            self._models[name] = self._build_table_model(name)

    def refresh(self) -> None:
        """Rebuild the per-table models and join-size cache from the data."""
        self._join_sizes.invalidate()
        self._build_all()
        self._bump_estimates_version()

    def _build_table_model(self, table: str) -> object:
        raise NotImplementedError

    def _table_selectivity(self, query: Query, table: str) -> float:
        raise NotImplementedError

    def _estimate(self, query: Query) -> float:
        return uniform_join_estimate(
            query, self._join_sizes, lambda t: self._table_selectivity(query, t)
        )


# ---------------------------------------------------------------------------
# Kernel density estimators
# ---------------------------------------------------------------------------


class _TableKDE:
    """Gaussian KDE with diagonal Scott-rule bandwidth over sampled rows."""

    def __init__(
        self, matrix: np.ndarray, columns: list[str], sample: int, rng: np.random.Generator
    ) -> None:
        self.columns = columns
        n = matrix.shape[0]
        take = rng.choice(n, size=min(sample, n), replace=False) if n else np.zeros(0, int)
        self.points = matrix[take]
        m, d = max(self.points.shape[0], 1), max(matrix.shape[1], 1)
        std = matrix.std(axis=0) if n else np.ones(d)
        std[std < 1e-9] = 1.0
        self.bandwidth = std * m ** (-1.0 / (d + 4))
        self.bandwidth[self.bandwidth < 1e-9] = 1e-9

    def box_mass(self, lows: np.ndarray, highs: np.ndarray) -> float:
        """P(lo <= X <= hi) under the KDE (product of per-dim Gaussians)."""
        if self.points.shape[0] == 0:
            return 0.0
        z_hi = (highs[None, :] - self.points) / self.bandwidth[None, :]
        z_lo = (lows[None, :] - self.points) / self.bandwidth[None, :]
        cdf = lambda z: 0.5 * (1.0 + _erf(z / math.sqrt(2.0)))  # noqa: E731
        per_dim = np.clip(cdf(z_hi) - cdf(z_lo), 0.0, 1.0)
        return float(per_dim.prod(axis=1).mean())


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorized error function (Abramowitz-Stegun 7.1.26, |err| < 1.5e-7)."""
    sign = np.sign(x)
    x = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * x)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-x * x))


class KDEEstimator(PerTableModelEstimator):
    """Per-table Gaussian KDE (Heimel et al. [14])."""

    name = "kde"

    def __init__(self, db: Database, sample: int = 600, seed: int = 0) -> None:
        self.sample = sample
        self.seed = seed
        super().__init__(db)

    def _build_table_model(self, table: str) -> _TableKDE:
        tbl = self.db.table(table)
        columns = [c for c in tbl.column_names if not tbl.column(c).is_key]
        if not columns:
            columns = tbl.column_names[:1]
        rng = np.random.default_rng(self.seed + hash(table) % 1000)
        return _TableKDE(tbl.matrix(columns), columns, self.sample, rng)

    def _table_selectivity(self, query: Query, table: str) -> float:
        preds = query.predicates_on(table)
        if not preds:
            return 1.0
        model: _TableKDE = self._models[table]  # type: ignore[assignment]
        lows = np.full(len(model.columns), -np.inf)
        highs = np.full(len(model.columns), np.inf)
        for pred in preds:
            c = pred.column.column
            if c not in model.columns:
                continue
            i = model.columns.index(c)
            lo, hi = pred.to_range()
            # Integer point predicates become +-0.5 windows so the Gaussian
            # kernel integrates a non-degenerate interval.
            if lo == hi:
                lo, hi = lo - 0.5, hi + 0.5
            lows[i] = max(lows[i], lo)
            highs[i] = min(highs[i], hi)
        return model.box_mass(lows, highs)


class JoinKDEEstimator(KDEEstimator):
    """KDE with sample-estimated join sizes (Kiefer et al. [21]).

    Unlike the base class this does *not* use exact unfiltered join sizes:
    each join edge's size is estimated from sampled join-key frequency
    vectors (``n_l * n_r * sum_v p_l(v) p_r(v)``), as the
    bandwidth-optimized join KDE models do.
    """

    name = "join_kde"

    def __init__(self, db: Database, sample: int = 600, seed: int = 0) -> None:
        super().__init__(db, sample=sample, seed=seed)
        self._key_samples: dict[tuple[str, str], np.ndarray] = {}
        rng = np.random.default_rng(seed + 7)
        for edge in db.joins:
            for t, c in (
                (edge.left_table, edge.left_column),
                (edge.right_table, edge.right_column),
            ):
                values = db.table(t).values(c)
                take = rng.choice(
                    values.shape[0], size=min(sample, values.shape[0]), replace=False
                )
                self._key_samples[(t, c)] = values[take]

    def _join_size(self, query: Query) -> float:
        size = 1.0
        for t in query.tables:
            size *= self.db.table(t).n_rows
        for join in query.joins:
            lt, lc = join.left.table, join.left.column
            rt, rc = join.right.table, join.right.column
            left = self._key_samples.get((lt, lc))
            right = self._key_samples.get((rt, rc))
            if left is None or right is None:
                # Join edge outside the declared graph: fall back to NDV rule.
                ndv = max(
                    np.unique(self.db.table(lt).values(lc)).size,
                    np.unique(self.db.table(rt).values(rc)).size,
                    1,
                )
                size /= ndv
                continue
            vals, lcounts = np.unique(left, return_counts=True)
            rvals, rcounts = np.unique(right, return_counts=True)
            pl = dict(zip(vals.tolist(), (lcounts / left.shape[0]).tolist()))
            match = 0.0
            for v, rc_count in zip(rvals.tolist(), (rcounts / right.shape[0]).tolist()):
                match += pl.get(v, 0.0) * rc_count
            size *= match
        return size

    def _estimate(self, query: Query) -> float:
        card = self._join_size(query)
        for t in query.tables:
            card *= self._table_selectivity(query, t)
        return card


# ---------------------------------------------------------------------------
# Naru: autoregressive model + progressive sampling
# ---------------------------------------------------------------------------


class _TableNaru:
    """MADE over one discretized table + progressive-sampling box queries."""

    def __init__(
        self,
        disc: DiscretizedTable,
        hidden: tuple[int, ...],
        epochs: int,
        seed: int,
    ) -> None:
        self.disc = disc
        self.net = MaskedAutoregressiveNetwork(
            disc.domain_sizes, hidden=hidden, seed=seed
        )
        self.net.fit(disc.codes, epochs=epochs)
        self._rng = np.random.default_rng(seed + 1)

    def box_probability(
        self, allowed: list[np.ndarray | None], n_samples: int = 128
    ) -> float:
        """Progressive sampling estimate of P(X in box) (Naru's algorithm)."""
        n_cols = len(self.disc.column_names)
        rows = np.zeros((n_samples, n_cols), dtype=int)
        mass = np.ones(n_samples)
        for col in range(n_cols):
            probs = self.net.conditional_distribution(rows, col)
            if allowed[col] is not None:
                bins = allowed[col]
                if bins.size == 0:
                    return 0.0
                mask = np.zeros(probs.shape[1])
                mask[bins] = 1.0
                probs = probs * mask[None, :]
            col_mass = probs.sum(axis=1)
            mass *= col_mass
            # Renormalize and sample the next prefix value; dead paths
            # (zero mass) sample from anything, their weight is already 0.
            safe = np.where(col_mass[:, None] > 0, probs, 1.0 / probs.shape[1])
            safe = safe / safe.sum(axis=1, keepdims=True)
            cdf = safe.cumsum(axis=1)
            u = self._rng.random((n_samples, 1))
            rows[:, col] = (u > cdf).sum(axis=1)
        return float(mass.mean())


class NaruEstimator(PerTableModelEstimator):
    """Deep autoregressive estimator with progressive sampling (Naru [71])."""

    name = "naru"

    def __init__(
        self,
        db: Database,
        max_bins: int = 32,
        hidden: tuple[int, ...] = (64, 64),
        epochs: int = 15,
        n_samples: int = 128,
        seed: int = 0,
    ) -> None:
        self.max_bins = max_bins
        self.hidden = hidden
        self.epochs = epochs
        self.n_samples = n_samples
        self.seed = seed
        super().__init__(db)

    def _build_table_model(self, table: str) -> _TableNaru:
        tbl = self.db.table(table)
        columns = [c for c in tbl.column_names if not tbl.column(c).is_key]
        if not columns:
            columns = tbl.column_names[:1]
        disc = DiscretizedTable.build(tbl, max_bins=self.max_bins, columns=columns)
        return _TableNaru(disc, self.hidden, self.epochs, self.seed)

    def _table_selectivity(self, query: Query, table: str) -> float:
        preds = query.predicates_on(table)
        if not preds:
            return 1.0
        model: _TableNaru = self._models[table]  # type: ignore[assignment]
        usable = tuple(
            p for p in preds if p.column.column in model.disc.column_names
        )
        if not usable:
            return 1.0
        allowed, correction = predicate_bins(model.disc, usable)
        return model.box_probability(allowed, self.n_samples) * correction


# ---------------------------------------------------------------------------
# Bayesian network (Chow-Liu tree) with exact inference
# ---------------------------------------------------------------------------


class _TableBayesNet:
    """Tree-shaped BN: Chow-Liu structure + smoothed CPTs + exact inference."""

    def __init__(self, disc: DiscretizedTable, alpha: float = 0.1) -> None:
        self.disc = disc
        codes = disc.codes
        n_cols = codes.shape[1]
        self.edges = chow_liu_tree(codes) if n_cols > 1 else []
        self.children: dict[int, list[int]] = {i: [] for i in range(n_cols)}
        self.parent: dict[int, int] = {}
        for p, c in self.edges:
            self.children[p].append(c)
            self.parent[c] = p
        self.root = 0
        sizes = disc.domain_sizes
        n = max(codes.shape[0], 1)
        # Root marginal.
        counts = np.bincount(codes[:, self.root], minlength=sizes[self.root]).astype(float)
        self.root_prob = (counts + alpha) / (n + alpha * sizes[self.root])
        # CPTs P(child | parent): [parent_bins, child_bins].
        self.cpts: dict[int, np.ndarray] = {}
        for p, c in self.edges:
            table = np.zeros((sizes[p], sizes[c]))
            np.add.at(table, (codes[:, p], codes[:, c]), 1.0)
            table += alpha
            table /= table.sum(axis=1, keepdims=True)
            self.cpts[c] = table

    def box_probability(self, allowed: list[np.ndarray | None]) -> float:
        """Exact P(X in box) by message passing on the tree."""

        def indicator(col: int) -> np.ndarray:
            size = self.disc.domain_sizes[col]
            if allowed[col] is None:
                return np.ones(size)
            vec = np.zeros(size)
            vec[allowed[col]] = 1.0
            return vec

        def message(col: int) -> np.ndarray:
            """For each value v of col: P(col=v's subtree consistent | col=v)
            times the indicator of col."""
            vec = indicator(col)
            for child in self.children[col]:
                child_msg = message(child)  # [child_bins]
                vec = vec * (self.cpts[child] @ child_msg)
            return vec

        return float((self.root_prob * message(self.root)).sum())


class BayesNetEstimator(PerTableModelEstimator):
    """Chow-Liu Bayesian network estimator (Tzoumas et al. [57] /
    BayesCard [65]); per-table exact tree inference, join uniformity."""

    name = "bayesnet"

    def __init__(self, db: Database, max_bins: int = 32, alpha: float = 0.1) -> None:
        self.max_bins = max_bins
        self.alpha = alpha
        super().__init__(db)

    def _build_table_model(self, table: str) -> _TableBayesNet:
        tbl = self.db.table(table)
        columns = [c for c in tbl.column_names if not tbl.column(c).is_key]
        if not columns:
            columns = tbl.column_names[:1]
        disc = DiscretizedTable.build(tbl, max_bins=self.max_bins, columns=columns)
        return _TableBayesNet(disc, alpha=self.alpha)

    def _table_selectivity(self, query: Query, table: str) -> float:
        preds = query.predicates_on(table)
        if not preds:
            return 1.0
        model: _TableBayesNet = self._models[table]  # type: ignore[assignment]
        usable = tuple(p for p in preds if p.column.column in model.disc.column_names)
        if not usable:
            return 1.0
        allowed, correction = predicate_bins(model.disc, usable)
        return model.box_probability(allowed) * correction
