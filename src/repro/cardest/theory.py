"""Empirical checks of the theory works the tutorial cites.

Two learnability/uncertainty utilities:

- :func:`pac_learning_curve` -- Hu et al. [19] prove selectivity functions
  of bounded-VC range spaces are PAC-learnable: the expected error of an
  ERM learner shrinks as roughly ``O~(sqrt(1/n))`` in the sample count.
  This helper runs the experiment: it fits a fresh estimator per training
  size and returns the error curve so tests/benchmarks can verify the
  monotone-shrinking shape.

- :func:`interval_coverage` -- Thirumuruganathan et al. [55] evaluate
  prediction intervals for learned cardinality estimates.  This helper
  measures empirical coverage of an ensemble's intervals against true
  cardinalities (a calibrated 95% interval should cover ~95%).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.cardest.advisor import EnsembleEstimator
from repro.cardest.base import q_error
from repro.engine.executor import CardinalityExecutor
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["pac_learning_curve", "interval_coverage"]


def pac_learning_curve(
    db: Database,
    estimator_factory: Callable[[], object],
    train_queries: Sequence[Query],
    test_queries: Sequence[Query],
    sample_sizes: Sequence[int],
) -> list[tuple[int, float]]:
    """Median q-error on held-out queries per training-set size.

    ``estimator_factory()`` must build a fresh supervised estimator with a
    ``fit(queries, cards)`` method.  Returns ``[(n, median_q_error), ...]``
    in the given size order.  True cardinalities are computed exactly.
    """
    if not sample_sizes:
        raise ValueError("need at least one sample size")
    if max(sample_sizes) > len(train_queries):
        raise ValueError("sample size exceeds available training queries")
    executor = CardinalityExecutor(db)
    train_cards = np.array([executor.cardinality(q) for q in train_queries])
    test_cards = [executor.cardinality(q) for q in test_queries]
    curve = []
    for n in sample_sizes:
        est = estimator_factory()
        est.fit(list(train_queries[:n]), train_cards[:n])
        errs = [
            q_error(est.estimate(q), c) for q, c in zip(test_queries, test_cards)
        ]
        curve.append((int(n), float(np.median(errs))))
    return curve


def interval_coverage(
    ensemble: EnsembleEstimator,
    queries: Sequence[Query],
    true_cards: Sequence[float],
    z: float = 1.96,
) -> float:
    """Fraction of true cardinalities inside the ensemble's intervals."""
    if len(queries) != len(true_cards):
        raise ValueError("queries and true_cards must align")
    if not queries:
        raise ValueError("empty evaluation set")
    hits = 0
    for q, truth in zip(queries, true_cards):
        lo, hi = ensemble.predict_interval(q, z=z)
        if lo <= truth <= hi:
            hits += 1
    return hits / len(queries)
