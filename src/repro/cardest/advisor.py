"""Extensions of §2.1.1: model advisor, uncertainty, Flow-Loss weighting.

- :class:`AutoCE` [74]: a model advisor recommending the best estimator
  family for a dataset via metric learning over dataset features
  (implemented as nearest-neighbour in a learned-scale feature space over
  recorded performance profiles).
- :class:`EnsembleEstimator` (Fauce [33] / prediction intervals [55]):
  an ensemble of independently seeded estimators giving both a point
  estimate (geometric mean) and an uncertainty interval.
- :func:`flow_loss_weights` [44]: training-sample weights emphasizing
  queries whose estimates actually change plan cost, approximated by the
  cost-model sensitivity to scaling each query's cardinality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cardest.base import BaseCardinalityEstimator
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["DatasetFeatures", "AutoCE", "EnsembleEstimator", "flow_loss_weights"]


@dataclass(frozen=True)
class DatasetFeatures:
    """Fixed-length summary of a database used by the advisor."""

    log_rows: float
    mean_correlation: float
    mean_skew: float
    mean_log_domain: float
    n_tables: float
    fanout_skew: float

    def vector(self) -> np.ndarray:
        return np.array(
            [
                self.log_rows,
                self.mean_correlation,
                self.mean_skew,
                self.mean_log_domain,
                self.n_tables,
                self.fanout_skew,
            ]
        )

    @classmethod
    def of(cls, db: Database) -> "DatasetFeatures":
        corrs, skews, domains = [], [], []
        for table in db.tables.values():
            cols = [c for c in table.column_names if not table.column(c).is_key]
            mats = [table.values(c).astype(float) for c in cols]
            for i in range(len(mats)):
                domains.append(math.log1p(np.unique(mats[i]).size))
                # Normalized entropy as an (inverse) skew proxy.
                _, counts = np.unique(mats[i], return_counts=True)
                p = counts / counts.sum()
                ent = -(p * np.log(p)).sum()
                max_ent = math.log(max(len(counts), 2))
                skews.append(1.0 - ent / max_ent)
                for j in range(i + 1, len(mats)):
                    if mats[i].std() > 1e-9 and mats[j].std() > 1e-9:
                        corrs.append(abs(float(np.corrcoef(mats[i], mats[j])[0, 1])))
        fanouts = []
        for e in db.joins:
            counts = np.unique(
                db.table(e.left_table).values(e.left_column), return_counts=True
            )[1]
            fanouts.append(float(counts.max() / max(counts.mean(), 1e-9)))
        return cls(
            log_rows=math.log1p(db.total_rows()),
            mean_correlation=float(np.mean(corrs)) if corrs else 0.0,
            mean_skew=float(np.mean(skews)) if skews else 0.0,
            mean_log_domain=float(np.mean(domains)) if domains else 0.0,
            n_tables=float(len(db.tables)),
            fanout_skew=float(np.mean(fanouts)) if fanouts else 1.0,
        )


class AutoCE:
    """Model advisor: recommend an estimator family for a dataset [74].

    Profiles are ``(features, best_method)`` pairs recorded from past
    benchmark runs (see :meth:`record`); :meth:`recommend` returns the
    method of the nearest profile under per-dimension standardized
    distance (the "learned metric" reduced to its diagonal form).
    """

    def __init__(self) -> None:
        self._features: list[np.ndarray] = []
        self._labels: list[str] = []

    def record(self, db: Database, best_method: str) -> None:
        self._features.append(DatasetFeatures.of(db).vector())
        self._labels.append(best_method)

    def record_features(self, features: DatasetFeatures, best_method: str) -> None:
        self._features.append(features.vector())
        self._labels.append(best_method)

    @property
    def n_profiles(self) -> int:
        return len(self._labels)

    def recommend(self, db: Database, k: int = 1) -> str:
        if not self._labels:
            raise RuntimeError("AutoCE has no recorded profiles")
        x = np.stack(self._features)
        scale = x.std(axis=0)
        scale[scale < 1e-9] = 1.0
        target = DatasetFeatures.of(db).vector()
        dists = (((x - target) / scale) ** 2).sum(axis=1)
        order = np.argsort(dists)[: max(k, 1)]
        votes: dict[str, int] = {}
        for i in order:
            votes[self._labels[i]] = votes.get(self._labels[i], 0) + 1
        return max(votes, key=lambda m: (votes[m], -self._labels.index(m)))


class EnsembleEstimator(BaseCardinalityEstimator):
    """Ensemble with uncertainty (Fauce [33] / prediction intervals [55]).

    Wraps ``k`` member estimators (typically the same architecture with
    different seeds, already fitted).  The point estimate is the geometric
    mean; :meth:`predict_interval` returns a lognormal-style interval from
    the spread of member log-estimates.
    """

    name = "ensemble"

    def __init__(self, db: Database, members: list) -> None:
        super().__init__(db)
        if not members:
            raise ValueError("ensemble needs at least one member")
        for m in members:
            if not hasattr(m, "estimate"):
                raise TypeError("ensemble members must expose .estimate(query)")
        self.members = list(members)

    def _member_logs(self, query: Query) -> np.ndarray:
        return np.array(
            [math.log1p(max(m.estimate(query), 0.0)) for m in self.members]
        )

    def _estimate(self, query: Query) -> float:
        return float(np.expm1(self._member_logs(query).mean()))

    def uncertainty(self, query: Query) -> float:
        """Std-dev of member log-estimates (0 = full agreement)."""
        return float(self._member_logs(query).std())

    def predict_interval(self, query: Query, z: float = 1.96) -> tuple[float, float]:
        logs = self._member_logs(query)
        mu, sigma = logs.mean(), logs.std()
        return (
            float(max(np.expm1(mu - z * sigma), 0.0)),
            float(np.expm1(mu + z * sigma)),
        )


def flow_loss_weights(
    queries: list[Query],
    optimizer,
    scale: float = math.e,
) -> np.ndarray:
    """Flow-Loss-style training weights [44].

    For each query, measures how sensitive the optimizer's chosen-plan cost
    is to that query's cardinality estimate: the native plan is costed under
    the current estimator and under the estimator with the query's
    cardinalities scaled by ``scale``; the (normalized) absolute log cost
    difference is the weight.  Queries whose estimates cannot change any
    plan decision get weight ~0 -- the "estimates that matter" idea.
    """
    from repro.core.interfaces import ScaledCardinalities  # local: avoid cycle

    weights = np.zeros(len(queries))
    scaled_opt = optimizer.with_estimator(
        ScaledCardinalities(optimizer.estimator, scale)
    )
    for i, q in enumerate(queries):
        base_plan = optimizer.plan(q)
        scaled_plan = scaled_opt.plan(q)
        base_cost = max(optimizer.cost(base_plan), 1e-9)
        # Cost the *changed* decision under the original estimator: if the
        # decision did not change, the weight is zero.
        if scaled_plan.signature() == base_plan.signature():
            weights[i] = 0.0
        else:
            alt_cost = max(optimizer.cost(scaled_plan), 1e-9)
            weights[i] = abs(math.log(alt_cost) - math.log(base_cost))
    total = weights.sum()
    if total <= 0:
        return np.ones(len(queries)) / max(len(queries), 1)
    # Smooth: mix with uniform so zero-sensitivity queries keep some mass.
    mixed = 0.8 * weights / total + 0.2 / max(len(queries), 1)
    return mixed / mixed.sum()
