"""Traditional (non-learned) estimator baselines.

- :class:`HistogramEstimator`: the PostgreSQL-style histogram/MCV +
  independence estimator (thin adapter over
  :class:`repro.optimizer.TraditionalCardinalityEstimator` so it slots into
  the estimator-comparison experiments under a common base class);
- :class:`SamplingEstimator`: independent Bernoulli samples per table;
  queries are answered exactly on the sampled sub-database and scaled by
  the inverse sampling fractions.  Unbiased but with the well-known
  variance blow-up on selective predicates and multi-way joins.

Both support :meth:`estimate_batch` through the base-class fallback: their
cost is histogram lookups / sample execution per query (not featurization
or model forward passes), so there is nothing to amortize across a
workload and the scalar loop is already the fast path.
"""

from __future__ import annotations

import numpy as np

from repro.cardest.base import BaseCardinalityEstimator
from repro.engine.executor import CardinalityExecutor
from repro.optimizer.statistics import DatabaseStats
from repro.optimizer.traditional import TraditionalCardinalityEstimator
from repro.sql.query import Query
from repro.storage.catalog import Database
from repro.storage.table import Column, Table

__all__ = ["HistogramEstimator", "SamplingEstimator"]


class HistogramEstimator(BaseCardinalityEstimator):
    """Histogram + independence baseline (the native optimizer's estimator)."""

    name = "histogram"

    def __init__(self, db: Database, stats: DatabaseStats | None = None) -> None:
        super().__init__(db)
        self._inner = TraditionalCardinalityEstimator(db, stats)

    def _estimate(self, query: Query) -> float:
        return self._inner.estimate(query)


class SamplingEstimator(BaseCardinalityEstimator):
    """Uniform Bernoulli sampling baseline.

    Each table is sampled once at construction with rate
    ``min(1, sample_rows / n_rows)``; estimates run the exact executor on
    the sampled tables and scale by the product of inverse rates of the
    *touched* tables.
    """

    name = "sampling"

    def __init__(
        self, db: Database, sample_rows: int = 500, seed: int = 0
    ) -> None:
        super().__init__(db)
        rng = np.random.default_rng(seed)
        tables = []
        self._rates: dict[str, float] = {}
        for name, table in db.tables.items():
            rate = min(1.0, sample_rows / max(table.n_rows, 1))
            take = rng.random(table.n_rows) < rate
            if not take.any() and table.n_rows > 0:
                take[rng.integers(table.n_rows)] = True
            actual_rate = take.sum() / max(table.n_rows, 1)
            self._rates[name] = float(actual_rate) if actual_rate > 0 else 1.0
            cols = [
                # Key flags are dropped: a sample of a key column is still
                # unique, but appends during drift tests could collide.
                Column(c, table.values(c)[take], is_key=False)
                for c in table.column_names
            ]
            tables.append(Table(name, cols))
        self._sample_db = Database(db.name + "_sample", tables, list(db.joins))
        self._executor = CardinalityExecutor(self._sample_db)

    def _estimate(self, query: Query) -> float:
        sampled = self._executor.cardinality(query)
        scale = 1.0
        for t in query.tables:
            scale /= self._rates[t]
        return sampled * scale

    def resample(self, seed: int) -> "SamplingEstimator":
        """A fresh estimator with a different sample draw."""
        rows = int(
            round(
                self._rates[next(iter(self._rates))]
                * self.db.table(next(iter(self._rates))).n_rows
            )
        )
        return SamplingEstimator(self.db, sample_rows=max(rows, 1), seed=seed)
