"""Query-driven learned cardinality estimators (paper §2.1.1, Table 1).

Supervised models mapping featurized queries to cardinalities:

- :class:`LinearQueryEstimator` -- ridge regression on flat features [36];
- :class:`GBDTQueryEstimator` -- gradient-boosted trees [9, 10];
- :class:`QuickSelEstimator` -- mixture model over query boxes [47];
- :class:`MLPQueryEstimator` -- fully connected network [32];
- :class:`MSCNEstimator` -- multi-set convolutional network [23];
- :class:`RobustMSCNEstimator` -- MSCN with query masking [45];
- :class:`LPCEEstimator` -- initial model + execution-feedback
  refinement [59].

All regress ``log(1 + card)``; :meth:`fit` takes the training workload and
its true cardinalities (collected by executing the workload, which is what
PilotScope's data-collection phase does).
"""

from __future__ import annotations

import numpy as np

from repro.cardest.base import BaseCardinalityEstimator
from repro.cardest.featurize import FlatQueryFeaturizer, MSCNFeaturizer
from repro.cardest.joinutil import UnfilteredJoinSizes, uniform_join_estimate
from repro.ml.gbdt import GradientBoostedTrees
from repro.ml.nn import MLP
from repro.ml.setconv import SetConvNet
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = [
    "LinearQueryEstimator",
    "GBDTQueryEstimator",
    "QuickSelEstimator",
    "MLPQueryEstimator",
    "MSCNEstimator",
    "PooledMSCNEstimator",
    "GLPlusEstimator",
    "CRNEstimator",
    "RobustMSCNEstimator",
    "LPCEEstimator",
]


def _log_card(cards: np.ndarray) -> np.ndarray:
    return np.log1p(np.maximum(np.asarray(cards, dtype=float), 0.0))


class _SupervisedFlatEstimator(BaseCardinalityEstimator):
    """Shared plumbing for estimators on flat feature vectors."""

    def __init__(self, db: Database) -> None:
        super().__init__(db)
        self.featurizer = FlatQueryFeaturizer(db)
        self._fitted = False

    def fit(self, queries: list[Query], cards: np.ndarray) -> "_SupervisedFlatEstimator":
        if len(queries) == 0:
            raise ValueError("training workload is empty")
        x = self.featurizer.featurize_batch(queries)
        y = _log_card(np.asarray(cards))
        self._fit_impl(x, y)
        self._fitted = True
        self._bump_estimates_version()
        return self

    def _fit_impl(self, x: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict_log(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _estimate(self, query: Query) -> float:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__}.estimate called before fit")
        x = self.featurizer.featurize(query)[None, :]
        return float(np.expm1(self._predict_log(x)[0]))

    def _estimate_batch(self, queries: list[Query]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__}.estimate_batch called before fit"
            )
        x = self.featurizer.featurize_batch(queries)
        return np.expm1(self._predict_log(x))


class LinearQueryEstimator(_SupervisedFlatEstimator):
    """Ridge regression on flat query features (Malik et al. [36])."""

    name = "linear"

    def __init__(self, db: Database, l2: float = 1.0) -> None:
        super().__init__(db)
        self.l2 = l2
        self._w: np.ndarray | None = None

    def _fit_impl(self, x: np.ndarray, y: np.ndarray) -> None:
        xb = np.column_stack([x, np.ones(x.shape[0])])
        gram = xb.T @ xb + self.l2 * np.eye(xb.shape[1])
        self._w = np.linalg.solve(gram, xb.T @ y)

    def _predict_log(self, x: np.ndarray) -> np.ndarray:
        assert self._w is not None
        xb = np.column_stack([x, np.ones(x.shape[0])])
        return xb @ self._w


class GBDTQueryEstimator(_SupervisedFlatEstimator):
    """Gradient-boosted trees on flat query features (Dutt et al. [9, 10])."""

    name = "gbdt"

    def __init__(
        self,
        db: Database,
        n_estimators: int = 60,
        max_depth: int = 5,
        learning_rate: float = 0.15,
        seed: int = 0,
    ) -> None:
        super().__init__(db)
        self._model = GradientBoostedTrees(
            n_estimators=n_estimators,
            max_depth=max_depth,
            learning_rate=learning_rate,
            seed=seed,
        )

    def _fit_impl(self, x: np.ndarray, y: np.ndarray) -> None:
        self._model.fit(x, y)

    def _predict_log(self, x: np.ndarray) -> np.ndarray:
        return self._model.predict(x)


class MLPQueryEstimator(_SupervisedFlatEstimator):
    """Fully connected network on flat query features (Liu et al. [32])."""

    name = "mlp"

    def __init__(
        self,
        db: Database,
        hidden: tuple[int, ...] = (64, 64),
        epochs: int = 120,
        lr: float = 2e-3,
        seed: int = 0,
    ) -> None:
        super().__init__(db)
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._model: MLP | None = None

    def _fit_impl(self, x: np.ndarray, y: np.ndarray) -> None:
        self._model = MLP(x.shape[1], self.hidden, 1, seed=self.seed)
        self._model.fit(
            x, y, epochs=self.epochs, lr=self.lr, loss="mse", val_fraction=0.1
        )

    def _predict_log(self, x: np.ndarray) -> np.ndarray:
        assert self._model is not None
        out = self._model.predict(x)
        return np.atleast_1d(out)


class QuickSelEstimator(BaseCardinalityEstimator):
    """Mixture model over training-query boxes (QuickSel [47]).

    Per table, the selectivity function is modelled as a weighted mixture
    of uniform distributions on the training queries' predicate boxes; the
    weights solve a ridge-regularized least-squares system matching the
    observed selectivities (QuickSel's quadratic program with an identity
    trust term).  Join queries compose per-table selectivities under join
    uniformity (see :mod:`repro.cardest.joinutil`).
    """

    name = "quicksel"

    def __init__(self, db: Database, l2: float = 0.05) -> None:
        super().__init__(db)
        self.l2 = l2
        self._featurizer = FlatQueryFeaturizer(db)
        self._join_sizes = UnfilteredJoinSizes(db)
        # per table: (boxes [m, d, 2], weights [m+1], column order)
        self._models: dict[str, tuple[np.ndarray, np.ndarray, list[str]]] = {}

    def _query_box(self, query: Query, table: str, columns: list[str]) -> np.ndarray:
        """Normalized [d, 2] box of the query's predicates on ``table``."""
        box = np.zeros((len(columns), 2))
        box[:, 1] = 1.0
        for pred in query.predicates_on(table):
            c = pred.column.column
            i = columns.index(c)
            lo, hi = pred.to_range()
            lo_n = 0.0 if lo == -np.inf else self._featurizer.index.normalize(table, c, lo)
            hi_n = 1.0 if hi == np.inf else self._featurizer.index.normalize(table, c, hi)
            box[i, 0] = max(box[i, 0], lo_n)
            box[i, 1] = min(box[i, 1], hi_n)
        return box

    @staticmethod
    def _overlap(box_a: np.ndarray, box_b: np.ndarray) -> float:
        """Fraction of box_b's volume inside box_a (uniform mass of b in a)."""
        frac = 1.0
        for d in range(box_a.shape[0]):
            lo = max(box_a[d, 0], box_b[d, 0])
            hi = min(box_a[d, 1], box_b[d, 1])
            width_b = max(box_b[d, 1] - box_b[d, 0], 1e-9)
            frac *= max(hi - lo, 0.0) / width_b
        return frac

    def fit(self, queries: list[Query], cards: np.ndarray) -> "QuickSelEstimator":
        """Fit per-table mixtures from the single-table training queries."""
        cards = np.asarray(cards, dtype=float)
        per_table: dict[str, list[tuple[Query, float]]] = {}
        for q, card in zip(queries, cards):
            if q.n_tables == 1 and q.predicates:
                t = q.tables[0]
                sel = card / max(self.db.table(t).n_rows, 1)
                per_table.setdefault(t, []).append((q, sel))
        for t, pairs in per_table.items():
            columns = [
                c
                for c in self.db.table(t).column_names
                if not self.db.table(t).column(c).is_key
            ]
            boxes = np.stack([self._query_box(q, t, columns) for q, _ in pairs])
            sels = np.array([s for _, s in pairs])
            m = boxes.shape[0]
            # A[i, j]: mass of mixture component j inside query i's box
            # (+ one uniform background component).
            a = np.empty((m, m + 1))
            for i in range(m):
                for j in range(m):
                    a[i, j] = self._overlap(boxes[i], boxes[j])
                a[i, m] = self._overlap(boxes[i], np.column_stack(
                    [np.zeros(boxes.shape[1]), np.ones(boxes.shape[1])]
                ))
            gram = a.T @ a + self.l2 * np.eye(m + 1)
            weights = np.linalg.solve(gram, a.T @ sels)
            self._models[t] = (boxes, weights, columns)
        if not self._models:
            raise ValueError(
                "QuickSel needs single-table training queries with predicates"
            )
        self._bump_estimates_version()
        return self

    def _table_selectivity(self, query: Query, table: str) -> float:
        if not query.predicates_on(table):
            return 1.0
        model = self._models.get(table)
        if model is None:
            return 1.0  # no training data for this table: assume no filter
        boxes, weights, columns = model
        qbox = self._query_box(query, table, columns)
        mass = sum(
            w * self._overlap(qbox, boxes[j]) for j, w in enumerate(weights[:-1])
        )
        mass += weights[-1] * self._overlap(
            qbox, np.column_stack([np.zeros(qbox.shape[0]), np.ones(qbox.shape[0])])
        )
        return float(np.clip(mass, 0.0, 1.0))

    def _estimate(self, query: Query) -> float:
        return uniform_join_estimate(
            query, self._join_sizes, lambda t: self._table_selectivity(query, t)
        )


class MSCNEstimator(BaseCardinalityEstimator):
    """Multi-set convolutional network (Kipf et al. [23])."""

    name = "mscn"

    def __init__(
        self,
        db: Database,
        hidden: int = 64,
        sample_size: int = 64,
        epochs: int = 80,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        super().__init__(db)
        self.featurizer = MSCNFeaturizer(db, sample_size=sample_size, seed=seed)
        self.net = SetConvNet(self.featurizer.module_dims(), hidden=hidden, seed=seed)
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._max_log = 1.0
        self._fitted = False

    def _targets(self, cards: np.ndarray) -> np.ndarray:
        logs = _log_card(cards)
        self._max_log = float(max(logs.max(), 1.0))
        return logs / self._max_log

    def _featurize_training(self, queries: list[Query]) -> list[dict]:
        return [self.featurizer.featurize(q) for q in queries]

    def fit(self, queries: list[Query], cards: np.ndarray) -> "MSCNEstimator":
        if len(queries) == 0:
            raise ValueError("training workload is empty")
        samples = self._featurize_training(queries)
        y = self._targets(np.asarray(cards))
        self.net.fit(samples, y, epochs=self.epochs, lr=self.lr, seed=self.seed)
        self._fitted = True
        self._bump_estimates_version()
        return self

    def _featurize_inference(self, query: Query) -> dict:
        return self.featurizer.featurize(query)

    def _estimate(self, query: Query) -> float:
        if not self._fitted:
            raise RuntimeError("MSCN.estimate called before fit")
        pred = self.net.predict([self._featurize_inference(query)])[0]
        return float(np.expm1(pred * self._max_log))

    def _estimate_batch(self, queries: list[Query]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("MSCN.estimate_batch called before fit")
        batch = self.featurizer.featurize_workload(queries)
        preds = self.net.predict_padded(batch)
        return np.expm1(preds * self._max_log)


class PooledMSCNEstimator(MSCNEstimator):
    """MSCN with max pooling over set elements (Kim et al. [22]).

    [22]'s in-depth study found that replacing average pooling with pooling
    layers that capture only the *strongest* intra-table signals changes
    which correlations the model can express; this variant wires the
    max-pooling option through the set modules.
    """

    name = "pooled_mscn"

    def __init__(self, db: Database, hidden: int = 64, sample_size: int = 64,
                 epochs: int = 80, lr: float = 1e-3, seed: int = 0) -> None:
        BaseCardinalityEstimator.__init__(self, db)
        self.featurizer = MSCNFeaturizer(db, sample_size=sample_size, seed=seed)
        self.net = SetConvNet(
            self.featurizer.module_dims(), hidden=hidden, pooling="max", seed=seed
        )
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._max_log = 1.0
        self._fitted = False


class CRNEstimator(BaseCardinalityEstimator):
    """Containment-rate network (CRN, Hayek & Shmueli [13]).

    CRN learns the *containment rate* between query pairs -- the fraction
    of one query's result tuples that also satisfy another -- and derives
    cardinalities from rates against queries with known cardinalities.

    This implementation keeps that two-step structure: an MLP over
    concatenated flat features of (anchor, query) predicts
    ``|anchor AND query| / |anchor|``; at estimation time the rate against
    a set of known-cardinality *anchor* queries (per table set) converts
    into a cardinality estimate, averaged over anchors.  Training pairs
    and their exact containment labels come from the training workload via
    predicate conjunction.
    """

    name = "crn"

    def __init__(
        self,
        db: Database,
        hidden: tuple[int, ...] = (64, 64),
        epochs: int = 80,
        anchors_per_template: int = 4,
        max_pairs: int = 1500,
        seed: int = 0,
    ) -> None:
        super().__init__(db)
        self.featurizer = FlatQueryFeaturizer(db)
        self.hidden = hidden
        self.epochs = epochs
        self.anchors_per_template = anchors_per_template
        self.max_pairs = max_pairs
        self.seed = seed
        self._net: MLP | None = None
        # template key -> list of (anchor query, its true cardinality)
        self._anchors: dict[tuple, list[tuple[Query, float]]] = {}

    @staticmethod
    def _template_key(query: Query) -> tuple:
        return (query.tables, tuple(str(j) for j in query.joins))

    @staticmethod
    def _conjoin(a: Query, b: Query) -> Query:
        """a AND b (same template): union of predicates."""
        return Query(a.tables, a.joins, tuple(set(a.predicates) | set(b.predicates)))

    def fit(self, queries: list[Query], cards: np.ndarray) -> "CRNEstimator":
        """Build anchors and train the containment-rate network.

        Exact conjunction cardinalities (the labels) come from the data,
        computed with the exact executor -- the same label source CRN's
        training uses.
        """
        from repro.engine.executor import CardinalityExecutor

        cards = np.asarray(cards, dtype=float)
        if len(queries) == 0:
            raise ValueError("training workload is empty")
        executor = CardinalityExecutor(self.db)
        by_template: dict[tuple, list[tuple[Query, float]]] = {}
        for q, c in zip(queries, cards):
            by_template.setdefault(self._template_key(q), []).append((q, float(c)))
        rng = np.random.default_rng(self.seed)
        xs, ys = [], []
        for key, entries in by_template.items():
            # Anchors: the least-selective training queries (largest
            # results make the most informative denominators).
            entries.sort(key=lambda e: -e[1])
            self._anchors[key] = entries[: self.anchors_per_template]
            for anchor, anchor_card in self._anchors[key]:
                if anchor_card <= 0:
                    continue
                for q, _ in entries:
                    if len(xs) >= self.max_pairs:
                        break
                    both = executor.cardinality(self._conjoin(anchor, q))
                    rate = both / anchor_card
                    xs.append(
                        np.concatenate(
                            [self.featurizer.featurize(anchor),
                             self.featurizer.featurize(q)]
                        )
                    )
                    ys.append(rate)
        if not xs:
            raise ValueError("no usable training pairs (all-empty anchors?)")
        x = np.stack(xs)
        y = np.clip(np.array(ys), 0.0, 1.0)
        self._net = MLP(
            x.shape[1], self.hidden, 1, output_activation="sigmoid", seed=self.seed
        )
        self._net.fit(x, y, epochs=self.epochs, lr=2e-3, loss="mse")
        del rng
        self._bump_estimates_version()
        return self

    def _estimate(self, query: Query) -> float:
        if self._net is None:
            raise RuntimeError("CRN.estimate called before fit")
        anchors = self._anchors.get(self._template_key(query))
        if not anchors:
            # Unseen template: no anchor to contain against.  Fall back to
            # the containment against the unfiltered template, whose
            # cardinality is computable exactly.
            from repro.cardest.joinutil import UnfilteredJoinSizes

            sizes = UnfilteredJoinSizes(self.db)
            unfiltered = Query(query.tables, query.joins, ())
            anchors = [(unfiltered, float(sizes.size(query)))]
            self._anchors[self._template_key(query)] = anchors
        estimates = []
        for anchor, anchor_card in anchors:
            pair = np.concatenate(
                [self.featurizer.featurize(anchor), self.featurizer.featurize(query)]
            )
            rate = float(np.clip(self._net.predict(pair[None, :])[0], 0.0, 1.0))
            estimates.append(rate * anchor_card)
        return float(np.mean(estimates))


class RobustMSCNEstimator(MSCNEstimator):
    """MSCN trained with query masking (Negi et al. [45]).

    Random predicate masking and bitmap dropping during training make the
    model robust to workload drift: at inference time unseen-looking
    queries are featurized without sample bitmaps, which [45] shows avoids
    the catastrophic errors vanilla MSCN makes off-distribution.
    """

    name = "robust_mscn"

    def __init__(
        self,
        db: Database,
        mask_rate: float = 0.25,
        train_drop_fraction: float = 0.3,
        **kwargs,
    ) -> None:
        super().__init__(db, **kwargs)
        self.mask_rate = mask_rate
        self.train_drop_fraction = train_drop_fraction
        self._mask_rng = np.random.default_rng(kwargs.get("seed", 0) + 17)

    def _featurize_training(self, queries: list[Query]) -> list[dict]:
        samples = []
        for q in queries:
            drop = self._mask_rng.random() < self.train_drop_fraction
            samples.append(
                self.featurizer.featurize(
                    q,
                    drop_bitmaps=drop,
                    mask_rate=self.mask_rate if drop else 0.0,
                    rng=self._mask_rng,
                )
            )
        return samples

    def _featurize_inference(self, query: Query) -> dict:
        # Masked inference path: rely on schema features only, which
        # generalizes across distribution shift.
        return self.featurizer.featurize(query, drop_bitmaps=False)

    def estimate_masked(self, query: Query) -> float:
        """Estimate with bitmaps dropped (the drifted-workload path)."""
        if not self._fitted:
            raise RuntimeError("estimate_masked called before fit")
        sample = self.featurizer.featurize(query, drop_bitmaps=True)
        pred = self.net.predict([sample])[0]
        upper = 1.0
        for t in query.tables:
            upper *= max(self.db.table(t).n_rows, 1)
        return float(min(max(np.expm1(pred * self._max_log), 0.0), upper))


class GLPlusEstimator(BaseCardinalityEstimator):
    """Segmented deep estimation (GL+ [52] -- lite).

    GL+ "integrates DNNs with segmentation techniques to resolve the data
    hungry problem": instead of one global model starving on a small
    workload, the query space is segmented and a small local model serves
    each segment, with a global model as fallback.  Here segmentation is
    k-means over flat query features; each segment with enough members
    gets its own MLP, others fall through to the global MLP.
    """

    name = "gl_plus"

    def __init__(
        self,
        db: Database,
        n_segments: int = 4,
        min_segment_size: int = 30,
        hidden: tuple[int, ...] = (48,),
        epochs: int = 80,
        seed: int = 0,
    ) -> None:
        super().__init__(db)
        self.featurizer = FlatQueryFeaturizer(db)
        self.n_segments = n_segments
        self.min_segment_size = min_segment_size
        self.hidden = hidden
        self.epochs = epochs
        self.seed = seed
        self._kmeans = None
        self._global: MLP | None = None
        self._local: dict[int, MLP] = {}

    def fit(self, queries: list[Query], cards: np.ndarray) -> "GLPlusEstimator":
        from repro.ml.cluster import KMeans

        if len(queries) == 0:
            raise ValueError("training workload is empty")
        x = self.featurizer.featurize_batch(queries)
        y = _log_card(np.asarray(cards))
        self._global = MLP(x.shape[1], self.hidden, 1, seed=self.seed)
        self._global.fit(x, y, epochs=self.epochs, lr=2e-3)
        k = min(self.n_segments, x.shape[0])
        self._kmeans = KMeans(n_clusters=k, seed=self.seed).fit(x)
        labels = self._kmeans.labels_
        self._local = {}
        for seg in range(k):
            members = labels == seg
            if members.sum() >= self.min_segment_size:
                local = MLP(x.shape[1], self.hidden, 1, seed=self.seed + seg + 1)
                local.fit(x[members], y[members], epochs=self.epochs, lr=2e-3)
                self._local[seg] = local
        self._bump_estimates_version()
        return self

    @property
    def n_local_models(self) -> int:
        return len(self._local)

    def _estimate(self, query: Query) -> float:
        if self._global is None or self._kmeans is None:
            raise RuntimeError("GL+.estimate called before fit")
        x = self.featurizer.featurize(query)[None, :]
        seg = int(self._kmeans.predict(x)[0])
        model = self._local.get(seg, self._global)
        return float(np.expm1(np.atleast_1d(model.predict(x))[0]))

    def _estimate_batch(self, queries: list[Query]) -> np.ndarray:
        if self._global is None or self._kmeans is None:
            raise RuntimeError("GL+.estimate_batch called before fit")
        x = self.featurizer.featurize_batch(queries)
        segs = self._kmeans.predict(x)
        out = np.empty(len(queries))
        for seg in np.unique(segs):
            members = segs == seg
            model = self._local.get(int(seg), self._global)
            out[members] = np.atleast_1d(model.predict(x[members]))
        return np.expm1(out)


class LPCEEstimator(BaseCardinalityEstimator):
    """Progressive cardinality estimation (LPCE [59]).

    An *initial* model (MLP on flat features) answers before execution; a
    *refinement* stage consumes the true cardinalities of executed
    (sub-)queries via :meth:`observe`: exact matches are answered from the
    feedback cache, and a residual-correction GBDT retrains periodically on
    the accumulated feedback to shift the initial model's bias.
    """

    name = "lpce"

    def __init__(
        self, db: Database, refit_every: int = 50, seed: int = 0
    ) -> None:
        super().__init__(db)
        self._initial = MLPQueryEstimator(db, seed=seed)
        self._cache: dict[str, float] = {}
        self._feedback: list[tuple[Query, float]] = []
        self._correction: GradientBoostedTrees | None = None
        self.refit_every = refit_every
        self._since_refit = 0
        self.seed = seed

    def fit(self, queries: list[Query], cards: np.ndarray) -> "LPCEEstimator":
        self._initial.fit(queries, cards)
        self._bump_estimates_version()
        return self

    def observe(self, query: Query, true_card: float) -> None:
        """Feed back the true cardinality of an executed (sub-)query."""
        self._cache[query.cache_key] = float(true_card)
        self._feedback.append((query, float(true_card)))
        self._since_refit += 1
        if self._since_refit >= self.refit_every:
            self._refit_correction()
            self._since_refit = 0
        self._bump_estimates_version()

    def _refit_correction(self) -> None:
        if len(self._feedback) < 10:
            return
        queries = [q for q, _ in self._feedback]
        x = self._initial.featurizer.featurize_batch(queries)
        initial_log = self._initial._predict_log(x)
        true_log = _log_card(np.array([c for _, c in self._feedback]))
        residual = true_log - initial_log
        self._correction = GradientBoostedTrees(
            n_estimators=40, max_depth=4, seed=self.seed
        ).fit(x, residual)

    def _estimate(self, query: Query) -> float:
        hit = self._cache.get(query.cache_key)
        if hit is not None:
            return hit
        x = self._initial.featurizer.featurize(query)[None, :]
        log_est = self._initial._predict_log(x)
        if self._correction is not None:
            log_est = log_est + self._correction.predict(x)
        return float(np.expm1(log_est[0]))

    def _estimate_batch(self, queries: list[Query]) -> np.ndarray:
        out = np.empty(len(queries))
        miss_idx: list[int] = []
        misses: list[Query] = []
        for i, q in enumerate(queries):
            hit = self._cache.get(q.cache_key)
            if hit is not None:
                out[i] = hit
            else:
                miss_idx.append(i)
                misses.append(q)
        if misses:
            x = self._initial.featurizer.featurize_batch(misses)
            log_est = self._initial._predict_log(x)
            if self._correction is not None:
                log_est = log_est + self._correction.predict(x)
            out[miss_idx] = np.expm1(log_est)
        return out
