"""String-predicate cardinality estimation (Astrid [48] -- lite).

The tutorial notes that Astrid "applies natural language processing
techniques with deep models to learn cardinality of queries with string
predicates".  The core engine of this repository is numeric (like the
coded benchmark schemas), so this module ships its own small string
substrate -- a string column type, LIKE-style predicates with exact
counting, and a synthetic-name generator -- plus the learned estimator:

- patterns are featurized as hashed character n-gram count vectors (the
  NLP front-end; Astrid's learned embeddings reduced to their fixed
  n-gram basis at this scale);
- an MLP regresses ``log(1 + count)`` from the n-gram vector plus the
  match-kind one-hot (prefix / suffix / substring / exact).

Training patterns are sampled from the column's own substrings, which is
also how Astrid builds its workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.ml.nn import MLP

__all__ = [
    "StringMatchKind",
    "StringPredicate",
    "StringColumn",
    "generate_names",
    "AstridEstimator",
]


class StringMatchKind(Enum):
    PREFIX = "prefix"  # LIKE 'abc%'
    SUFFIX = "suffix"  # LIKE '%abc'
    SUBSTRING = "substring"  # LIKE '%abc%'
    EXACT = "exact"  # = 'abc'


@dataclass(frozen=True)
class StringPredicate:
    """A LIKE-style predicate on a string column."""

    kind: StringMatchKind
    pattern: str

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("empty string pattern")

    def matches(self, value: str) -> bool:
        if self.kind is StringMatchKind.PREFIX:
            return value.startswith(self.pattern)
        if self.kind is StringMatchKind.SUFFIX:
            return value.endswith(self.pattern)
        if self.kind is StringMatchKind.SUBSTRING:
            return self.pattern in value
        return value == self.pattern


class StringColumn:
    """A column of strings with exact predicate counting."""

    def __init__(self, name: str, values: list[str]) -> None:
        if not values:
            raise ValueError(f"string column {name!r} is empty")
        self.name = name
        self.values = list(values)

    @property
    def n_rows(self) -> int:
        return len(self.values)

    def count(self, pred: StringPredicate) -> int:
        """Exact COUNT(*) of rows matching the predicate."""
        return sum(1 for v in self.values if pred.matches(v))

    def sample_patterns(
        self,
        n: int,
        rng: np.random.Generator,
        min_len: int = 2,
        max_len: int = 6,
    ) -> list[StringPredicate]:
        """Patterns drawn from the data's own substrings (non-vacuous)."""
        kinds = list(StringMatchKind)
        out: list[StringPredicate] = []
        while len(out) < n:
            value = self.values[rng.integers(self.n_rows)]
            kind = kinds[rng.integers(len(kinds))]
            if kind is StringMatchKind.EXACT:
                out.append(StringPredicate(kind, value))
                continue
            if len(value) < min_len:
                continue
            length = int(rng.integers(min_len, min(max_len, len(value)) + 1))
            if kind is StringMatchKind.PREFIX:
                out.append(StringPredicate(kind, value[:length]))
            elif kind is StringMatchKind.SUFFIX:
                out.append(StringPredicate(kind, value[-length:]))
            else:
                start = int(rng.integers(0, len(value) - length + 1))
                out.append(StringPredicate(kind, value[start : start + length]))
        return out


_SYLLABLES = [
    "an", "ber", "cor", "dan", "el", "fin", "gra", "har", "in", "jo",
    "kar", "lin", "mor", "nor", "ol", "pet", "qui", "ros", "son", "tor",
    "ul", "vin", "wil", "xen", "yor", "zan",
]


def generate_names(n: int, seed: int = 0, max_syllables: int = 3) -> list[str]:
    """Synthetic name-like strings with realistic substring frequencies
    (Zipf-weighted syllables compose into skewed n-gram statistics)."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(_SYLLABLES) + 1, dtype=float)
    probs = ranks**-1.1
    probs /= probs.sum()
    names = []
    for _ in range(n):
        k = int(rng.integers(1, max_syllables + 1))
        parts = rng.choice(len(_SYLLABLES), size=k, p=probs)
        names.append("".join(_SYLLABLES[i] for i in parts))
    return names


class AstridEstimator:
    """Learned string-predicate selectivity (Astrid-lite)."""

    name = "astrid"

    def __init__(
        self,
        column: StringColumn,
        *,
        ngram: int = 3,
        feature_dim: int = 128,
        hidden: tuple[int, ...] = (64, 64),
        epochs: int = 120,
        seed: int = 0,
    ) -> None:
        self.column = column
        self.ngram = ngram
        self.feature_dim = feature_dim
        self.hidden = hidden
        self.epochs = epochs
        self.seed = seed
        self._net: MLP | None = None
        self._kinds = list(StringMatchKind)

    # -- featurization ---------------------------------------------------------------

    def _featurize(self, pred: StringPredicate) -> np.ndarray:
        vec = np.zeros(self.feature_dim + len(self._kinds) + 2)
        padded = f"^{pred.pattern}$"
        for i in range(max(len(padded) - self.ngram + 1, 1)):
            gram = padded[i : i + self.ngram]
            vec[hash(gram) % self.feature_dim] += 1.0
        vec[self.feature_dim + self._kinds.index(pred.kind)] = 1.0
        vec[-2] = len(pred.pattern) / 12.0
        vec[-1] = 1.0  # bias-ish slot
        return vec

    # -- training ----------------------------------------------------------------------

    def fit(
        self, patterns: list[StringPredicate] | None = None, n_train: int = 400
    ) -> "AstridEstimator":
        """Train on given patterns or on sampled data substrings."""
        rng = np.random.default_rng(self.seed)
        if patterns is None:
            patterns = self.column.sample_patterns(n_train, rng)
        if not patterns:
            raise ValueError("no training patterns")
        x = np.stack([self._featurize(p) for p in patterns])
        y = np.log1p(np.array([self.column.count(p) for p in patterns], dtype=float))
        self._net = MLP(x.shape[1], self.hidden, 1, seed=self.seed)
        self._net.fit(x, y, epochs=self.epochs, lr=2e-3, val_fraction=0.1)
        return self

    def estimate(self, pred: StringPredicate) -> float:
        """Estimated match count for the predicate."""
        if self._net is None:
            raise RuntimeError("estimate called before fit")
        raw = float(np.expm1(self._net.predict(self._featurize(pred)[None, :])[0]))
        return float(min(max(raw, 0.0), self.column.n_rows))

    def q_error(self, pred: StringPredicate) -> float:
        est = max(self.estimate(pred), 1.0)
        true = max(self.column.count(pred), 1)
        return max(est / true, true / est)
