"""Sum-product network estimators: DeepDB's SPN [17] and FLAT's FSPN [81].

Structure learning follows DeepDB's recipe:

- **product nodes** split columns into (nearly) independent groups, found
  as connected components of the thresholded pairwise-correlation graph;
- **sum nodes** split rows by k-means clustering when columns stay
  dependent;
- **leaves** are per-column smoothed histograms.

The FSPN variant adds **factorize leaves**: when a column pair remains
highly correlated it is modelled by its exact joint (2-D) histogram instead
of forcing further row splits -- FLAT's key idea of separating highly and
weakly correlated attributes.

Probability of a predicate box is computed by a single bottom-up pass, so
estimation is deterministic and fast.  Joins compose under join uniformity
via :class:`repro.cardest.datadriven.PerTableModelEstimator`.
"""

from __future__ import annotations

import numpy as np

from repro.cardest.base import BaseCardinalityEstimator
from repro.cardest.binning import DiscretizedTable, predicate_bins
from repro.cardest.joinutil import UnfilteredJoinSizes, uniform_join_estimate
from repro.ml.cluster import KMeans
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["SPNEstimator", "FSPNEstimator"]


class _Node:
    def probability(self, allowed: list[np.ndarray | None]) -> float:
        raise NotImplementedError

    def n_nodes(self) -> int:
        return 1


class _LeafHistogram(_Node):
    """Smoothed histogram over one column."""

    def __init__(self, codes: np.ndarray, col: int, domain: int, alpha: float) -> None:
        self.col = col
        counts = np.bincount(codes, minlength=domain).astype(float)
        self.probs = (counts + alpha) / (counts.sum() + alpha * domain)

    def probability(self, allowed: list[np.ndarray | None]) -> float:
        bins = allowed[self.col]
        if bins is None:
            return 1.0
        return float(self.probs[bins].sum())


class _LeafJoint(_Node):
    """Exact joint histogram over a highly-correlated column pair (FSPN
    factorize leaf)."""

    def __init__(
        self,
        codes_a: np.ndarray,
        codes_b: np.ndarray,
        col_a: int,
        col_b: int,
        dom_a: int,
        dom_b: int,
        alpha: float,
    ) -> None:
        self.col_a, self.col_b = col_a, col_b
        joint = np.zeros((dom_a, dom_b))
        np.add.at(joint, (codes_a, codes_b), 1.0)
        joint += alpha / (dom_a * dom_b)
        self.joint = joint / joint.sum()

    def probability(self, allowed: list[np.ndarray | None]) -> float:
        a_bins = allowed[self.col_a]
        b_bins = allowed[self.col_b]
        rows = self.joint if a_bins is None else self.joint[a_bins, :]
        sub = rows if b_bins is None else rows[:, b_bins]
        return float(sub.sum())


class _ProductNode(_Node):
    def __init__(self, children: list[_Node]) -> None:
        self.children = children

    def probability(self, allowed: list[np.ndarray | None]) -> float:
        p = 1.0
        for child in self.children:
            p *= child.probability(allowed)
        return p

    def n_nodes(self) -> int:
        return 1 + sum(c.n_nodes() for c in self.children)


class _SumNode(_Node):
    def __init__(self, weights: np.ndarray, children: list[_Node]) -> None:
        self.weights = weights
        self.children = children

    def probability(self, allowed: list[np.ndarray | None]) -> float:
        return float(
            sum(w * c.probability(allowed) for w, c in zip(self.weights, self.children))
        )

    def n_nodes(self) -> int:
        return 1 + sum(c.n_nodes() for c in self.children)


def _correlation_components(
    codes: np.ndarray, cols: list[int], threshold: float
) -> list[list[int]]:
    """Connected components of the |corr| > threshold graph over ``cols``."""
    k = len(cols)
    adj = [[False] * k for _ in range(k)]
    stds = codes[:, cols].std(axis=0)
    for i in range(k):
        for j in range(i + 1, k):
            if stds[i] < 1e-9 or stds[j] < 1e-9:
                continue
            corr = np.corrcoef(codes[:, cols[i]], codes[:, cols[j]])[0, 1]
            if abs(corr) > threshold:
                adj[i][j] = adj[j][i] = True
    seen = [False] * k
    components: list[list[int]] = []
    for start in range(k):
        if seen[start]:
            continue
        stack, comp = [start], []
        seen[start] = True
        while stack:
            cur = stack.pop()
            comp.append(cols[cur])
            for nxt in range(k):
                if adj[cur][nxt] and not seen[nxt]:
                    seen[nxt] = True
                    stack.append(nxt)
        components.append(sorted(comp))
    return components


class _SPNBuilder:
    """Recursive DeepDB-style structure learner."""

    def __init__(
        self,
        disc: DiscretizedTable,
        *,
        corr_threshold: float,
        factorize_threshold: float | None,
        min_rows: int,
        max_depth: int,
        alpha: float,
        seed: int,
    ) -> None:
        self.disc = disc
        self.corr_threshold = corr_threshold
        self.factorize_threshold = factorize_threshold
        self.min_rows = min_rows
        self.max_depth = max_depth
        self.alpha = alpha
        self.seed = seed

    def build(self, rows: np.ndarray, cols: list[int], depth: int = 0) -> _Node:
        codes = self.disc.codes
        if len(cols) == 1:
            col = cols[0]
            return _LeafHistogram(
                codes[rows, col], col, self.disc.domain_sizes[col], self.alpha
            )
        if (
            self.factorize_threshold is not None
            and len(cols) == 2
            and self._pair_correlation(rows, cols) > self.factorize_threshold
        ):
            a, b = cols
            return _LeafJoint(
                codes[rows, a],
                codes[rows, b],
                a,
                b,
                self.disc.domain_sizes[a],
                self.disc.domain_sizes[b],
                self.alpha,
            )
        components = _correlation_components(
            codes[rows], list(range(len(cols))), self.corr_threshold
        )
        # _correlation_components works on positional indices; map back.
        components = [[cols[i] for i in comp] for comp in components]
        if len(components) > 1:
            return _ProductNode(
                [self.build(rows, comp, depth + 1) for comp in components]
            )
        if rows.shape[0] < self.min_rows or depth >= self.max_depth:
            # Give up on dependence: naive factorization (or a joint leaf
            # for pairs in FSPN mode).
            if self.factorize_threshold is not None and len(cols) == 2:
                a, b = cols
                return _LeafJoint(
                    codes[rows, a], codes[rows, b], a, b,
                    self.disc.domain_sizes[a], self.disc.domain_sizes[b], self.alpha,
                )
            return _ProductNode([self.build(rows, [c], depth + 1) for c in cols])
        # Sum node: split rows by k-means on the (binned) column values.
        km = KMeans(n_clusters=2, seed=self.seed + depth)
        labels = km.fit(codes[rows][:, cols].astype(float)).labels_
        children, weights = [], []
        for k in range(2):
            members = rows[labels == k]
            if members.shape[0] == 0:
                continue
            children.append(self.build(members, cols, depth + 1))
            weights.append(members.shape[0] / rows.shape[0])
        if len(children) == 1:
            return children[0]
        return _SumNode(np.array(weights), children)

    def _pair_correlation(self, rows: np.ndarray, cols: list[int]) -> float:
        a = self.disc.codes[rows, cols[0]]
        b = self.disc.codes[rows, cols[1]]
        if a.std() < 1e-9 or b.std() < 1e-9:
            return 0.0
        return abs(float(np.corrcoef(a, b)[0, 1]))


class _SPNFamilyEstimator(BaseCardinalityEstimator):
    """Shared per-table SPN plumbing (join-uniformity composition)."""

    _factorize_threshold: float | None = None

    def __init__(
        self,
        db: Database,
        max_bins: int = 32,
        corr_threshold: float = 0.3,
        min_rows: int = 200,
        max_depth: int = 6,
        alpha: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__(db)
        self.max_bins = max_bins
        self.corr_threshold = corr_threshold
        self.min_rows = min_rows
        self.max_depth = max_depth
        self.alpha = alpha
        self.seed = seed
        self._join_sizes = UnfilteredJoinSizes(db)
        self._models: dict[str, tuple[DiscretizedTable, _Node]] = {}
        self._build_all()

    def _build_all(self) -> None:
        for name in self.db.table_names:
            tbl = self.db.table(name)
            columns = [c for c in tbl.column_names if not tbl.column(c).is_key]
            if not columns:
                columns = tbl.column_names[:1]
            disc = DiscretizedTable.build(tbl, max_bins=self.max_bins, columns=columns)
            builder = _SPNBuilder(
                disc,
                corr_threshold=self.corr_threshold,
                factorize_threshold=self._factorize_threshold,
                min_rows=self.min_rows,
                max_depth=self.max_depth,
                alpha=self.alpha,
                seed=self.seed,
            )
            root = builder.build(
                np.arange(disc.codes.shape[0]), list(range(len(disc.column_names)))
            )
            self._models[name] = (disc, root)

    def refresh(self) -> None:
        """Rebuild from current data (drift recovery)."""
        self._join_sizes.invalidate()
        self._build_all()

    def structure_size(self, table: str) -> int:
        """Node count of the learned network (structure diagnostics)."""
        return self._models[table][1].n_nodes()

    def _table_selectivity(self, query: Query, table: str) -> float:
        preds = query.predicates_on(table)
        if not preds:
            return 1.0
        disc, root = self._models[table]
        usable = tuple(p for p in preds if p.column.column in disc.column_names)
        if not usable:
            return 1.0
        allowed, correction = predicate_bins(disc, usable)
        for bins in allowed:
            if bins is not None and bins.size == 0:
                return 0.0
        return root.probability(allowed) * correction

    def _estimate(self, query: Query) -> float:
        return uniform_join_estimate(
            query, self._join_sizes, lambda t: self._table_selectivity(query, t)
        )


class SPNEstimator(_SPNFamilyEstimator):
    """DeepDB-style sum-product network estimator [17]."""

    name = "spn"
    _factorize_threshold = None


class FSPNEstimator(_SPNFamilyEstimator):
    """FLAT's FSPN [81]: SPN + joint-histogram factorize leaves for highly
    correlated column pairs."""

    name = "fspn"
    _factorize_threshold = 0.6

    def __init__(self, db: Database, factorize_threshold: float = 0.6, **kwargs) -> None:
        self._factorize_threshold = factorize_threshold
        super().__init__(db, **kwargs)
