"""Learned cardinality estimators -- the methods of the paper's Table 1.

Three families, as the tutorial categorizes them (§2.1.1):

- **query-driven** (:mod:`repro.cardest.querydriven`): supervised models
  mapping featurized queries to cardinalities -- linear [36], GBDT [9, 10],
  QuickSel mixtures [47], MLP [32], MSCN [23], Robust-MSCN [45], LPCE [59];
- **data-driven** (:mod:`repro.cardest.datadriven`): unsupervised models of
  the joint data distribution -- KDE [14, 21], Naru/NeuroCard
  autoregressive [71, 70], Bayesian networks [57, 65], SPN/FSPN [17, 81],
  FactorJoin [64];
- **hybrid** (:mod:`repro.cardest.hybrid`): both -- UAE [63], GLUE [82],
  ALECE [30].

Plus the traditional baselines (:mod:`repro.cardest.traditional`) and the
extension utilities of §2.1.1 (:mod:`repro.cardest.advisor`): the AutoCE
model advisor [74], Flow-Loss-style sample weighting [44] and
ensemble-based prediction intervals [33, 55].

Every estimator implements ``estimate(query) -> float`` and the supervised
ones add ``fit(queries, cards)``; all are interchangeable inside
:class:`repro.optimizer.Optimizer`.
"""

from repro.cardest.base import (
    BaseCardinalityEstimator,
    q_error,
    sanitize_bound,
    sanitize_estimate,
    sanitize_estimates,
)
from repro.cardest.bounds import (
    AGMSketchBoundEstimator,
    BoundSketch,
    BoundSketchEstimator,
    MCVJoinBoundEstimator,
)
from repro.cardest.traditional import HistogramEstimator, SamplingEstimator
from repro.cardest.querydriven import (
    CRNEstimator,
    GLPlusEstimator,
    GBDTQueryEstimator,
    LinearQueryEstimator,
    LPCEEstimator,
    MLPQueryEstimator,
    MSCNEstimator,
    PooledMSCNEstimator,
    QuickSelEstimator,
    RobustMSCNEstimator,
)
from repro.cardest.datadriven import (
    BayesNetEstimator,
    FactorJoinEstimator,
    FSPNEstimator,
    JoinKDEEstimator,
    KDEEstimator,
    NaruEstimator,
    NeuroCardEstimator,
    SPNEstimator,
)
from repro.cardest.hybrid import ALECEEstimator, GLUEEstimator, UAEEstimator
from repro.cardest.advisor import (
    AutoCE,
    EnsembleEstimator,
    flow_loss_weights,
)
from repro.cardest.drift import DDUpDetector, DriftReport, Warper

__all__ = [
    "AGMSketchBoundEstimator",
    "BaseCardinalityEstimator",
    "BoundSketch",
    "BoundSketchEstimator",
    "MCVJoinBoundEstimator",
    "q_error",
    "sanitize_bound",
    "sanitize_estimate",
    "sanitize_estimates",
    "HistogramEstimator",
    "SamplingEstimator",
    "LinearQueryEstimator",
    "GBDTQueryEstimator",
    "QuickSelEstimator",
    "MLPQueryEstimator",
    "MSCNEstimator",
    "PooledMSCNEstimator",
    "CRNEstimator",
    "GLPlusEstimator",
    "RobustMSCNEstimator",
    "LPCEEstimator",
    "KDEEstimator",
    "JoinKDEEstimator",
    "NaruEstimator",
    "NeuroCardEstimator",
    "BayesNetEstimator",
    "SPNEstimator",
    "FSPNEstimator",
    "FactorJoinEstimator",
    "UAEEstimator",
    "GLUEEstimator",
    "ALECEEstimator",
    "AutoCE",
    "EnsembleEstimator",
    "flow_loss_weights",
    "DDUpDetector",
    "DriftReport",
    "Warper",
]
