"""Base class and shared utilities for cardinality estimators."""

from __future__ import annotations

import numpy as np

from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["BaseCardinalityEstimator", "q_error", "q_error_summary"]


def q_error(estimate: float, true: float) -> float:
    """The standard q-error metric ``max(est/true, true/est)``.

    Both sides are floored at 1 (the usual convention) so empty results and
    zero estimates do not produce infinities.
    """
    est = max(float(estimate), 1.0)
    tru = max(float(true), 1.0)
    return max(est / tru, tru / est)


def q_error_summary(
    estimates: np.ndarray, truths: np.ndarray
) -> dict[str, float]:
    """Q-error quantiles in the shape the benchmark papers report."""
    estimates = np.asarray(estimates, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if estimates.shape != truths.shape:
        raise ValueError("estimates/truths length mismatch")
    if estimates.size == 0:
        raise ValueError("empty evaluation set")
    errs = np.array([q_error(e, t) for e, t in zip(estimates, truths)])
    return {
        "p50": float(np.percentile(errs, 50)),
        "p90": float(np.percentile(errs, 90)),
        "p99": float(np.percentile(errs, 99)),
        "max": float(errs.max()),
        "gmq": float(np.exp(np.log(errs).mean())),  # geometric mean q-error
    }


class BaseCardinalityEstimator:
    """Common base: clamping, naming and the estimator protocol.

    Subclasses implement :meth:`_estimate`; :meth:`estimate` clamps the
    result into ``[0, upper_bound]`` where the upper bound is the product of
    the (unfiltered) table sizes -- no valid SPJ result can exceed it.
    """

    name: str = "base"

    def __init__(self, db: Database) -> None:
        self.db = db

    def _estimate(self, query: Query) -> float:
        raise NotImplementedError

    def estimate(self, query: Query) -> float:
        upper = 1.0
        for t in query.tables:
            upper *= max(self.db.table(t).n_rows, 1)
        value = self._estimate(query)
        if not np.isfinite(value):
            value = upper
        return float(min(max(value, 0.0), upper))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
