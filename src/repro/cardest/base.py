"""Base class and shared utilities for cardinality estimators."""

from __future__ import annotations

import numpy as np

from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = [
    "BaseCardinalityEstimator",
    "q_error",
    "q_error_summary",
    "sanitize_bound",
    "sanitize_estimate",
    "sanitize_estimates",
]

#: Stand-in upper bound when the caller cannot provide one: large enough to
#: never clip a legitimate estimate, small enough to keep cost arithmetic
#: finite.  Shared by the scalar and batched sanitizers.
NONFINITE_FALLBACK = 1e30


def sanitize_estimate(value: float, upper: float | None = None) -> float:
    """The one place pathological cardinality estimates become safe numbers.

    NaN and +/-Inf map to ``upper`` (the caller's no-valid-result-exceeds-it
    bound) or :data:`NONFINITE_FALLBACK` when no bound is known; negative
    values clamp to 0; finite values clamp into ``[0, upper]``.  Every code
    path that consumes raw estimator output -- the estimator base class, the
    plan coster, the cardinality-injection driver -- routes through here, so
    a broken learned model can skew plans but can never poison cost
    arithmetic with non-finite values.
    """
    value = float(value)
    bound = NONFINITE_FALLBACK if upper is None else float(upper)
    if not np.isfinite(value):
        return bound
    return min(max(value, 0.0), bound)


def sanitize_bound(value: float, cross_product: float) -> float:
    """Sanitize an *upper bound* -- the dual of :func:`sanitize_estimate`.

    Point-estimate semantics are wrong for bounds: mapping a poisoned
    bound to a small number (or leaving it NaN, which every ``>``
    comparison answers False for) silently disables any guard comparing
    estimates against it.  A bound that is non-finite, negative or
    otherwise unusable must instead *widen* to the one bound that is
    always sound -- the unfiltered cross product -- and a finite bound is
    capped at it (the cross product is sound, so the min of the two still
    is).  Used by :class:`repro.faults.BoundGuard` so fault-injected
    ``nan``/``inf`` bound outputs degrade to "loose", never to "off".
    """
    cross = float(cross_product)
    try:
        value = float(value)
    except (TypeError, ValueError):
        return cross
    if not np.isfinite(value) or value < 0:
        return cross
    return min(value, cross)


def sanitize_estimates(
    values: np.ndarray, uppers: np.ndarray | float | None = None
) -> np.ndarray:
    """Vectorized :func:`sanitize_estimate` for the batched pipeline."""
    values = np.asarray(values, dtype=float)
    bounds = (
        np.full(values.shape, NONFINITE_FALLBACK)
        if uppers is None
        else np.broadcast_to(np.asarray(uppers, dtype=float), values.shape)
    )
    # Per-element ``None`` uppers arrive as NaN: an unknown bound means
    # "no bound", not a poisoned one.
    bounds = np.where(np.isfinite(bounds), bounds, NONFINITE_FALLBACK)
    values = np.where(np.isfinite(values), values, bounds)
    return np.clip(values, 0.0, bounds)


def q_error(estimate: float, true: float) -> float:
    """The standard q-error metric ``max(est/true, true/est)``.

    Both sides are floored at 1 (the usual convention) so empty results and
    zero estimates do not produce infinities.
    """
    est = max(float(estimate), 1.0)
    tru = max(float(true), 1.0)
    return max(est / tru, tru / est)


def q_error_summary(
    estimates: np.ndarray, truths: np.ndarray
) -> dict[str, float]:
    """Q-error quantiles in the shape the benchmark papers report."""
    estimates = np.asarray(estimates, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if estimates.shape != truths.shape:
        raise ValueError("estimates/truths length mismatch")
    if estimates.size == 0:
        raise ValueError("empty evaluation set")
    errs = np.array([q_error(e, t) for e, t in zip(estimates, truths)])
    return {
        "p50": float(np.percentile(errs, 50)),
        "p90": float(np.percentile(errs, 90)),
        "p99": float(np.percentile(errs, 99)),
        "max": float(errs.max()),
        "gmq": float(np.exp(np.log(errs).mean())),  # geometric mean q-error
    }


class BaseCardinalityEstimator:
    """Common base: clamping, naming and the estimator protocol.

    Subclasses implement :meth:`_estimate`; :meth:`estimate` clamps the
    result into ``[0, upper_bound]`` where the upper bound is the product of
    the (unfiltered) table sizes -- no valid SPJ result can exceed it.

    **Batched inference.**  :meth:`estimate_batch` answers a whole workload
    at once.  The default :meth:`_estimate_batch` loops over
    :meth:`_estimate` (so every estimator supports the API); model-backed
    estimators override it to featurize the workload into one matrix and
    run a single forward pass, which is 5-30x faster than per-query calls.
    Clamping is applied vectorized either way, with the same semantics as
    the scalar path.

    **Estimate versioning.**  ``estimates_version`` increments whenever the
    estimator's answers may change (refit, refresh, execution feedback).
    The planner's :class:`repro.optimizer.CardinalityCache` includes it in
    cache keys so stale entries are never served.
    """

    name: str = "base"

    def __init__(self, db: Database) -> None:
        self.db = db
        self._estimates_version = 0

    @property
    def estimates_version(self) -> int:
        return getattr(self, "_estimates_version", 0)

    def _bump_estimates_version(self) -> None:
        self._estimates_version = self.estimates_version + 1

    def _upper_bound(self, query: Query) -> float:
        upper = 1.0
        for t in query.tables:
            upper *= max(self.db.table(t).n_rows, 1)
        return upper

    def _estimate(self, query: Query) -> float:
        raise NotImplementedError

    def estimate(self, query: Query) -> float:
        return sanitize_estimate(self._estimate(query), self._upper_bound(query))

    def _estimate_batch(self, queries: list[Query]) -> np.ndarray:
        """Raw batch estimates; the fallback loops the scalar hook."""
        return np.array([self._estimate(q) for q in queries], dtype=float)

    def estimate_batch(self, queries: list[Query]) -> np.ndarray:
        """Estimated COUNT(*) of every query, as one array.

        Equivalent to ``[self.estimate(q) for q in queries]`` (bit-for-bit
        up to floating-point association in batched matrix products), but
        batched implementations pay featurization + one model forward pass
        for the whole workload instead of per query.
        """
        queries = list(queries)
        if not queries:
            return np.zeros(0)
        values = np.asarray(self._estimate_batch(queries), dtype=float)
        if values.shape != (len(queries),):
            raise RuntimeError(
                f"{type(self).__name__}._estimate_batch returned shape "
                f"{values.shape} for {len(queries)} queries"
            )
        rows = {name: max(t.n_rows, 1) for name, t in self.db.tables.items()}
        uppers = np.empty(len(queries))
        for i, q in enumerate(queries):
            u = 1.0
            for t in q.tables:
                u *= rows[t]
            uppers[i] = u
        return sanitize_estimates(values, uppers)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
