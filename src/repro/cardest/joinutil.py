"""Join-composition helpers shared by the per-table estimators.

Several data-driven estimators (QuickSel, KDE, Naru, BayesNet, SPN, FSPN,
GLUE) model *single tables* and need a rule to compose join estimates.  The
standard composition (used by GLUE [82] and the per-table deployments in
the STATS benchmark [12]) is **join uniformity**:

    card(Q) ~= |J(tables, joins)|  *  prod_t  sel_t(preds_t)

where ``|J|`` is the size of the *unfiltered* join and ``sel_t`` the
per-table predicate selectivity from the table model.  ``|J|`` is exact and
cheap: it only depends on join-key frequency vectors, which
:class:`UnfilteredJoinSizes` computes once per join template via the exact
executor's message-passing counter and memoizes.  The remaining (and well
documented) error source is the correlation between predicates and join
keys -- exactly the error mode the STATS benchmark shows for this family.
"""

from __future__ import annotations

from repro.engine.executor import CardinalityExecutor
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["UnfilteredJoinSizes", "uniform_join_estimate"]


class UnfilteredJoinSizes:
    """Memoized exact sizes of unfiltered join templates."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self._executor = CardinalityExecutor(db)
        self._cache: dict[tuple, int] = {}

    def size(self, query: Query) -> int:
        """Exact |join of query's tables| ignoring all predicates."""
        key = (query.tables, tuple(str(j) for j in query.joins))
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        unfiltered = Query(query.tables, query.joins, ())
        value = self._executor.cardinality(unfiltered)
        self._cache[key] = value
        return value

    def invalidate(self) -> None:
        """Drop memoized sizes (call after data changes)."""
        self._cache.clear()
        self._executor.clear_cache()


def uniform_join_estimate(
    query: Query,
    join_sizes: UnfilteredJoinSizes,
    table_selectivity,
) -> float:
    """Join-uniformity composition.

    ``table_selectivity(table) -> float`` supplies each table's predicate
    selectivity in ``[0, 1]`` from whatever per-table model the caller owns.
    """
    card = float(join_sizes.size(query))
    for t in query.tables:
        sel = float(table_selectivity(t))
        card *= min(max(sel, 0.0), 1.0)
    return card
