"""Pessimistic (upper-bound) cardinality estimation.

Learned estimators fail silently: under drift or out-of-distribution
queries they *underestimate*, and underestimation is what makes the
planner pick catastrophic join orders ("Are We Ready For Learned
Cardinality Estimation?").  The defence studied by the pessimistic
line of work (MOLP/bound sketches, AGM-style worst-case bounds) is an
estimator that is allowed to be loose but never low: a certified
``bound >= true_count`` on every supported query.  This module provides
two such estimators as first-class ``CardinalityEstimator``s, usable
anywhere a point estimator is -- inside :class:`repro.optimizer.Optimizer`
(the risk-bounded planner mode costs plans under these bounds), inside
the :class:`repro.faults.BoundGuard` (a learned estimate exceeding its
certified bound trips the breaker), and under the
:class:`repro.optimizer.CardinalityCache` (they version like every other
estimator).

Soundness argument (see DESIGN.md §14 for the full derivation):

- **Per-predicate bounds.**  A :class:`BoundSketch` stores, per column,
  the exact counts of the ``top_k`` most frequent values, the maximum
  count among the remaining values (``max_rest``), and equi-width bucket
  *counts* over the full value range.  Equality bounds answer the exact
  top-k count, or ``max_rest`` for any other in-domain literal, or 0
  outside the domain; range bounds sum the counts of every bucket whose
  closed hull intersects the predicate's hull -- an overcount, never an
  undercount.  Conjunctions take the minimum over per-predicate bounds
  (``|σ_{p∧q}T| <= min(|σ_p T|, |σ_q T|)``), so the per-table bound
  ``tbound(T)`` is sound.
- **Join composition.**  Growing the joined set one table at a time from
  a root: every row of the current partial join matches at most
  ``maxfreq(C.c)`` rows of a newly attached table ``C`` (its join
  column's highest value frequency, from the unfiltered sketch -- filters
  only reduce it) and at most ``tbound(C)`` rows in total, so each step
  multiplies by ``min(maxfreq, tbound)``.  Extra (cycle-closing) join
  edges only filter the result further, so composing along any spanning
  order stays sound; we take the minimum over all root choices and cap
  with the product of per-table filtered bounds.
- **MCV pair refinement** (:class:`MCVJoinBoundEstimator` only).  For the
  first join edge out of the root, the top-k sketches of both sides
  compose value-by-value: ``Σ_{v∈topk_A} cnt_A(v)·eqbound_B(v) +
  rest_rows_A·maxfreq_B`` bounds the unfiltered pair join exactly
  (every non-top-k row contributes at most ``maxfreq_B`` matches), and
  filtered joins are subsets of unfiltered ones.

Staleness is deliberate: sketches snapshot the data at :meth:`refresh`
time, so after unrefreshed drift the "bound" can genuinely be violated
by observed counts -- exactly the condition the serving-side
:class:`~repro.faults.BoundGuard` watches for via the online auditor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cardest.base import BaseCardinalityEstimator
from repro.sql.query import Op, OrPredicate, Query

__all__ = [
    "BoundSketch",
    "BoundSketchEstimator",
    "MCVJoinBoundEstimator",
    "AGMSketchBoundEstimator",
]


@dataclass
class BoundSketch:
    """Per-column frequency/bucket sketch answering *upper bounds*.

    Unlike :class:`repro.optimizer.statistics.ColumnStats` (fractions,
    interpolation -- a point estimator's tool), everything here is an
    integer row count and every answer overcounts: bucket sums count the
    whole bucket whenever it touches the range, unknown in-domain
    equality literals answer the worst non-top-k frequency.
    """

    n_rows: int
    vmin: float
    vmax: float
    #: exact counts of the top-k most frequent values
    topk: dict[float, int]
    #: rows not covered by the top-k values
    rest_rows: int
    #: max count among non-top-k values (0 when top-k covers everything)
    max_rest: int
    #: equi-width bucket edges/counts over [vmin, vmax]; None when degenerate
    edges: np.ndarray | None = field(repr=False, default=None)
    bucket_counts: np.ndarray | None = field(repr=False, default=None)

    @classmethod
    def build(
        cls, values: np.ndarray, *, top_k: int = 16, n_buckets: int = 64
    ) -> "BoundSketch":
        values = np.asarray(values)
        n = int(values.shape[0])
        if n == 0:
            return cls(0, 0.0, 0.0, {}, 0, 0)
        uniq, counts = np.unique(values, return_counts=True)
        # Highest count first, ties broken by value: deterministic top-k.
        order = np.lexsort((uniq, -counts))
        top = order[:top_k]
        rest = order[top_k:]
        topk = {float(uniq[i]): int(counts[i]) for i in top}
        max_rest = int(counts[rest].max()) if rest.size else 0
        vmin, vmax = float(uniq[0]), float(uniq[-1])
        edges = bucket_counts = None
        if vmax > vmin:
            edges = np.linspace(vmin, vmax, n_buckets + 1)
            bucket_counts, _ = np.histogram(values.astype(float), bins=edges)
        return cls(
            n_rows=n,
            vmin=vmin,
            vmax=vmax,
            topk=topk,
            rest_rows=n - sum(topk.values()),
            max_rest=max_rest,
            edges=edges,
            bucket_counts=bucket_counts,
        )

    @property
    def max_freq(self) -> int:
        """Highest frequency of any single value (the degree bound)."""
        return max(self.topk.values()) if self.topk else 0

    def eq_bound(self, value) -> float:
        """Upper bound on ``count(column == value)``."""
        v = float(value)
        cnt = self.topk.get(v)
        if cnt is not None:
            return float(cnt)
        if self.n_rows == 0 or v < self.vmin or v > self.vmax:
            return 0.0
        return float(self.max_rest)

    def range_bound(self, lo: float, hi: float) -> float:
        """Upper bound on ``count(lo <= column <= hi)`` (closed hull).

        Open endpoints simply reuse the closed hull -- a further
        overcount, never an undercount.
        """
        if self.n_rows == 0 or lo > hi or hi < self.vmin or lo > self.vmax:
            return 0.0
        if self.edges is None:  # single-value column inside the hull
            return float(self.n_rows)
        touched = (self.edges[:-1] <= hi) & (self.edges[1:] >= lo)
        return float(self.bucket_counts[touched].sum())

    def predicate_bound(self, pred) -> float:
        """Upper bound on rows matching one predicate of any kind."""
        if isinstance(pred, OrPredicate):
            total = sum(self.predicate_bound(p) for p in pred.parts)
            return min(total, float(self.n_rows))
        if pred.op is Op.EQ:
            return self.eq_bound(pred.value)
        if pred.op is Op.IN:
            total = sum(self.eq_bound(v) for v in pred.value)
            return min(total, float(self.n_rows))
        lo, hi, _, _ = pred.to_bounds()
        return self.range_bound(lo, hi)


class BoundSketchEstimator(BaseCardinalityEstimator):
    """Shared machinery of the pessimistic estimators.

    Builds one :class:`BoundSketch` per column at construction (and on
    every :meth:`refresh`, which bumps ``estimates_version`` so the
    :class:`repro.optimizer.CardinalityCache` never serves stale bounds
    across a rebuild).  ``estimate``/``estimate_batch`` inherit the base
    class's cross-product clamp, which preserves soundness: no SPJ result
    exceeds the unfiltered cross product.
    """

    name = "bound_sketch"
    #: subclass switch: refine the first join edge with top-k composition
    use_mcv_pairs = False

    def __init__(self, db, *, top_k: int = 16, n_buckets: int = 64) -> None:
        super().__init__(db)
        self.top_k = int(top_k)
        self.n_buckets = int(n_buckets)
        self._sketches: dict[str, dict[str, BoundSketch]] = {}
        self._sketch_rows: dict[str, int] = {}
        self.refresh()

    def refresh(self) -> None:
        """Rebuild every sketch from the current data (cheap ANALYZE)."""
        for tname in self.db.table_names:
            table = self.db.table(tname)
            self._sketch_rows[tname] = table.n_rows
            self._sketches[tname] = {
                cname: BoundSketch.build(
                    table.values(cname),
                    top_k=self.top_k,
                    n_buckets=self.n_buckets,
                )
                for cname in table.column_names
            }
        self._bump_estimates_version()

    # -- per-table and per-edge bounds ---------------------------------------------

    def _table_bound(self, query: Query, table: str) -> float:
        """Upper bound on the table's filtered row count (min over preds)."""
        sketches = self._sketches[table]
        bound = float(self._sketch_rows[table])
        for pred in query.predicates_on(table):
            sketch = sketches.get(pred.column.column)
            if sketch is not None:
                bound = min(bound, sketch.predicate_bound(pred))
        return bound

    def _max_freq(self, table: str, column: str) -> float:
        return float(self._sketches[table][column].max_freq)

    def _mcv_pair(self, ta: str, ca: str, tb: str, cb: str) -> float:
        """Top-k composition bound on the unfiltered pair join A.ca = B.cb."""
        sa = self._sketches[ta][ca]
        sb = self._sketches[tb][cb]

        def one_way(sx: BoundSketch, sy: BoundSketch) -> float:
            total = 0.0
            for v, cnt in sx.topk.items():
                total += cnt * sy.eq_bound(v)
            return total + sx.rest_rows * sy.max_freq

        return min(one_way(sa, sb), one_way(sb, sa))

    def _linking(
        self, query: Query, cand: str, joined: set[str]
    ) -> list[tuple[str, str, str]]:
        """Join edges attaching ``cand`` to the joined set, as
        ``(cand_column, joined_table, joined_column)`` triples."""
        out: list[tuple[str, str, str]] = []
        for j in query.joins_on(cand):
            if j.left.table == cand and j.right.table in joined:
                out.append((j.left.column, j.right.table, j.right.column))
            elif j.right.table == cand and j.left.table in joined:
                out.append((j.right.column, j.left.table, j.left.column))
        return out

    # -- join composition -----------------------------------------------------------

    def _grow_from(
        self, query: Query, root: str, tbounds: dict[str, float]
    ) -> float | None:
        """Degree-composition bound growing a spanning order from ``root``."""
        bound = tbounds[root]
        joined = {root}
        remaining = [t for t in query.tables if t != root]
        while remaining:
            candidates: list[tuple[float, str]] = []
            for cand in remaining:
                links = self._linking(query, cand, joined)
                if not links:
                    continue
                deg = min(self._max_freq(cand, col) for col, _, _ in links)
                step = bound * min(deg, tbounds[cand])
                if self.use_mcv_pairs and len(joined) == 1:
                    pair = min(
                        self._mcv_pair(ot, oc, cand, col)
                        for col, ot, oc in links
                    )
                    step = min(step, pair)
                candidates.append((step, cand))
            if not candidates:
                return None  # disconnected: caller keeps the product cap
            step, cand = min(candidates)
            bound = step
            joined.add(cand)
            remaining.remove(cand)
        return bound

    def _estimate(self, query: Query) -> float:
        tbounds = {t: self._table_bound(query, t) for t in query.tables}
        if query.n_tables == 1:
            return tbounds[query.tables[0]]
        # The product of per-table filtered bounds is itself sound (every
        # join is a subset of the filtered cross product) and caps the
        # degree compositions below.
        best = 1.0
        for t in query.tables:
            best *= tbounds[t]
        for root in query.tables:
            grown = self._grow_from(query, root, tbounds)
            if grown is not None:
                best = min(best, grown)
        return best


class MCVJoinBoundEstimator(BoundSketchEstimator):
    """MCV-frequency join bound: top-k sketches composed across join
    equivalence classes, refined per-value on the first join edge."""

    name = "mcv_bound"
    use_mcv_pairs = True


class AGMSketchBoundEstimator(BoundSketchEstimator):
    """AGM-style cross-product/degree bound: the minimum over the filtered
    cross product and every spanning-order degree factorization, with no
    per-value refinement -- looser than :class:`MCVJoinBoundEstimator`
    but cheaper and with the same soundness guarantee."""

    name = "agm_bound"
    use_mcv_pairs = False
