"""Drift detection and model updating (Warper [29], DDUp [25]).

The tutorial's §2.2.2 classes these as *post-processing* regression
eliminators: instead of filtering plans, they detect when the world has
changed and update the models.

- :class:`DDUpDetector` [25]: a two-stage out-of-distribution test.
  Stage 1 is cheap: compare per-column summary statistics of a fresh data
  sample against a reference snapshot (a bootstrap z-test on means and
  distinct-fractions).  Only when stage 1 flags a table does stage 2 run:
  a finer binned-histogram divergence test (Jensen-Shannon) that decides
  between *fine-tune* (small drift) and *retrain* (large drift) -- DDUp's
  detect / distill / update triage.

- :class:`Warper` [29]: when drift is detected, generates *additional
  training queries targeted at the drifted regions* (predicates drawn from
  the new data's value distribution), labels them with the exact executor,
  and updates the wrapped query-driven estimator -- "efficiently adapting
  learned cardinality estimators to data and workload drifts".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.engine.executor import CardinalityExecutor
from repro.sql.generator import WorkloadGenerator
from repro.sql.query import ColumnRef, Op, Predicate, Query
from repro.storage.catalog import Database

__all__ = ["DriftReport", "DDUpDetector", "Warper"]


@dataclass(frozen=True)
class DriftReport:
    """Outcome of a drift check on one table."""

    table: str
    drifted: bool
    stage1_score: float  # max |z| over column means
    stage2_divergence: float  # Jensen-Shannon divergence (0 when stage 2 skipped)
    action: str  # "none" | "fine_tune" | "retrain"


def _js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    p = p / max(p.sum(), 1e-12)
    q = q / max(q.sum(), 1e-12)
    m = 0.5 * (p + q)

    def kl(a, b):
        mask = a > 0
        return float((a[mask] * np.log(a[mask] / b[mask])).sum())

    return 0.5 * kl(p, m) + 0.5 * kl(q, m)


class DDUpDetector:
    """Two-stage drift detector over a database's tables.

    Build it on the *reference* data (``snapshot``), then call
    :meth:`check` any time later; it compares the live tables against the
    snapshot without storing raw data (only summaries and histograms).
    """

    def __init__(
        self,
        db: Database,
        *,
        n_bins: int = 24,
        stage1_z: float = 3.0,
        fine_tune_js: float = 0.008,
        retrain_js: float = 0.06,
        sample: int = 2000,
        seed: int = 0,
        telemetry=None,
    ) -> None:
        """``telemetry`` is an optional :class:`repro.serve.TelemetryBus`
        (duck-typed: anything with ``event``/``incr``): every
        :meth:`check` emits its :class:`DriftReport`\\ s as
        ``drift_report`` events plus ``drift.*`` counters, so detections
        and triage actions are observable instead of silently returned."""
        self.db = db
        self.n_bins = n_bins
        self.stage1_z = stage1_z
        self.fine_tune_js = fine_tune_js
        self.retrain_js = retrain_js
        self.sample = sample
        self.telemetry = telemetry
        self._rng = np.random.default_rng(seed)
        self._reference: dict[str, dict[str, dict]] = {}
        self.snapshot()

    def _column_summary(self, values: np.ndarray) -> dict:
        values = values.astype(float)
        lo, hi = float(values.min()), float(values.max())
        if hi <= lo:
            hi = lo + 1.0
        edges = np.linspace(lo, hi, self.n_bins + 1)
        hist, _ = np.histogram(values, bins=edges)
        return {
            "mean": float(values.mean()),
            "std": float(values.std()) or 1e-9,
            "n": values.shape[0],
            "edges": edges,
            "hist": hist.astype(float),
        }

    def snapshot(self) -> None:
        """(Re)take the reference snapshot from the current data."""
        self._reference = {}
        for tname, table in self.db.tables.items():
            cols = {}
            for cname in table.column_names:
                if table.column(cname).is_key:
                    continue
                cols[cname] = self._column_summary(table.values(cname))
            self._reference[tname] = cols

    def check_table(self, table: str) -> DriftReport:
        ref = self._reference.get(table)
        if ref is None:
            raise KeyError(f"no snapshot for table {table!r}")
        tbl = self.db.table(table)
        # Stage 1: cheap z-test on column means against the snapshot.
        max_z = 0.0
        for cname, summary in ref.items():
            values = tbl.values(cname).astype(float)
            take = self._rng.choice(
                values.shape[0], size=min(self.sample, values.shape[0]), replace=False
            )
            sample = values[take]
            se = summary["std"] / math.sqrt(max(sample.shape[0], 1))
            z = abs(sample.mean() - summary["mean"]) / max(se, 1e-12)
            max_z = max(max_z, z)
        if max_z < self.stage1_z:
            return DriftReport(table, False, max_z, 0.0, "none")
        # Stage 2: histogram divergence decides fine-tune vs retrain.
        max_js = 0.0
        for cname, summary in ref.items():
            values = tbl.values(cname).astype(float)
            hist, _ = np.histogram(values, bins=summary["edges"])
            max_js = max(max_js, _js_divergence(summary["hist"], hist.astype(float)))
        if max_js < self.fine_tune_js:
            return DriftReport(table, False, max_z, max_js, "none")
        action = "retrain" if max_js >= self.retrain_js else "fine_tune"
        return DriftReport(table, True, max_z, max_js, action)

    def check(self) -> list[DriftReport]:
        """Drift reports for every snapshotted table (emitted as telemetry
        ``drift_report`` events when a bus is attached)."""
        reports = [self.check_table(t) for t in self._reference]
        if self.telemetry is not None:
            self.telemetry.incr("drift.checks")
            for r in reports:
                if r.drifted:
                    self.telemetry.incr("drift.detected")
                    self.telemetry.incr(f"drift.action.{r.action}")
                    self.telemetry.event(
                        "drift_report",
                        table=r.table,
                        drifted=r.drifted,
                        stage1_score=round(r.stage1_score, 6),
                        stage2_divergence=round(r.stage2_divergence, 6),
                        action=r.action,
                    )
        return reports

    def drifted_tables(self) -> list[str]:
        return [r.table for r in self.check() if r.drifted]


class Warper:
    """Targeted query generation + model update on drift (Warper [29]).

    Wraps a supervised (query-driven) estimator.  :meth:`adapt` generates
    extra training queries whose predicate constants are drawn from the
    *drifted tables' current data* (so the new regions are covered),
    labels them with the exact executor, and refits the estimator on the
    union of retained old and new examples.
    """

    def __init__(
        self,
        db: Database,
        estimator,
        *,
        detector: DDUpDetector | None = None,
        queries_per_table: int = 60,
        keep_old: int = 200,
        seed: int = 0,
        telemetry=None,
        experience=None,
        history: list[tuple[Query, float]] | None = None,
    ) -> None:
        """``telemetry`` (optional bus) makes every adaptation observable
        (``warper_adapt`` events, ``drift.warper_*`` counters);
        ``experience`` (optional :class:`repro.lifecycle.ExperienceStore`)
        receives the generated drift queries with their exact labels, so
        the lifecycle loop retains what the model was adapted on;
        ``history`` seeds the retained-example buffer without an initial
        :meth:`fit_initial` (used when adapting a cloned estimator that
        was trained elsewhere)."""
        if not hasattr(estimator, "fit"):
            raise TypeError("Warper needs a supervised estimator with .fit")
        self.db = db
        self.estimator = estimator
        self.detector = (
            detector
            if detector is not None
            else DDUpDetector(db, seed=seed, telemetry=telemetry)
        )
        self.queries_per_table = queries_per_table
        self.keep_old = keep_old
        self.seed = seed
        self.telemetry = telemetry
        self.experience = experience
        self._executor = CardinalityExecutor(db)
        self._history: list[tuple[Query, float]] = list(history or [])
        self.adaptations = 0

    def fit_initial(self, queries: list[Query], cards: np.ndarray) -> None:
        """Initial training (also seeds the retained-example buffer)."""
        self.estimator.fit(queries, cards)
        self._history = list(zip(queries, [float(c) for c in cards]))

    def _targeted_queries(self, tables: list[str]) -> list[Query]:
        """Queries over the drifted tables with fresh-data constants."""
        gen = WorkloadGenerator(self.db, seed=self.seed + self.adaptations)
        out: list[Query] = []
        for t in tables:
            out.extend(gen.single_table_workload(t, self.queries_per_table))
            # Plus join queries touching the drifted table.
            for _ in range(self.queries_per_table // 3):
                q = gen.random_query(2, 3, require_predicate=True)
                if t in q.tables:
                    out.append(q)
        return out

    def adapt(self) -> list[DriftReport]:
        """Run detection; on drift, generate+label queries and refit.

        Returns the drift reports (empty action list means nothing done).
        """
        reports = self.detector.check()
        drifted = [r.table for r in reports if r.drifted]
        if not drifted:
            return reports
        self._executor.clear_cache()
        new_queries = self._targeted_queries(drifted)
        new_cards = [float(self._executor.cardinality(q)) for q in new_queries]
        retained = self._history[-self.keep_old :]
        queries = [q for q, _ in retained] + new_queries
        cards = np.array([c for _, c in retained] + new_cards)
        self.estimator.fit(queries, cards)
        self._history = list(zip(queries, cards.tolist()))
        self.detector.snapshot()  # the new state becomes the reference
        self.adaptations += 1
        if self.experience is not None:
            self.experience.add_drift_queries(new_queries, new_cards)
        if self.telemetry is not None:
            self.telemetry.incr("drift.warper_adaptations")
            self.telemetry.incr("drift.warper_queries", by=len(new_queries))
            self.telemetry.event(
                "warper_adapt",
                tables=",".join(sorted(drifted)),
                new_queries=len(new_queries),
                retained=len(retained),
                adaptation=self.adaptations,
            )
        return reports
