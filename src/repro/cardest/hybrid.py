"""Hybrid cardinality estimators (paper §2.1.1): data + query information.

- :class:`UAEEstimator` [63]: a Naru-style autoregressive data model whose
  estimates are corrected by a supervised residual model trained on query
  feedback -- realizing UAE's "inject workload information into the data
  model" with an explicit correction stage (the differentiable
  progressive-sampling trick is replaced by residual boosting; documented
  substitution).
- :class:`GLUEEstimator` [82]: the general merging framework -- composes
  *any* single-table estimator's per-table results into join estimates.
- :class:`ALECEEstimator` [30]: attention between featurized queries and
  data-aggregation tokens (histogram summaries).  The data tokens are
  recomputed from the live data on :meth:`refresh`, which is what lets
  ALECE track dynamic data without retraining from scratch.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cardest.base import BaseCardinalityEstimator
from repro.cardest.datadriven import NaruEstimator
from repro.cardest.featurize import FlatQueryFeaturizer
from repro.cardest.joinutil import UnfilteredJoinSizes, uniform_join_estimate
from repro.ml.gbdt import GradientBoostedTrees
from repro.ml.nn import Adam
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["UAEEstimator", "GLUEEstimator", "ALECEEstimator"]


class UAEEstimator(BaseCardinalityEstimator):
    """Unified data + query autoregressive estimator (UAE [63])."""

    name = "uae"

    def __init__(self, db: Database, seed: int = 0, **naru_kwargs) -> None:
        super().__init__(db)
        self._data_model = NaruEstimator(db, seed=seed, **naru_kwargs)
        self._correction: GradientBoostedTrees | None = None
        self._featurizer = FlatQueryFeaturizer(db)
        self.seed = seed

    def fit_queries(self, queries: list[Query], cards: np.ndarray) -> "UAEEstimator":
        """Inject workload supervision: fit the residual correction."""
        if len(queries) == 0:
            raise ValueError("empty query feedback")
        cards = np.asarray(cards, dtype=float)
        x = self._featurizer.featurize_batch(queries)
        data_logs = np.array(
            [math.log1p(max(self._data_model.estimate(q), 0.0)) for q in queries]
        )
        true_logs = np.log1p(np.maximum(cards, 0.0))
        self._correction = GradientBoostedTrees(
            n_estimators=40, max_depth=4, seed=self.seed
        ).fit(x, true_logs - data_logs)
        self._bump_estimates_version()
        return self

    def refresh(self) -> None:
        self._data_model.refresh()
        self._bump_estimates_version()

    def _estimate(self, query: Query) -> float:
        base = max(self._data_model.estimate(query), 0.0)
        if self._correction is None:
            return base
        x = self._featurizer.featurize(query)[None, :]
        resid = float(self._correction.predict(x)[0])
        return float(np.expm1(math.log1p(base) + resid))

    def _estimate_batch(self, queries: list[Query]) -> np.ndarray:
        # The data model's progressive sampling consumes its RNG per call,
        # so the data passes stay a loop (in workload order, matching the
        # scalar path); only the correction model runs batched.
        bases = np.array(
            [max(self._data_model.estimate(q), 0.0) for q in queries]
        )
        if self._correction is None:
            return bases
        x = self._featurizer.featurize_batch(queries)
        resid = self._correction.predict(x)
        return np.expm1(np.log1p(bases) + resid)


class GLUEEstimator(BaseCardinalityEstimator):
    """General single-table -> join merging framework (GLUE [82]).

    Wraps any inner estimator that can answer *single-table* queries and
    lifts it to joins: ``card = |unfiltered join| * prod_t sel_t`` where
    each ``sel_t`` comes from the inner estimator on the table's
    single-table sub-query.
    """

    name = "glue"

    def __init__(self, db: Database, single_table_estimator) -> None:
        super().__init__(db)
        if not hasattr(single_table_estimator, "estimate"):
            raise TypeError("single_table_estimator must expose .estimate(query)")
        self.inner = single_table_estimator
        self._join_sizes = UnfilteredJoinSizes(db)

    def _table_selectivity(self, query: Query, table: str) -> float:
        preds = query.predicates_on(table)
        if not preds:
            return 1.0
        single = Query((table,), (), preds)
        est = max(self.inner.estimate(single), 0.0)
        return est / max(self.db.table(table).n_rows, 1)

    def _estimate(self, query: Query) -> float:
        if query.n_tables == 1:
            return max(self.inner.estimate(query), 0.0)
        return uniform_join_estimate(
            query, self._join_sizes, lambda t: self._table_selectivity(query, t)
        )


class ALECEEstimator(BaseCardinalityEstimator):
    """Attention-based estimator over data aggregations (ALECE [30]).

    A single-head dot-product attention layer lets the featurized query
    attend over per-(table, column) *data tokens* (normalized histograms +
    schema one-hots); the attended context concatenated with the query
    features feeds a two-layer head regressing ``log(1 + card)``.

    Data tokens are recomputed from the current table contents by
    :meth:`refresh`, so a trained ALECE adapts to inserts/drift without
    retraining -- the property [30] demonstrates on dynamic workloads.
    """

    name = "alece"

    def __init__(
        self,
        db: Database,
        attn_dim: int = 32,
        head_hidden: int = 64,
        hist_bins: int = 16,
        epochs: int = 120,
        lr: float = 2e-3,
        seed: int = 0,
    ) -> None:
        super().__init__(db)
        self.featurizer = FlatQueryFeaturizer(db)
        self.hist_bins = hist_bins
        self.epochs = epochs
        self.lr = lr
        rng = np.random.default_rng(seed)
        self._token_cols: list[tuple[str, str]] = list(self.featurizer.index.columns)
        self._edges: dict[tuple[str, str], np.ndarray] = {}
        for t, c in self._token_cols:
            values = db.table(t).values(c).astype(float)
            lo, hi = float(values.min()), float(values.max())
            if hi <= lo:
                hi = lo + 1.0
            self._edges[(t, c)] = np.linspace(lo, hi, hist_bins + 1)
        self.tokens = self._build_tokens()

        f_dim = self.featurizer.dim
        t_dim = self.tokens.shape[1]
        k = attn_dim
        self.k = k
        s = lambda d: math.sqrt(1.0 / d)  # noqa: E731
        self.wq = rng.normal(0, s(f_dim), (k, f_dim))
        self.wk = rng.normal(0, s(t_dim), (k, t_dim))
        self.wv = rng.normal(0, s(t_dim), (k, t_dim))
        h_in = f_dim + k
        self.w1 = rng.normal(0, math.sqrt(2.0 / h_in), (h_in, head_hidden))
        self.b1 = np.zeros(head_hidden)
        self.w2 = rng.normal(0, s(head_hidden), (head_hidden, 1))
        self.b2 = np.zeros(1)
        self._params = [self.wq, self.wk, self.wv, self.w1, self.b1, self.w2, self.b2]
        self._rng = rng
        self._fitted = False

    # -- data tokens -----------------------------------------------------------

    def _build_tokens(self) -> np.ndarray:
        """One token per (table, column): histogram + table/column one-hot."""
        idx = self.featurizer.index
        n_tables = len(idx.tables)
        n_cols = len(self._token_cols)
        tokens = np.zeros((n_cols, self.hist_bins + n_tables + 1))
        for i, (t, c) in enumerate(self._token_cols):
            values = self.db.table(t).values(c).astype(float)
            hist, _ = np.histogram(values, bins=self._edges[(t, c)])
            total = max(hist.sum(), 1)
            tokens[i, : self.hist_bins] = hist / total
            tokens[i, self.hist_bins + idx.table_pos[t]] = 1.0
            tokens[i, -1] = math.log1p(self.db.table(t).n_rows) / 20.0
        return tokens

    def refresh(self) -> None:
        """Recompute data tokens from the live data (no retraining)."""
        self.tokens = self._build_tokens()
        self._bump_estimates_version()

    # -- forward / backward -------------------------------------------------------

    def _forward(self, x: np.ndarray) -> np.ndarray:
        k = self.k
        self._x = x
        self._kmat = self.tokens @ self.wk.T  # [M, k]
        self._vmat = self.tokens @ self.wv.T  # [M, k]
        self._q = x @ self.wq.T  # [B, k]
        scores = self._q @ self._kmat.T / math.sqrt(k)  # [B, M]
        scores -= scores.max(axis=1, keepdims=True)
        e = np.exp(scores)
        self._attn = e / e.sum(axis=1, keepdims=True)
        self._ctx = self._attn @ self._vmat  # [B, k]
        self._h_in = np.concatenate([x, self._ctx], axis=1)
        pre = self._h_in @ self.w1 + self.b1
        self._mask = pre > 0
        self._h = pre * self._mask
        return self._h @ self.w2 + self.b2

    def _backward(self, grad: np.ndarray) -> list[np.ndarray]:
        d_w2 = self._h.T @ grad
        d_b2 = grad.sum(axis=0)
        g = (grad @ self.w2.T) * self._mask
        d_w1 = self._h_in.T @ g
        d_b1 = g.sum(axis=0)
        g_in = g @ self.w1.T
        f_dim = self._x.shape[1]
        d_x_part = g_in[:, :f_dim]  # unused: x is input
        d_ctx = g_in[:, f_dim:]
        d_attn = d_ctx @ self._vmat.T  # [B, M]
        d_v = self._attn.T @ d_ctx  # [M, k]
        # softmax backward
        tmp = (d_attn * self._attn).sum(axis=1, keepdims=True)
        d_scores = self._attn * (d_attn - tmp) / math.sqrt(self.k)
        d_q = d_scores @ self._kmat
        d_k = d_scores.T @ self._q
        d_wq = d_q.T @ self._x
        d_wk = d_k.T @ self.tokens
        d_wv = d_v.T @ self.tokens
        del d_x_part
        return [d_wq, d_wk, d_wv, d_w1, d_b1, d_w2, d_b2]

    # -- training / inference --------------------------------------------------------

    def fit(self, queries: list[Query], cards: np.ndarray) -> "ALECEEstimator":
        if len(queries) == 0:
            raise ValueError("training workload is empty")
        x = self.featurizer.featurize_batch(queries)
        y = np.log1p(np.maximum(np.asarray(cards, dtype=float), 0.0))[:, None]
        opt = Adam(lr=self.lr)
        n = x.shape[0]
        batch = 64
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                pred = self._forward(x[idx])
                grad = 2.0 * (pred - y[idx]) / max(idx.size, 1)
                grads = self._backward(grad)
                opt.step(self._params, grads)
        self._fitted = True
        self._bump_estimates_version()
        return self

    def _estimate(self, query: Query) -> float:
        if not self._fitted:
            raise RuntimeError("ALECE.estimate called before fit")
        x = self.featurizer.featurize(query)[None, :]
        return float(np.expm1(self._forward(x)[0, 0]))

    def _estimate_batch(self, queries: list[Query]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("ALECE.estimate_batch called before fit")
        x = self.featurizer.featurize_batch(queries)
        return np.expm1(self._forward(x)[:, 0])
