"""Literal interpreter for physical plan trees.

The execution simulator never actually *runs* a plan -- it derives every
node's cardinality from the node's sub-query via the exact executor, so a
plan that (say) lost a predicate during enumeration would still be credited
with the right answer.  :class:`PlanInterpreter` closes that gap: it
evaluates the plan tree exactly as written -- leaf scans apply the scan
node's own pushed-down predicates, join nodes hash-join their children on
the join node's own conditions -- and returns the row count the plan would
really produce.  Differential checking this against the exact executor is
what catches plans that are structurally wrong rather than merely slow.
"""

from __future__ import annotations

import numpy as np

from repro.engine.plans import JoinNode, Plan, PlanNode, ScanNode
from repro.storage.catalog import Database

__all__ = ["PlanResultTooLarge", "PlanInterpreter"]


class PlanResultTooLarge(RuntimeError):
    """Raised when a plan's intermediate exceeds the interpreter's guard."""


class PlanInterpreter:
    """Bottom-up materializing evaluator for :class:`~repro.engine.plans.Plan`.

    Intermediates are dicts ``table -> row-index array`` with all arrays
    aligned (position ``i`` across the arrays is one joined output row).
    ``max_rows`` bounds any intermediate so adversarial plans fail loudly.
    """

    def __init__(self, db: Database, max_rows: int = 2_000_000) -> None:
        self.db = db
        self.max_rows = max_rows

    def count(self, plan: Plan) -> int:
        """Row count produced by executing the plan tree as written."""
        result = self._execute(plan.root)
        first = next(iter(result.values()))
        return int(first.shape[0])

    # -- node evaluation --------------------------------------------------------

    def _execute(self, node: PlanNode) -> dict[str, np.ndarray]:
        if isinstance(node, ScanNode):
            return {node.table: self._scan(node)}
        assert isinstance(node, JoinNode)
        left = self._execute(node.left)
        right = self._execute(node.right)
        return self._join(node, left, right)

    def _scan(self, node: ScanNode) -> np.ndarray:
        tbl = self.db.table(node.table)
        mask = np.ones(tbl.n_rows, dtype=bool)
        for pred in node.predicates:
            mask &= pred.evaluate(tbl.values(pred.column.column))
        return np.flatnonzero(mask)

    def _join(
        self,
        node: JoinNode,
        left: dict[str, np.ndarray],
        right: dict[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Hash join on the first condition, filter on the rest."""
        first, *rest = node.conditions
        if first.left.table in left:
            l_ref, r_ref = first.left, first.right
        else:
            l_ref, r_ref = first.right, first.left
        l_keys = self.db.table(l_ref.table).values(l_ref.column)[
            left[l_ref.table]
        ]
        r_keys = self.db.table(r_ref.table).values(r_ref.column)[
            right[r_ref.table]
        ]
        # Build on the right side, probe with the left.
        order = np.argsort(r_keys, kind="stable")
        sorted_keys = r_keys[order]
        lo = np.searchsorted(sorted_keys, l_keys, side="left")
        hi = np.searchsorted(sorted_keys, l_keys, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total > self.max_rows:
            raise PlanResultTooLarge(
                f"join intermediate of {total} rows exceeds {self.max_rows}"
            )
        left_take = np.repeat(np.arange(l_keys.shape[0]), counts)
        if total:
            offsets = np.arange(total) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            right_take = order[np.repeat(lo, counts) + offsets]
        else:
            right_take = np.zeros(0, dtype=np.int64)
        out = {t: idx[left_take] for t, idx in left.items()}
        out.update({t: idx[right_take] for t, idx in right.items()})
        for cond in rest:
            lv = self.db.table(cond.left.table).values(cond.left.column)[
                out[cond.left.table]
            ]
            rv = self.db.table(cond.right.table).values(cond.right.column)[
                out[cond.right.table]
            ]
            keep = lv == rv
            out = {t: idx[keep] for t, idx in out.items()}
        return out
