"""Literal interpreter for physical plan trees.

The execution simulator never actually *runs* a plan -- it derives every
node's cardinality from the node's sub-query via the exact executor, so a
plan that (say) lost a predicate during enumeration would still be credited
with the right answer.  :class:`PlanInterpreter` closes that gap: it
evaluates the plan tree exactly as written -- leaf scans apply the scan
node's own pushed-down predicates, join nodes hash-join their children on
the join node's own conditions -- and returns the row count the plan would
really produce.  Differential checking this against the exact executor is
what catches plans that are structurally wrong rather than merely slow.

Joins and scans run on the shared kernels in :mod:`repro.engine.kernels`:
scan predicates are compiled to boolean-mask evaluators once per node, and
build sides that are plain filtered row sets reuse the per-column sort from
the :class:`~repro.engine.kernels.KeyIndexCache` instead of re-sorting.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels import (
    GroupIndex,
    KeyIndexCache,
    compile_predicates,
    expand_matches,
    is_strictly_increasing,
    match_counts,
)
from repro.engine.plans import JoinNode, Plan, PlanNode, ScanNode
from repro.storage.catalog import Database

__all__ = ["PlanResultTooLarge", "PlanInterpreter"]


class PlanResultTooLarge(RuntimeError):
    """Raised when a plan's intermediate exceeds the interpreter's guard."""


class PlanInterpreter:
    """Bottom-up materializing evaluator for :class:`~repro.engine.plans.Plan`.

    Intermediates are dicts ``table -> row-index array`` with all arrays
    aligned (position ``i`` across the arrays is one joined output row).
    ``max_rows`` bounds any intermediate so adversarial plans fail loudly.
    Pass a shared ``key_index`` to amortize join-column sorts with other
    engine components (the executor, the serving console).
    """

    def __init__(
        self,
        db: Database,
        max_rows: int = 2_000_000,
        key_index: KeyIndexCache | None = None,
    ) -> None:
        self.db = db
        self.max_rows = max_rows
        self.key_index = key_index if key_index is not None else KeyIndexCache()

    def count(self, plan: Plan) -> int:
        """Row count produced by executing the plan tree as written."""
        result = self._execute(plan.root)
        first = next(iter(result.values()))
        return int(first.shape[0])

    # -- node evaluation --------------------------------------------------------

    def _execute(self, node: PlanNode) -> dict[str, np.ndarray]:
        if isinstance(node, ScanNode):
            return {node.table: self._scan(node)}
        assert isinstance(node, JoinNode)
        left = self._execute(node.left)
        right = self._execute(node.right)
        return self._join(node, left, right)

    def _scan(self, node: ScanNode) -> np.ndarray:
        tbl = self.db.table(node.table)
        evaluate = compile_predicates(node.predicates)
        if evaluate is None:
            return np.arange(tbl.n_rows, dtype=np.int64)
        return np.flatnonzero(evaluate(tbl))

    def _join(
        self,
        node: JoinNode,
        left: dict[str, np.ndarray],
        right: dict[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Hash join on the first condition, filter on the rest."""
        first, *rest = node.conditions
        if first.left.table in left:
            l_ref, r_ref = first.left, first.right
        else:
            l_ref, r_ref = first.right, first.left
        # Build on the right side, probe with the left.  A leaf scan's row
        # set is sorted/unique and can reuse the cached full-column sort;
        # a join intermediate (gathered, duplicated rows) is indexed fresh.
        r_rows = right[r_ref.table]
        r_table = self.db.table(r_ref.table)
        if is_strictly_increasing(r_rows):
            index = self.key_index.restricted(r_table, r_ref.column, r_rows)
        else:
            index = GroupIndex.from_keys(r_table.values(r_ref.column)[r_rows])
        l_keys = self.db.table(l_ref.table).values(l_ref.column)[
            left[l_ref.table]
        ]
        pos, counts = match_counts(index, l_keys)
        total = int(counts.sum())
        if total > self.max_rows:
            raise PlanResultTooLarge(
                f"join intermediate of {total} rows exceeds {self.max_rows}"
            )
        left_take = np.repeat(np.arange(l_keys.shape[0]), counts)
        right_take = expand_matches(index, pos, counts)
        out = {t: idx[left_take] for t, idx in left.items()}
        out.update({t: idx[right_take] for t, idx in right.items()})
        for cond in rest:
            lv = self.db.table(cond.left.table).values(cond.left.column)[
                out[cond.left.table]
            ]
            rv = self.db.table(cond.right.table).values(cond.right.column)[
                out[cond.right.table]
            ]
            keep = lv == rv
            out = {t: idx[keep] for t, idx in out.items()}
        return out
