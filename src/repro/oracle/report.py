"""Violation records and the deterministic oracle report.

Every oracle layer (differential plan equivalence, metamorphic transforms,
estimator contracts, the online audit) reports problems as
:class:`Violation` records collected into an :class:`OracleReport`.  The
report's JSON export is canonical -- violations sorted by identity, keys
sorted -- so two same-seed oracle runs produce byte-identical exports, the
same determinism contract the serving/chaos/lifecycle benchmarks gate on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Violation", "OracleReport"]


@dataclass(frozen=True)
class Violation:
    """One correctness violation the oracle observed.

    ``layer`` names the oracle layer (``"plan_equivalence"``,
    ``"metamorphic"``, ``"contract"``, ``"audit"``); ``check`` the specific
    invariant; ``subject`` what was checked (a query hash, a plan
    signature, an estimator name); ``expected``/``actual`` the disagreeing
    values rendered as strings so the record stays JSON-trivial.
    """

    layer: str
    check: str
    subject: str
    expected: str
    actual: str
    detail: str = ""

    def as_dict(self) -> dict[str, str]:
        return {
            "layer": self.layer,
            "check": self.check,
            "subject": self.subject,
            "expected": self.expected,
            "actual": self.actual,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return (
            f"[{self.layer}/{self.check}] {self.subject}: "
            f"expected {self.expected}, got {self.actual}"
            + (f" ({self.detail})" if self.detail else "")
        )


@dataclass
class OracleReport:
    """Aggregate outcome of one oracle pass."""

    violations: list[Violation] = field(default_factory=list)
    #: checks performed per layer (violating or not), for coverage reporting
    checks: dict[str, int] = field(default_factory=dict)

    def record_check(self, layer: str, n: int = 1) -> None:
        self.checks[layer] = self.checks.get(layer, 0) + n

    def extend(self, violations: list[Violation]) -> None:
        self.violations.extend(violations)

    def merge(self, other: "OracleReport") -> None:
        self.extend(other.violations)
        for layer, n in other.checks.items():
            self.record_check(layer, n)

    @property
    def n_violations(self) -> int:
        return len(self.violations)

    @property
    def clean(self) -> bool:
        return not self.violations

    def by_layer(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.layer] = out.get(v.layer, 0) + 1
        return out

    def to_json(self) -> str:
        """Canonical export: sorted violations, sorted keys, no whitespace."""
        payload = {
            "checks": dict(sorted(self.checks.items())),
            "n_violations": self.n_violations,
            "violations": sorted(
                (v.as_dict() for v in self.violations),
                key=lambda d: (d["layer"], d["check"], d["subject"], d["actual"]),
            ),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
