"""Pure-Python exact COUNT(*) reference, independent of the engine.

The production :class:`repro.engine.CardinalityExecutor` is the repo's
ground-truth oracle -- which means nothing checks *it*.  This module is the
cross-check: a deliberately simple re-implementation that shares **no code**
with the engine (own predicate semantics, own join-graph analysis, own
message passing) and runs entirely in Python-int arithmetic, so it is exact
at any magnitude.  It is orders of magnitude slower than the vectorized
executor and exists only for the differential oracle and its tests.
"""

from __future__ import annotations

from repro.sql.query import Op, Query
from repro.storage.catalog import Database

__all__ = ["ReferenceTooLarge", "reference_count"]


class ReferenceTooLarge(RuntimeError):
    """Raised when the reference materialization exceeds its row guard."""


def _holds(pred, value) -> bool:
    """Scalar predicate semantics, re-implemented from the SQL definition."""
    op = pred.op
    if op is Op.OR:
        return any(_holds(part, value) for part in pred.parts)
    if op is Op.EQ:
        return value == pred.value
    if op is Op.LT:
        return value < pred.value
    if op is Op.LE:
        return value <= pred.value
    if op is Op.GT:
        return value > pred.value
    if op is Op.GE:
        return value >= pred.value
    if op is Op.BETWEEN:
        lo, hi = pred.value
        return lo <= value <= hi
    if op is Op.IN:
        return any(value == v for v in pred.value)
    raise AssertionError(f"unhandled op {op}")


def _filtered_rows(db: Database, query: Query, table: str) -> list[int]:
    tbl = db.table(table)
    preds = query.predicates_on(table)
    if not preds:
        return list(range(tbl.n_rows))
    cols = {p.column.column: tbl.values(p.column.column) for p in preds}
    return [
        i
        for i in range(tbl.n_rows)
        if all(_holds(p, cols[p.column.column][i]) for p in preds)
    ]


def _is_tree(query: Query) -> bool:
    """Acyclic, no parallel edges -- re-derived, not imported."""
    pairs = set()
    for j in query.joins:
        pair = frozenset((j.left.table, j.right.table))
        if pair in pairs:
            return False
        pairs.add(pair)
    return len(pairs) == len(query.tables) - 1


def _tree_count(
    db: Database, query: Query, rows: dict[str, list[int]]
) -> int:
    """Dict-based message passing; weights are exact Python ints."""
    adj: dict[str, list[tuple[str, str, str]]] = {t: [] for t in query.tables}
    for j in query.joins:
        adj[j.left.table].append((j.right.table, j.left.column, j.right.column))
        adj[j.right.table].append((j.left.table, j.right.column, j.left.column))

    root = query.tables[0]
    order: list[tuple[str, str | None, str | None, str | None]] = []
    stack: list[tuple[str, str | None, str | None, str | None]] = [
        (root, None, None, None)
    ]
    seen = {root}
    while stack:
        entry = stack.pop()
        order.append(entry)
        for neighbor, my_col, their_col in adj[entry[0]]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append((neighbor, entry[0], their_col, my_col))

    weights = {t: [1] * len(rows[t]) for t in query.tables}
    for table, parent, my_col, parent_col in reversed(order):
        if parent is None:
            continue
        keys = db.table(table).values(my_col)
        message: dict = {}
        for i, row in enumerate(rows[table]):
            key = keys[row].item()
            message[key] = message.get(key, 0) + weights[table][i]
        parent_keys = db.table(parent).values(parent_col)
        pw = weights[parent]
        for i, row in enumerate(rows[parent]):
            pw[i] *= message.get(parent_keys[row].item(), 0)
    return sum(weights[root])


def _materialized_count(
    db: Database, query: Query, rows: dict[str, list[int]], max_rows: int
) -> int:
    """Dict-based hash-join materialization for cyclic join graphs."""
    tables = list(query.tables)
    placed = [tables[0]]
    # tuples: list of dicts table -> row index
    tuples: list[dict[str, int]] = [{tables[0]: r} for r in rows[tables[0]]]
    pending = list(query.joins)
    while len(placed) < len(tables):
        edge = next(
            (
                j
                for j in pending
                if (j.left.table in placed) != (j.right.table in placed)
            ),
            None,
        )
        if edge is None:
            raise ValueError(f"join graph is disconnected: {query}")
        if edge.left.table in placed:
            old_ref, new_ref = edge.left, edge.right
        else:
            old_ref, new_ref = edge.right, edge.left
        new_table = new_ref.table
        build_keys = db.table(new_table).values(new_ref.column)
        buckets: dict = {}
        for r in rows[new_table]:
            buckets.setdefault(build_keys[r].item(), []).append(r)
        probe_keys = db.table(old_ref.table).values(old_ref.column)
        out: list[dict[str, int]] = []
        for tup in tuples:
            for r in buckets.get(probe_keys[tup[old_ref.table]].item(), ()):
                out.append({**tup, new_table: r})
                if len(out) > max_rows:
                    raise ReferenceTooLarge(
                        f"reference intermediate exceeds {max_rows} rows"
                    )
        tuples = out
        placed.append(new_table)
        pending.remove(edge)
        # Apply any join now internal to the materialized tuple set.
        for j in list(pending):
            if j.left.table in placed and j.right.table in placed:
                lv = db.table(j.left.table).values(j.left.column)
                rv = db.table(j.right.table).values(j.right.column)
                tuples = [
                    t
                    for t in tuples
                    if lv[t[j.left.table]] == rv[t[j.right.table]]
                ]
                pending.remove(j)
    return len(tuples)


def reference_count(
    db: Database, query: Query, *, max_rows: int = 1_000_000
) -> int:
    """Exact COUNT(*) of a connected SPJ query, the slow-but-sure way.

    Raises :class:`ReferenceTooLarge` when a cyclic query's intermediate
    would exceed ``max_rows`` (tree-shaped queries never materialize and
    have no such limit).
    """
    rows = {t: _filtered_rows(db, query, t) for t in query.tables}
    if query.n_tables == 1:
        return len(rows[query.tables[0]])
    if _is_tree(query):
        return _tree_count(db, query, rows)
    return _materialized_count(db, query, rows, max_rows)
