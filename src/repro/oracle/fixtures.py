"""Purpose-built databases for the oracle gate and its tests.

:func:`make_deep_chain` constructs a join chain whose exact count exceeds
2**53 -- the float64 exactness limit -- so any float accumulation anywhere
in the counting path produces a visibly wrong answer.  The construction
also returns the closed-form expected count (computed in Python ints from
the generating parameters), giving tests a third independent answer.

:func:`make_probe_table` builds the ``probe`` table whose columns are
engineered to expose the satellite selectivity bugs: ``big`` puts point
mass at a ~2e9 maximum (where a 1e-9 epsilon shift vanishes entirely) and
``skew`` fills whole equi-depth buckets with its maximum value so the
histogram keeps *degenerate* buckets at the domain edge.
"""

from __future__ import annotations

import numpy as np

from repro.sql.query import ColumnRef, Join, Query
from repro.storage.catalog import Database, JoinEdge
from repro.storage.table import Column, Table

__all__ = ["make_deep_chain", "make_probe_table", "chain_query"]

#: per-key row counts of the first chain table; all odd, so every per-key
#: product and the final sum stay odd -- an odd total above 2**53 is never
#: float64-representable, which is what makes the float mutation visible
_BASE_COUNTS = (101, 103, 107, 109, 113)


def make_probe_table(n_rows: int = 700) -> Table:
    """The ``probe`` table: columns that stress domain-edge selectivity."""
    # skew: ten heavy values own the MCV list; the non-MCV remainder mixes
    # 167 distinct values with 33 copies of the maximum (5000), which span
    # several full equi-depth buckets -> degenerate buckets at the max.
    skew = np.concatenate(
        [
            np.repeat(np.arange(10, 110, 10), 50),
            np.arange(200, 367),
            np.full(33, 5000),
        ]
    ).astype(np.int64)
    # big: ~2e9 magnitude with repeated maximum, so strict comparisons at
    # the domain edge are only correct with true open-endpoint semantics.
    big = (1_999_999_000 + (np.arange(skew.size) % 100) * 10).astype(np.int64)
    big[-60:] = 2_000_000_000
    if skew.size != n_rows:
        raise ValueError(f"probe construction yields {skew.size} rows")
    return Table(
        "probe",
        [
            Column("id", np.arange(n_rows, dtype=np.int64), is_key=True),
            Column("skew", np.sort(skew)),
            Column("big", np.sort(big)),
        ],
    )


def _chain_table(index: int, counts: list[int], rng: np.random.Generator) -> Table:
    key = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    n = key.shape[0]
    val = rng.integers(0, 1000, size=n).astype(np.int64)
    return Table(
        f"c{index}",
        [
            Column("key", key),
            Column("val", val),
        ],
    )


def make_deep_chain(
    n_tables: int = 8, seed: int = 0
) -> tuple[Database, Query, int]:
    """A join chain whose exact count exceeds 2**53.

    Tables ``c0 .. c{n-1}`` each hold one row group per key in
    ``range(len(_BASE_COUNTS))``; table ``i`` has ``_BASE_COUNTS[k] + 2*i``
    rows for key ``k`` (odd counts throughout).  The chain query joining
    them all on ``key`` therefore counts exactly
    ``sum_k prod_i (_BASE_COUNTS[k] + 2*i)`` -- ~1.7e16 for the default
    eight tables, past float64 exactness.  Returns
    ``(database, chain query, expected count)`` with the expectation
    computed in Python-int arithmetic straight from the parameters.
    """
    if n_tables < 2:
        raise ValueError("chain needs at least two tables")
    rng = np.random.default_rng(seed)
    per_table_counts = [
        [c + 2 * i for c in _BASE_COUNTS] for i in range(n_tables)
    ]
    tables = [
        _chain_table(i, counts, rng)
        for i, counts in enumerate(per_table_counts)
    ]
    tables.append(make_probe_table())
    edges = [
        JoinEdge(f"c{i}", "key", f"c{i + 1}", "key")
        for i in range(n_tables - 1)
    ]
    db = Database("deep_chain", tables, edges)
    expected = 0
    for k in range(len(_BASE_COUNTS)):
        product = 1
        for counts in per_table_counts:
            product *= counts[k]
        expected += product
    return db, chain_query(n_tables), expected


def chain_query(n_tables: int) -> Query:
    """The full-chain join query over ``c0 .. c{n-1}``."""
    joins = tuple(
        Join(ColumnRef(f"c{i}", "key"), ColumnRef(f"c{i + 1}", "key"))
        for i in range(n_tables - 1)
    )
    return Query(tuple(f"c{i}" for i in range(n_tables)), joins, ())
