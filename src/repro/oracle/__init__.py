"""Differential + metamorphic plan-correctness oracle.

Four independent layers guard the stack's correctness (DESIGN.md §11):

- :mod:`~repro.oracle.equivalence` -- every enumerated physical plan shape
  (all algorithms, all Bao arms, all Lero scaling factors) must produce the
  exact count, and the exact executor itself is cross-checked against the
  pure-Python :mod:`~repro.oracle.reference` implementation;
- :mod:`~repro.oracle.metamorphic` -- result-preserving query transforms
  must not change counts (and order permutations must not change hashes);
- :mod:`~repro.oracle.contracts` -- estimator invariants: finite,
  non-negative, cross-product-bounded, monotone under tightening,
  zero out-of-domain, version-bumped on state change;
- :mod:`~repro.oracle.audit` -- a deterministic 1-in-N sample of *served*
  queries is re-verified online, reporting through the telemetry bus.

:mod:`~repro.oracle.mutations` provides the seeded-bug catalogue the
oracle gate (``benchmarks/bench_p5_oracle.py``) validates itself against.
"""

from repro.oracle.audit import OnlineAuditor
from repro.oracle.contracts import EstimatorContractChecker
from repro.oracle.equivalence import PlanEquivalenceChecker
from repro.oracle.metamorphic import MetamorphicSuite, TRANSFORMS
from repro.oracle.mutations import MUTATIONS, apply_mutation, mutation_names
from repro.oracle.planexec import PlanInterpreter, PlanResultTooLarge
from repro.oracle.reference import ReferenceTooLarge, reference_count
from repro.oracle.report import OracleReport, Violation

__all__ = [
    "OnlineAuditor",
    "EstimatorContractChecker",
    "PlanEquivalenceChecker",
    "MetamorphicSuite",
    "TRANSFORMS",
    "MUTATIONS",
    "apply_mutation",
    "mutation_names",
    "PlanInterpreter",
    "PlanResultTooLarge",
    "ReferenceTooLarge",
    "reference_count",
    "OracleReport",
    "Violation",
]
