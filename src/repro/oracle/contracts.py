"""Estimator contract checking.

Cardinality estimates are predictions, not facts -- the oracle cannot
demand they be *right*.  What it can demand is that they respect the
invariants every sane estimator satisfies, the same invariants whose
violations have historically been real bugs in this stack:

- estimates are finite and non-negative;
- no (sub-)query estimate exceeds the unfiltered cross-product of its
  tables' row counts;
- tightening a predicate (adding a conjunct, shrinking a BETWEEN) never
  *increases* the estimate beyond a small tolerance;
- an equality against a literal outside the column's data domain, or a
  strict comparison beyond the domain edge, estimates (approximately)
  zero -- the contracts the satellite selectivity fixes restored;
- any state change that can alter answers (refit, feedback) bumps
  ``estimates_version``, the counter cardinality caches key on.

For *bound* estimators (:mod:`repro.cardest.bounds`) the oracle can demand
more: a certified upper bound must dominate the exact count on every
connected sub-query (:meth:`~EstimatorContractChecker.check_bound_soundness`
-- checked against the independent exact executor), and must dominate the
point estimate it certifies (:meth:`~EstimatorContractChecker.
check_bound_dominates`).  Note that the domain contracts do NOT apply to
bound estimators: bucket hulls deliberately overcount at domain edges.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.engine.executor import CardinalityExecutor, IntermediateTooLarge
from repro.sql.query import ColumnRef, Op, Predicate, Query
from repro.storage.catalog import Database
from repro.oracle.report import Violation

__all__ = ["EstimatorContractChecker"]


class EstimatorContractChecker:
    """Check one estimator's invariants over queries and over the schema.

    ``monotonic`` enables the predicate-tightening checks (on by default;
    turn off for learned estimators that only satisfy it approximately).
    ``tolerance`` is the multiplicative slack tightened estimates may gain
    before we call it a violation; ``zero_tolerance`` is the absolute row
    count an out-of-domain estimate may report and still count as "zero".
    """

    def __init__(
        self,
        db: Database,
        estimator,
        *,
        name: str | None = None,
        monotonic: bool = True,
        tolerance: float = 1.001,
        zero_tolerance: float = 0.5,
        max_subqueries: int = 64,
    ) -> None:
        self.db = db
        self.estimator = estimator
        self.name = name if name is not None else type(estimator).__name__
        self.monotonic = monotonic
        self.tolerance = tolerance
        self.zero_tolerance = zero_tolerance
        self.max_subqueries = max_subqueries
        self.checks_run = 0

    # -- helpers -----------------------------------------------------------------

    def _cross_product(self, query: Query) -> float:
        upper = 1.0
        for t in query.tables:
            upper *= max(self.db.table(t).n_rows, 1)
        return upper

    def _connected_subqueries(self, query: Query) -> list[Query]:
        """All connected sub-queries (incl. the query itself), capped."""
        if query.n_tables == 1:
            return [query]
        adj = query.join_adjacency()
        subsets: set[frozenset[str]] = set()
        frontier: list[frozenset[str]] = [frozenset((t,)) for t in query.tables]
        while frontier and len(subsets) < self.max_subqueries:
            cur = frontier.pop()
            if cur in subsets:
                continue
            subsets.add(cur)
            for t in cur:
                for n in adj[t]:
                    if n not in cur:
                        frontier.append(cur | {n})
        return [query.subquery(s) for s in sorted(subsets, key=sorted)]

    def _violation(
        self, check: str, subject: str, expected: str, actual: str, detail: str = ""
    ) -> Violation:
        return Violation(
            layer="contract",
            check=check,
            subject=f"{self.name}:{subject}",
            expected=expected,
            actual=actual,
            detail=detail,
        )

    # -- per-query contracts -----------------------------------------------------

    def check_query(self, query: Query) -> list[Violation]:
        violations: list[Violation] = []
        for sub in self._connected_subqueries(query):
            est = float(self.estimator.estimate(sub))
            self.checks_run += 1
            if not math.isfinite(est):
                violations.append(
                    self._violation(
                        "finite", sub.cache_key, "a finite value", str(est)
                    )
                )
                continue
            if est < 0:
                violations.append(
                    self._violation("non_negative", sub.cache_key, ">= 0", str(est))
                )
            upper = self._cross_product(sub)
            if est > upper * (1 + 1e-9):
                violations.append(
                    self._violation(
                        "cross_product_bound",
                        sub.cache_key,
                        f"<= {upper:g}",
                        f"{est:g}",
                    )
                )
        if self.monotonic:
            violations.extend(self._check_monotonic(query))
        return violations

    def _check_monotonic(self, query: Query) -> list[Violation]:
        violations: list[Violation] = []
        base = float(self.estimator.estimate(query))
        if not math.isfinite(base):
            return violations  # already reported by check_query
        allowed = base * self.tolerance + self.zero_tolerance
        for label, tightened in self._tightenings(query):
            est = float(self.estimator.estimate(tightened))
            self.checks_run += 1
            if est > allowed:
                violations.append(
                    self._violation(
                        f"monotone:{label}",
                        query.cache_key,
                        f"<= {allowed:g}",
                        f"{est:g}",
                        detail=tightened.to_sql(),
                    )
                )
        return violations

    def _tightenings(self, query: Query) -> list[tuple[str, Query]]:
        """Strictly-tighter variants of the query (subset of the results)."""
        out: list[tuple[str, Query]] = []
        # Shrink the first BETWEEN to its central half.
        for i, p in enumerate(query.predicates):
            if p.op is Op.BETWEEN:
                lo, hi = p.value
                q = (hi - lo) / 4.0
                shrunk = Predicate(p.column, Op.BETWEEN, (lo + q, hi - q))
                rest = query.predicates[:i] + query.predicates[i + 1 :]
                out.append(
                    (
                        "shrink_between",
                        Query(query.tables, query.joins, rest + (shrunk,)),
                    )
                )
                break
        # Conjoin a fresh half-domain range predicate.
        ref = (
            query.predicates[0].column
            if query.predicates
            else ColumnRef(
                query.tables[0],
                self.db.table(query.tables[0]).column_names[0],
            )
        )
        col = self.db.table(ref.table).column(ref.column)
        mid = (col.min + col.max) / 2.0
        conjunct = Predicate(ref, Op.LE, mid)
        if conjunct not in query.predicates:
            out.append(
                (
                    "add_conjunct",
                    Query(
                        query.tables, query.joins, query.predicates + (conjunct,)
                    ),
                )
            )
        return out

    def check_workload(self, queries: list[Query]) -> list[Violation]:
        out: list[Violation] = []
        for q in queries:
            out.extend(self.check_query(q))
        return out

    # -- bound soundness contracts ---------------------------------------------------

    def check_bound_soundness(
        self, queries: list[Query], *, executor: CardinalityExecutor | None = None
    ) -> list[Violation]:
        """``bound >= exact_count`` on every enumerated connected sub-query.

        The defining contract of a pessimistic estimator: its estimate is a
        *certificate*, so on every plan shape the enumerator can visit the
        certified value must dominate the true cardinality (computed by the
        independent exact executor).  Sub-queries too large to count
        exactly are skipped, not assumed sound.
        """
        executor = executor if executor is not None else CardinalityExecutor(self.db)
        violations: list[Violation] = []
        for q in queries:
            for sub in self._connected_subqueries(q):
                try:
                    exact = executor.cardinality(sub)
                except IntermediateTooLarge:
                    continue
                bound = float(self.estimator.estimate(sub))
                self.checks_run += 1
                if bound < exact:
                    violations.append(
                        self._violation(
                            "bound_soundness",
                            sub.cache_key,
                            f">= {exact}",
                            f"{bound:g}",
                            detail=sub.to_sql(),
                        )
                    )
        return violations

    def check_bound_dominates(
        self, point_estimator, queries: list[Query], *, tolerance: float | None = None
    ) -> list[Violation]:
        """``bound >= point_estimate`` on every enumerated sub-query.

        The serving-side pairing contract: a learned point estimate above
        its certified bound is exactly what the :class:`~repro.faults.
        BoundGuard` trips on, so a healthy (point, bound) pairing must not
        trip anywhere.  ``tolerance`` defaults to the checker's
        multiplicative slack; ``zero_tolerance`` absorbs sub-row
        fractional estimates against integral bounds.
        """
        tolerance = self.tolerance if tolerance is None else tolerance
        violations: list[Violation] = []
        for q in queries:
            for sub in self._connected_subqueries(q):
                bound = float(self.estimator.estimate(sub))
                point = float(point_estimator.estimate(sub))
                self.checks_run += 1
                allowed = bound * tolerance + self.zero_tolerance
                if not math.isfinite(point) or point > allowed:
                    violations.append(
                        self._violation(
                            "bound_dominates",
                            sub.cache_key,
                            f"<= {allowed:g}",
                            f"{point:g}",
                            detail=sub.to_sql(),
                        )
                    )
        return violations

    # -- schema-level domain contracts ---------------------------------------------

    def check_domain_contracts(self) -> list[Violation]:
        """Out-of-domain equality and strict-beyond-domain estimates are ~0.

        These are exactly the contracts the ``eq_selectivity`` domain check
        and the open/closed ``range_selectivity`` endpoints restore: an
        equality probe above the column's maximum, and a strict ``>`` at
        the maximum itself, both select nothing -- at any literal magnitude
        (no epsilon involved).
        """
        violations: list[Violation] = []
        for table_name in self.db.table_names:
            tbl = self.db.table(table_name)
            if tbl.n_rows == 0:
                continue
            for col_name in tbl.column_names:
                col = tbl.column(col_name)
                ref = ColumnRef(table_name, col_name)
                span = max(col.max - col.min, 1.0)
                probes = [
                    (
                        "eq_out_of_domain",
                        Predicate(ref, Op.EQ, col.max + span),
                    ),
                    (
                        "strict_beyond_domain",
                        Predicate(ref, Op.GT, col.max),
                    ),
                    (
                        "strict_below_domain",
                        Predicate(ref, Op.LT, col.min),
                    ),
                ]
                for check, pred in probes:
                    est = float(
                        self.estimator.estimate(
                            Query((table_name,), (), (pred,))
                        )
                    )
                    self.checks_run += 1
                    if not (0 <= est <= self.zero_tolerance):
                        violations.append(
                            self._violation(
                                check,
                                str(ref),
                                f"<= {self.zero_tolerance}",
                                f"{est:g}",
                                detail=str(pred),
                            )
                        )
        return violations

    # -- versioning contract -------------------------------------------------------

    def check_version_bump(
        self, mutate: Callable[[object], None], label: str = "mutate"
    ) -> list[Violation]:
        """Apply ``mutate(estimator)`` and require ``estimates_version`` grew.

        Estimators without an ``estimates_version`` attribute are skipped
        (the contract only binds estimators that participate in version-
        keyed caching).
        """
        before = getattr(self.estimator, "estimates_version", None)
        if before is None:
            return []
        mutate(self.estimator)
        self.checks_run += 1
        after = getattr(self.estimator, "estimates_version", 0)
        if after <= before:
            return [
                self._violation(
                    f"version_bump:{label}",
                    "estimates_version",
                    f"> {before}",
                    str(after),
                )
            ]
        return []
