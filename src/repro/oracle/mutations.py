"""Seeded bug mutations for validating the oracle itself.

A correctness oracle that has never caught anything proves nothing.  Each
entry here is a named, reversible monkeypatch re-introducing a real bug
class -- including the exact bugs the satellite fixes removed (float64
count accumulation, missing equality domain check, degenerate-bucket
endpoint counting, the ``to_range`` epsilon hack) -- plus representative
breakages of every other layer the oracle guards: executor lookups, the
cyclic-join materializer, predicate evaluation, estimator sanity and the
canonicalization/versioning contracts.

``benchmarks/bench_p5_oracle.py`` applies each mutation in isolation,
reruns the oracle and requires it to catch >= 90% of them; the context
managers restore every patched attribute on exit, so trials are
independent.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

import repro.engine.executor as executor_mod
from repro.cardest.base import BaseCardinalityEstimator
from repro.cardest.bounds import BoundSketchEstimator
from repro.optimizer.statistics import ColumnStats
from repro.optimizer.traditional import TraditionalCardinalityEstimator
from repro.sql.query import Join, Op, Predicate, Query

__all__ = ["MUTATIONS", "mutation_names", "apply_mutation"]


@contextmanager
def _patched(obj, attr, replacement):
    original = getattr(obj, attr)
    setattr(obj, attr, replacement)
    try:
        yield
    finally:
        setattr(obj, attr, original)


# -- S1: float64 count accumulation ----------------------------------------------


@contextmanager
def tree_count_float64():
    """Message-passing sums/products accumulate in float64 again (rounds
    past 2**53)."""

    def group_sum(keys, weights):
        if keys.size == 0:
            return keys, weights.astype(np.float64)
        uniq, inverse = np.unique(keys, return_inverse=True)
        sums = np.zeros(uniq.shape[0])
        np.add.at(sums, inverse, weights.astype(np.float64))
        return uniq, sums

    def weight_product(a, b):
        return a.astype(np.float64) * b.astype(np.float64)

    def weight_total(weights):
        return int(round(float(np.asarray(weights, dtype=np.float64).sum())))

    with _patched(executor_mod, "_group_sum", group_sum), _patched(
        executor_mod, "_weight_product", weight_product
    ), _patched(executor_mod, "_weight_total", weight_total):
        yield


# -- executor layer --------------------------------------------------------------


@contextmanager
def lookup_missing_counts_one():
    """Join keys with no partner count as one match instead of zero."""

    def lookup(uniq, sums, keys):
        if uniq.size == 0:
            return np.ones(keys.shape[0], dtype=np.int64)
        pos = np.clip(np.searchsorted(uniq, keys), 0, uniq.shape[0] - 1)
        return np.where(uniq[pos] == keys, sums[pos], 1)

    with _patched(executor_mod, "_lookup", lookup):
        yield


@contextmanager
def materializer_drops_cycle_edge():
    """The cyclic materializer forgets the cycle-closing join filter."""

    def mutated(self, query):
        pruned = Query(query.tables, query.joins[:-1], query.predicates)
        if executor_mod._join_graph_is_tree(pruned):
            return type(self)._tree_count(self, pruned)
        return original(self, pruned)

    original = executor_mod.CardinalityExecutor._materialized_count
    with _patched(
        executor_mod.CardinalityExecutor, "_materialized_count", mutated
    ):
        yield


@contextmanager
def filter_drops_last_predicate():
    """Per-table filtering silently ignores one predicate."""

    def mutated(db, query, table):
        tbl = db.table(table)
        mask = np.ones(tbl.n_rows, dtype=bool)
        for pred in query.predicates_on(table)[:-1]:
            mask &= pred.evaluate(tbl.values(pred.column.column))
        return np.flatnonzero(mask)

    with _patched(executor_mod, "_filtered_indices", mutated):
        yield


# -- predicate semantics ---------------------------------------------------------


@contextmanager
def between_evaluates_exclusive():
    """BETWEEN drops its endpoints (strict instead of inclusive)."""

    original = Predicate.evaluate

    def mutated(self, values):
        if self.op is Op.BETWEEN:
            lo, hi = self.value
            return (values > lo) & (values < hi)
        return original(self, values)

    with _patched(Predicate, "evaluate", mutated):
        yield


# -- S2/S3/S4: selectivity bugs --------------------------------------------------


@contextmanager
def eq_ignores_domain():
    """Equality falls back to the non-MCV estimate for any literal, even
    outside the column's domain."""

    def mutated(self, value):
        if self.n_rows == 0:
            return 0.0
        hit = np.nonzero(self.mcv_values == value)[0]
        if hit.size:
            return float(self.mcv_freqs[hit[0]])
        n_non_mcv_distinct = max(self.n_distinct - self.mcv_values.shape[0], 1)
        return self.non_mcv_fraction / n_non_mcv_distinct

    with _patched(ColumnStats, "eq_selectivity", mutated):
        yield


@contextmanager
def range_counts_touching_degenerate():
    """Degenerate histogram buckets count whenever they touch the range,
    even on an excluded (open) endpoint."""

    def mutated(self, lo, hi, *, inclusive_lo=True, inclusive_hi=True):
        if self.n_rows == 0:
            return 0.0
        if lo > hi:
            return 0.0
        sel = 0.0
        if self.mcv_values.size:
            in_range = (self.mcv_values >= lo) & (self.mcv_values <= hi)
            sel += float(self.mcv_freqs[in_range].sum())
        bounds = self.histogram_bounds
        if bounds.size >= 2 and self.non_mcv_fraction > 0:
            n_bins = bounds.size - 1
            frac = 0.0
            for b in range(n_bins):
                b_lo, b_hi = bounds[b], bounds[b + 1]
                if b_hi < lo or b_lo > hi:
                    continue
                if b_hi == b_lo:
                    frac += 1.0
                    continue
                covered_lo = max(b_lo, lo)
                covered_hi = min(b_hi, hi)
                frac += max(covered_hi - covered_lo, 0.0) / (b_hi - b_lo)
            sel += (frac / n_bins) * self.non_mcv_fraction
        return min(max(sel, 0.0), 1.0)

    with _patched(ColumnStats, "range_selectivity", mutated):
        yield


@contextmanager
def to_bounds_epsilon_hack():
    """Strict comparisons shift the literal by 1e-9 and report closed
    bounds -- the old ``to_range`` behaviour (wrong for integers, vanishes
    near 1e9)."""

    original = Predicate.to_bounds

    def mutated(self):
        if self.op is Op.LT:
            return (-np.inf, float(self.value) - 1e-9, True, True)
        if self.op is Op.GT:
            return (float(self.value) + 1e-9, np.inf, True, True)
        return original(self)

    with _patched(Predicate, "to_bounds", mutated):
        yield


# -- estimator sanity ------------------------------------------------------------


@contextmanager
def estimate_negative():
    """The traditional estimator returns negated cardinalities."""

    original = TraditionalCardinalityEstimator.estimate

    def mutated(self, query):
        return -abs(original(self, query)) - 1.0

    with _patched(TraditionalCardinalityEstimator, "estimate", mutated):
        yield


@contextmanager
def estimate_nan():
    """The traditional estimator returns NaN for join queries."""

    original = TraditionalCardinalityEstimator.estimate

    def mutated(self, query):
        if query.n_tables > 1:
            return float("nan")
        return original(self, query)

    with _patched(TraditionalCardinalityEstimator, "estimate", mutated):
        yield


@contextmanager
def estimate_overscaled():
    """Estimates blow past the unfiltered cross-product bound."""

    original = TraditionalCardinalityEstimator.estimate

    def mutated(self, query):
        return original(self, query) * 1e12 + 1e12

    with _patched(TraditionalCardinalityEstimator, "estimate", mutated):
        yield


@contextmanager
def bound_undercounts():
    """The pessimistic bound estimators silently report an eighth of the
    certified bound -- a broken certificate that still *looks* like a
    plausible estimate (finite, positive, under the cross product)."""

    original = BoundSketchEstimator._estimate

    def mutated(self, query):
        return original(self, query) / 8.0

    with _patched(BoundSketchEstimator, "_estimate", mutated):
        yield


# -- canonicalization / versioning contracts -------------------------------------


@contextmanager
def join_normalize_identity():
    """Join sides are no longer canonicalized, so commuted joins hash
    differently."""

    with _patched(Join, "normalized", lambda self: self):
        yield


@contextmanager
def version_bump_dropped():
    """Refits and feedback no longer bump ``estimates_version``."""

    with _patched(
        BaseCardinalityEstimator,
        "_bump_estimates_version",
        lambda self: None,
    ):
        yield


#: name -> zero-arg context-manager factory applying the mutation
MUTATIONS = {
    "tree_count_float64": tree_count_float64,
    "lookup_missing_counts_one": lookup_missing_counts_one,
    "materializer_drops_cycle_edge": materializer_drops_cycle_edge,
    "filter_drops_last_predicate": filter_drops_last_predicate,
    "between_evaluates_exclusive": between_evaluates_exclusive,
    "eq_ignores_domain": eq_ignores_domain,
    "range_counts_touching_degenerate": range_counts_touching_degenerate,
    "to_bounds_epsilon_hack": to_bounds_epsilon_hack,
    "estimate_negative": estimate_negative,
    "estimate_nan": estimate_nan,
    "estimate_overscaled": estimate_overscaled,
    "bound_undercounts": bound_undercounts,
    "join_normalize_identity": join_normalize_identity,
    "version_bump_dropped": version_bump_dropped,
}


def mutation_names() -> list[str]:
    return list(MUTATIONS)


def apply_mutation(name: str):
    """Context manager applying the named mutation for its duration."""
    try:
        return MUTATIONS[name]()
    except KeyError:
        raise KeyError(
            f"unknown mutation {name!r}; available: {mutation_names()}"
        ) from None
