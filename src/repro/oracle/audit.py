"""Sampled online re-verification of served results.

The offline oracle layers run over generated workloads; this one rides the
serving path.  An :class:`OnlineAuditor` deterministically samples one in
``every`` served queries and re-derives the reported cardinality with the
independent pure-Python reference (or, given the served plan, re-executes
the plan tree literally), filing the outcome on the
:class:`~repro.serve.telemetry.TelemetryBus` as counters
(``oracle.audited`` / ``oracle.violations`` / ``oracle.skipped``) and as a
per-trace ``audit`` tag.  Sampling is a pure function of observation
order -- no wall clock, no RNG -- so audited runs keep the serving stack's
byte-identical same-seed determinism contract.
"""

from __future__ import annotations

from repro.engine.executor import CardinalityExecutor, IntermediateTooLarge
from repro.engine.plans import Plan
from repro.oracle.planexec import PlanInterpreter, PlanResultTooLarge
from repro.oracle.reference import ReferenceTooLarge, reference_count
from repro.oracle.report import OracleReport, Violation
from repro.sql.query import Query, query_hash
from repro.storage.catalog import Database

__all__ = ["OnlineAuditor"]


class OnlineAuditor:
    """Re-verify a deterministic 1-in-``every`` sample of served queries.

    ``observe`` checks a reported cardinality against the reference count;
    ``observe_plan`` checks a served plan's literal execution against the
    exact executor.  Both return the audit tag recorded in telemetry:
    ``""`` (not sampled), ``"ok"``, ``"violation"`` or ``"skipped"`` (the
    re-verification itself was too expensive under the row guards).
    """

    def __init__(
        self,
        db: Database,
        *,
        every: int = 16,
        max_rows: int = 200_000,
        telemetry=None,
        bound_guard=None,
    ) -> None:
        if every < 1:
            raise ValueError(f"audit sampling period must be >= 1, got {every}")
        self.db = db
        self.every = every
        self.max_rows = max_rows
        self.telemetry = telemetry
        # Optional repro.faults.BoundGuard: every exact count the audit
        # derives is also checked against the certified upper bound, so a
        # violated bound (drift without refresh) trips serving degradation
        # even when the *reported* cardinality audits clean.
        self.bound_guard = bound_guard
        self.report = OracleReport()
        self._observed = 0
        # The plan path keeps its own executor; its memo doubles as the
        # audit's cache so repeated queries stay cheap.
        self._executor = CardinalityExecutor(db)
        self._interpreter = PlanInterpreter(db, max_rows=max_rows)

    # -- sampling ----------------------------------------------------------------

    def _sampled(self) -> bool:
        turn = self._observed
        self._observed += 1
        return turn % self.every == 0

    def _file(self, tag: str, bus) -> str:
        bus = bus if bus is not None else self.telemetry
        if bus is not None:
            bus.incr("oracle.audited")
            if tag == "violation":
                bus.incr("oracle.violations")
            elif tag == "skipped":
                bus.incr("oracle.skipped")
        return tag

    # -- audit modes -------------------------------------------------------------

    def observe(
        self, query: Query, reported_cardinality: int, *, bus=None
    ) -> str:
        """Audit a served (query, cardinality) pair against the reference."""
        if not self._sampled():
            return ""
        self.report.record_check("audit")
        try:
            truth = reference_count(self.db, query, max_rows=self.max_rows)
        except ReferenceTooLarge:
            return self._file("skipped", bus)
        if self.bound_guard is not None:
            self.bound_guard.observe_count(
                query, truth, bus=bus if bus is not None else self.telemetry
            )
        if truth != int(reported_cardinality):
            self.report.extend(
                [
                    Violation(
                        layer="audit",
                        check="served_cardinality",
                        subject=query_hash(query),
                        expected=str(truth),
                        actual=str(int(reported_cardinality)),
                        detail=query.to_sql(),
                    )
                ]
            )
            return self._file("violation", bus)
        return self._file("ok", bus)

    def observe_plan(self, query: Query, plan: Plan, *, bus=None) -> str:
        """Audit a served plan: literal execution vs the exact count."""
        if not self._sampled():
            return ""
        self.report.record_check("audit")
        try:
            exact = self._executor.cardinality(query)
            produced = self._interpreter.count(plan)
        except (IntermediateTooLarge, PlanResultTooLarge):
            return self._file("skipped", bus)
        if produced != exact:
            self.report.extend(
                [
                    Violation(
                        layer="audit",
                        check="served_plan",
                        subject=query_hash(query),
                        expected=str(exact),
                        actual=str(produced),
                        detail=plan.signature(),
                    )
                ]
            )
            return self._file("violation", bus)
        return self._file("ok", bus)

    # -- reporting ---------------------------------------------------------------

    @property
    def n_observed(self) -> int:
        return self._observed

    @property
    def n_violations(self) -> int:
        return self.report.n_violations

    def stats(self) -> dict:
        """Gauge-compatible summary for telemetry attachment."""
        return {
            "observed": self._observed,
            "audited": self.report.checks.get("audit", 0),
            "violations": self.report.n_violations,
        }
