"""Metamorphic query transforms and the suite that checks them.

Metamorphic testing sidesteps the oracle problem: we may not know a query's
true count a priori, but we *do* know that certain rewrites cannot change
it.  Each transform here is result-preserving by construction --

- **add_tautology**: conjoin ``col <= max(col over the data)``, which every
  row satisfies;
- **split_between**: rewrite ``col BETWEEN lo AND hi`` as the conjunction
  ``col >= lo AND col <= hi``;
- **expand_in_to_or**: rewrite ``col IN (a, b, ...)`` as the disjunction
  ``col = a OR col = b OR ...`` (singleton IN becomes plain equality);
- **permute_tables** / **commute_joins**: reorder the FROM list and swap
  each join's sides.  These must additionally leave :func:`~repro.sql.
  query.query_hash` unchanged -- the repo's canonicalization contract that
  the cardinality cache, canary split and experience store all rely on.

The suite runs each applicable transform over a workload, asserting the
exact executor returns the same count for original and transformed query.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.executor import CardinalityExecutor, IntermediateTooLarge
from repro.oracle.report import Violation
from repro.sql.query import (
    ColumnRef,
    Join,
    Op,
    OrPredicate,
    Predicate,
    Query,
    query_hash,
)
from repro.storage.catalog import Database

__all__ = ["MetamorphicSuite", "TRANSFORMS"]


def _columns_used(query: Query) -> list:
    """ColumnRefs mentioned by the query's predicates, in canonical order."""
    return [p.column for p in query.predicates]


def add_tautology(db: Database, query: Query) -> Query | None:
    """Conjoin a predicate every row satisfies: ``col <= data max``."""
    cols = _columns_used(query)
    if not cols:
        # Fall back to the first column of the first table.
        table = query.tables[0]
        names = db.table(table).column_names
        if not names:
            return None
        ref = ColumnRef(table, names[0])
    else:
        ref = cols[0]
    ceiling = db.table(ref.table).column(ref.column).max
    taut = Predicate(ref, Op.LE, ceiling)
    if taut in query.predicates:
        return None
    return Query(query.tables, query.joins, query.predicates + (taut,))


def split_between(db: Database, query: Query) -> Query | None:
    """Split the first BETWEEN predicate into two range conjuncts."""
    for i, p in enumerate(query.predicates):
        if p.op is Op.BETWEEN:
            lo, hi = p.value
            rest = query.predicates[:i] + query.predicates[i + 1 :]
            split = (
                Predicate(p.column, Op.GE, float(lo)),
                Predicate(p.column, Op.LE, float(hi)),
            )
            return Query(query.tables, query.joins, rest + split)
    return None


def expand_in_to_or(db: Database, query: Query) -> Query | None:
    """Expand the first IN predicate into a disjunction of equalities."""
    for i, p in enumerate(query.predicates):
        if p.op is Op.IN:
            values = sorted(p.value)
            rest = query.predicates[:i] + query.predicates[i + 1 :]
            if len(values) == 1:
                expanded = Predicate(p.column, Op.EQ, float(values[0]))
            else:
                expanded = OrPredicate(
                    p.column,
                    tuple(
                        Predicate(p.column, Op.EQ, float(v)) for v in values
                    ),
                )
            return Query(query.tables, query.joins, rest + (expanded,))
    return None


def permute_tables(db: Database, query: Query) -> Query | None:
    """Rebuild with the FROM list (and join/predicate lists) reversed."""
    if query.n_tables < 2:
        return None
    return Query(
        tuple(reversed(query.tables)),
        tuple(reversed(query.joins)),
        tuple(reversed(query.predicates)),
    )


def commute_joins(db: Database, query: Query) -> Query | None:
    """Swap the two sides of every join condition."""
    if not query.joins:
        return None
    return Query(
        query.tables,
        tuple(Join(j.right, j.left) for j in query.joins),
        query.predicates,
    )


#: transform name -> (fn, must_preserve_query_hash)
TRANSFORMS: dict[
    str, tuple[Callable[[Database, Query], Query | None], bool]
] = {
    "add_tautology": (add_tautology, False),
    "split_between": (split_between, False),
    "expand_in_to_or": (expand_in_to_or, False),
    "permute_tables": (permute_tables, True),
    "commute_joins": (commute_joins, True),
}


class MetamorphicSuite:
    """Run result-preserving transforms over a workload and compare counts."""

    def __init__(
        self, db: Database, executor: CardinalityExecutor | None = None
    ) -> None:
        self.db = db
        self.executor = (
            executor if executor is not None else CardinalityExecutor(db)
        )
        self.checks_run = 0
        self.skipped = 0

    def check_query(self, query: Query) -> list[Violation]:
        violations: list[Violation] = []
        qh = query_hash(query)
        try:
            baseline = self.executor.cardinality(query)
        except IntermediateTooLarge:
            self.skipped += 1
            return violations
        for name, (transform, hash_preserving) in TRANSFORMS.items():
            transformed = transform(self.db, query)
            if transformed is None:
                continue
            self.checks_run += 1
            if hash_preserving and query_hash(transformed) != qh:
                violations.append(
                    Violation(
                        layer="metamorphic",
                        check=f"{name}:query_hash",
                        subject=qh,
                        expected=qh,
                        actual=query_hash(transformed),
                        detail=transformed.to_sql(),
                    )
                )
            try:
                count = self.executor.cardinality(transformed)
            except IntermediateTooLarge:
                self.skipped += 1
                continue
            if count != baseline:
                violations.append(
                    Violation(
                        layer="metamorphic",
                        check=name,
                        subject=qh,
                        expected=str(baseline),
                        actual=str(count),
                        detail=transformed.to_sql(),
                    )
                )
        return violations

    def check_workload(self, queries: list[Query]) -> list:
        out = []
        for q in queries:
            out.extend(self.check_query(q))
        return out
