"""Metamorphic query suite over the shared result-preserving transforms.

Metamorphic testing sidesteps the oracle problem: we may not know a query's
true count a priori, but we *do* know that certain rewrites cannot change
it.  The transforms themselves live in :mod:`repro.sql.transforms` (one
registry shared with the rewrite subsystem's validator) --

- **add_tautology**: conjoin ``col <= max(col over the data)``, which every
  row satisfies;
- **split_between**: rewrite ``col BETWEEN lo AND hi`` as the conjunction
  ``col >= lo AND col <= hi``;
- **expand_in_to_or**: rewrite ``col IN (a, b, ...)`` as the disjunction
  ``col = a OR col = b OR ...`` (singleton IN becomes plain equality);
- **permute_tables** / **commute_joins**: reorder the FROM list and swap
  each join's sides.  These must additionally leave :func:`~repro.sql.
  query.query_hash` unchanged -- the repo's canonicalization contract that
  the cardinality cache, canary split and experience store all rely on.

The suite runs each applicable transform over a workload, asserting the
exact executor returns the same count for original and transformed query
(via the shared :func:`repro.sql.transforms.verify_transform`).
"""

from __future__ import annotations

from typing import Callable

from repro.engine.executor import CardinalityExecutor, IntermediateTooLarge
from repro.oracle.report import Violation
from repro.sql.query import Query, query_hash
from repro.sql.transforms import (
    TRANSFORM_REGISTRY,
    add_tautology,
    commute_joins,
    expand_in_to_or,
    permute_tables,
    split_between,
    verify_transform,
)
from repro.storage.catalog import Database

__all__ = ["MetamorphicSuite", "TRANSFORMS"]


#: Backward-compatible view of the shared registry:
#: transform name -> (fn, must_preserve_query_hash)
TRANSFORMS: dict[
    str, tuple[Callable[[Database, Query], Query | None], bool]
] = {
    name: (t.fn, t.preserves_query_hash)
    for name, t in TRANSFORM_REGISTRY.items()
}


class MetamorphicSuite:
    """Run result-preserving transforms over a workload and compare counts."""

    def __init__(
        self, db: Database, executor: CardinalityExecutor | None = None
    ) -> None:
        self.db = db
        self.executor = (
            executor if executor is not None else CardinalityExecutor(db)
        )
        self.checks_run = 0
        self.skipped = 0

    def check_query(self, query: Query) -> list[Violation]:
        violations: list[Violation] = []
        qh = query_hash(query)
        try:
            baseline = self.executor.cardinality(query)
        except IntermediateTooLarge:
            self.skipped += 1
            return violations
        for name, transform in TRANSFORM_REGISTRY.items():
            transformed = transform.apply(self.db, query)
            if transformed is None:
                continue
            self.checks_run += 1
            if (
                transform.preserves_query_hash
                and query_hash(transformed) != qh
            ):
                violations.append(
                    Violation(
                        layer="metamorphic",
                        check=f"{name}:query_hash",
                        subject=qh,
                        expected=qh,
                        actual=query_hash(transformed),
                        detail=transformed.to_sql(),
                    )
                )
            outcome = verify_transform(
                self.db,
                query,
                transformed,
                baseline=baseline,
                executor=self.executor,
            )
            if outcome.skipped:
                self.skipped += 1
                continue
            if outcome.failed:
                violations.append(
                    Violation(
                        layer="metamorphic",
                        check=name,
                        subject=qh,
                        expected=str(outcome.expected),
                        actual=str(outcome.actual),
                        detail=transformed.to_sql(),
                    )
                )
        return violations

    def check_workload(self, queries: list[Query]) -> list:
        out = []
        for q in queries:
            out.extend(self.check_query(q))
        return out
