"""Differential plan-correctness checking.

Every physical plan for a query must compute the same answer: the exact
count the :class:`~repro.engine.CardinalityExecutor` reports.  The checker
enumerates the plan shapes the stack actually serves -- every enumeration
algorithm, every Bao hint-set arm, every Lero cardinality-scaling factor --
executes each one literally with the :class:`~repro.oracle.planexec.
PlanInterpreter`, and reports any disagreement.  The executor itself is
cross-checked against the pure-Python :func:`~repro.oracle.reference.
reference_count`, so a bug in the ground truth cannot silently vouch for
itself.
"""

from __future__ import annotations

from repro.core.interfaces import ScaledCardinalities
from repro.engine.executor import CardinalityExecutor, IntermediateTooLarge
from repro.engine.plans import Plan
from repro.optimizer.hints import HintSet
from repro.optimizer.planner import Optimizer
from repro.oracle.planexec import PlanInterpreter, PlanResultTooLarge
from repro.oracle.reference import ReferenceTooLarge, reference_count
from repro.oracle.report import Violation
from repro.sql.query import Query, query_hash
from repro.storage.catalog import Database

__all__ = ["PlanEquivalenceChecker"]

#: the Lero-style estimate-scaling factors swept for extra plan diversity
DEFAULT_SCALING_FACTORS: tuple[float, ...] = (0.01, 0.1, 10.0, 100.0)


class PlanEquivalenceChecker:
    """Assert that every enumerated plan shape agrees with the exact count.

    Parameters mirror the serving stack: ``optimizer`` is the native
    optimizer whose enumerator produces the plans (a fresh one is built
    when omitted); ``scaling_factors`` adds Lero-arm plan diversity via
    :class:`~repro.core.interfaces.ScaledCardinalities`.  ``max_rows``
    guards the literal interpreter; plans whose true intermediates exceed
    it are skipped (counted in :attr:`skipped`), not failed.
    """

    def __init__(
        self,
        db: Database,
        optimizer: Optimizer | None = None,
        *,
        algorithms: tuple[str, ...] = ("dp", "greedy", "left_deep"),
        arms: list[HintSet] | None = None,
        scaling_factors: tuple[float, ...] = DEFAULT_SCALING_FACTORS,
        max_rows: int = 2_000_000,
        reference_max_rows: int = 200_000,
        check_reference: bool = True,
    ) -> None:
        self.db = db
        self.optimizer = optimizer if optimizer is not None else Optimizer(db)
        self.algorithms = algorithms
        self.arms = arms if arms is not None else HintSet.bao_arms()
        self.scaling_factors = scaling_factors
        self.interpreter = PlanInterpreter(db, max_rows=max_rows)
        self.executor = CardinalityExecutor(db)
        self.reference_max_rows = reference_max_rows
        self.check_reference = check_reference
        self.plans_checked = 0
        self.skipped = 0

    # -- plan collection ---------------------------------------------------------

    def plans_for(self, query: Query) -> list[tuple[str, Plan]]:
        """Every distinct plan shape the stack would consider, labelled."""
        labelled: list[tuple[str, Plan]] = []
        for algorithm in self.algorithms:
            labelled.append(
                (f"algo:{algorithm}", self.optimizer.plan(query, algorithm=algorithm))
            )
        for arm in self.arms:
            labelled.append(
                (f"arm:{arm.name()}", self.optimizer.plan(query, hints=arm))
            )
        for factor in self.scaling_factors:
            scaled = self.optimizer.with_estimator(
                ScaledCardinalities(self.optimizer.estimator, factor)
            )
            labelled.append((f"scale:{factor:g}", scaled.plan(query)))
        seen: set[str] = set()
        unique: list[tuple[str, Plan]] = []
        for label, plan in labelled:
            sig = plan.signature()
            if sig not in seen:
                seen.add(sig)
                unique.append((label, plan))
        return unique

    # -- checking ----------------------------------------------------------------

    def check_query(self, query: Query) -> list[Violation]:
        """All plan-equivalence violations for one query."""
        violations: list[Violation] = []
        qh = query_hash(query)
        try:
            exact = self.executor.cardinality(query)
        except IntermediateTooLarge:
            self.skipped += 1
            return violations
        if self.check_reference:
            try:
                ref = reference_count(
                    self.db, query, max_rows=self.reference_max_rows
                )
            except ReferenceTooLarge:
                self.skipped += 1
            else:
                self.plans_checked += 1
                if ref != exact:
                    violations.append(
                        Violation(
                            layer="plan_equivalence",
                            check="executor_vs_reference",
                            subject=qh,
                            expected=str(ref),
                            actual=str(exact),
                            detail=query.to_sql(),
                        )
                    )
        for label, plan in self.plans_for(query):
            try:
                produced = self.interpreter.count(plan)
            except PlanResultTooLarge:
                self.skipped += 1
                continue
            self.plans_checked += 1
            if produced != exact:
                violations.append(
                    Violation(
                        layer="plan_equivalence",
                        check="plan_vs_exact",
                        subject=f"{qh}:{label}",
                        expected=str(exact),
                        actual=str(produced),
                        detail=plan.signature(),
                    )
                )
        return violations

    def check_workload(self, queries: list[Query]) -> list[Violation]:
        out: list[Violation] = []
        for q in queries:
            out.extend(self.check_query(q))
        return out
