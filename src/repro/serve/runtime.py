"""The serving runtime: N concurrent client sessions over one backend.

:class:`ServingRuntime` turns the run-to-completion workbench into a
long-lived server: a workload is partitioned into per-session request
queues with seeded arrival times (:func:`build_schedule`), one thread per
session drains its queue, and admission control sheds work that a real
front-end would refuse -- requests that waited past ``timeout_ms``, that
arrived behind a too-deep session queue, or that hit the global
``max_in_flight`` ceiling -- each returning a typed :class:`Rejected`
outcome instead of a result.

**Determinism.** The optimizer/model stack underneath is stateful and not
thread-safe, and learned components train on the feedback stream, so the
order queries reach the backend changes every later decision.  The runtime
therefore runs a *single-writer execution core*: all requests carry a
global sequence number (schedule order: arrival time, then session id) and
a turn gate admits exactly one session thread at a time, in that order.
Threads give real queueing behaviour; the gate guarantees that two runs
with the same schedule and seeds produce byte-identical telemetry
snapshots -- the property the serving smoke test asserts.  Time inside the
core is *virtual* (arrival offsets plus simulated latencies), so admission
decisions are reproducible and independent of host load; wall-clock
figures are reported separately in :class:`RunReport` and never enter the
telemetry bus.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import ConfigError
from repro.pilotscope.console import PilotScopeConsole
from repro.serve.deployment import query_hash
from repro.serve.telemetry import TelemetryBus, TraceRecord
from repro.sql.query import Query

__all__ = [
    "Request",
    "Served",
    "Rejected",
    "RuntimeConfig",
    "RunReport",
    "ConsoleBackend",
    "build_schedule",
    "ServingRuntime",
]


@dataclass(frozen=True)
class Request:
    """One scheduled client request."""

    session_id: int
    seq: int  # position within the session's queue
    global_seq: int  # position in the deterministic global order
    arrival_ms: float  # virtual arrival offset from run start
    query: Query


@dataclass(frozen=True)
class Served:
    """A request that made it through admission and was executed."""

    request: Request
    stage: str
    plan_source: str
    latency_ms: float
    wait_ms: float
    cardinality: int


@dataclass(frozen=True)
class Rejected:
    """A request shed by admission control.

    ``reason`` is one of ``"timeout"`` (waited longer than the client
    timeout before service could start), ``"queue_full"`` (the session's
    backlog exceeded ``queue_capacity`` when its turn came) or
    ``"overload"`` (too many sessions busy: the global in-flight ceiling).
    """

    request: Request
    reason: str
    wait_ms: float


@dataclass(frozen=True)
class RuntimeConfig:
    """Admission-control knobs.

    ``None`` disables the corresponding check.  ``max_in_flight`` counts
    sessions whose (virtual) execution overlaps a request's start time.
    """

    timeout_ms: float | None = 2_000.0
    queue_capacity: int | None = 16
    max_in_flight: int | None = None


@dataclass(frozen=True)
class RunReport:
    """Aggregate outcome of one :meth:`ServingRuntime.run`."""

    n_requests: int
    n_served: int
    rejected: dict[str, int]
    wall_seconds: float
    simulated_span_ms: float  # virtual time from first arrival to last finish
    outcomes: list  # Served | Rejected, sorted by (session_id, seq)

    @property
    def wall_qps(self) -> float:
        return self.n_served / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def simulated_qps(self) -> float:
        span_s = self.simulated_span_ms / 1_000.0
        return self.n_served / span_s if span_s else 0.0


def build_schedule(
    queries: list[Query],
    n_sessions: int,
    *,
    seed: int = 0,
    mean_interarrival_ms: float = 20.0,
) -> list[list[Request]]:
    """Deterministic session assignment + arrival times for a workload.

    Queries are dealt round-robin over ``n_sessions`` sessions; each
    session draws exponential interarrival gaps from its own seeded
    generator, so the whole schedule is a pure function of
    ``(queries, n_sessions, seed, mean_interarrival_ms)``.  The returned
    requests carry global sequence numbers ordering them by
    ``(arrival_ms, session_id)`` -- the order the execution core uses.
    """
    import numpy as np

    if n_sessions < 1:
        raise ConfigError("need at least one session")
    per_session: list[list] = [[] for _ in range(n_sessions)]
    for i, query in enumerate(queries):
        per_session[i % n_sessions].append(query)
    pending: list[tuple[float, int, int, Query]] = []
    for sid, qs in enumerate(per_session):
        rng = np.random.default_rng((seed, sid))
        clock = 0.0
        for seq, q in enumerate(qs):
            clock += float(rng.exponential(mean_interarrival_ms))
            pending.append((clock, sid, seq, q))
    pending.sort(key=lambda t: (t[0], t[1], t[2]))
    schedule: list[list[Request]] = [[] for _ in range(n_sessions)]
    for g, (arrival, sid, seq, q) in enumerate(pending):
        schedule[sid].append(
            Request(
                session_id=sid,
                seq=seq,
                global_seq=g,
                arrival_ms=arrival,
                query=q,
            )
        )
    return schedule


class ConsoleBackend:
    """Adapt a :class:`PilotScopeConsole` to the runtime's backend surface.

    The console's transparent driver routing becomes the serving path;
    there is no deployment stage, so every decision reports ``live``.
    """

    def __init__(self, console: PilotScopeConsole) -> None:
        self.console = console

    def serve(self, query: Query):
        outcome = self.console.execute(query)
        entry = self.console.query_log[-1]
        return _ConsoleDecision(
            stage="live",
            plan_source=entry.served_by,
            latency_ms=outcome.latency_ms,
            cardinality=outcome.cardinality,
        )


@dataclass(frozen=True)
class _ConsoleDecision:
    stage: str
    plan_source: str
    latency_ms: float
    cardinality: int


class _TurnGate:
    """Admits threads one at a time, in global-sequence order."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._next = 0

    def wait_turn(self, turn: int) -> None:
        with self._cond:
            while self._next != turn:
                self._cond.wait()

    def advance(self) -> None:
        with self._cond:
            self._next += 1
            self._cond.notify_all()


class ServingRuntime:
    """Run a scheduled workload through a backend with admission control.

    ``backend`` needs ``serve(query)`` returning an object with
    ``stage``, ``plan_source``, ``latency_ms`` and ``cardinality`` --
    satisfied by :class:`repro.serve.deployment.DeploymentManager` and by
    :class:`ConsoleBackend`.  ``hooks`` maps a global sequence number to a
    callable run (inside the execution core, so deterministically) just
    before that request is processed -- the drift scenario uses this to
    mutate the database mid-stream.

    ``auditor`` optionally attaches a sampled online correctness audit
    (see :class:`repro.oracle.OnlineAuditor`): each served request passes
    through ``auditor.observe(query, cardinality, bus=...)`` inside the
    single-writer core (so sampling stays deterministic) and the returned
    tag lands on the request's :class:`~repro.serve.telemetry.TraceRecord`.
    """

    def __init__(
        self,
        backend,
        *,
        config: RuntimeConfig | None = None,
        telemetry: TelemetryBus | None = None,
        hooks: dict[int, Callable[[], None]] | None = None,
        auditor=None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else RuntimeConfig()
        self.telemetry = (
            telemetry
            if telemetry is not None
            else getattr(backend, "telemetry", None) or TelemetryBus()
        )
        self.hooks = dict(hooks) if hooks else {}
        self.auditor = auditor
        # Surface the backend's plan cache (deployment manager or console)
        # in every telemetry snapshot, like the cardinality cache.
        plan_cache = getattr(backend, "plan_cache", None)
        if plan_cache is None:
            console = getattr(backend, "console", None)
            plan_cache = getattr(console, "plan_cache", None)
        if plan_cache is not None and hasattr(plan_cache, "stats"):
            self.telemetry.attach_gauge("plan_cache", plan_cache.stats)

    # -- the execution core (always entered in global_seq order) -----------------

    def _process(
        self,
        req: Request,
        arrivals: list[list[float]],
        session_clock: list[float],
        busy_until: list[float],
    ):
        config = self.config
        start = max(session_clock[req.session_id], req.arrival_ms)
        wait = start - req.arrival_ms
        if config.timeout_ms is not None and wait > config.timeout_ms:
            return Rejected(request=req, reason="timeout", wait_ms=wait)
        # Session backlog when service could start: requests of this
        # session that have arrived (arrival <= start) but not yet started.
        backlog = (
            bisect_right(arrivals[req.session_id], start) - req.seq
        )
        if config.queue_capacity is not None and backlog > config.queue_capacity:
            return Rejected(request=req, reason="queue_full", wait_ms=wait)
        if config.max_in_flight is not None:
            in_flight = sum(
                1
                for sid, until in enumerate(busy_until)
                if sid != req.session_id and until > start
            )
            if in_flight >= config.max_in_flight:
                return Rejected(request=req, reason="overload", wait_ms=wait)
        decision = self.backend.serve(req.query)
        finish = start + decision.latency_ms
        session_clock[req.session_id] = finish
        busy_until[req.session_id] = finish
        return Served(
            request=req,
            stage=decision.stage,
            plan_source=decision.plan_source,
            latency_ms=decision.latency_ms,
            wait_ms=wait,
            cardinality=decision.cardinality,
        )

    def _file_telemetry(
        self, outcome, cache_before, cache_after, audit: str = ""
    ) -> None:
        bus = self.telemetry
        req = outcome.request
        if isinstance(outcome, Served):
            bus.incr("runtime.served")
            bus.observe("wait_ms", outcome.wait_ms)
            hits = misses = 0
            if cache_before is not None and cache_after is not None:
                hits = int(cache_after["hits"] - cache_before["hits"])
                misses = int(cache_after["misses"] - cache_before["misses"])
            bus.trace(
                TraceRecord(
                    session_id=req.session_id,
                    seq=req.seq,
                    query_hash=query_hash(req.query),
                    outcome="served",
                    stage=outcome.stage,
                    plan_source=outcome.plan_source,
                    estimator_tag=getattr(self.backend, "name", ""),
                    latency_ms=outcome.latency_ms,
                    wait_ms=outcome.wait_ms,
                    cache_hits=hits,
                    cache_misses=misses,
                    audit=audit,
                )
            )
        else:
            bus.incr(f"runtime.rejected.{outcome.reason}")
            bus.trace(
                TraceRecord(
                    session_id=req.session_id,
                    seq=req.seq,
                    query_hash=query_hash(req.query),
                    outcome=outcome.reason,
                    stage="",
                    plan_source="",
                    estimator_tag=getattr(self.backend, "name", ""),
                    latency_ms=0.0,
                    wait_ms=outcome.wait_ms,
                )
            )

    # -- session workers -----------------------------------------------------------

    def _run_session(
        self,
        requests: list[Request],
        gate: _TurnGate,
        arrivals: list[list[float]],
        session_clock: list[float],
        busy_until: list[float],
        outcomes: list,
        errors: list,
    ) -> None:
        cache_fn = getattr(self.backend, "cache_stats", None)
        for req in requests:
            gate.wait_turn(req.global_seq)
            try:
                # After any session failed, the remaining turns still must
                # advance (other sessions block on them) but do no work.
                if not errors:
                    hook = self.hooks.get(req.global_seq)
                    if hook is not None:
                        hook()
                    before = cache_fn() if cache_fn is not None else None
                    outcome = self._process(
                        req, arrivals, session_clock, busy_until
                    )
                    after = cache_fn() if cache_fn is not None else None
                    audit = ""
                    if self.auditor is not None and isinstance(outcome, Served):
                        audit = self.auditor.observe(
                            req.query,
                            outcome.cardinality,
                            bus=self.telemetry,
                        )
                    self._file_telemetry(outcome, before, after, audit)
                    outcomes[req.global_seq] = outcome
            except BaseException as exc:  # surface worker failures to run()
                errors.append(exc)
            finally:
                gate.advance()

    def run(self, schedule: list[list[Request]]) -> RunReport:
        """Execute one scheduled workload; blocks until all sessions drain."""
        n_sessions = len(schedule)
        n_requests = sum(len(s) for s in schedule)
        arrivals = [[r.arrival_ms for r in sess] for sess in schedule]
        session_clock = [0.0] * n_sessions
        busy_until = [0.0] * n_sessions
        outcomes: list = [None] * n_requests
        errors: list = []
        gate = _TurnGate()
        t0 = time.perf_counter()
        threads = [
            threading.Thread(
                target=self._run_session,
                args=(
                    sess,
                    gate,
                    arrivals,
                    session_clock,
                    busy_until,
                    outcomes,
                    errors,
                ),
                name=f"serve-session-{sid}",
                daemon=True,
            )
            for sid, sess in enumerate(schedule)
            if sess
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        if errors:
            raise errors[0]
        served = [o for o in outcomes if isinstance(o, Served)]
        rejected: dict[str, int] = {}
        for o in outcomes:
            if isinstance(o, Rejected):
                rejected[o.reason] = rejected.get(o.reason, 0) + 1
        span = max(busy_until) if served else 0.0
        ordered = sorted(
            (o for o in outcomes if o is not None),
            key=lambda o: (o.request.session_id, o.request.seq),
        )
        return RunReport(
            n_requests=n_requests,
            n_served=len(served),
            rejected=dict(sorted(rejected.items())),
            wall_seconds=wall,
            simulated_span_ms=span,
            outcomes=ordered,
        )
