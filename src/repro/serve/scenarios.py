"""Canned serving scenarios for tests, benchmarks and examples.

Each scenario assembles the full stack -- database, native optimizer,
execution simulator, a learned (Bao-style) optimizer staged behind a
:class:`~repro.serve.deployment.DeploymentManager`, and a scheduled
multi-session workload -- and returns it as one :class:`ServingScenario`
ready to :meth:`~ServingScenario.run`:

- :func:`steady_state_scenario`: a healthy canary deployment under
  sustained concurrent traffic (the throughput benchmark's subject);
- :func:`drift_scenario`: the same deployment, but halfway through the
  stream the database mutates (:func:`repro.bench.apply_drift`) under the
  runtime's deterministic mid-stream hook;
- :func:`injected_regression_scenario`: the staged model turns adversarial
  after ``trigger_at`` decisions (it starts proposing nested-loop-only
  plans), which must trip the deployment's rolling regression window and
  roll the model back automatically.
- :func:`chaos_scenario`: the full degradation ladder under a seeded
  :class:`~repro.faults.FaultPlan` -- the estimator throws / returns
  NaN / serves stale statistics behind a :class:`~repro.faults.
  FallbackEstimator`, the learned optimizer crashes and stalls behind the
  deployment's circuit breaker, and the run must still complete with every
  query answered.  Byte-for-byte reproducible per seed.
- :func:`bound_guard_scenario`: a fault-injected point estimator served
  behind a :class:`~repro.faults.BoundGuard` -- every estimate checked
  against its certified pessimistic bound, violations tripping the guard
  breaker and routing to the histogram fallback, with the online auditor
  feeding observed exact counts back into the guard.
- :func:`adversarial_drift_scenario`: optimistic vs pessimistic
  (``risk="worst_case"``) planning on a LIVE deployment while
  :func:`repro.bench.adversarial_hot_key_drift` explodes join fan-out
  mid-stream -- the tail-latency comparison ``bench_p8_bounds.py`` gates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.workloads import (
    adversarial_hot_key_drift,
    apply_drift,
    hot_key_probe_queries,
    hot_key_targets,
)
from repro.cardest.bounds import MCVJoinBoundEstimator
from repro.core.framework import CandidatePlan
from repro.e2e.bao import BaoOptimizer
from repro.engine.simulator import ExecutionSimulator
from repro.faults import (
    BoundGuard,
    CircuitBreaker,
    FallbackEstimator,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.optimizer.hints import HintSet
from repro.optimizer.plancache import PlanCache
from repro.optimizer.planner import Optimizer
from repro.optimizer.traditional import TraditionalCardinalityEstimator
from repro.oracle.audit import OnlineAuditor
from repro.serve.deployment import DeploymentManager, Stage
from repro.serve.runtime import (
    Request,
    RunReport,
    RuntimeConfig,
    ServingRuntime,
    build_schedule,
)
from repro.serve.telemetry import TelemetryBus
from repro.sql.generator import WorkloadGenerator
from repro.sql.query import Query
from repro.storage.catalog import Database
from repro.storage.datasets import make_stats_lite

__all__ = [
    "PlannerBackend",
    "RegressionInjector",
    "ServingScenario",
    "steady_state_scenario",
    "drift_scenario",
    "injected_regression_scenario",
    "parameterized_scenario",
    "default_chaos_plan",
    "chaos_scenario",
    "default_bound_fault_plan",
    "bound_guard_scenario",
    "adversarial_drift_scenario",
]


class PlannerBackend:
    """The minimal learned-optimizer surface over a plain :class:`Optimizer`.

    Lets a deployment serve straight planner output -- e.g. a risk-bounded
    ``Optimizer(..., risk="worst_case")`` -- through the same staged
    machinery as any learned model.  Stateless: feedback is discarded.
    """

    def __init__(self, optimizer: Optimizer, *, name: str = "planner") -> None:
        self.optimizer = optimizer
        self.name = name

    def choose_plan(self, query: Query) -> CandidatePlan:
        return CandidatePlan(plan=self.optimizer.plan(query), source=self.name)

    def record_feedback(self, query, candidate, latency_ms) -> None:
        pass


class RegressionInjector:
    """Wrap a learned optimizer; turn adversarial after ``trigger_at``.

    Until the trigger it is transparent.  From decision ``trigger_at + 1``
    on it proposes the native optimizer's plan under nested-loop-only
    hints -- reliably a regression on join-heavy queries -- tagged with
    source ``"injected"`` so traces show exactly which plans were
    sabotaged.  Feedback keeps flowing to the wrapped model either way.
    """

    def __init__(
        self,
        inner,
        optimizer: Optimizer,
        *,
        trigger_at: int,
        bad_hints: HintSet | None = None,
    ) -> None:
        self.inner = inner
        self.optimizer = optimizer
        self.trigger_at = trigger_at
        self.bad_hints = (
            bad_hints
            if bad_hints is not None
            else HintSet(enable_hash_join=False, enable_merge_join=False)
        )
        self.decisions = 0
        self.name = f"{getattr(inner, 'name', 'learned')}+injected"

    def choose_plan(self, query: Query) -> CandidatePlan:
        self.decisions += 1
        if self.decisions > self.trigger_at:
            plan = self.optimizer.plan(query, hints=self.bad_hints)
            return CandidatePlan(plan=plan, source="injected")
        return self.inner.choose_plan(query)

    def record_feedback(
        self, query: Query, candidate: CandidatePlan, latency_ms: float
    ) -> None:
        self.inner.record_feedback(query, candidate, latency_ms)


@dataclass
class ServingScenario:
    """A fully-assembled serving setup: run it, inspect the pieces."""

    name: str
    db: Database
    native: Optimizer
    simulator: ExecutionSimulator
    deployment: DeploymentManager
    runtime: ServingRuntime
    schedule: list[list[Request]]
    #: set on chaos scenarios: the fault injector driving the run
    injector: FaultInjector | None = None
    #: set when the scenario was assembled with ``audit_every``: the online
    #: oracle sampling served results (see :class:`repro.oracle.OnlineAuditor`)
    auditor: OnlineAuditor | None = None
    #: set on parameterized scenarios: the plan cache serving native plannings
    plan_cache: PlanCache | None = None
    #: set on bound-guard scenarios: the guard certifying served estimates
    bound_guard: BoundGuard | None = None

    def run(self) -> RunReport:
        return self.runtime.run(self.schedule)

    @property
    def n_requests(self) -> int:
        return sum(len(s) for s in self.schedule)


def _assemble(
    *,
    name: str,
    scale: float,
    seed: int,
    n_queries: int,
    n_sessions: int,
    stage: Stage,
    canary_fraction: float,
    regression_threshold: float,
    window: int,
    min_samples: int,
    config: RuntimeConfig | None,
    learned_wrap=None,
    hooks: dict | None = None,
    audit_every: int | None = None,
    plan_cache: PlanCache | None = None,
    workload_fn=None,
) -> ServingScenario:
    db = make_stats_lite(scale=scale, seed=seed)
    native = Optimizer(db)
    simulator = ExecutionSimulator(db)
    learned = BaoOptimizer(native, seed=seed)
    if learned_wrap is not None:
        learned = learned_wrap(learned, native)
    deployment = DeploymentManager(
        learned,
        native,
        simulator,
        stage=stage,
        canary_fraction=canary_fraction,
        regression_threshold=regression_threshold,
        window=window,
        min_samples=min_samples,
        plan_cache=plan_cache,
    )
    if workload_fn is not None:
        queries = workload_fn(db)
    else:
        queries = WorkloadGenerator(db, seed=seed + 1).workload(
            n_queries, 2, 4, require_predicate=True
        )
    schedule = build_schedule(queries, n_sessions, seed=seed)
    auditor = (
        OnlineAuditor(db, every=audit_every) if audit_every is not None else None
    )
    runtime = ServingRuntime(
        deployment, config=config, hooks=hooks, auditor=auditor
    )
    return ServingScenario(
        name=name,
        db=db,
        native=native,
        simulator=simulator,
        deployment=deployment,
        runtime=runtime,
        schedule=schedule,
        auditor=auditor,
        plan_cache=plan_cache,
    )


def steady_state_scenario(
    *,
    scale: float = 0.3,
    seed: int = 0,
    n_queries: int = 160,
    n_sessions: int = 8,
    stage: Stage = Stage.CANARY,
    canary_fraction: float = 0.5,
    config: RuntimeConfig | None = None,
    audit_every: int | None = None,
) -> ServingScenario:
    """Healthy canary under sustained concurrent traffic.

    ``audit_every`` (off by default) attaches the online oracle: one in
    that many served queries is re-verified against the independent
    reference count, with outcomes reported through the telemetry bus.
    """
    return _assemble(
        name="steady_state",
        scale=scale,
        seed=seed,
        n_queries=n_queries,
        n_sessions=n_sessions,
        stage=stage,
        canary_fraction=canary_fraction,
        regression_threshold=2.5,
        window=40,
        min_samples=15,
        config=config,
        audit_every=audit_every,
    )


def drift_scenario(
    *,
    scale: float = 0.3,
    seed: int = 0,
    n_queries: int = 120,
    n_sessions: int = 8,
    drift_fraction: float = 0.3,
    config: RuntimeConfig | None = None,
) -> ServingScenario:
    """Canary serving while the data distribution shifts mid-stream.

    At the workload's halfway request the hook appends
    distribution-shifted rows to every table and drops the planner's
    cardinality cache (its entries are keyed by estimator state, which the
    native statistics refresh changes) -- so the second half of the stream
    runs against genuinely different data.
    """
    scenario = _assemble(
        name="drift_midstream",
        scale=scale,
        seed=seed,
        n_queries=n_queries,
        n_sessions=n_sessions,
        stage=Stage.CANARY,
        canary_fraction=0.5,
        regression_threshold=2.5,
        window=40,
        min_samples=15,
        config=config,
    )

    def _drift() -> None:
        apply_drift(scenario.db, fraction=drift_fraction, seed=seed)
        estimator = scenario.native.estimator
        if hasattr(estimator, "refresh"):
            estimator.refresh()
        if hasattr(scenario.native, "cache") and scenario.native.cache is not None:
            scenario.native.cache.clear()

    scenario.runtime.hooks[scenario.n_requests // 2] = _drift
    return scenario


def parameterized_scenario(
    *,
    scale: float = 0.3,
    seed: int = 0,
    n_templates: int = 8,
    bindings_per_template: int = 10,
    n_sessions: int = 8,
    config: RuntimeConfig | None = None,
    plan_cache: PlanCache | None = None,
) -> ServingScenario:
    """A prepared-statement stream served through the plan-cache fast path.

    The workload is ``n_templates`` query templates arriving interleaved
    with ``bindings_per_template`` literal bindings each; the deployment
    serves in SHADOW (every query planned natively, the staged model
    evaluated off-path), so each template is planned once and every later
    binding replays the cached plan.  Expected hit rate:
    ``1 - 1/bindings_per_template`` -- 90% at the defaults.
    """
    cache = plan_cache if plan_cache is not None else PlanCache()
    return _assemble(
        name="parameterized",
        scale=scale,
        seed=seed,
        n_queries=n_templates * bindings_per_template,
        n_sessions=n_sessions,
        stage=Stage.SHADOW,
        canary_fraction=0.5,
        regression_threshold=2.5,
        window=40,
        min_samples=15,
        config=config,
        plan_cache=cache,
        workload_fn=lambda db: WorkloadGenerator(
            db, seed=seed + 1
        ).parameterized_workload(
            n_templates, bindings_per_template, 2, 4, require_predicate=True
        ),
    )


def injected_regression_scenario(
    *,
    scale: float = 0.3,
    seed: int = 0,
    n_queries: int = 120,
    n_sessions: int = 8,
    trigger_at: int = 20,
    window: int = 16,
    min_samples: int = 8,
    regression_threshold: float = 1.3,
    config: RuntimeConfig | None = None,
) -> ServingScenario:
    """A canary that goes bad and must be rolled back automatically."""
    return _assemble(
        name="injected_regression",
        scale=scale,
        seed=seed,
        n_queries=n_queries,
        n_sessions=n_sessions,
        stage=Stage.CANARY,
        canary_fraction=1.0,
        regression_threshold=regression_threshold,
        window=window,
        min_samples=min_samples,
        config=config,
        learned_wrap=lambda learned, native: RegressionInjector(
            learned, native, trigger_at=trigger_at
        ),
    )


def default_chaos_plan(seed: int = 0) -> FaultPlan:
    """A representative fault mix covering every rung of the ladder:
    estimator crashes, non-finite and garbage outputs, stale-statistics
    snapshots, plus learned-optimizer crashes and inference stalls."""
    return FaultPlan(
        (
            FaultSpec(kind="exception", rate=0.08, target="estimator"),
            FaultSpec(kind="nan", rate=0.05, target="estimator"),
            FaultSpec(kind="inf", rate=0.03, target="estimator"),
            FaultSpec(
                kind="garbage", rate=0.04, target="estimator", magnitude=1e6
            ),
            FaultSpec(kind="stale", rate=0.08, target="estimator"),
            FaultSpec(kind="exception", rate=0.06, target="learned"),
            FaultSpec(
                kind="latency", rate=0.05, target="learned", magnitude=400.0
            ),
        ),
        seed=seed,
    )


def chaos_scenario(
    *,
    scale: float = 0.3,
    seed: int = 0,
    n_queries: int = 120,
    n_sessions: int = 8,
    plan: FaultPlan | None = None,
    stage: Stage = Stage.CANARY,
    canary_fraction: float = 0.5,
    call_timeout_ms: float = 200.0,
    rollback_after_trips: int | None = None,
    config: RuntimeConfig | None = None,
) -> ServingScenario:
    """The serving stack under deterministic fault injection.

    The native estimator is wrapped in a fault injector and then a
    :class:`~repro.faults.FallbackEstimator` (histogram fallback behind a
    circuit breaker); the Bao-style learned optimizer plans *through* that
    resilient estimator and is itself wrapped in the injector, guarded by
    the deployment's own breaker and per-call inference budget.  All
    breakers share the injector's virtual clock, which the deployment
    advances by served latency -- so cooldowns, like everything else, are
    a pure function of the seed.  ``rollback_after_trips=None`` keeps the
    model deployed however often the breaker trips (the default here, so
    benchmarks exercise the whole ladder all run long); pass an int to
    demonstrate the trip-triggered rollback instead.
    """
    db = make_stats_lite(scale=scale, seed=seed)
    native = Optimizer(db)
    simulator = ExecutionSimulator(db)
    bus = TelemetryBus()
    injector = FaultInjector(
        plan if plan is not None else default_chaos_plan(seed), telemetry=bus
    )
    estimator_breaker = CircuitBreaker(
        failure_threshold=3,
        cooldown_ms=500.0,
        clock=injector.clock,
        name="estimator",
        telemetry=bus,
    )
    resilient = FallbackEstimator(
        injector.wrap_estimator(native.estimator),
        TraditionalCardinalityEstimator(db),
        breaker=estimator_breaker,
        telemetry=bus,
        name="estimator",
    )
    learned = injector.wrap_learned(
        BaoOptimizer(native.with_estimator(resilient), seed=seed)
    )
    deployment = DeploymentManager(
        learned,
        native,
        simulator,
        telemetry=bus,
        stage=stage,
        canary_fraction=canary_fraction,
        regression_threshold=3.0,
        window=40,
        min_samples=15,
        breaker=CircuitBreaker(
            failure_threshold=3,
            cooldown_ms=400.0,
            clock=injector.clock,
            name="learned",
            telemetry=bus,
        ),
        call_timeout_ms=call_timeout_ms,
        rollback_after_trips=rollback_after_trips,
    )
    bus.attach_gauge("fault_injector", injector.stats)
    bus.attach_gauge("fallback_estimator", resilient.stats)
    bus.attach_gauge("breaker_estimator", estimator_breaker.stats)
    queries = WorkloadGenerator(db, seed=seed + 1).workload(
        n_queries, 2, 4, require_predicate=True
    )
    schedule = build_schedule(queries, n_sessions, seed=seed)
    runtime = ServingRuntime(deployment, config=config)
    return ServingScenario(
        name="chaos",
        db=db,
        native=native,
        simulator=simulator,
        deployment=deployment,
        runtime=runtime,
        schedule=schedule,
        injector=injector,
    )


def default_bound_fault_plan(seed: int = 0) -> FaultPlan:
    """Estimator faults whose *outputs* a bound certificate catches:
    non-finite and wildly-overscaled predictions (plus crashes for the
    error path).  No stale faults -- staleness is what the observed-count
    side of the guard exists for."""
    return FaultPlan(
        (
            FaultSpec(kind="nan", rate=0.06, target="estimator"),
            FaultSpec(kind="inf", rate=0.05, target="estimator"),
            FaultSpec(
                kind="garbage", rate=0.08, target="estimator", magnitude=1e9
            ),
            FaultSpec(kind="exception", rate=0.04, target="estimator"),
        ),
        seed=seed,
    )


def bound_guard_scenario(
    *,
    scale: float = 0.3,
    seed: int = 0,
    n_queries: int = 120,
    n_sessions: int = 8,
    plan: FaultPlan | None = None,
    tolerance: float = 2.0,
    audit_every: int = 8,
    bound_violation_rollback: float | None = None,
    config: RuntimeConfig | None = None,
) -> ServingScenario:
    """A fault-injected point estimator serving behind a bound guard.

    The native estimator is wrapped in a seeded fault injector and then in
    a :class:`~repro.faults.BoundGuard` certifying every estimate against
    a pessimistic :class:`~repro.cardest.MCVJoinBoundEstimator` bound; the
    Bao-style learned optimizer plans through the guarded estimator.
    Injected NaN/Inf/garbage predictions exceed their certified bounds,
    trip the guard's breaker and are served from the histogram fallback
    (capped at the bound); the online auditor feeds observed exact counts
    back into the same guard, so a violated *bound* also surfaces.  With
    ``plan=FaultPlan(())`` the same stack must record zero violations.
    ``bound_violation_rollback`` optionally arms the deployment's
    rate-triggered rollback.
    """
    db = make_stats_lite(scale=scale, seed=seed)
    native = Optimizer(db)
    simulator = ExecutionSimulator(db)
    bus = TelemetryBus()
    injector = FaultInjector(
        plan if plan is not None else default_bound_fault_plan(seed),
        telemetry=bus,
    )
    bounds = MCVJoinBoundEstimator(db)
    guard_breaker = CircuitBreaker(
        failure_threshold=3,
        cooldown_ms=500.0,
        clock=injector.clock,
        name="bound_guard",
        telemetry=bus,
    )
    guard = BoundGuard(
        injector.wrap_estimator(native.estimator),
        bounds,
        TraditionalCardinalityEstimator(db),
        breaker=guard_breaker,
        telemetry=bus,
        tolerance=tolerance,
    )
    learned = BaoOptimizer(native.with_estimator(guard), seed=seed)
    deployment = DeploymentManager(
        learned,
        native,
        simulator,
        telemetry=bus,
        stage=Stage.CANARY,
        canary_fraction=0.5,
        regression_threshold=3.0,
        window=40,
        min_samples=15,
        bound_guard=guard,
        bound_violation_rollback=bound_violation_rollback,
    )
    bus.attach_gauge("fault_injector", injector.stats)
    queries = WorkloadGenerator(db, seed=seed + 1).workload(
        n_queries, 2, 4, require_predicate=True
    )
    schedule = build_schedule(queries, n_sessions, seed=seed)
    auditor = OnlineAuditor(db, every=audit_every, bound_guard=guard)
    runtime = ServingRuntime(deployment, config=config, auditor=auditor)
    return ServingScenario(
        name="bound_guard",
        db=db,
        native=native,
        simulator=simulator,
        deployment=deployment,
        runtime=runtime,
        schedule=schedule,
        injector=injector,
        auditor=auditor,
        bound_guard=guard,
    )


def adversarial_drift_scenario(
    *,
    pessimistic: bool,
    scale: float = 0.3,
    seed: int = 0,
    n_queries: int = 120,
    n_sessions: int = 8,
    drift_fraction: float = 0.5,
    min_tables: int = 2,
    max_tables: int = 4,
    config: RuntimeConfig | None = None,
) -> ServingScenario:
    """Optimistic vs pessimistic serving while join fan-out explodes.

    A LIVE deployment serves straight planner output
    (:class:`PlannerBackend`); halfway through the stream
    :func:`repro.bench.adversarial_hot_key_drift` piles new child rows
    onto a previously-cold parent key per parent table, so true join
    sizes through those keys explode while the *point* estimator keeps
    its pre-drift statistics (a learned model gone stale).  Every third
    request is a :func:`repro.bench.hot_key_probe_queries` probe pinned
    to the drift targets -- near-empty before the drift, the workload's
    tail after it.  The two arms differ only in planning mode:

    - ``pessimistic=False``: plans minimize expected cost under the stale
      point estimates -- the optimizer keeps choosing plans whose true
      intermediates are now enormous;
    - ``pessimistic=True``: ``risk="worst_case"`` minimizes cost under
      the certified upper bound; the bound sketches are refreshed at the
      drift point (a cheap statistics rebuild -- no model retraining),
      so post-drift plans are chosen against honest worst cases.

    Same seed, same workload, same drift either way: only the risk mode
    differs, which is what makes the p99 comparison in
    ``bench_p8_bounds.py`` an apples-to-apples gate.
    """
    db = make_stats_lite(scale=scale, seed=seed)
    point = TraditionalCardinalityEstimator(db)
    bounds = MCVJoinBoundEstimator(db)
    subject = Optimizer(
        db,
        estimator=point,
        bound_estimator=bounds,
        risk="worst_case" if pessimistic else "expected",
    )
    native = Optimizer(db)
    simulator = ExecutionSimulator(db)
    name = "pessimistic" if pessimistic else "optimistic"
    deployment = DeploymentManager(
        PlannerBackend(subject, name=name),
        native,
        simulator,
        stage=Stage.LIVE,
        monitor_native=False,
        regression_threshold=1e9,
        window=40,
        min_samples=15,
        rollback_after_trips=None,
    )
    targets = hot_key_targets(db)
    probes = hot_key_probe_queries(db, targets)
    queries = WorkloadGenerator(db, seed=seed + 1).workload(
        n_queries, min_tables, max_tables, require_predicate=True
    )
    # Interleave probes so both pre- and post-drift halves cross the
    # (to-be-)hot keys: every third request cycles through the probe set.
    for i in range(2, len(queries), 3):
        queries[i] = probes[(i // 3) % len(probes)]
    schedule = build_schedule(queries, n_sessions, seed=seed)
    scenario = ServingScenario(
        name=f"adversarial_drift:{name}",
        db=db,
        native=native,
        simulator=simulator,
        deployment=deployment,
        runtime=ServingRuntime(deployment, config=config),
        schedule=schedule,
    )

    def _drift() -> None:
        adversarial_hot_key_drift(
            db, fraction=drift_fraction, seed=seed, targets=targets
        )
        if pessimistic:
            bounds.refresh()
        # Stale point statistics stay stale -- that is the experiment --
        # but cached cardinalities are keyed off data_version and expire
        # on their own; clearing just bounds memory.
        if subject.cache is not None:
            subject.cache.clear()

    scenario.runtime.hooks[scenario.n_requests // 2] = _drift
    return scenario
