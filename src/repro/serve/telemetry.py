"""Telemetry bus for the serving runtime.

Counters, latency histograms (p50/p95/p99) and per-query trace records,
collected while requests are in flight and exported as one deterministic
``snapshot()`` dict.  Determinism is load-bearing: the serving smoke test
asserts that two same-seed runs with 8 concurrent sessions produce
byte-identical snapshots, so nothing wall-clock (timestamps, rates) may
enter the bus -- the runtime reports those separately -- and the snapshot
orders everything canonically (counters by name, traces by
``(session_id, seq)``).

External stat sources (the optimizer's :class:`~repro.optimizer.cardcache.
CardinalityCache`, guard intervention counters) attach as gauges: zero-arg
callables sampled at snapshot time, which is how cache hit/miss/eviction
counters reach serving reports without the bus holding references into the
planner.
"""

from __future__ import annotations

import json
import threading

from repro.core.errors import ConfigError
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Histogram", "TraceRecord", "TelemetryBus"]


class Histogram:
    """Exact-percentile histogram over recorded values.

    Values are kept (bounded by ``capacity``) and percentiles computed from
    the sorted sample at summary time -- exact for serving-scale runs, and
    deterministic regardless of recording order.  Past ``capacity`` the
    sample is decimated by keeping every other value (again deterministic:
    depends only on the multiset of values recorded so far, not on wall
    clock), while ``count``/``total`` keep describing the full stream.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity < 2:
            raise ConfigError("histogram capacity must be >= 2")
        self.capacity = capacity
        self._values: list[float] = []
        self.count = 0
        self.total = 0.0
        self._max = float("-inf")

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value > self._max:
            self._max = value
        self._values.append(value)
        if len(self._values) > self.capacity:
            self._values.sort()
            self._values = self._values[::2]

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the retained sample (0 when empty)."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    @classmethod
    def merged(
        cls, histograms: "list[Histogram]", capacity: int | None = None
    ) -> "Histogram":
        """Combine histograms recorded independently (e.g. one per shard).

        The merge is a pure function of the *multiset* of inputs: retained
        samples are pooled, sorted, then decimated once against the target
        capacity, and the stream totals (``count``/``total``/``max``) add.
        Because the pooled sample is sorted before any decimation, merging
        the same histograms in any order produces byte-identical summaries
        -- the property the fabric aggregator's determinism gate relies on.
        """
        if capacity is None:
            capacity = max((h.capacity for h in histograms), default=65_536)
        out = cls(capacity)
        values: list[float] = []
        for h in histograms:
            values.extend(h._values)
            out.count += h.count
            out.total += h.total
            if h._max > out._max:
                out._max = h._max
        values.sort()
        while len(values) > capacity:
            values = values[::2]
        out._values = values
        return out

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.total / self.count if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self._max if self.count else 0.0,
        }


@dataclass(frozen=True)
class TraceRecord:
    """One served (or shed) request, as the telemetry bus remembers it.

    ``session_id``/``seq`` form the deterministic identity the snapshot
    sorts by; ``cache_hits``/``cache_misses`` are the per-query deltas of
    the planner's cardinality cache counters around this request.
    """

    session_id: int
    seq: int
    query_hash: str
    outcome: str  # "served" | "timeout" | "overload" | "queue_full"
    stage: str  # deployment stage at serve time ("" for rejections)
    plan_source: str  # winning candidate source or "native"
    estimator_tag: str
    latency_ms: float
    wait_ms: float
    cache_hits: int = 0
    cache_misses: int = 0
    #: online-oracle audit outcome: "" (not sampled), "ok", "violation",
    #: or "skipped" (re-verification exceeded the auditor's row guard)
    audit: str = ""


class TelemetryBus:
    """Thread-safe counters + histograms + traces + deployment events."""

    def __init__(self, trace_capacity: int = 100_000) -> None:
        if trace_capacity < 1:
            raise ConfigError("trace capacity must be >= 1")
        self.trace_capacity = trace_capacity
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._hists: dict[str, Histogram] = {}
        self._traces: list[TraceRecord] = []
        self._traces_dropped = 0
        self._events: list[dict] = []
        self._gauges: dict[str, Callable[[], dict]] = {}

    # -- recording ---------------------------------------------------------------

    def incr(self, name: str, by: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = Histogram()
            hist.record(value)

    def trace(self, record: TraceRecord) -> None:
        with self._lock:
            if len(self._traces) >= self.trace_capacity:
                self._traces_dropped += 1
            else:
                self._traces.append(record)

    def event(self, kind: str, **fields) -> None:
        """Record a deployment-lifecycle event (promotion, rollback, ...)."""
        with self._lock:
            self._events.append({"kind": kind, **fields})

    def attach_gauge(self, name: str, stats_fn: Callable[[], dict]) -> None:
        """Register an external stats source sampled at snapshot time."""
        with self._lock:
            self._gauges[name] = stats_fn

    # -- merging -----------------------------------------------------------------

    @classmethod
    def merged(
        cls,
        buses: "dict[str, TelemetryBus]",
        *,
        trace_capacity: int | None = None,
    ) -> "TelemetryBus":
        """Compose per-source buses into one fabric-level bus.

        ``buses`` maps a source name (e.g. ``"shard03"``) to its bus.  The
        merge composes the *exports* without re-deriving anything from
        traces: counters add by name, histograms merge as multiset unions
        (:meth:`Histogram.merged`), events are re-emitted with a
        ``source`` field in canonical (source, occurrence) order, gauges
        re-attach under ``<source>.<name>``, and traces concatenate in
        canonical source order (the snapshot's stable sort then yields one
        deterministic ordering).  Sources are processed in sorted-name
        order, so merging the same buses in any insertion order produces a
        byte-identical export -- the commutativity the fabric determinism
        gate asserts.

        The merged bus is a snapshot-style composition: it does not stay
        live-linked to its sources (except through re-attached gauges,
        which are sampled at snapshot time as usual).
        """
        items = sorted(buses.items())
        if trace_capacity is None:
            trace_capacity = max(
                (b.trace_capacity for _, b in items), default=100_000
            )
        out = cls(trace_capacity=trace_capacity)
        for name, bus in items:
            with bus._lock:
                for cname, value in bus._counters.items():
                    out._counters[cname] = out._counters.get(cname, 0) + value
                for ev in bus._events:
                    out._events.append({**ev, "source": name})
                for trace in sorted(
                    bus._traces, key=lambda t: (t.session_id, t.seq)
                ):
                    if len(out._traces) >= out.trace_capacity:
                        out._traces_dropped += 1
                    else:
                        out._traces.append(trace)
                out._traces_dropped += bus._traces_dropped
                for gname, fn in bus._gauges.items():
                    out._gauges[f"{name}.{gname}"] = fn
        hist_names = sorted({n for _, b in items for n in b._hists})
        for hname in hist_names:
            out._hists[hname] = Histogram.merged(
                [b._hists[hname] for _, b in items if hname in b._hists]
            )
        return out

    # -- export ------------------------------------------------------------------

    def events(self, kind: str | None = None) -> list[dict]:
        with self._lock:
            return [e for e in self._events if kind is None or e["kind"] == kind]

    def snapshot(self) -> dict:
        """Deterministic state dump: counters, histogram summaries, gauges,
        lifecycle events in occurrence order and traces sorted by identity."""
        with self._lock:
            traces = sorted(self._traces, key=lambda t: (t.session_id, t.seq))
            return {
                "counters": dict(sorted(self._counters.items())),
                "histograms": {
                    name: self._hists[name].summary()
                    for name in sorted(self._hists)
                },
                "gauges": {
                    name: dict(self._gauges[name]())
                    for name in sorted(self._gauges)
                },
                "events": [dict(e) for e in self._events],
                "traces": [vars(t).copy() for t in traces],
                "traces_dropped": self._traces_dropped,
            }

    def to_json(self, *, include_traces: bool = True) -> str:
        snap = self.snapshot()
        if not include_traces:
            snap.pop("traces")
        return json.dumps(snap, sort_keys=True, separators=(",", ":"))

    def render_text(self) -> str:
        """Human-oriented summary (counters, histograms, events)."""
        snap = self.snapshot()
        lines = ["-- telemetry --"]
        for name, value in snap["counters"].items():
            lines.append(f"{name}: {value:g}")
        for name, summ in snap["histograms"].items():
            lines.append(
                f"{name}: n={summ['count']} mean={summ['mean']:.2f} "
                f"p50={summ['p50']:.2f} p95={summ['p95']:.2f} "
                f"p99={summ['p99']:.2f} max={summ['max']:.2f}"
            )
        for gname, stats in snap["gauges"].items():
            pairs = " ".join(f"{k}={v:g}" for k, v in sorted(stats.items()))
            lines.append(f"{gname}: {pairs}")
        for event in snap["events"]:
            fields = " ".join(
                f"{k}={v}" for k, v in event.items() if k != "kind"
            )
            lines.append(f"event[{event['kind']}]: {fields}")
        if snap["traces_dropped"]:
            lines.append(f"traces dropped: {snap['traces_dropped']}")
        return "\n".join(lines)
