"""Staged deployment of a learned optimizer: shadow -> canary -> live.

Lehmann et al. and Eraser both document the same field observation: a
learned optimizer that wins on average still regresses unpredictably on
individual queries, so it cannot be cut over wholesale.
:class:`DeploymentManager` therefore walks a model through the rollout
stages production ML systems use:

- ``SHADOW``: every query is planned by both sides but *served* by the
  native optimizer; the learned candidate is executed hypothetically (on
  the simulator, off the serving path) to measure what its speedup would
  have been.  The staged model trains on this stream without ever touching
  a user-visible plan.
- ``CANARY``: a deterministic fraction of traffic -- chosen by query hash,
  so the same query always lands on the same side -- is served by the
  learned optimizer (behind any configured guards); the rest stays native.
- ``LIVE``: all traffic is served learned (still guarded, still monitored
  against the native baseline).
- ``ROLLED_BACK``: terminal; the model has been demoted and all traffic is
  native again.

Demotion is automatic: learned-served queries feed a rolling window of
:attr:`repro.e2e.loop.EpisodeResult.regression` ratios, and when the
window mean breaches ``regression_threshold`` the manager rolls back and
records the event on the telemetry bus.  Promotion is manual
(:meth:`promote`) or automatic (``auto_promote=True``) once a full window
stays healthy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from statistics import fmean

from repro.core.errors import ConfigError
from repro.core.interfaces import estimator_cache_tag
from repro.e2e.loop import EpisodeResult
from repro.engine.plans import Plan
from repro.engine.simulator import ExecutionSimulator
from repro.faults.resilience import BreakerState, CircuitBreaker
from repro.optimizer.plancache import PlanCache
from repro.optimizer.planner import Optimizer
from repro.regression import GuardChain
from repro.serve.telemetry import TelemetryBus
from repro.sql.query import Query, query_hash

__all__ = ["Stage", "ServeDecision", "DeploymentManager", "query_hash"]


class Stage(enum.Enum):
    SHADOW = "shadow"
    CANARY = "canary"
    LIVE = "live"
    ROLLED_BACK = "rolled_back"


#: the transitions promote()/rollback() are allowed to make
_PROMOTIONS = {Stage.SHADOW: Stage.CANARY, Stage.CANARY: Stage.LIVE}


@dataclass(frozen=True)
class ServeDecision:
    """What the deployment did with one query."""

    query: Query
    stage: str
    served_learned: bool
    plan_source: str  # winning candidate source, or "native"
    latency_ms: float  # latency of the plan actually served
    cardinality: int
    native_latency_ms: float | None  # None when the baseline was not run
    shadow_latency_ms: float | None  # learned plan's off-path latency (SHADOW)

    @property
    def regression(self) -> float | None:
        """Served/native latency ratio where the baseline exists (>1 is a
        regression); in SHADOW the *hypothetical* learned regression."""
        if self.native_latency_ms is None:
            return None
        observed = (
            self.shadow_latency_ms
            if self.shadow_latency_ms is not None
            else self.latency_ms
        )
        return observed / max(self.native_latency_ms, 1e-9)


class DeploymentManager:
    """Serves queries while managing one staged learned optimizer.

    ``learned`` exposes the :class:`repro.core.framework.LearnedOptimizer`
    surface (``choose_plan`` / ``record_feedback``); ``guards`` are
    regression guards stacked in order via
    :class:`repro.regression.GuardChain` and only consulted on the serving
    path (CANARY/LIVE) -- shadow evaluation measures the raw model.
    """

    def __init__(
        self,
        learned,
        native: Optimizer,
        simulator: ExecutionSimulator,
        *,
        guards=(),
        telemetry: TelemetryBus | None = None,
        stage: Stage = Stage.SHADOW,
        canary_fraction: float = 0.1,
        window: int = 30,
        min_samples: int = 10,
        regression_threshold: float = 1.3,
        auto_promote: bool = False,
        monitor_native: bool = True,
        name: str | None = None,
        breaker: CircuitBreaker | None = None,
        call_timeout_ms: float | None = None,
        rollback_after_trips: int | None = 3,
        experience=None,
        registry=None,
        model_version: str | None = None,
        plan_cache: PlanCache | None = None,
        bound_guard=None,
        bound_violation_rollback: float | None = None,
        min_bound_checks: int = 20,
        risk_tuner=None,
    ) -> None:
        """``breaker`` guards the learned optimizer: exceptions and
        latency-budget blow-outs from ``choose_plan`` are recorded as
        failures, queries behind an open breaker are served via the
        degradation ladder (``plan_source="native:degraded"``), and once
        the breaker has tripped ``rollback_after_trips`` times while
        CANARY/LIVE the model is rolled back for good (``None`` disables
        the trigger).  ``call_timeout_ms`` is the virtual per-call
        inference budget, checked against the learned component's
        ``last_call_latency_ms`` when it reports one (the fault injector's
        wrappers do).

        ``experience`` is an optional
        :class:`repro.lifecycle.ExperienceStore`: every serve decision is
        ingested so the retraining loop sees exactly what production saw.
        ``registry`` is an optional :class:`repro.lifecycle.ModelRegistry`
        and ``model_version`` the registry version id of ``learned``; when
        both are set, every stage transition (promotion, rollback,
        :meth:`deploy`) is recorded back into the version's lineage.

        ``plan_cache`` is an optional :class:`repro.optimizer.PlanCache`
        serving the *native* plannings (the serving baseline, the shadow
        baseline and the degraded path): same-template queries reuse the
        compiled plan across literal bindings.  Every stage transition
        invalidates it -- a stage flip changes what is being measured,
        and plans cached under the previous stage must not leak into the
        next one's comparisons.

        ``bound_guard`` is an optional :class:`repro.faults.BoundGuard`
        watching the estimator feeding the learned side.  When
        ``bound_violation_rollback`` is set, a CANARY/LIVE deployment
        whose guard reports a violation rate above that threshold (after
        at least ``min_bound_checks`` checks) is rolled back -- a model
        whose estimates routinely exceed their certified upper bounds is
        broken even if its plans happen to run fast so far.

        ``risk_tuner`` is an optional :class:`repro.optimizer.
        RiskLambdaTuner`: it is ticked once per served query (inside the
        single-writer core, so deterministically), auto-tuning the
        planner's ``risk_lambda`` from the guard's violation rate."""
        if not 0.0 < canary_fraction <= 1.0:
            raise ConfigError("canary_fraction must be in (0, 1]")
        if min_samples < 1 or window < min_samples:
            raise ConfigError("need window >= min_samples >= 1")
        if rollback_after_trips is not None and rollback_after_trips < 1:
            raise ConfigError("rollback_after_trips must be >= 1 or None")
        if bound_violation_rollback is not None and not (
            0.0 < bound_violation_rollback <= 1.0
        ):
            raise ConfigError("bound_violation_rollback must be in (0, 1] or None")
        if min_bound_checks < 1:
            raise ConfigError("min_bound_checks must be >= 1")
        self.learned = learned
        self.native = native
        self.simulator = simulator
        self.guard = GuardChain(*guards) if guards else None
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()
        if self.guard is not None:
            self.guard.telemetry = self.telemetry
        self.stage = stage
        self.canary_fraction = canary_fraction
        self.window = window
        self.min_samples = min_samples
        self.regression_threshold = regression_threshold
        self.auto_promote = auto_promote
        self.monitor_native = monitor_native
        self.name = name or getattr(learned, "name", type(learned).__name__)
        self.breaker = breaker
        self.call_timeout_ms = call_timeout_ms
        self.rollback_after_trips = rollback_after_trips
        self.experience = experience
        self.registry = registry
        self.model_version = model_version
        self.plan_cache = plan_cache
        self.bound_guard = bound_guard
        self.bound_violation_rollback = bound_violation_rollback
        self.min_bound_checks = min_bound_checks
        self.risk_tuner = risk_tuner
        self.queries_served = 0
        self.learned_failures = 0
        self.degraded_serves = 0
        self._regressions: list[float] = []  # rolling, len <= window
        if hasattr(native, "cache_stats"):
            self.telemetry.attach_gauge("cardinality_cache", native.cache_stats)
        if plan_cache is not None:
            self.telemetry.attach_gauge("plan_cache", plan_cache.stats)
        if experience is not None and hasattr(experience, "stats"):
            self.telemetry.attach_gauge("experience_store", experience.stats)
        if breaker is not None:
            if breaker.telemetry is None:
                breaker.telemetry = self.telemetry
            self.telemetry.attach_gauge(f"breaker_{breaker.name}", breaker.stats)
        if bound_guard is not None:
            if bound_guard.telemetry is None:
                bound_guard.telemetry = self.telemetry
            self.telemetry.attach_gauge("bound_guard", bound_guard.stats)
        if risk_tuner is not None:
            if risk_tuner.telemetry is None:
                risk_tuner.telemetry = self.telemetry
            self.telemetry.attach_gauge("risk_tuner", risk_tuner.stats)
        for i, g in enumerate(guards):
            if hasattr(g, "intervention_rate"):
                self.telemetry.attach_gauge(
                    f"guard_{i}_{type(g).__name__.lower()}",
                    (lambda g=g: {
                        "decisions": g.decisions,
                        "interventions": g.interventions,
                        "intervention_rate": g.intervention_rate,
                    }),
                )

    # -- lifecycle ------------------------------------------------------------------

    def promote(self) -> Stage:
        """SHADOW -> CANARY -> LIVE; anything else is an error."""
        nxt = _PROMOTIONS.get(self.stage)
        if nxt is None:
            raise ConfigError(f"cannot promote from {self.stage.value}")
        self._transition(nxt, reason="promote")
        return self.stage

    def rollback(self, reason: str = "manual") -> Stage:
        if self.stage is Stage.ROLLED_BACK:
            return self.stage
        self._transition(Stage.ROLLED_BACK, reason=reason)
        return self.stage

    def _transition(self, to: Stage, *, reason: str) -> None:
        self.telemetry.event(
            "stage_transition",
            deployment=self.name,
            from_stage=self.stage.value,
            to_stage=to.value,
            reason=reason,
            at_query=self.queries_served,
        )
        self.stage = to
        self._regressions.clear()
        if self.plan_cache is not None:
            self.plan_cache.invalidate(reason=f"stage:{to.value}")
            self.telemetry.incr("plan_cache.invalidations")
        if self.registry is not None and self.model_version is not None:
            self.registry.record_stage(
                self.model_version,
                to.value,
                reason=reason,
                at_query=self.queries_served,
            )

    def deploy(
        self,
        model,
        *,
        version: str | None = None,
        stage: Stage = Stage.SHADOW,
        reason: str = "gate_passed",
    ) -> None:
        """Swap in a new (gated) model, entering at ``stage``.

        This is how a registry-versioned challenger that passed the
        :class:`repro.lifecycle.EvalGate` takes over: it starts in SHADOW
        by default -- off the serving path -- and earns promotion through
        the same rolling-window machinery as any other staged model.  The
        regression window resets; the previous model keeps whatever stage
        history the registry recorded for it.  ``deploy`` also re-arms a
        ROLLED_BACK deployment (the recovery path the lifecycle loop
        exists to provide)."""
        self.learned = model
        self.name = getattr(model, "name", type(model).__name__)
        self.model_version = version
        self.telemetry.incr("deployment.deploys")
        self.telemetry.event(
            "model_deployed",
            deployment=self.name,
            version=version or "",
            stage=stage.value,
            reason=reason,
            at_query=self.queries_served,
        )
        self.stage = stage
        self._regressions.clear()
        if self.registry is not None and version is not None:
            self.registry.record_stage(
                version, stage.value, reason=reason, at_query=self.queries_served
            )

    # -- regression window ------------------------------------------------------------

    def _observe_regression(self, ratio: float) -> None:
        self._regressions.append(ratio)
        if len(self._regressions) > self.window:
            del self._regressions[0]
        if len(self._regressions) < self.min_samples:
            return
        mean = fmean(self._regressions)
        if mean > self.regression_threshold and self.stage in (
            Stage.CANARY,
            Stage.LIVE,
        ):
            self.telemetry.incr("deployment.auto_rollbacks")
            self._transition(
                Stage.ROLLED_BACK,
                reason=f"regression_window mean={mean:.3f}"
                f">{self.regression_threshold:g}",
            )
        elif (
            self.auto_promote
            and len(self._regressions) == self.window
            and mean <= 1.0 + (self.regression_threshold - 1.0) / 2
            and self.stage in _PROMOTIONS
        ):
            self._transition(
                _PROMOTIONS[self.stage],
                reason=f"auto_promote mean={mean:.3f}",
            )

    def window_mean(self) -> float | None:
        return fmean(self._regressions) if self._regressions else None

    def _check_bound_violation_rate(self) -> None:
        """Roll back a serving-path model whose bound-violation rate is
        above threshold -- the bound certificate, not latency, is the
        signal here, so this fires even while plans still look fast."""
        if (
            self.bound_guard is None
            or self.bound_violation_rollback is None
            or self.stage not in (Stage.CANARY, Stage.LIVE)
        ):
            return
        checks = self.bound_guard.checked + self.bound_guard.counts_observed
        if checks < self.min_bound_checks:
            return
        rate = self.bound_guard.violation_rate()
        if rate > self.bound_violation_rollback:
            self.telemetry.incr("deployment.auto_rollbacks")
            self._transition(
                Stage.ROLLED_BACK,
                reason=f"bound_violation_rate={rate:.3f}"
                f">{self.bound_violation_rollback:g}",
            )

    # -- serving -----------------------------------------------------------------------

    def is_canary_query(self, query: Query) -> bool:
        """Deterministic traffic split: same query, same side, any run."""
        bucket = int(query_hash(query), 16) % 10_000
        return bucket < self.canary_fraction * 10_000

    def _learned_serves(self, query: Query) -> bool:
        if self.stage is Stage.LIVE:
            return True
        if self.stage is Stage.CANARY:
            return self.is_canary_query(query)
        return False

    def _native_plan(self, query: Query) -> Plan:
        """Native planning, through the plan cache when one is wired."""
        if self.plan_cache is None:
            return self.native.plan(query)
        tag = estimator_cache_tag(self.native.estimator)
        plan, hit = self.plan_cache.get_or_plan(
            query, tag, self.native.db.data_version, self.native.plan
        )
        self.telemetry.incr("plan_cache.hits" if hit else "plan_cache.misses")
        return plan

    def serve(self, query: Query) -> ServeDecision:
        """Serve one query according to the current stage."""
        stage = self.stage  # snapshot: transitions below affect later queries
        if self._learned_serves(query):
            decision = self._serve_learned(query, stage)
        else:
            decision = self._serve_native(query, stage)
        self.queries_served += 1
        if self.breaker is not None:
            # Served latency drives the breaker's virtual clock, so
            # cooldowns elapse deterministically with traffic.
            self.breaker.clock.advance(decision.latency_ms)
        self._record(decision)
        return decision

    def _serve_native(self, query: Query, stage: Stage) -> ServeDecision:
        native_plan = self._native_plan(query)
        result = self.simulator.execute(native_plan)
        shadow_latency = None
        if stage is Stage.SHADOW:
            # Off-path evaluation: plan with the raw model, execute
            # hypothetically, feed the latency back so the model trains.
            # A crashing model must not take native serving down with it:
            # the failure is recorded and shadow evaluation is skipped.
            try:
                candidate = self.learned.choose_plan(query)
            except Exception:
                self._learned_failure("shadow_error")
                candidate = None
            if candidate is not None:
                if candidate.plan.signature() == native_plan.signature():
                    shadow_latency = result.latency_ms
                else:
                    shadow_latency = self.simulator.execute(
                        candidate.plan
                    ).latency_ms
                self.learned.record_feedback(query, candidate, shadow_latency)
                episode = EpisodeResult(
                    query=query,
                    source=candidate.source,
                    latency_ms=shadow_latency,
                    native_latency_ms=result.latency_ms,
                )
                self._observe_regression(episode.regression)
        return ServeDecision(
            query=query,
            stage=stage.value,
            served_learned=False,
            plan_source="native",
            latency_ms=result.latency_ms,
            cardinality=result.cardinality,
            native_latency_ms=result.latency_ms if stage is Stage.SHADOW else None,
            shadow_latency_ms=shadow_latency,
        )

    def _learned_failure(self, reason: str) -> None:
        """Account one learned-path failure and drive the breaker."""
        self.learned_failures += 1
        self.telemetry.incr("deployment.learned_failures")
        self.telemetry.incr(f"deployment.learned_failures.{reason}")
        if self.breaker is None:
            return
        trips_before = self.breaker.trips
        self.breaker.record_failure()
        if self.breaker.trips > trips_before:
            self.telemetry.incr("deployment.breaker_trips")
            if (
                self.rollback_after_trips is not None
                and self.breaker.trips >= self.rollback_after_trips
                and self.stage in (Stage.CANARY, Stage.LIVE)
            ):
                self.telemetry.incr("deployment.auto_rollbacks")
                self._transition(
                    Stage.ROLLED_BACK,
                    reason=f"breaker_trips={self.breaker.trips}"
                    f">={self.rollback_after_trips}",
                )

    def _serve_degraded(self, query: Query, stage: Stage) -> ServeDecision:
        """Bottom of the degradation ladder: serve natively, skip the
        learned path entirely (no feedback -- the model is suspect)."""
        self.degraded_serves += 1
        self.telemetry.incr("deployment.degraded")
        native_plan = self._native_plan(query)
        result = self.simulator.execute(native_plan)
        return ServeDecision(
            query=query,
            stage=stage.value,
            served_learned=False,
            plan_source="native:degraded",
            latency_ms=result.latency_ms,
            cardinality=result.cardinality,
            native_latency_ms=None,
            shadow_latency_ms=None,
        )

    def _serve_learned(self, query: Query, stage: Stage) -> ServeDecision:
        if self.breaker is not None and not self.breaker.allow():
            self.telemetry.incr("deployment.degraded.breaker_open")
            return self._serve_degraded(query, stage)
        try:
            candidate = self.learned.choose_plan(query)
        except Exception:
            self._learned_failure("error")
            return self._serve_degraded(query, stage)
        if self.call_timeout_ms is not None:
            inference_ms = float(
                getattr(self.learned, "last_call_latency_ms", 0.0) or 0.0
            )
            if inference_ms > self.call_timeout_ms:
                self._learned_failure("timeout")
                return self._serve_degraded(query, stage)
        if self.breaker is not None:
            self.breaker.record_success()
        native_plan = self._native_plan(query)
        if self.guard is not None:
            candidate = self.guard(query, candidate, native_plan)
        result = self.simulator.execute(candidate.plan)
        native_latency = None
        if self.monitor_native:
            if candidate.plan.signature() == native_plan.signature():
                native_latency = result.latency_ms
            else:
                native_latency = self.simulator.execute(native_plan).latency_ms
        self.learned.record_feedback(query, candidate, result.latency_ms)
        if self.guard is not None and native_latency is not None:
            self.guard.record(query, candidate, result.latency_ms, native_latency)
            if candidate.plan.signature() != native_plan.signature():
                self.guard.record_native(query, native_plan, native_latency)
        if native_latency is not None:
            episode = EpisodeResult(
                query=query,
                source=candidate.source,
                latency_ms=result.latency_ms,
                native_latency_ms=native_latency,
            )
            self._observe_regression(episode.regression)
        return ServeDecision(
            query=query,
            stage=stage.value,
            served_learned=True,
            plan_source=candidate.source,
            latency_ms=result.latency_ms,
            cardinality=result.cardinality,
            native_latency_ms=native_latency,
            shadow_latency_ms=None,
        )

    # -- telemetry ---------------------------------------------------------------------

    def _record(self, decision: ServeDecision) -> None:
        if self.experience is not None:
            self.experience.add_decision(decision)
        bus = self.telemetry
        bus.incr(f"serve.stage.{decision.stage}")
        bus.incr(
            "serve.learned" if decision.served_learned else "serve.native"
        )
        bus.observe("latency_ms", decision.latency_ms)
        if decision.served_learned:
            bus.observe("learned_latency_ms", decision.latency_ms)
        if decision.regression is not None:
            bus.observe("regression_ratio", decision.regression)
        self._check_bound_violation_rate()
        if self.risk_tuner is not None:
            self.risk_tuner.tick()

    def cache_stats(self) -> dict | None:
        return self.native.cache_stats() if hasattr(self.native, "cache_stats") else None
