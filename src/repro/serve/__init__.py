"""Online serving runtime with staged model deployment (ROADMAP: serving).

The deployment half of the paper's PilotScope story: everything the rest
of the repo builds (optimizers, estimators, guards) assumed a
run-to-completion loop; this package serves a sustained concurrent
workload and manages a learned optimizer's production lifecycle:

- :mod:`repro.serve.runtime` -- :class:`ServingRuntime`: N concurrent
  client sessions with admission control (timeouts, per-session queue
  bounds, a global in-flight ceiling) and typed :class:`Rejected`
  outcomes, deterministic given a schedule (see the module docstring for
  how the turn gate buys byte-identical reruns);
- :mod:`repro.serve.deployment` -- :class:`DeploymentManager`: stages a
  learned optimizer through SHADOW -> CANARY -> LIVE with a rolling
  regression window that demotes it to ROLLED_BACK automatically,
  reusing :mod:`repro.regression` guards on the serving path;
- :mod:`repro.serve.telemetry` -- :class:`TelemetryBus`: counters,
  p50/p95/p99 histograms, per-query traces (plan source, estimator tag,
  cardinality-cache hit/miss deltas) and lifecycle events, exported as a
  deterministic ``snapshot()``;
- :mod:`repro.serve.scenarios` -- canned steady-state / mid-stream-drift /
  injected-regression / chaos setups used by
  ``benchmarks/bench_p2_serving.py``, ``benchmarks/bench_p3_chaos.py``
  and the tests;
- :mod:`repro.serve.fabric` -- the horizontally sharded, multi-tenant
  serving fabric (:class:`ServingFabric`, :class:`ShardRouter`,
  :class:`TenantRegistry`, :class:`TelemetryAggregator`) scaling the
  runtime out to N shards with QoS-aware routing.
"""

from repro.serve.deployment import DeploymentManager, ServeDecision, Stage
from repro.serve.fabric import (
    FabricConfig,
    FabricReport,
    FabricRequest,
    ServingFabric,
    ShardRouter,
    ShardRuntime,
    TelemetryAggregator,
    TenantRegistry,
    TenantSpec,
    build_fabric_schedule,
    sharded_fabric_scenario,
    synthetic_fabric,
)
from repro.serve.runtime import (
    ConsoleBackend,
    Rejected,
    Request,
    RunReport,
    RuntimeConfig,
    Served,
    ServingRuntime,
    build_schedule,
)
from repro.serve.scenarios import (
    PlannerBackend,
    RegressionInjector,
    ServingScenario,
    adversarial_drift_scenario,
    bound_guard_scenario,
    chaos_scenario,
    default_bound_fault_plan,
    default_chaos_plan,
    drift_scenario,
    injected_regression_scenario,
    parameterized_scenario,
    steady_state_scenario,
)
from repro.serve.telemetry import Histogram, TelemetryBus, TraceRecord

__all__ = [
    "ConsoleBackend",
    "DeploymentManager",
    "FabricConfig",
    "FabricReport",
    "FabricRequest",
    "PlannerBackend",
    "Histogram",
    "ServingFabric",
    "ShardRouter",
    "ShardRuntime",
    "TelemetryAggregator",
    "TenantRegistry",
    "TenantSpec",
    "Rejected",
    "RegressionInjector",
    "Request",
    "RunReport",
    "RuntimeConfig",
    "ServeDecision",
    "Served",
    "ServingRuntime",
    "ServingScenario",
    "Stage",
    "TelemetryBus",
    "TraceRecord",
    "adversarial_drift_scenario",
    "bound_guard_scenario",
    "build_fabric_schedule",
    "build_schedule",
    "chaos_scenario",
    "default_bound_fault_plan",
    "default_chaos_plan",
    "drift_scenario",
    "injected_regression_scenario",
    "parameterized_scenario",
    "sharded_fabric_scenario",
    "steady_state_scenario",
    "synthetic_fabric",
]
