"""Fabric-wide telemetry aggregation.

:class:`TelemetryAggregator` owns the mapping from source name (the
fabric bus plus one bus per shard) to :class:`~repro.serve.telemetry.
TelemetryBus` and produces one merged export via
:meth:`TelemetryBus.merged`.  All the heavy lifting -- summing counters,
pooling exact-percentile histogram samples, re-emitting events with a
``source`` field, namespacing gauges -- lives on the bus classes; the
aggregator's job is to fix the *source naming* (``"fabric"``,
``"shard00"``...) so merged gauge/event names are stable, and to assert
the property the determinism gate relies on: merge order cannot change
the export bytes (sources are composed in sorted-name order regardless
of insertion order).
"""

from __future__ import annotations

from repro.core.errors import ConfigError
from repro.serve.telemetry import TelemetryBus

__all__ = ["TelemetryAggregator"]


class TelemetryAggregator:
    """Merge per-shard buses plus the fabric bus into one export."""

    def __init__(
        self,
        *,
        fabric_bus: TelemetryBus | None = None,
        shard_buses: dict[str, TelemetryBus] | None = None,
    ) -> None:
        self.sources: dict[str, TelemetryBus] = {}
        if fabric_bus is not None:
            self.add_source("fabric", fabric_bus)
        for name, bus in (shard_buses or {}).items():
            self.add_source(name, bus)

    def add_source(self, name: str, bus: TelemetryBus) -> None:
        if name in self.sources:
            raise ConfigError(f"telemetry source {name!r} already registered")
        self.sources[name] = bus

    def merged(self, *, trace_capacity: int | None = None) -> TelemetryBus:
        """One composed bus over all sources (see :meth:`TelemetryBus.merged`)."""
        return TelemetryBus.merged(
            self.sources, trace_capacity=trace_capacity
        )

    def snapshot(self) -> dict:
        return self.merged().snapshot()

    def export_json(self, *, include_traces: bool = False) -> str:
        """Deterministic merged export: canonical JSON, sorted keys."""
        return self.merged().to_json(include_traces=include_traces)

    def render_text(self) -> str:
        return self.merged().render_text()
