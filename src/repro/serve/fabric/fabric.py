"""The serving fabric: tenants in, shards out, one deterministic loop.

:class:`ServingFabric` composes the subsystem: a
:class:`~repro.serve.fabric.tenants.TenantRegistry` decides quota
admission per tenant, a :class:`~repro.serve.fabric.router.ShardRouter`
places admitted requests on one of N :class:`~repro.serve.fabric.shard.
ShardRuntime` shards, and a :class:`~repro.serve.fabric.aggregate.
TelemetryAggregator` merges the per-shard buses plus the fabric's own bus
into one export.  :meth:`ServingFabric.run` drains a
:func:`build_fabric_schedule` in global arrival order -- a single
deterministic loop, so two same-seed runs produce byte-identical fabric
exports even though 16+ shards serve concurrently *in virtual time*.

Request lifecycle, in order:

1. **quota** -- the tenant's token bucket (reject reason ``"quota"``);
2. **routing** -- two-choice placement by ``query_hash`` or tenant id,
   skipping shards whose breaker is open (``"unavailable"`` when no
   shard is healthy);
3. **QoS shed** -- ``background`` tenants are shed when the target
   shard's backlog exceeds a low watermark, ``batch`` at a higher one
   (``"qos_shed"``); ``interactive`` is never shed here;
4. **shard admission + service** -- the shard's own virtual-time
   admission control (timeout / queue_full / overload / shard_open /
   error) and backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.errors import ConfigError
from repro.serve.deployment import query_hash
from repro.serve.fabric.aggregate import TelemetryAggregator
from repro.serve.fabric.router import ShardRouter
from repro.serve.fabric.shard import ShardRuntime
from repro.serve.fabric.tenants import TenantRegistry, TenantSpec
from repro.serve.runtime import Rejected, Request, Served
from repro.serve.telemetry import TelemetryBus
from repro.sql.query import Query

__all__ = [
    "FabricRequest",
    "FabricConfig",
    "FabricReport",
    "ServingFabric",
    "build_fabric_schedule",
]


@dataclass(frozen=True)
class FabricRequest:
    """One scheduled request, tagged with the tenant that issued it."""

    tenant_id: str
    request: Request


@dataclass(frozen=True)
class FabricConfig:
    """Fabric-level knobs (shard-level knobs live on each shard's
    :class:`~repro.serve.runtime.RuntimeConfig`).

    The shed backlogs are in-flight request counts on the *target* shard
    at arrival: ``background`` traffic is shed first (low watermark),
    ``batch`` later (high watermark), ``interactive`` only by the shard's
    own admission control.  ``keep_outcomes=False`` drops the per-request
    outcome list from the report -- counters and histograms only -- which
    large benchmark runs use to bound memory.
    """

    route_mode: str = "query_hash"
    seed: int = 0
    background_shed_backlog: int = 8
    batch_shed_backlog: int = 24
    keep_outcomes: bool = True

    def __post_init__(self) -> None:
        if self.background_shed_backlog < 0 or self.batch_shed_backlog < 0:
            raise ConfigError("shed backlogs must be >= 0")
        if self.background_shed_backlog > self.batch_shed_backlog:
            raise ConfigError(
                "background must shed at or below the batch watermark"
            )


@dataclass(frozen=True)
class FabricReport:
    """Aggregate outcome of one :meth:`ServingFabric.run`."""

    n_requests: int
    n_served: int
    rejected: dict[str, int]  # reason -> count, fabric- and shard-level
    wall_seconds: float
    simulated_span_ms: float
    shard_served: list[int]
    tenant_latency: dict[str, dict[str, float]]  # tenant -> summary
    outcomes: list = field(default_factory=list)

    @property
    def simulated_qps(self) -> float:
        span_s = self.simulated_span_ms / 1_000.0
        return self.n_served / span_s if span_s else 0.0

    @property
    def wall_qps(self) -> float:
        return self.n_served / self.wall_seconds if self.wall_seconds else 0.0


class _BacklogView:
    """Lazy per-shard backlog, indexed by the router on the hot path."""

    __slots__ = ("shards", "at_ms")

    def __init__(self, shards: list[ShardRuntime]) -> None:
        self.shards = shards
        self.at_ms = 0.0

    def __getitem__(self, i: int) -> int:
        return self.shards[i].backlog(self.at_ms)


class _HealthView:
    """Lazy per-shard breaker health, indexed by the router."""

    __slots__ = ("shards", "at_ms")

    def __init__(self, shards: list[ShardRuntime]) -> None:
        self.shards = shards
        self.at_ms = 0.0

    def __getitem__(self, i: int) -> bool:
        return self.shards[i].healthy(self.at_ms)


class ServingFabric:
    """N shards, one router, one tenant registry, one merged export."""

    def __init__(
        self,
        shards: list[ShardRuntime],
        tenants: TenantRegistry,
        *,
        config: FabricConfig | None = None,
        router: ShardRouter | None = None,
        telemetry: TelemetryBus | None = None,
    ) -> None:
        if not shards:
            raise ConfigError("fabric needs at least one shard")
        self.shards = list(shards)
        self.tenants = tenants
        self.config = config if config is not None else FabricConfig()
        self.router = (
            router
            if router is not None
            else ShardRouter(
                len(self.shards),
                mode=self.config.route_mode,
                seed=self.config.seed,
            )
        )
        if self.router.n_shards != len(self.shards):
            raise ConfigError("router shard count != fabric shard count")
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()
        self.telemetry.attach_gauge("router", self.router.stats)
        self.telemetry.attach_gauge("tenants", self.tenants.stats)
        self.aggregator = TelemetryAggregator(
            fabric_bus=self.telemetry,
            shard_buses={s.name: s.telemetry for s in self.shards},
        )

    # -- the event loop -----------------------------------------------------------

    def run(self, schedule: list[FabricRequest]) -> FabricReport:
        """Drain a fabric schedule in global arrival order."""
        bus = self.telemetry
        config = self.config
        qos_of = self.tenants.qos
        backlogs = _BacklogView(self.shards)
        health = _HealthView(self.shards)
        outcomes: list = []
        rejected: dict[str, int] = {}
        n_served = 0
        t0 = time.perf_counter()
        for freq in schedule:
            req = freq.request
            tenant = freq.tenant_id
            arrival = req.arrival_ms
            reason = self.tenants.admit(tenant, arrival)
            if reason is None:
                backlogs.at_ms = arrival
                health.at_ms = arrival
                key = self.router.routing_key(query_hash(req.query), tenant)
                shard_id = self.router.route(
                    key, loads=backlogs, healthy=health
                )
                if shard_id is None:
                    reason = "unavailable"
                else:
                    qos = qos_of(tenant)
                    if qos != "interactive":
                        watermark = (
                            config.background_shed_backlog
                            if qos == "background"
                            else config.batch_shed_backlog
                        )
                        if self.shards[shard_id].backlog(arrival) > watermark:
                            reason = "qos_shed"
            if reason is not None:
                outcome = Rejected(request=req, reason=reason, wait_ms=0.0)
                bus.incr(f"fabric.rejected.{reason}")
                bus.incr(f"tenant.{tenant}.rejected")
            else:
                outcome = self.shards[shard_id].submit(req)
                if isinstance(outcome, Served):
                    n_served += 1
                    bus.incr("fabric.served")
                    bus.incr(f"tenant.{tenant}.served")
                    bus.observe(
                        f"tenant.{tenant}.response_ms",
                        outcome.wait_ms + outcome.latency_ms,
                    )
                else:
                    bus.incr(f"tenant.{tenant}.rejected")
            if not isinstance(outcome, Served):
                rejected[outcome.reason] = rejected.get(outcome.reason, 0) + 1
            if config.keep_outcomes:
                outcomes.append(outcome)
        wall = time.perf_counter() - t0
        span = max((s.span_ms for s in self.shards), default=0.0)
        return FabricReport(
            n_requests=len(schedule),
            n_served=n_served,
            rejected=dict(sorted(rejected.items())),
            wall_seconds=wall,
            simulated_span_ms=span,
            shard_served=[s.served for s in self.shards],
            tenant_latency=self._tenant_latency(),
            outcomes=outcomes,
        )

    def _tenant_latency(self) -> dict[str, dict[str, float]]:
        """Per-tenant end-to-end (wait + service) latency summaries."""
        out: dict[str, dict[str, float]] = {}
        for tid in self.tenants.tenant_ids():
            hist = self.telemetry._hists.get(f"tenant.{tid}.response_ms")
            out[tid] = (
                hist.summary()
                if hist is not None
                else {
                    "count": 0,
                    "mean": 0.0,
                    "p50": 0.0,
                    "p95": 0.0,
                    "p99": 0.0,
                    "max": 0.0,
                }
            )
        return out

    # -- export -------------------------------------------------------------------

    def export_json(self, *, include_traces: bool = False) -> str:
        """The fabric-wide merged telemetry export (deterministic bytes)."""
        return self.aggregator.export_json(include_traces=include_traces)


def build_fabric_schedule(
    queries: list[Query],
    specs: list[TenantSpec] | tuple,
    *,
    seed: int = 0,
    mean_interarrival_ms: float = 5.0,
) -> list[FabricRequest]:
    """Deterministic tenant mix + global arrival process for a workload.

    Each query draws its tenant from the specs' ``weight`` distribution
    and its arrival gap from one global exponential process -- both from
    the same seeded generator, so the schedule is a pure function of
    ``(queries, specs, seed, mean_interarrival_ms)``.  Per-request
    identity (``session_id`` = tenant index in ``specs``, ``seq`` =
    per-tenant ordinal) is what trace records sort by fabric-wide.
    """
    import numpy as np

    if not specs:
        raise ConfigError("need at least one tenant spec")
    rng = np.random.default_rng((int(seed), 9))
    weights = np.array([s.weight for s in specs], dtype=float)
    weights /= weights.sum()
    choices = rng.choice(len(specs), size=len(queries), p=weights)
    arrivals = np.cumsum(
        rng.exponential(mean_interarrival_ms, size=len(queries))
    )
    per_tenant_seq = [0] * len(specs)
    schedule: list[FabricRequest] = []
    for i, query in enumerate(queries):
        t = int(choices[i])
        schedule.append(
            FabricRequest(
                tenant_id=specs[t].tenant_id,
                request=Request(
                    session_id=t,
                    seq=per_tenant_seq[t],
                    global_seq=i,
                    arrival_ms=float(arrivals[i]),
                    query=query,
                ),
            )
        )
        per_tenant_seq[t] += 1
    return schedule
