"""One serving shard: an incremental, breaker-guarded runtime slice.

A :class:`ShardRuntime` is a :class:`~repro.serve.runtime.ServingRuntime`
reshaped for the fabric's single-threaded event loop.  The parent runtime
owns a whole scheduled workload and drains it with one thread per session
behind a turn gate; a shard instead exposes :meth:`submit`, which the
fabric calls once per routed request *in global arrival order*.  Because
the fabric loop is already a deterministic total order, no gate or
threads are needed -- the shard just advances its own virtual state
(per-worker busy-until clocks, an in-flight heap, its circuit breaker's
clock) request by request.  Admission control mirrors the parent's
semantics shard-locally: client timeout on queueing delay, a queue bound
on the shard's in-flight backlog, an optional in-flight ceiling -- plus
two shard-specific outcomes, ``"shard_open"`` (the shard's breaker is
open) and ``"error"`` (the backend raised; the failure feeds the
breaker).

Telemetry is filed through the inherited
:meth:`~repro.serve.runtime.ServingRuntime._file_telemetry`, so per-shard
buses export exactly the shapes the single-runtime bus does and
:meth:`repro.serve.TelemetryBus.merged` can compose them fabric-wide.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.core.errors import ConfigError, DriverError
from repro.faults.clock import VirtualClock
from repro.faults.resilience import BreakerState, CircuitBreaker
from repro.serve.runtime import (
    Rejected,
    Request,
    RuntimeConfig,
    Served,
    ServingRuntime,
)
from repro.serve.telemetry import TelemetryBus

__all__ = ["ShardRuntime"]


class ShardRuntime(ServingRuntime):
    """A fabric shard: incremental admission + serving over virtual time.

    ``backend`` has the usual serving surface (``serve(query)`` returning
    stage/plan_source/latency_ms/cardinality) -- a per-shard
    :class:`~repro.serve.deployment.DeploymentManager` in the full stack,
    or a synthetic backend in scale benchmarks.  ``n_workers`` models the
    shard's service parallelism: each worker serves one request at a time
    in virtual time, and an arriving request is placed on the
    earliest-free worker (ties to the lower worker id -- deterministic).
    """

    def __init__(
        self,
        shard_id: int,
        backend,
        *,
        n_workers: int = 1,
        config: RuntimeConfig | None = None,
        telemetry: TelemetryBus | None = None,
        breaker: CircuitBreaker | None = None,
        clock: VirtualClock | None = None,
        auditor=None,
    ) -> None:
        if n_workers < 1:
            raise ConfigError("shard needs at least one worker")
        super().__init__(
            backend, config=config, telemetry=telemetry, auditor=auditor
        )
        self.shard_id = shard_id
        self.name = f"shard{shard_id:02d}"
        self.n_workers = n_workers
        self.breaker = breaker
        self.clock = (
            clock
            if clock is not None
            else (breaker.clock if breaker is not None else VirtualClock())
        )
        self._busy_until = [0.0] * n_workers
        self._in_flight: list[float] = []  # finish-time min-heap
        self.submitted = 0
        self.served = 0
        self.errors = 0
        self.span_ms = 0.0  # latest virtual finish on this shard
        self._cache_fn = getattr(backend, "cache_stats", None)
        self.telemetry.attach_gauge("shard", self.stats)
        if breaker is not None:
            self.telemetry.attach_gauge("shard_breaker", breaker.stats)

    # -- state the router reads ---------------------------------------------------

    def backlog(self, at_ms: float) -> int:
        """Requests still in flight on this shard at virtual ``at_ms``.

        The router's load signal and the fabric's QoS shed signal.  Pops
        finished entries from the heap as a side effect -- safe because
        the fabric only ever asks about the current (monotone) arrival
        time.
        """
        heap = self._in_flight
        while heap and heap[0] <= at_ms:
            heappop(heap)
        return len(heap)

    def healthy(self, at_ms: float) -> bool:
        """Routing-time health peek: would this shard accept traffic?

        Non-mutating (unlike :meth:`CircuitBreaker.allow`): an OPEN
        breaker whose cooldown has elapsed reports healthy here, and the
        actual OPEN -> HALF_OPEN transition happens when the routed
        request reaches :meth:`submit`.
        """
        breaker = self.breaker
        if breaker is None or breaker.state is not BreakerState.OPEN:
            return True
        return at_ms - breaker._opened_at_ms >= breaker.cooldown_ms

    # -- the per-request path -----------------------------------------------------

    def submit(self, req: Request):
        """Admit and (virtually) execute one routed request.

        Called in global arrival order.  Returns :class:`Served` or
        :class:`Rejected` and files the outcome on this shard's bus.
        """
        self.submitted += 1
        arrival = req.arrival_ms
        now = self.clock.now_ms()
        if arrival > now:
            # Breaker cooldowns elapse with traffic, not wall clock.
            self.clock.advance(arrival - now)
        backlog = self.backlog(arrival)
        worker = min(
            range(self.n_workers), key=lambda w: (self._busy_until[w], w)
        )
        start = max(self._busy_until[worker], arrival)
        wait = start - arrival
        config = self.config
        outcome = None
        if config.timeout_ms is not None and wait > config.timeout_ms:
            outcome = Rejected(request=req, reason="timeout", wait_ms=wait)
        elif (
            config.queue_capacity is not None
            and backlog > config.queue_capacity
        ):
            outcome = Rejected(request=req, reason="queue_full", wait_ms=wait)
        elif (
            config.max_in_flight is not None
            and backlog >= config.max_in_flight
        ):
            outcome = Rejected(request=req, reason="overload", wait_ms=wait)
        elif self.breaker is not None and not self.breaker.allow():
            outcome = Rejected(request=req, reason="shard_open", wait_ms=wait)
        if outcome is not None:
            self._file_telemetry(outcome, None, None)
            return outcome
        before = self._cache_fn() if self._cache_fn is not None else None
        try:
            decision = self.backend.serve(req.query)
        except DriverError:
            self.errors += 1
            if self.breaker is not None:
                self.breaker.record_failure()
            outcome = Rejected(request=req, reason="error", wait_ms=wait)
            self._file_telemetry(outcome, None, None)
            return outcome
        after = self._cache_fn() if self._cache_fn is not None else None
        if self.breaker is not None:
            self.breaker.record_success()
        finish = start + decision.latency_ms
        self._busy_until[worker] = finish
        heappush(self._in_flight, finish)
        if finish > self.span_ms:
            self.span_ms = finish
        self.served += 1
        outcome = Served(
            request=req,
            stage=decision.stage,
            plan_source=decision.plan_source,
            latency_ms=decision.latency_ms,
            wait_ms=wait,
            cardinality=decision.cardinality,
        )
        audit = ""
        if self.auditor is not None:
            audit = self.auditor.observe(
                req.query, decision.cardinality, bus=self.telemetry
            )
        self.telemetry.observe("latency_ms", decision.latency_ms)
        self._file_telemetry(outcome, before, after, audit)
        return outcome

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Gauge-friendly shard summary (numbers only)."""
        return {
            "submitted": float(self.submitted),
            "served": float(self.served),
            "errors": float(self.errors),
            "span_ms": float(self.span_ms),
            "workers": float(self.n_workers),
            "breaker_trips": float(
                self.breaker.trips if self.breaker is not None else 0
            ),
        }
