"""Multi-tenant admission: tenant registry, quotas, QoS classes.

The fabric serves many tenants from one pool of shards, so tenant-level
admission runs *ahead of* the per-shard virtual-time admission control
(timeouts, queue bounds): a request that fails its tenant's quota never
reaches a shard at all, and a low-priority request headed for a shard
under pressure is shed before it can queue behind interactive traffic.

- **Quotas** are per-tenant token buckets over *virtual* arrival time:
  ``rate_per_s`` tokens per virtual second up to ``burst``.  Refill is a
  pure function of the arrival timestamps, so same schedule + same specs
  gives byte-identical admission decisions on every run.
- **QoS classes** order tenants by latency sensitivity:
  ``interactive`` > ``batch`` > ``background``.  The class does not buy
  faster service -- shards are FIFO in virtual time -- it buys *admission
  priority under pressure*: the fabric sheds ``background`` work at a low
  shard backlog, ``batch`` at a higher one, and ``interactive`` only when
  the shard's own admission control rejects it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError

__all__ = ["QOS_CLASSES", "QOS_PRIORITY", "TenantSpec", "TenantRegistry"]

#: QoS classes in priority order (most latency-sensitive first).
QOS_CLASSES = ("interactive", "batch", "background")

#: class -> numeric priority (lower sheds later).
QOS_PRIORITY = {name: rank for rank, name in enumerate(QOS_CLASSES)}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity, QoS class and admission quota.

    ``rate_per_s`` is the sustained admission rate in requests per
    *virtual* second (``None`` = unmetered); ``burst`` is the token-bucket
    capacity, i.e. how far above the sustained rate a tenant may spike.
    ``weight`` is the tenant's share of generated traffic in
    :func:`~repro.serve.fabric.fabric.build_fabric_schedule` -- it plays
    no role in admission.
    """

    tenant_id: str
    qos: str = "interactive"
    rate_per_s: float | None = None
    burst: float = 32.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ConfigError("tenant_id must be non-empty")
        if self.qos not in QOS_CLASSES:
            raise ConfigError(
                f"unknown QoS class {self.qos!r}; one of {QOS_CLASSES}"
            )
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ConfigError("rate_per_s must be > 0 or None")
        if self.burst < 1:
            raise ConfigError("burst must be >= 1")
        if self.weight <= 0:
            raise ConfigError("weight must be > 0")


class TenantRegistry:
    """Registered tenants plus deterministic quota accounting.

    :meth:`admit` is called by the fabric for every request, in global
    arrival order, with the request's virtual arrival time; it refills the
    tenant's token bucket from the elapsed virtual time and either spends
    a token (admitted, returns ``None``) or rejects with reason
    ``"quota"``.  Unknown tenants are a configuration error -- silently
    admitting unregistered traffic would make quota tests lie.
    """

    def __init__(self, specs: tuple | list = ()) -> None:
        self._specs: dict[str, TenantSpec] = {}
        self._tokens: dict[str, float] = {}
        self._refilled_at_ms: dict[str, float] = {}
        self.admitted: dict[str, int] = {}
        self.rejected: dict[str, int] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: TenantSpec) -> None:
        if spec.tenant_id in self._specs:
            raise ConfigError(f"tenant {spec.tenant_id!r} already registered")
        self._specs[spec.tenant_id] = spec
        self._tokens[spec.tenant_id] = float(spec.burst)
        self._refilled_at_ms[spec.tenant_id] = 0.0
        self.admitted[spec.tenant_id] = 0
        self.rejected[spec.tenant_id] = 0

    def spec(self, tenant_id: str) -> TenantSpec:
        try:
            return self._specs[tenant_id]
        except KeyError:
            raise ConfigError(f"unknown tenant {tenant_id!r}") from None

    def tenant_ids(self) -> list[str]:
        return sorted(self._specs)

    def qos(self, tenant_id: str) -> str:
        return self.spec(tenant_id).qos

    # -- admission ---------------------------------------------------------------

    def admit(self, tenant_id: str, arrival_ms: float) -> str | None:
        """Quota decision for one arrival; ``None`` admits, else a reason.

        Deterministic given the arrival stream: tokens refill from the
        virtual time elapsed since this tenant's previous refill, never
        from wall clock.  Arrival times are globally monotone (the fabric
        processes its schedule in arrival order), so refills are too.
        """
        spec = self.spec(tenant_id)
        if spec.rate_per_s is None:
            self.admitted[tenant_id] += 1
            return None
        elapsed_ms = arrival_ms - self._refilled_at_ms[tenant_id]
        if elapsed_ms > 0:
            self._tokens[tenant_id] = min(
                float(spec.burst),
                self._tokens[tenant_id] + elapsed_ms * spec.rate_per_s / 1_000.0,
            )
            self._refilled_at_ms[tenant_id] = arrival_ms
        if self._tokens[tenant_id] >= 1.0:
            self._tokens[tenant_id] -= 1.0
            self.admitted[tenant_id] += 1
            return None
        self.rejected[tenant_id] += 1
        return "quota"

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Gauge-friendly per-tenant admission counters (numbers only)."""
        out: dict[str, float] = {}
        for tid in sorted(self._specs):
            out[f"{tid}.admitted"] = float(self.admitted[tid])
            out[f"{tid}.rejected"] = float(self.rejected[tid])
        return out
