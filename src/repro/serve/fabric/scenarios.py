"""Canned fabric assemblies for tests, benchmarks and examples.

Two tiers, matching how the subsystem is validated:

- :func:`synthetic_fabric` serves through :class:`SyntheticBackend` --
  virtual latency derived purely from the query hash -- so the fabric
  layer itself (routing, quotas, QoS shedding, breaker failover, merge
  determinism) can be measured at 10^5+ requests across 16+ shards in
  seconds.  This is what ``bench_p9_fabric.py`` gates scaling and
  fairness on.
- :func:`sharded_fabric_scenario` assembles the *real* per-shard stack:
  each shard gets its own :class:`~repro.serve.deployment.
  DeploymentManager` (Bao-style learned optimizer staged CANARY over the
  native planner), its own plan cache, its own :class:`~repro.faults.
  BoundGuard`, and its own circuit breaker on its own virtual clock --
  the full production topology at test scale.

Both support a seeded :class:`~repro.faults.FaultPlan` whose specs
target shards by name (``"shard03"``), so breaker-trip-and-reroute
behaviour is reproducible byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cardest.bounds import MCVJoinBoundEstimator
from repro.e2e.bao import BaoOptimizer
from repro.engine.simulator import ExecutionSimulator
from repro.faults import CircuitBreaker, FaultInjector, FaultPlan
from repro.faults.clock import VirtualClock
from repro.optimizer.plancache import PlanCache
from repro.optimizer.planner import Optimizer
from repro.optimizer.traditional import TraditionalCardinalityEstimator
from repro.serve.deployment import DeploymentManager, Stage, query_hash
from repro.serve.fabric.fabric import (
    FabricConfig,
    FabricRequest,
    ServingFabric,
    build_fabric_schedule,
)
from repro.serve.fabric.shard import ShardRuntime
from repro.serve.fabric.tenants import TenantRegistry, TenantSpec
from repro.serve.runtime import RuntimeConfig
from repro.serve.telemetry import TelemetryBus
from repro.sql.generator import WorkloadGenerator
from repro.sql.query import Query
from repro.storage.datasets import make_stats_lite

__all__ = [
    "SyntheticBackend",
    "FabricScenario",
    "default_tenant_specs",
    "hot_tenant_specs",
    "synthetic_queries",
    "synthetic_fabric",
    "sharded_fabric_scenario",
]

#: multiplier for seed scrambling in SyntheticBackend (splitmix64 constant)
_MIX = 0x9E3779B97F4A7C15


@dataclass(frozen=True)
class _SyntheticDecision:
    stage: str
    plan_source: str
    latency_ms: float
    cardinality: int


class SyntheticBackend:
    """A deterministic constant-time serving backend for scale runs.

    Service latency is a pure function of ``(seed, query_hash)`` --
    uniform on ``[base_latency_ms, base_latency_ms + spread_ms)`` -- so
    a query costs the same wherever it is routed (which is what makes
    shard-count scaling comparisons apples to apples) and two same-seed
    runs are byte-identical.  No planner, no simulator: the fabric layer
    is the system under test.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        base_latency_ms: float = 4.0,
        spread_ms: float = 8.0,
    ) -> None:
        self.seed = int(seed)
        self.base_latency_ms = float(base_latency_ms)
        self.spread_ms = float(spread_ms)
        self.name = "synthetic"
        self.calls = 0

    def serve(self, query: Query) -> _SyntheticDecision:
        self.calls += 1
        h = int(query_hash(query), 16)
        mixed = (h ^ (self.seed * _MIX)) & 0xFFFFFFFFFFFF
        u = mixed / float(1 << 48)
        return _SyntheticDecision(
            stage="live",
            plan_source="synthetic",
            latency_ms=self.base_latency_ms + self.spread_ms * u,
            cardinality=h % 1_000_000,
        )


@dataclass
class FabricScenario:
    """A fully-assembled fabric: run it, inspect the pieces."""

    name: str
    fabric: ServingFabric
    schedule: list[FabricRequest]
    specs: tuple[TenantSpec, ...]
    injector: FaultInjector | None = None
    db: object = None

    def run(self):
        return self.fabric.run(self.schedule)

    @property
    def n_requests(self) -> int:
        return len(self.schedule)


def default_tenant_specs(
    n_tenants: int = 6, *, rate_per_s: float | None = None
) -> tuple[TenantSpec, ...]:
    """Equal-weight tenants cycling through the QoS classes."""
    qos_cycle = ("interactive", "batch", "background")
    return tuple(
        TenantSpec(
            tenant_id=f"tenant{i:02d}",
            qos=qos_cycle[i % len(qos_cycle)],
            rate_per_s=rate_per_s,
        )
        for i in range(n_tenants)
    )


def hot_tenant_specs(
    *,
    n_victims: int = 3,
    hot_weight: float = 8.0,
    hot_rate_per_s: float | None = None,
) -> tuple[TenantSpec, ...]:
    """A hot-tenant skew mix: one ``batch`` tenant issuing ``hot_weight``
    times its fair share of traffic, alongside ``n_victims`` interactive
    tenants.  The fairness gate runs this against the same specs at
    ``hot_weight=1`` and bounds the victims' p99 inflation."""
    victims = tuple(
        TenantSpec(tenant_id=f"victim{i:02d}", qos="interactive")
        for i in range(n_victims)
    )
    hot = TenantSpec(
        tenant_id="hot",
        qos="batch",
        weight=hot_weight,
        rate_per_s=hot_rate_per_s,
        burst=max(32.0, hot_rate_per_s or 32.0),
    )
    return victims + (hot,)


def synthetic_queries(
    n_templates: int = 240, *, seed: int = 0, scale: float = 0.05
) -> list[Query]:
    """A pool of distinct query templates for synthetic fabric runs.

    Scale runs tile these over 10^5+ requests: real workloads repeat
    templates heavily, ``query_hash`` memoizes per Query object, and the
    router sees a realistic (finite) key population.
    """
    db = make_stats_lite(scale=scale, seed=seed)
    return WorkloadGenerator(db, seed=seed + 1).workload(
        n_templates, 2, 3, require_predicate=True
    )


def synthetic_fabric(
    n_shards: int,
    specs: tuple[TenantSpec, ...] | list,
    *,
    seed: int = 0,
    n_workers: int = 2,
    base_latency_ms: float = 4.0,
    spread_ms: float = 8.0,
    shard_config: RuntimeConfig | None = None,
    fabric_config: FabricConfig | None = None,
    trace_capacity: int = 256,
    fault_plan: FaultPlan | None = None,
    breaker_failure_threshold: int = 3,
    breaker_cooldown_ms: float = 500.0,
) -> FabricScenario:
    """Assemble a synthetic-backend fabric (no schedule attached yet --
    pair with :func:`synthetic_queries` + :func:`build_fabric_schedule`,
    or use the returned scenario's empty schedule slot)."""
    config = (
        fabric_config
        if fabric_config is not None
        else FabricConfig(seed=seed)
    )
    injector = (
        FaultInjector(fault_plan) if fault_plan is not None else None
    )
    shards: list[ShardRuntime] = []
    for i in range(n_shards):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=breaker_failure_threshold,
            cooldown_ms=breaker_cooldown_ms,
            clock=clock,
            name=f"shard{i:02d}",
        )
        backend = SyntheticBackend(
            seed=seed,
            base_latency_ms=base_latency_ms,
            spread_ms=spread_ms,
        )
        if injector is not None:
            backend = injector.wrap_backend(backend, target=f"shard{i:02d}")
        shards.append(
            ShardRuntime(
                i,
                backend,
                n_workers=n_workers,
                config=shard_config,
                telemetry=TelemetryBus(trace_capacity=trace_capacity),
                breaker=breaker,
                clock=clock,
            )
        )
    fabric = ServingFabric(
        shards, TenantRegistry(specs), config=config
    )
    if injector is not None:
        fabric.telemetry.attach_gauge("fault_injector", injector.stats)
    return FabricScenario(
        name=f"synthetic:{n_shards}shards",
        fabric=fabric,
        schedule=[],
        specs=tuple(specs),
        injector=injector,
    )


def _make_bound_guard(db, native, bus):
    """One shard's bound guard: the native estimator certified against a
    pessimistic MCV-join bound, histogram fallback, no private breaker
    (the shard breaker owns routing health)."""
    from repro.faults.boundguard import BoundGuard

    return BoundGuard(
        native.estimator,
        MCVJoinBoundEstimator(db),
        TraditionalCardinalityEstimator(db),
        telemetry=bus,
    )


def sharded_fabric_scenario(
    *,
    n_shards: int = 4,
    scale: float = 0.3,
    seed: int = 0,
    n_queries: int = 96,
    specs: tuple[TenantSpec, ...] | None = None,
    mean_interarrival_ms: float = 30.0,
    shard_config: RuntimeConfig | None = None,
    fabric_config: FabricConfig | None = None,
    stage: Stage = Stage.CANARY,
    fault_plan: FaultPlan | None = None,
) -> FabricScenario:
    """The full per-shard production stack at test scale.

    One shared database; per shard, a complete serving stack: a native
    optimizer with its own cardinality cache, a Bao-style learned
    optimizer staged behind that shard's own
    :class:`~repro.serve.deployment.DeploymentManager`, a per-shard
    :class:`~repro.optimizer.PlanCache`, a per-shard
    :class:`~repro.faults.BoundGuard` over the estimator feeding the
    learned side, and a per-shard circuit breaker on a per-shard virtual
    clock.  A ``fault_plan`` with shard-named targets wraps those
    backends in the fault injector for reroute drills.
    """
    db = make_stats_lite(scale=scale, seed=seed)
    if specs is None:
        specs = default_tenant_specs()
    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    shards: list[ShardRuntime] = []
    for i in range(n_shards):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=3,
            cooldown_ms=500.0,
            clock=clock,
            name=f"shard{i:02d}",
        )
        bus = TelemetryBus()
        native = Optimizer(db)
        guard = _make_bound_guard(db, native, bus)
        learned = BaoOptimizer(native.with_estimator(guard), seed=seed + i)
        deployment = DeploymentManager(
            learned,
            native,
            ExecutionSimulator(db),
            telemetry=bus,
            stage=stage,
            canary_fraction=0.5,
            regression_threshold=3.0,
            window=40,
            min_samples=15,
            plan_cache=PlanCache(),
            bound_guard=guard,
        )
        backend = deployment
        if injector is not None:
            backend = injector.wrap_backend(
                deployment, target=f"shard{i:02d}"
            )
        shards.append(
            ShardRuntime(
                i,
                backend,
                n_workers=1,
                config=shard_config,
                telemetry=bus,
                breaker=breaker,
                clock=clock,
            )
        )
    fabric = ServingFabric(
        shards,
        TenantRegistry(specs),
        config=(
            fabric_config if fabric_config is not None else FabricConfig(seed=seed)
        ),
    )
    if injector is not None:
        fabric.telemetry.attach_gauge("fault_injector", injector.stats)
    queries = WorkloadGenerator(db, seed=seed + 1).workload(
        n_queries, 2, 4, require_predicate=True
    )
    schedule = build_fabric_schedule(
        queries, specs, seed=seed, mean_interarrival_ms=mean_interarrival_ms
    )
    return FabricScenario(
        name=f"sharded:{n_shards}shards",
        fabric=fabric,
        schedule=schedule,
        specs=tuple(specs),
        injector=injector,
        db=db,
    )
