"""Horizontally sharded, multi-tenant serving fabric (ROADMAP: scale-out).

The paper's "what is next" argument -- learned optimizers must be judged
as production serving systems -- needs serving infrastructure that can
generate production *shape*: many shards, many tenants, load skew,
partial failure.  This package scales the single
:class:`~repro.serve.ServingRuntime` out horizontally while keeping the
repo's core invariant: same seed, byte-identical telemetry export.

- :mod:`repro.serve.fabric.router` -- :class:`ShardRouter`: deterministic
  two-choice placement by canonical query hash or tenant id, skipping
  shards behind open breakers;
- :mod:`repro.serve.fabric.shard` -- :class:`ShardRuntime`: one shard's
  incremental virtual-time runtime (admission, workers, breaker,
  telemetry) driven by the fabric loop;
- :mod:`repro.serve.fabric.tenants` -- :class:`TenantRegistry` /
  :class:`TenantSpec`: per-tenant token-bucket quotas and QoS classes
  (interactive/batch/background) enforced ahead of shard admission;
- :mod:`repro.serve.fabric.fabric` -- :class:`ServingFabric`: the
  deterministic event loop tying quota -> route -> QoS shed -> shard
  together, plus :func:`build_fabric_schedule`;
- :mod:`repro.serve.fabric.aggregate` -- :class:`TelemetryAggregator`:
  merges per-shard buses into one export via
  :meth:`repro.serve.TelemetryBus.merged` (order-independent bytes);
- :mod:`repro.serve.fabric.scenarios` -- synthetic (10^5-request scale)
  and full-stack (per-shard deployment manager / plan cache / bound
  guard / breaker) assemblies used by ``benchmarks/bench_p9_fabric.py``
  and the tests.
"""

from repro.serve.fabric.aggregate import TelemetryAggregator
from repro.serve.fabric.fabric import (
    FabricConfig,
    FabricReport,
    FabricRequest,
    ServingFabric,
    build_fabric_schedule,
)
from repro.serve.fabric.router import ROUTE_MODES, ShardRouter
from repro.serve.fabric.scenarios import (
    FabricScenario,
    SyntheticBackend,
    default_tenant_specs,
    hot_tenant_specs,
    sharded_fabric_scenario,
    synthetic_fabric,
    synthetic_queries,
)
from repro.serve.fabric.shard import ShardRuntime
from repro.serve.fabric.tenants import (
    QOS_CLASSES,
    QOS_PRIORITY,
    TenantRegistry,
    TenantSpec,
)

__all__ = [
    "QOS_CLASSES",
    "QOS_PRIORITY",
    "ROUTE_MODES",
    "FabricConfig",
    "FabricReport",
    "FabricRequest",
    "FabricScenario",
    "ServingFabric",
    "ShardRouter",
    "ShardRuntime",
    "SyntheticBackend",
    "TelemetryAggregator",
    "TenantRegistry",
    "TenantSpec",
    "build_fabric_schedule",
    "default_tenant_specs",
    "hot_tenant_specs",
    "sharded_fabric_scenario",
    "synthetic_fabric",
    "synthetic_queries",
]
