"""Deterministic, load- and health-aware shard routing.

:class:`ShardRouter` partitions traffic over ``n_shards`` serving shards
by the canonical :func:`repro.sql.query.query_hash` (the same 12-hex
identity the canary split, the cardinality cache and the plan cache key
by) or by tenant id.  Placement is *two-choice*: each routing key hashes
to an ordered pair of candidate shards (a seeded sha256 derivation, so
the pair is a pure function of ``(seed, key)``), and the less-loaded
healthy candidate wins, ties broken toward the primary candidate and
then the lower shard id.  Power-of-two-choices keeps shard load within a
whisker of perfectly balanced without any global coordination -- which is
what the P9 near-linear-scaling gate measures -- while keeping the
routing table a pure function: same seed + same key + same (load,
health) observations = same shard, every run.

Health comes from the per-shard circuit breakers: a shard behind an OPEN
breaker (cooldown not yet elapsed) is excluded, and its traffic fails
over to the other candidate -- or, if both candidates are down, to the
first healthy shard scanning from the primary candidate (deterministic
rotation).  When every shard is unhealthy the router returns ``None``
and the fabric sheds the request as ``unavailable`` rather than queueing
on a known-bad shard.
"""

from __future__ import annotations

import hashlib

from repro.core.errors import ConfigError

__all__ = ["ROUTE_MODES", "ShardRouter"]

#: accepted partitioning modes
ROUTE_MODES = ("query_hash", "tenant", "pinned")


class ShardRouter:
    """Two-choice rendezvous routing over ``n_shards`` with failover.

    Mode ``"pinned"`` bypasses two-choice placement: an explicit
    ``pinned`` map assigns each tenant id to one shard, with *no*
    failover -- the shard owns state (e.g. that tenant's database) that
    no other shard can serve, so an unhealthy pinned shard makes the
    request ``unroutable`` rather than misrouted.  This is what the
    cross-schema transfer fleet uses: one tenant per generated schema,
    one schema per shard.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        mode: str = "query_hash",
        seed: int = 0,
        pinned: dict[str, int] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigError("need at least one shard")
        if mode not in ROUTE_MODES:
            raise ConfigError(f"unknown route mode {mode!r}; one of {ROUTE_MODES}")
        if (mode == "pinned") != (pinned is not None):
            raise ConfigError("mode='pinned' requires (and is required by) a pinned map")
        if pinned is not None:
            bad = {k: s for k, s in pinned.items() if not 0 <= s < n_shards}
            if bad:
                raise ConfigError(f"pinned assignments out of range: {bad}")
        self.n_shards = n_shards
        self.mode = mode
        self.seed = int(seed)
        self.pinned = dict(pinned) if pinned is not None else None
        self.assignments = [0] * n_shards
        self.reroutes = 0  # served off the primary candidate (health)
        self.unroutable = 0  # every shard unhealthy
        self._pairs: dict[str, tuple[int, int]] = {}

    # -- candidate derivation ----------------------------------------------------

    def candidates(self, key: str) -> tuple[int, int]:
        """The deterministic (primary, secondary) shard pair for a key.

        Derived from one sha256 over ``(seed, key)``: the first 8 bytes
        pick the primary, the next 8 pick the secondary from the
        remaining shards (guaranteed distinct when ``n_shards > 1``).
        Memoized per key -- workloads reuse query hashes heavily.
        """
        pair = self._pairs.get(key)
        if pair is None:
            digest = hashlib.sha256(
                f"route|{self.seed}|{key}".encode()
            ).digest()
            first = int.from_bytes(digest[:8], "big") % self.n_shards
            if self.n_shards == 1:
                pair = (0, 0)
            else:
                second = int.from_bytes(digest[8:16], "big") % (
                    self.n_shards - 1
                )
                if second >= first:
                    second += 1
                pair = (first, second)
            self._pairs[key] = pair
        return pair

    # -- routing -----------------------------------------------------------------

    def route(self, key: str, *, loads, healthy) -> int | None:
        """Pick the shard for one request.

        ``loads`` and ``healthy`` are indexable views of the current
        per-shard backlog and health (the fabric passes bound methods
        evaluated lazily, so only the candidates are inspected on the hot
        path).  Returns the shard id, or ``None`` when no shard is
        healthy.  Deterministic: the decision depends only on
        ``(seed, key)`` and the observed (load, health) values, and ties
        prefer the primary candidate, then the lower shard id.
        """
        if self.pinned is not None:
            try:
                shard = self.pinned[key]
            except KeyError:
                raise ConfigError(
                    f"no pinned shard for routing key {key!r}; "
                    f"pinned tenants: {sorted(self.pinned)}"
                ) from None
            if not healthy[shard]:
                self.unroutable += 1
                return None
            self.assignments[shard] += 1
            return shard
        first, second = self.candidates(key)
        chosen: int | None = None
        if healthy[first]:
            chosen = first
            if second != first and healthy[second]:
                if loads[second] < loads[first]:
                    chosen = second
        elif second != first and healthy[second]:
            chosen = second
        else:
            for step in range(self.n_shards):
                probe = (first + step) % self.n_shards
                if healthy[probe]:
                    chosen = probe
                    break
        if chosen is None:
            self.unroutable += 1
            return None
        self.assignments[chosen] += 1
        if chosen != first:
            self.reroutes += 1
        return chosen

    def routing_key(self, query_hash_value: str, tenant_id: str) -> str:
        """The partition key under the configured mode (tenant id for both
        ``tenant`` and ``pinned`` modes)."""
        return query_hash_value if self.mode == "query_hash" else tenant_id

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Gauge-friendly snapshot: per-shard assignment counts, reroutes."""
        out: dict[str, float] = {
            f"assigned.shard{i:02d}": float(n)
            for i, n in enumerate(self.assignments)
        }
        out["reroutes"] = float(self.reroutes)
        out["unroutable"] = float(self.unroutable)
        out["keys"] = float(len(self._pairs))
        return out
