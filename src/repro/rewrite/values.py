"""Literal values relations for the IN -> join rewrite.

``col IN (a, b, c)`` is equivalent to an equi-join against a single-column
relation holding exactly the distinct literals: every base row matching the
IN list finds exactly one join partner (the values column is unique), every
other row finds none, so COUNT(*) is preserved.  The catalog materializes
those relations *in place* on the live :class:`~repro.storage.catalog.
Database` -- same object the simulator, auditor and serving stack execute
against -- which is what makes the rewrite servable end to end.

Determinism and cache-safety notes:

- table names are content-addressed (``vals_<sha12>`` over the column and
  the literal list), so the same IN predicate always attaches the same
  relation and repeat attachments are no-ops;
- a fresh :class:`~repro.storage.table.Table` starts at ``data_version 0``,
  so attaching never changes ``db.data_version`` and existing cardinality /
  plan cache entries stay valid;
- integer base columns get integer values relations; non-integral literals
  can never match an integer column, so they are dropped rather than cast
  (casting would invent matches).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

from repro.sql.query import ColumnRef, Join
from repro.storage.catalog import Database, JoinEdge
from repro.storage.table import Column, Table

__all__ = ["ValuesCatalog"]


class ValuesCatalog:
    """Attach content-addressed literal relations to a live database.

    Parameters
    ----------
    db:
        The database rewritten queries will execute against.
    stats:
        Optional :class:`~repro.optimizer.statistics.DatabaseStats` kept in
        sync: every new relation is registered via ``stats.refresh`` so the
        planner can cost plans over it immediately.
    """

    def __init__(self, db: Database, stats=None, prefix: str = "vals") -> None:
        self.db = db
        self.stats = stats
        self.prefix = prefix
        self.attachments = 0
        self.reuses = 0

    def attach(
        self, column: ColumnRef, values: Iterable[float]
    ) -> tuple[str, Join] | None:
        """Materialize the literal relation for ``column IN values``.

        Returns ``(table_name, join)`` where ``join`` equates the base
        column with the relation's ``v`` column, or None when no literal
        can ever match (e.g. all literals non-integral on an int column).
        """
        base = self.db.table(column.table).values(column.column)
        vals = sorted(float(v) for v in set(values))
        if base.dtype.kind == "i":
            vals = [v for v in vals if float(v).is_integer()]
        if not vals:
            return None
        digest = hashlib.sha256(
            f"{column}|{','.join(repr(v) for v in vals)}".encode()
        ).hexdigest()[:12]
        name = f"{self.prefix}_{digest}"
        join = Join(
            ColumnRef(column.table, column.column), ColumnRef(name, "v")
        )
        if name in self.db.tables:
            self.reuses += 1
            return name, join
        arr = np.array(vals, dtype=base.dtype if base.dtype.kind == "i" else np.float64)
        self.db.tables[name] = Table(name, [Column("v", arr, is_key=True)])
        self.db.joins.append(
            JoinEdge(column.table, column.column, name, "v").normalized()
        )
        if self.stats is not None:
            self.stats.refresh(self.db, [name])
        self.attachments += 1
        return name, join

    @property
    def attached(self) -> list[str]:
        """Names of all values relations currently attached, sorted."""
        return sorted(
            t for t in self.db.tables if t.startswith(f"{self.prefix}_")
        )
