"""Serving-side wiring for promoted rewrites.

:class:`RewritingOptimizer` exposes the repo's learned-optimizer surface
(``choose_plan`` / ``record_feedback``), so the rewrite subsystem deploys
exactly like any model: through :class:`~repro.e2e.loop.OptimizationLoop`,
or staged SHADOW -> CANARY -> LIVE by a
:class:`~repro.serve.deployment.DeploymentManager`.  For each query it
consults the leaderboard; a servable promoted rewrite is planned (by the
leaderboard's optimizer, whose statistics cover any attached values
relations) and returned with source ``rewrite:<rule>``; otherwise the
query falls through to an optional inner learned optimizer, or to a plain
native plan.

Plan-cache safety: the deployment manager's :class:`~repro.optimizer.
plancache.PlanCache` fronts only its *native* path and keys on the
original query's ``template_key``; rewritten queries have different
template keys by construction (structure changed), so a promoted rewrite
can never be conflated with a cached native plan of the original.

:class:`RewriteDriver` is the same idea as a PilotScope driver: pull a
plan for the rewritten query through the session's push/pull operators and
execute it.  Build the leaderboard over the interactor's own optimizer so
values-relation statistics are registered where ``pull_plan`` plans.
"""

from __future__ import annotations

from repro.core.framework import CandidatePlan
from repro.pilotscope.driver import Driver
from repro.pilotscope.interactor import ExecutionOutcome
from repro.sql.query import Query

from repro.rewrite.leaderboard import PromotionLeaderboard

__all__ = ["RewritingOptimizer", "RewriteDriver"]


class RewritingOptimizer:
    """A learned optimizer that serves oracle-validated promoted rewrites."""

    def __init__(
        self,
        leaderboard: PromotionLeaderboard,
        inner=None,
        *,
        auto_submit: bool = True,
        name: str | None = None,
    ) -> None:
        """``inner`` optionally handles queries with no promoted rewrite
        (any ``choose_plan``/``record_feedback`` model, e.g. Bao); without
        one they are served with the leaderboard optimizer's native plan.

        ``auto_submit`` runs the full candidate/validate/promote pipeline
        the first time each query is seen (submission is idempotent);
        disable it to serve strictly from prior leaderboard state."""
        self.leaderboard = leaderboard
        self.inner = inner
        self.auto_submit = auto_submit
        inner_name = getattr(inner, "name", None) if inner is not None else None
        self.name = name or (
            f"rewrite+{inner_name}" if inner_name else "rewrite"
        )
        self.rewrites_served = 0
        self.delegated = 0

    def choose_plan(self, query: Query) -> CandidatePlan:
        if self.auto_submit:
            self.leaderboard.submit(query)
        hit = self.leaderboard.promoted_for(query)
        if hit is not None:
            candidate, entry = hit
            plan = self.leaderboard.optimizer.plan(candidate.rewritten)
            self.rewrites_served += 1
            return CandidatePlan(plan=plan, source=f"rewrite:{entry.rule}")
        if self.inner is not None:
            self.delegated += 1
            return self.inner.choose_plan(query)
        return CandidatePlan(
            plan=self.leaderboard.optimizer.plan(query), source="native"
        )

    def record_feedback(
        self, query: Query, candidate: CandidatePlan, latency_ms: float
    ) -> None:
        if candidate.source.startswith("rewrite:"):
            rule = candidate.source.split(":", 1)[1]
            self.leaderboard.observe_served(query, rule, latency_ms)
        elif self.inner is not None:
            self.inner.record_feedback(query, candidate, latency_ms)

    def retrain(self) -> None:
        """Refit the retrieval index (and the inner model, when it can)."""
        store = self.leaderboard.store
        if store is not None:
            store.fit()
        if self.inner is not None and hasattr(self.inner, "retrain"):
            self.inner.retrain()

    def stats(self) -> dict:
        return {
            "rewrites_served": self.rewrites_served,
            "delegated": self.delegated,
        }


class RewriteDriver(Driver):
    """PilotScope driver serving promoted rewrites via push/pull operators."""

    injection_type = "query_rewrite"
    name = "rewrite"

    def __init__(
        self, leaderboard: PromotionLeaderboard, *, auto_submit: bool = True
    ) -> None:
        super().__init__()
        self.leaderboard = leaderboard
        self.auto_submit = auto_submit
        self.rewrites_served = 0

    def algo(self, query: Query) -> ExecutionOutcome:
        interactor = self._require_started()
        if self.auto_submit:
            self.leaderboard.submit(query)
        hit = self.leaderboard.promoted_for(query)
        target = query
        if hit is not None:
            target = hit[0].rewritten
            self.rewrites_served += 1
        with interactor.open_session() as session:
            plan = session.pull_plan(target)
            result = session.pull_execution(plan)
        if hit is not None:
            self.leaderboard.observe_served(
                query, hit[1].rule, result.latency_ms
            )
        return ExecutionOutcome(
            cardinality=result.cardinality,
            latency_ms=result.latency_ms,
            plan=plan,
        )
