"""Zero-tolerance correctness gate in front of the promotion leaderboard.

A rewrite that changes results is worse than useless no matter how fast it
is, so every candidate passes through the same exact-count machinery the
metamorphic oracle uses (:func:`repro.sql.transforms.verify_transform` /
:func:`~repro.sql.transforms.verify_union`): COUNT(original) must equal
COUNT(rewritten) -- or the sum over branches for union splits -- on the
vectorized executor, with no tolerance.  Candidates whose counts cannot be
computed (intermediate-size guard) are *skipped*, never promoted.

For promoted candidates the leaderboard can additionally run
:meth:`RewriteValidator.deep_check`, which pushes each rewritten query
through the :class:`~repro.oracle.equivalence.PlanEquivalenceChecker`:
every enumerated plan shape for the rewritten query must agree with the
original's exact count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.executor import CardinalityExecutor
from repro.sql.transforms import VerifyOutcome, verify_transform, verify_union
from repro.storage.catalog import Database

from repro.rewrite.rules import RewriteCandidate

__all__ = ["ValidationResult", "RewriteValidator"]


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating one candidate (wraps the shared VerifyOutcome)."""

    candidate: RewriteCandidate
    outcome: VerifyOutcome

    @property
    def ok(self) -> bool:
        return self.outcome.ok

    @property
    def skipped(self) -> bool:
        return self.outcome.skipped

    @property
    def mismatch(self) -> bool:
        return self.outcome.failed


class RewriteValidator:
    """Exact count-preservation checks for rewrite candidates."""

    def __init__(
        self, db: Database, executor: CardinalityExecutor | None = None
    ) -> None:
        self.db = db
        self.executor = (
            executor if executor is not None else CardinalityExecutor(db)
        )
        self.checked = 0
        self.mismatches = 0
        self.skipped = 0

    def validate(
        self, candidate: RewriteCandidate, *, baseline: int | None = None
    ) -> ValidationResult:
        """Exact COUNT comparison; ``baseline`` skips re-counting the original."""
        self.checked += 1
        if candidate.servable:
            outcome = verify_transform(
                self.db,
                candidate.original,
                candidate.rewritten,
                baseline=baseline,
                executor=self.executor,
            )
        else:
            outcome = verify_union(
                self.db,
                candidate.original,
                candidate.queries,
                baseline=baseline,
                executor=self.executor,
            )
        if outcome.failed:
            self.mismatches += 1
        elif outcome.skipped:
            self.skipped += 1
        return ValidationResult(candidate, outcome)

    def deep_check(self, candidate: RewriteCandidate, checker) -> list:
        """Run every rewritten query through a PlanEquivalenceChecker.

        Returns the collected oracle violations (empty when clean).  The
        checker must be built over the same database (values relations
        included) so plans over attached literals execute.
        """
        violations: list = []
        for query in candidate.queries:
            violations.extend(checker.check_query(query))
        return violations
