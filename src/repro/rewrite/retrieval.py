"""Gold-example retrieval: learn which rules pay off for which queries.

ADO-style example retrieval without the FAISS dependency: every promoted
(or demoted) rewrite is stored as an example keyed by the query's
:class:`~repro.cardest.featurize.FlatQueryFeaturizer` vector.  Fitting
:class:`~repro.ml.cluster.KMeans` over the stored vectors partitions the
query-structure space; at selection time a new query is assigned to its
nearest cluster and each rule's weight is the base 1.0 boosted by gold
examples and penalized by anti-patterns *from that cluster only* -- a rule
that regressed on structurally similar queries is down-weighted (and below
the leaderboard's selection cutoff, skipped outright) while still being
tried on dissimilar ones.

Cold start -- no examples, or :meth:`fit` never called -- keeps every
weight at 1.0 so all applicable rules are explored.  Everything is
deterministic: a fixed seed fixes the clustering, examples are stored in
arrival order, and exports sort canonically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cardest.featurize import FlatQueryFeaturizer
from repro.ml.cluster import KMeans
from repro.sql.query import Query, query_hash
from repro.storage.catalog import Database

__all__ = ["RewriteExample", "GoldExampleStore"]


@dataclass(frozen=True)
class RewriteExample:
    """One recorded rewrite outcome: gold (promoted) or anti (demoted)."""

    query_hash: str
    rule: str
    speedup: float
    kind: str  # "gold" | "anti"


class GoldExampleStore:
    """Cluster-indexed store of rewrite outcomes driving rule selection.

    Parameters
    ----------
    db:
        Base database (featurizer dimensions snapshot the schema, so build
        the store before any values relations are attached and featurize
        only original -- pre-rewrite -- queries).
    n_clusters / seed:
        KMeans configuration; fixed seed makes retrieval deterministic.
    gold_boost / anti_penalty:
        Additive weight delta per same-cluster example of each kind.
    min_weight:
        Floor so a heavily-penalized rule never goes negative.
    """

    def __init__(
        self,
        db: Database,
        *,
        n_clusters: int = 4,
        seed: int = 0,
        gold_boost: float = 0.25,
        anti_penalty: float = 0.6,
        min_weight: float = 0.05,
    ) -> None:
        self.featurizer = FlatQueryFeaturizer(db)
        self.n_clusters = n_clusters
        self.seed = seed
        self.gold_boost = gold_boost
        self.anti_penalty = anti_penalty
        self.min_weight = min_weight
        self._examples: list[RewriteExample] = []
        self._vectors: list[np.ndarray] = []
        self._kmeans: KMeans | None = None
        self._clusters: np.ndarray | None = None

    # -- recording --------------------------------------------------------------

    def _record(self, query: Query, rule: str, speedup: float, kind: str) -> None:
        self._examples.append(
            RewriteExample(query_hash(query), rule, float(speedup), kind)
        )
        self._vectors.append(self.featurizer.featurize(query))
        # Example set changed; cluster assignments are stale until re-fit.
        self._kmeans = None
        self._clusters = None

    def record_gold(self, query: Query, rule: str, speedup: float) -> None:
        """A promoted rewrite: this rule won on this query structure."""
        self._record(query, rule, speedup, "gold")

    def record_anti(self, query: Query, rule: str, speedup: float) -> None:
        """A demoted rewrite: an anti-pattern for this query structure."""
        self._record(query, rule, speedup, "anti")

    def __len__(self) -> int:
        return len(self._examples)

    @property
    def examples(self) -> tuple[RewriteExample, ...]:
        return tuple(self._examples)

    # -- retrieval --------------------------------------------------------------

    def fit(self) -> bool:
        """(Re)cluster the stored example vectors; False when empty."""
        if not self._vectors:
            return False
        x = np.vstack(self._vectors)
        k = min(self.n_clusters, x.shape[0])
        self._kmeans = KMeans(n_clusters=k, seed=self.seed).fit(x)
        self._clusters = self._kmeans.predict(x)
        return True

    @property
    def fitted(self) -> bool:
        return self._kmeans is not None

    def cluster_of(self, query: Query) -> int:
        """The query's cluster, or -1 before :meth:`fit`."""
        if self._kmeans is None:
            return -1
        vec = self.featurizer.featurize(query)
        return int(self._kmeans.predict(vec)[0])

    def rule_weights(self, query: Query, rules: list[str]) -> dict[str, float]:
        """Per-rule selection weights for this query's cluster.

        1.0 everywhere at cold start; otherwise boosted by gold and
        penalized by anti examples assigned to the query's cluster.
        """
        weights = {name: 1.0 for name in rules}
        if self._kmeans is None or self._clusters is None:
            return weights
        cluster = self.cluster_of(query)
        for example, assigned in zip(self._examples, self._clusters):
            if int(assigned) != cluster or example.rule not in weights:
                continue
            if example.kind == "gold":
                weights[example.rule] += self.gold_boost
            else:
                weights[example.rule] -= self.anti_penalty
        return {
            name: max(self.min_weight, w) for name, w in weights.items()
        }

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict:
        golds = sum(1 for e in self._examples if e.kind == "gold")
        return {
            "examples": len(self._examples),
            "gold": golds,
            "anti": len(self._examples) - golds,
            "fitted": self.fitted,
            "clusters": (
                int(self._kmeans.n_clusters) if self._kmeans is not None else 0
            ),
        }

    def export(self) -> dict:
        """Deterministic snapshot of every stored example."""
        return {
            "examples": [
                {
                    "query_hash": e.query_hash,
                    "rule": e.rule,
                    "speedup": round(e.speedup, 6),
                    "kind": e.kind,
                }
                for e in sorted(
                    self._examples,
                    key=lambda e: (e.query_hash, e.rule, e.kind, e.speedup),
                )
            ],
            "stats": self.stats(),
        }
