"""Learned query rewriting: rules, retrieval, validation, promotion.

The subsystem closes the one optimization axis PRs 1-6 left untouched --
the SQL text itself.  Its shape follows QueryTorque's
retrieve -> rewrite -> validate -> promote loop:

- :mod:`repro.rewrite.rules` -- result-preserving rewrite rules emitting
  :class:`~repro.rewrite.rules.RewriteCandidate` objects with provenance;
- :mod:`repro.rewrite.values` -- literal values relations backing the
  IN -> join rewrite, attached in place to the live database;
- :mod:`repro.rewrite.retrieval` -- gold/anti example store clustered by
  query structure (FlatQueryFeaturizer + KMeans), down-weighting rules
  that regressed on similar queries;
- :mod:`repro.rewrite.validate` -- zero-tolerance exact-count gate shared
  with the metamorphic oracle;
- :mod:`repro.rewrite.leaderboard` -- the promotion state machine
  (promote at >= 1.05x simulated speedup, demote regressions to
  anti-patterns) with deterministic exports and ``rewrite.*`` telemetry;
- :mod:`repro.rewrite.optimizer` -- serving wrappers: a learned-optimizer
  surface for OptimizationLoop / DeploymentManager and a PilotScope
  driver.
"""

from repro.rewrite.leaderboard import LeaderboardEntry, PromotionLeaderboard
from repro.rewrite.optimizer import RewriteDriver, RewritingOptimizer
from repro.rewrite.retrieval import GoldExampleStore, RewriteExample
from repro.rewrite.rules import (
    REWRITE_RULES,
    RewriteCandidate,
    RewriteRule,
)
from repro.rewrite.validate import RewriteValidator, ValidationResult
from repro.rewrite.values import ValuesCatalog

__all__ = [
    "REWRITE_RULES",
    "RewriteCandidate",
    "RewriteRule",
    "ValuesCatalog",
    "GoldExampleStore",
    "RewriteExample",
    "RewriteValidator",
    "ValidationResult",
    "LeaderboardEntry",
    "PromotionLeaderboard",
    "RewritingOptimizer",
    "RewriteDriver",
]
