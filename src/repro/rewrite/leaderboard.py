"""The promotion leaderboard: validate, time, promote, demote, learn.

QueryTorque's state machine, on this repo's machinery.  Every submitted
query runs the rule library (filtered by the retrieval store's per-cluster
rule weights); each candidate moves through::

    candidate --validation fails--> MISMATCH   (anti-pattern: rule is broken here)
    candidate --count intractable-> SKIPPED    (never promoted, never penalized)
    candidate --speedup >= 1.05--> PROMOTED    (gold example; servable rewrites
                                                enter the serving plan lookup)
    candidate --speedup <= 0.95--> DEMOTED     (anti-pattern for this cluster)
    candidate --otherwise--------> REJECTED    (neutral: no example recorded)

Speedups are measured on the :class:`~repro.engine.simulator.
ExecutionSimulator` (deterministic virtual latency) by planning both sides
with the same optimizer; union candidates are timed as the sum of their
branch latencies.  Promotions are stamped with ``db.data_version`` and
lazily invalidated when the data drifts -- a promoted rewrite validated
against yesterday's data never serves today's.

Everything the leaderboard does is mirrored onto a
:class:`~repro.serve.telemetry.TelemetryBus` (``rewrite.*`` counters plus
promote / demote events), and :meth:`snapshot` / :meth:`to_json` export a
canonically-sorted, byte-identical-under-fixed-seed view.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass

from repro.engine.executor import CardinalityExecutor
from repro.engine.simulator import ExecutionSimulator
from repro.optimizer.planner import Optimizer
from repro.sql.query import Query, query_hash
from repro.sql.transforms import exact_count
from repro.storage.catalog import Database

from repro.rewrite.retrieval import GoldExampleStore
from repro.rewrite.rules import REWRITE_RULES, RewriteCandidate
from repro.rewrite.validate import RewriteValidator
from repro.rewrite.values import ValuesCatalog

__all__ = ["LeaderboardEntry", "PromotionLeaderboard"]

#: terminal entry states
MISMATCH = "mismatch"
SKIPPED = "skipped"
PROMOTED = "promoted"
DEMOTED = "demoted"
REJECTED = "rejected"


@dataclass(frozen=True)
class LeaderboardEntry:
    """One (query, rule) outcome on the leaderboard."""

    query_hash: str
    rule: str
    status: str
    speedup: float
    baseline_ms: float
    rewritten_ms: float
    note: str
    servable: bool
    n_queries: int
    data_version: int


class PromotionLeaderboard:
    """Oracle-gated, simulator-timed rewrite promotion.

    Parameters
    ----------
    db:
        The live database; values relations attach to it in place.
    optimizer:
        Plans originals and rewrites.  Use the same optimizer the serving
        stack plans with so values-relation statistics stay in sync.
    simulator:
        Timing simulator (dedicated by default, so measurement does not
        pollute a serving simulator's counters).
    store:
        Optional :class:`~repro.rewrite.retrieval.GoldExampleStore`; when
        given, rules whose cluster weight falls below ``selection_cutoff``
        are not attempted, and promotions / demotions are recorded back.
    telemetry:
        Optional :class:`~repro.serve.telemetry.TelemetryBus` receiving
        ``rewrite.*`` counters and events.
    """

    def __init__(
        self,
        db: Database,
        *,
        optimizer: Optimizer | None = None,
        simulator: ExecutionSimulator | None = None,
        validator: RewriteValidator | None = None,
        store: GoldExampleStore | None = None,
        telemetry=None,
        catalog: ValuesCatalog | None = None,
        rules=None,
        promote_threshold: float = 1.05,
        demote_threshold: float = 0.95,
        selection_cutoff: float = 0.5,
    ) -> None:
        if promote_threshold <= demote_threshold:
            raise ValueError("promote_threshold must exceed demote_threshold")
        self.db = db
        self.optimizer = optimizer if optimizer is not None else Optimizer(db)
        self.validator = (
            validator if validator is not None else RewriteValidator(db)
        )
        self.executor: CardinalityExecutor = self.validator.executor
        self.simulator = (
            simulator
            if simulator is not None
            else ExecutionSimulator(db, executor=self.executor)
        )
        self.store = store
        self.telemetry = telemetry
        self.catalog = (
            catalog
            if catalog is not None
            else ValuesCatalog(db, stats=self.optimizer.stats)
        )
        self.rules = dict(rules) if rules is not None else dict(REWRITE_RULES)
        self.promote_threshold = promote_threshold
        self.demote_threshold = demote_threshold
        self.selection_cutoff = selection_cutoff
        self._entries: list[LeaderboardEntry] = []
        self._by_query: dict[str, list[LeaderboardEntry]] = {}
        self._promoted: dict[str, tuple[RewriteCandidate, LeaderboardEntry]] = {}
        #: every promotion in submission order (union splits included, even
        #: though only servable single-query rewrites enter ``_promoted``)
        self.promotions: list[tuple[RewriteCandidate, LeaderboardEntry]] = []
        self.counters = {
            "submitted": 0,
            "candidates": 0,
            "validated": 0,
            "mismatches": 0,
            "skipped": 0,
            "promoted": 0,
            "demoted": 0,
            "rejected": 0,
            "anti_patterns": 0,
            "skipped_by_weight": 0,
            "stale_invalidations": 0,
            "served": 0,
        }
        if telemetry is not None:
            telemetry.attach_gauge("rewrite", self.stats)

    # -- internals ---------------------------------------------------------------

    def _incr(self, name: str, by: int = 1) -> None:
        self.counters[name] += by
        if self.telemetry is not None:
            self.telemetry.incr(f"rewrite.{name}", by)

    def _time(self, queries: tuple[Query, ...]) -> float:
        return sum(
            self.simulator.execute(self.optimizer.plan(q)).latency_ms
            for q in queries
        )

    # -- submission --------------------------------------------------------------

    def submit(self, query: Query) -> list[LeaderboardEntry]:
        """Run every selected rule over the query; idempotent per query."""
        qh = query_hash(query)
        cached = self._by_query.get(qh)
        if cached is not None:
            return cached
        self._incr("submitted")
        baseline_ms = self._time((query,))
        baseline_count = exact_count(self.db, query, self.executor)
        rule_names = list(self.rules)
        if self.store is not None:
            weights = self.store.rule_weights(query, rule_names)
        else:
            weights = {name: 1.0 for name in rule_names}
        entries: list[LeaderboardEntry] = []
        best: tuple[float, RewriteCandidate, LeaderboardEntry] | None = None
        for name, rule in self.rules.items():
            if weights[name] < self.selection_cutoff:
                self._incr("skipped_by_weight")
                continue
            candidate = rule.apply(self.db, query, catalog=self.catalog)
            if candidate is None:
                continue
            self._incr("candidates")
            result = self.validator.validate(candidate, baseline=baseline_count)
            speedup, rewritten_ms = 0.0, 0.0
            if result.mismatch:
                status = MISMATCH
                self._incr("mismatches")
                self._incr("anti_patterns")
                if self.store is not None:
                    self.store.record_anti(query, name, 0.0)
            elif result.skipped:
                status = SKIPPED
                self._incr("skipped")
            else:
                self._incr("validated")
                rewritten_ms = self._time(candidate.queries)
                speedup = baseline_ms / max(rewritten_ms, 1e-9)
                if speedup >= self.promote_threshold:
                    status = PROMOTED
                    self._incr("promoted")
                    if self.store is not None:
                        self.store.record_gold(query, name, speedup)
                elif speedup <= self.demote_threshold:
                    status = DEMOTED
                    self._incr("demoted")
                    self._incr("anti_patterns")
                    if self.store is not None:
                        self.store.record_anti(query, name, speedup)
                else:
                    status = REJECTED
                    self._incr("rejected")
            entry = LeaderboardEntry(
                query_hash=qh,
                rule=name,
                status=status,
                speedup=round(speedup, 6),
                baseline_ms=round(baseline_ms, 6),
                rewritten_ms=round(rewritten_ms, 6),
                note=candidate.note,
                servable=candidate.servable,
                n_queries=len(candidate.queries),
                data_version=self.db.data_version,
            )
            entries.append(entry)
            if self.telemetry is not None and status in (PROMOTED, DEMOTED):
                self.telemetry.event(
                    f"rewrite_{status}",
                    query_hash=qh,
                    rule=name,
                    speedup=entry.speedup,
                )
            if status is PROMOTED:
                self.promotions.append((candidate, entry))
                if candidate.servable and (best is None or speedup > best[0]):
                    best = (speedup, candidate, entry)
        if best is not None:
            self._promoted[qh] = (best[1], best[2])
        self._by_query[qh] = entries
        self._entries.extend(entries)
        return entries

    def submit_workload(self, queries: list[Query]) -> list[LeaderboardEntry]:
        out: list[LeaderboardEntry] = []
        for q in queries:
            out.extend(self.submit(q))
        return out

    # -- serving lookups ---------------------------------------------------------

    def promoted_for(
        self, query: Query
    ) -> tuple[RewriteCandidate, LeaderboardEntry] | None:
        """The best servable promoted rewrite, unless the data drifted.

        A promotion validated at one ``data_version`` is dropped (and
        counted as a stale invalidation) the first time it is looked up
        after the data changed; resubmitting the query re-validates.
        """
        qh = query_hash(query)
        hit = self._promoted.get(qh)
        if hit is None:
            return None
        if hit[1].data_version != self.db.data_version:
            del self._promoted[qh]
            self._incr("stale_invalidations")
            return None
        return hit

    def resubmit(self, query: Query) -> list[LeaderboardEntry]:
        """Forget the cached verdicts for one query and re-run the rules."""
        qh = query_hash(query)
        stale = self._by_query.pop(qh, None)
        if stale is not None:
            self._entries = [e for e in self._entries if e.query_hash != qh]
        self._promoted.pop(qh, None)
        return self.submit(query)

    def observe_served(self, query: Query, rule: str, latency_ms: float) -> None:
        """Account one production serve of a promoted rewrite."""
        self._incr("served")
        if self.telemetry is not None:
            self.telemetry.observe("rewrite.served_latency_ms", latency_ms)

    # -- introspection -----------------------------------------------------------

    @property
    def entries(self) -> tuple[LeaderboardEntry, ...]:
        return tuple(self._entries)

    def promoted_entries(self) -> list[LeaderboardEntry]:
        return [e for e in self._entries if e.status == PROMOTED]

    def geomean_promoted(self) -> float:
        """Geometric-mean speedup over promoted entries (1.0 when empty)."""
        speedups = [e.speedup for e in self.promoted_entries()]
        if not speedups:
            return 1.0
        return math.exp(sum(math.log(s) for s in speedups) / len(speedups))

    def stats(self) -> dict:
        out = dict(self.counters)
        out["geomean_promoted"] = round(self.geomean_promoted(), 6)
        out["servable_promotions"] = len(self._promoted)
        out["values_relations"] = self.catalog.attachments
        return out

    def snapshot(self) -> dict:
        """Canonically-sorted full state; byte-identical under a fixed seed."""
        return {
            "entries": [
                asdict(e)
                for e in sorted(
                    self._entries, key=lambda e: (e.query_hash, e.rule)
                )
            ],
            "promoted": {
                qh: {"rule": entry.rule, "speedup": entry.speedup}
                for qh, (_, entry) in sorted(self._promoted.items())
            },
            "stats": self.stats(),
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)
