"""The rewrite rule library: result-preserving transforms worth money.

Unlike the metamorphic transforms in :mod:`repro.sql.transforms` (designed
to be *obviously* count-preserving so they can test the executor), these
rules exist to make queries cheaper, and each one's preservation argument
is sharper:

- **predicate_pushdown** -- equi-joins make join-equivalent columns equal
  in every result row, so a filter on one side of a join class holds on
  every member; propagating it to the other scans shrinks join inputs
  without changing the result.
- **in_to_join** -- ``col IN (...)`` equals an equi-join against a
  single-column relation of the distinct literals (unique values column:
  exactly one partner per matching row, zero otherwise); see
  :mod:`repro.rewrite.values`.
- **or_to_union** -- a disjunction of *pairwise-disjoint* parts splits into
  one branch query per part, with COUNT(original) = sum of branch counts.
  Disjointness is checked exactly (set logic for EQ/IN, open/closed
  interval logic via ``to_bounds`` for ranges); overlapping parts never
  produce a candidate.
- **drop_redundant** -- a conjunct implied by another conjunct on the same
  column (``x <= 3 AND x <= 7``) can be dropped: ``p AND q == p`` whenever
  ``p`` implies ``q``.  Exact duplicates are a special case.
- **merge_ranges** -- several closed-interval conjuncts on one column
  (GE / LE / BETWEEN) intersect to a single BETWEEN.  Strict GT / LT
  conjuncts are never folded in (the IR's BETWEEN is inclusive; folding an
  open endpoint into a closed one would widen the predicate).

Every applicable rule emits a :class:`RewriteCandidate` carrying
provenance; nothing here mutates the input query.  Candidates are claims,
not facts -- the :class:`~repro.rewrite.validate.RewriteValidator` holds a
zero-tolerance gate in front of the leaderboard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sql.query import (
    ColumnRef,
    Join,
    Op,
    OrPredicate,
    Predicate,
    Query,
)
from repro.storage.catalog import Database

__all__ = [
    "RewriteCandidate",
    "RewriteRule",
    "REWRITE_RULES",
    "PredicatePushdown",
    "InToJoin",
    "OrToUnion",
    "DropRedundant",
    "MergeRanges",
]


@dataclass(frozen=True)
class RewriteCandidate:
    """One proposed rewrite, with provenance.

    ``queries`` is usually a single rewritten query; OR -> UNION emits one
    query per disjoint branch, in which case COUNT(original) must equal the
    *sum* of the branch counts and the candidate is not servable as a
    single plan (``servable`` is False).
    ``values_tables`` names any literal relations the rewrite depends on
    (attached to the database by the :class:`~repro.rewrite.values.
    ValuesCatalog`).
    """

    rule: str
    original: Query
    queries: tuple[Query, ...]
    note: str = ""
    values_tables: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValueError("candidate needs at least one rewritten query")

    @property
    def servable(self) -> bool:
        return len(self.queries) == 1

    @property
    def rewritten(self) -> Query:
        if not self.servable:
            raise ValueError(f"{self.rule} candidate is a multi-query union")
        return self.queries[0]


# -- exact predicate algebra ------------------------------------------------------


def _finite_values(pred: Predicate) -> list[float] | None:
    """The predicate's satisfying set when finite (EQ / IN), else None."""
    if pred.op is Op.EQ:
        return [float(pred.value)]  # type: ignore[arg-type]
    if pred.op is Op.IN:
        return sorted(float(v) for v in pred.value)  # type: ignore[arg-type]
    return None


def _is_interval(pred: Predicate) -> bool:
    return pred.op in (Op.LT, Op.LE, Op.GT, Op.GE, Op.BETWEEN)


def predicates_disjoint(p: Predicate, q: Predicate) -> bool:
    """Exact: no value can satisfy both ``p`` and ``q``.

    Finite sets are checked by evaluation; interval pairs via the exact
    open/closed bounds.  Returns False (not disjoint) whenever it cannot
    prove disjointness.
    """
    fp, fq = _finite_values(p), _finite_values(q)
    if fp is not None:
        return not bool(q.evaluate(np.asarray(fp, dtype=np.float64)).any())
    if fq is not None:
        return not bool(p.evaluate(np.asarray(fq, dtype=np.float64)).any())
    if not (_is_interval(p) and _is_interval(q)):
        return False
    lo1, hi1, lo1_inc, hi1_inc = p.to_bounds()
    lo2, hi2, lo2_inc, hi2_inc = q.to_bounds()
    if hi1 < lo2 or hi2 < lo1:
        return True
    if hi1 == lo2:
        return not (hi1_inc and lo2_inc)
    if hi2 == lo1:
        return not (hi2_inc and lo1_inc)
    return False


def predicate_implies(p: Predicate, q: Predicate) -> bool:
    """Exact: every value satisfying ``p`` satisfies ``q``.

    Conservative -- returns False whenever implication cannot be proven.
    """
    fp = _finite_values(p)
    if fp is not None:
        return bool(q.evaluate(np.asarray(fp, dtype=np.float64)).all())
    if not (_is_interval(p) and _is_interval(q)):
        return False
    if _finite_values(q) is not None:
        # An interval has uncountable support; it cannot sit inside a
        # finite set (degenerate intervals are rendered by EQ, not ranges).
        return False
    lo_p, hi_p, lo_p_inc, hi_p_inc = p.to_bounds()
    lo_q, hi_q, lo_q_inc, hi_q_inc = q.to_bounds()
    lo_ok = lo_p > lo_q or (lo_p == lo_q and (lo_q_inc or not lo_p_inc))
    hi_ok = hi_p < hi_q or (hi_p == hi_q and (hi_q_inc or not hi_p_inc))
    return lo_ok and hi_ok


class _UnionFind:
    """Union-find over join-equivalent column refs."""

    def __init__(self) -> None:
        self.parent: dict[ColumnRef, ColumnRef] = {}

    def find(self, x: ColumnRef) -> ColumnRef:
        self.parent.setdefault(x, x)
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: ColumnRef, b: ColumnRef) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic root: smaller ref wins.
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra

    def classes(self) -> dict[ColumnRef, list[ColumnRef]]:
        out: dict[ColumnRef, list[ColumnRef]] = {}
        for ref in self.parent:
            out.setdefault(self.find(ref), []).append(ref)
        return {root: sorted(members) for root, members in out.items()}


def _rebase(pred, target: ColumnRef):
    """The same filter expressed on a join-equivalent column."""
    if isinstance(pred, OrPredicate):
        return OrPredicate(
            target,
            tuple(Predicate(target, part.op, part.value) for part in pred.parts),
        )
    return Predicate(target, pred.op, pred.value)


# -- the rules --------------------------------------------------------------------


@dataclass
class RewriteRule:
    """Base: a named rewrite with ``apply(db, query) -> candidate | None``."""

    name: str = field(default="", init=False)

    def apply(
        self, db: Database, query: Query, *, catalog=None
    ) -> RewriteCandidate | None:
        raise NotImplementedError


class PredicatePushdown(RewriteRule):
    """Propagate filters across equi-join equivalence classes."""

    def __init__(self) -> None:
        self.name = "predicate_pushdown"

    def apply(
        self, db: Database, query: Query, *, catalog=None
    ) -> RewriteCandidate | None:
        if not query.joins:
            return None
        uf = _UnionFind()
        for j in query.joins:
            uf.union(j.left, j.right)
        classes = uf.classes()
        existing = set(query.predicates)
        derived: list = []
        for pred in query.predicates:
            if pred.column not in uf.parent:
                continue
            root = uf.find(pred.column)
            for member in classes[root]:
                if member == pred.column:
                    continue
                new = _rebase(pred, member)
                if new not in existing:
                    existing.add(new)
                    derived.append(new)
        if not derived:
            return None
        rewritten = Query(
            query.tables, query.joins, query.predicates + tuple(derived)
        )
        return RewriteCandidate(
            rule=self.name,
            original=query,
            queries=(rewritten,),
            note="pushed " + "; ".join(str(p) for p in sorted(derived, key=str)),
        )


class InToJoin(RewriteRule):
    """Rewrite the widest IN list as a join against a literals relation."""

    def __init__(self, min_width: int = 4) -> None:
        self.name = "in_to_join"
        self.min_width = min_width

    def apply(
        self, db: Database, query: Query, *, catalog=None
    ) -> RewriteCandidate | None:
        if catalog is None:
            return None
        best = None
        for pred in query.predicates:
            if isinstance(pred, OrPredicate) or pred.op is not Op.IN:
                continue
            if len(pred.value) < self.min_width:  # type: ignore[arg-type]
                continue
            key = (-len(pred.value), str(pred))  # type: ignore[arg-type]
            if best is None or key < best[0]:
                best = (key, pred)
        if best is None:
            return None
        pred = best[1]
        attached = catalog.attach(pred.column, pred.value)
        if attached is None:
            return None
        vals_name, join = attached
        if vals_name in query.tables:
            return None
        rest = tuple(p for p in query.predicates if p != pred)
        rewritten = Query(
            query.tables + (vals_name,), query.joins + (join,), rest
        )
        return RewriteCandidate(
            rule=self.name,
            original=query,
            queries=(rewritten,),
            note=f"{pred} -> join {vals_name} "
            f"({len(pred.value)} literals)",  # type: ignore[arg-type]
            values_tables=(vals_name,),
        )


class OrToUnion(RewriteRule):
    """Split a provably disjoint disjunction into per-branch queries."""

    def __init__(self) -> None:
        self.name = "or_to_union"

    def apply(
        self, db: Database, query: Query, *, catalog=None
    ) -> RewriteCandidate | None:
        for i, pred in enumerate(query.predicates):
            if not isinstance(pred, OrPredicate):
                continue
            parts = pred.parts
            if not all(
                predicates_disjoint(parts[a], parts[b])
                for a in range(len(parts))
                for b in range(a + 1, len(parts))
            ):
                continue
            rest = query.predicates[:i] + query.predicates[i + 1 :]
            branches = tuple(
                Query(query.tables, query.joins, rest + (part,))
                for part in parts
            )
            return RewriteCandidate(
                rule=self.name,
                original=query,
                queries=branches,
                note=f"{len(parts)} disjoint branches over {pred.column}",
            )
        return None


class DropRedundant(RewriteRule):
    """Eliminate conjuncts implied by another conjunct on the same column."""

    def __init__(self) -> None:
        self.name = "drop_redundant"

    def apply(
        self, db: Database, query: Query, *, catalog=None
    ) -> RewriteCandidate | None:
        preds = list(query.predicates)
        keep: list = []
        dropped: list = []
        seen: set = set()
        for q in preds:
            if q in seen:
                dropped.append(q)  # exact duplicate
                continue
            seen.add(q)
            redundant = False
            if not isinstance(q, OrPredicate):
                for p in preds:
                    if p is q or isinstance(p, OrPredicate):
                        continue
                    if p.column != q.column or p == q:
                        continue
                    if predicate_implies(p, q) and not (
                        predicate_implies(q, p) and str(p) > str(q)
                    ):
                        # p subsumes q; for mutually-equivalent pairs keep
                        # the lexicographically-first of the two.
                        redundant = True
                        break
            if redundant:
                dropped.append(q)
            else:
                keep.append(q)
        if not dropped:
            return None
        rewritten = Query(query.tables, query.joins, tuple(keep))
        return RewriteCandidate(
            rule=self.name,
            original=query,
            queries=(rewritten,),
            note="dropped " + "; ".join(str(p) for p in sorted(dropped, key=str)),
        )


class MergeRanges(RewriteRule):
    """Intersect closed-interval conjuncts on one column into one BETWEEN."""

    _CLOSED_OPS = (Op.GE, Op.LE, Op.BETWEEN)

    def __init__(self) -> None:
        self.name = "merge_ranges"

    def apply(
        self, db: Database, query: Query, *, catalog=None
    ) -> RewriteCandidate | None:
        by_column: dict[ColumnRef, list[Predicate]] = {}
        for pred in query.predicates:
            if isinstance(pred, OrPredicate):
                continue
            if pred.op in self._CLOSED_OPS:
                by_column.setdefault(pred.column, []).append(pred)
        merged: dict[ColumnRef, Predicate] = {}
        for column, group in sorted(by_column.items()):
            if len(group) < 2:
                continue
            lo, hi = -np.inf, np.inf
            for pred in group:
                p_lo, p_hi, _, _ = pred.to_bounds()
                lo, hi = max(lo, p_lo), min(hi, p_hi)
            if not (np.isfinite(lo) and np.isfinite(hi)):
                continue  # one-sided; subsumption handles those
            if lo > hi:
                continue  # empty intersection -- the IR cannot express FALSE
            merged[column] = Predicate(
                column, Op.BETWEEN, (float(lo), float(hi))
            )
        if not merged:
            return None
        out: list = []
        replaced: set = set()
        for pred in query.predicates:
            column = getattr(pred, "column", None)
            if (
                not isinstance(pred, OrPredicate)
                and column in merged
                and pred.op in self._CLOSED_OPS
            ):
                if column not in replaced:
                    out.append(merged[column])
                    replaced.add(column)
                continue
            out.append(pred)
        rewritten = Query(query.tables, query.joins, tuple(out))
        if rewritten.predicates == query.predicates:
            return None
        return RewriteCandidate(
            rule=self.name,
            original=query,
            queries=(rewritten,),
            note="merged "
            + "; ".join(str(merged[c]) for c in sorted(merged)),
        )


#: rule name -> rule instance, in canonical application order.
REWRITE_RULES: dict[str, RewriteRule] = {
    r.name: r
    for r in (
        PredicatePushdown(),
        InToJoin(),
        OrToUnion(),
        DropRedundant(),
        MergeRanges(),
    )
}
