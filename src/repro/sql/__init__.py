"""SQL subset: query IR, parser and workload generators.

The whole learned-query-optimizer literature surveyed by the tutorial works
on select-project-join (SPJ) COUNT queries: conjunctions of range/equality
predicates over a connected set of equi-joined tables.  This package defines
that query representation (:class:`repro.sql.query.Query`), a parser for a
``SELECT COUNT(*) FROM ... WHERE ...`` text form, and generators producing
JOB-style and CEB-style workloads over any :class:`repro.storage.Database`.
"""

from repro.sql.query import (
    ColumnRef,
    Join,
    Op,
    OrPredicate,
    Predicate,
    Query,
    query_hash,
)
from repro.sql.parser import parse_query, SQLSyntaxError
from repro.sql.generator import WorkloadGenerator
from repro.sql.transforms import (
    ResultPreservingTransform,
    TRANSFORM_REGISTRY,
    VerifyOutcome,
    apply_transform,
    exact_count,
    verify_transform,
    verify_union,
)

__all__ = [
    "ColumnRef",
    "Join",
    "Op",
    "OrPredicate",
    "Predicate",
    "Query",
    "query_hash",
    "parse_query",
    "SQLSyntaxError",
    "WorkloadGenerator",
    "ResultPreservingTransform",
    "TRANSFORM_REGISTRY",
    "VerifyOutcome",
    "apply_transform",
    "exact_count",
    "verify_transform",
    "verify_union",
]
