"""Result-preserving query transforms: one registry, two consumers.

The metamorphic oracle (PR 5) and the learned rewrite subsystem (PR 7) both
need the same primitive: a named transform ``fn(db, query) -> Query | None``
that provably cannot change a COUNT(*) result, plus a way to *verify* that
claim against the exact executor.  Keeping two copies would let them drift,
so the transforms live here and both consumers import them:

- :class:`repro.oracle.metamorphic.MetamorphicSuite` iterates
  :data:`TRANSFORM_REGISTRY` and flags count or ``query_hash`` divergence as
  oracle violations;
- :class:`repro.rewrite.validate.RewriteValidator` runs
  :func:`verify_transform` / :func:`verify_union` over rewrite candidates
  before anything can reach the promotion leaderboard.

``verify_union`` exists for rewrites that split one query into several
(OR -> UNION over provably disjoint branches): there the invariant is that
the branch counts *sum* to the original count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.sql.query import (
    ColumnRef,
    Join,
    Op,
    OrPredicate,
    Predicate,
    Query,
    query_hash,
)
from repro.storage.catalog import Database

__all__ = [
    "ResultPreservingTransform",
    "TRANSFORM_REGISTRY",
    "VerifyOutcome",
    "apply_transform",
    "exact_count",
    "verify_transform",
    "verify_union",
    "add_tautology",
    "split_between",
    "expand_in_to_or",
    "permute_tables",
    "commute_joins",
]


def _columns_used(query: Query) -> list[ColumnRef]:
    """ColumnRefs mentioned by the query's predicates, in canonical order."""
    return [p.column for p in query.predicates]


def add_tautology(db: Database, query: Query) -> Query | None:
    """Conjoin a predicate every row satisfies: ``col <= data max``."""
    cols = _columns_used(query)
    if not cols:
        # Fall back to the first column of the first table.
        table = query.tables[0]
        names = db.table(table).column_names
        if not names:
            return None
        ref = ColumnRef(table, names[0])
    else:
        ref = cols[0]
    ceiling = db.table(ref.table).column(ref.column).max
    taut = Predicate(ref, Op.LE, ceiling)
    if taut in query.predicates:
        return None
    return Query(query.tables, query.joins, query.predicates + (taut,))


def split_between(db: Database, query: Query) -> Query | None:
    """Split the first BETWEEN predicate into two range conjuncts."""
    for i, p in enumerate(query.predicates):
        if p.op is Op.BETWEEN:
            lo, hi = p.value
            rest = query.predicates[:i] + query.predicates[i + 1 :]
            split = (
                Predicate(p.column, Op.GE, float(lo)),
                Predicate(p.column, Op.LE, float(hi)),
            )
            return Query(query.tables, query.joins, rest + split)
    return None


def expand_in_to_or(db: Database, query: Query) -> Query | None:
    """Expand the first IN predicate into a disjunction of equalities."""
    for i, p in enumerate(query.predicates):
        if p.op is Op.IN:
            values = sorted(p.value)
            rest = query.predicates[:i] + query.predicates[i + 1 :]
            if len(values) == 1:
                expanded = Predicate(p.column, Op.EQ, float(values[0]))
            else:
                expanded = OrPredicate(
                    p.column,
                    tuple(
                        Predicate(p.column, Op.EQ, float(v)) for v in values
                    ),
                )
            return Query(query.tables, query.joins, rest + (expanded,))
    return None


def permute_tables(db: Database, query: Query) -> Query | None:
    """Rebuild with the FROM list (and join/predicate lists) reversed."""
    if query.n_tables < 2:
        return None
    return Query(
        tuple(reversed(query.tables)),
        tuple(reversed(query.joins)),
        tuple(reversed(query.predicates)),
    )


def commute_joins(db: Database, query: Query) -> Query | None:
    """Swap the two sides of every join condition."""
    if not query.joins:
        return None
    return Query(
        query.tables,
        tuple(Join(j.right, j.left) for j in query.joins),
        query.predicates,
    )


@dataclass(frozen=True)
class ResultPreservingTransform:
    """A named count-preserving rewrite with its canonicalization contract.

    ``preserves_query_hash`` marks transforms that merely reorder members:
    canonicalization must map them back to the identical ``query_hash``
    (the contract the cardinality cache, canary split and experience store
    rely on).  Structural transforms change the hash by design.
    """

    name: str
    fn: Callable[[Database, Query], Query | None]
    preserves_query_hash: bool

    def apply(self, db: Database, query: Query) -> Query | None:
        return self.fn(db, query)


#: transform name -> ResultPreservingTransform, in canonical order.
TRANSFORM_REGISTRY: dict[str, ResultPreservingTransform] = {
    t.name: t
    for t in (
        ResultPreservingTransform("add_tautology", add_tautology, False),
        ResultPreservingTransform("split_between", split_between, False),
        ResultPreservingTransform("expand_in_to_or", expand_in_to_or, False),
        ResultPreservingTransform("permute_tables", permute_tables, True),
        ResultPreservingTransform("commute_joins", commute_joins, True),
    )
}


def apply_transform(name: str, db: Database, query: Query) -> Query | None:
    """Apply the named registry transform (None when inapplicable)."""
    return TRANSFORM_REGISTRY[name].apply(db, query)


def exact_count(db: Database, query: Query, executor=None) -> int | None:
    """Exact COUNT(*) via the vectorized executor; None when intractable.

    The executor import is deferred so ``repro.sql`` stays importable
    without dragging the engine in at package-import time.
    """
    from repro.engine.executor import CardinalityExecutor, IntermediateTooLarge

    if executor is None:
        executor = CardinalityExecutor(db)
    try:
        return executor.cardinality(query)
    except IntermediateTooLarge:
        return None


@dataclass(frozen=True)
class VerifyOutcome:
    """Result of checking a transform's count-preservation claim.

    ``ok`` is True only when both counts were computable and equal.
    ``skipped`` is True when either side exceeded the executor's
    intermediate-size guard -- not a pass, not a failure.
    """

    ok: bool
    skipped: bool
    expected: int | None
    actual: int | None
    reason: str = ""

    @property
    def failed(self) -> bool:
        return not self.ok and not self.skipped


def verify_transform(
    db: Database,
    original: Query,
    transformed: Query,
    *,
    baseline: int | None = None,
    executor=None,
) -> VerifyOutcome:
    """Check COUNT(original) == COUNT(transformed) on the exact executor.

    ``baseline`` lets callers that already computed the original's count
    (the metamorphic suite computes it once per query) skip re-counting.
    """
    expected = (
        baseline if baseline is not None else exact_count(db, original, executor)
    )
    if expected is None:
        return VerifyOutcome(False, True, None, None, "original intractable")
    actual = exact_count(db, transformed, executor)
    if actual is None:
        return VerifyOutcome(False, True, expected, None, "transformed intractable")
    if actual != expected:
        return VerifyOutcome(
            False,
            False,
            expected,
            actual,
            f"count mismatch: {expected} != {actual}",
        )
    return VerifyOutcome(True, False, expected, actual)


def verify_union(
    db: Database,
    original: Query,
    branches: Sequence[Query],
    *,
    baseline: int | None = None,
    executor=None,
) -> VerifyOutcome:
    """Check COUNT(original) == sum over branch counts.

    The invariant for disjoint-split rewrites (OR -> UNION): when the
    branches partition the original's predicate space, the branch counts
    must sum exactly to the original count.
    """
    expected = (
        baseline if baseline is not None else exact_count(db, original, executor)
    )
    if expected is None:
        return VerifyOutcome(False, True, None, None, "original intractable")
    total = 0
    for branch in branches:
        count = exact_count(db, branch, executor)
        if count is None:
            return VerifyOutcome(
                False, True, expected, None, "branch intractable"
            )
        total += count
    if total != expected:
        return VerifyOutcome(
            False,
            False,
            expected,
            total,
            f"branch counts sum to {total}, expected {expected}",
        )
    return VerifyOutcome(True, False, expected, total)


def hash_preserved(original: Query, transformed: Query) -> bool:
    """True when the transform left the canonical query identity unchanged."""
    return query_hash(original) == query_hash(transformed)
