"""Query intermediate representation for SPJ COUNT queries.

A :class:`Query` is a connected set of tables, a list of equi-join
conditions, and a conjunction of single-column predicates.  This matches the
query class every surveyed estimator / optimizer handles (MSCN, Naru, Bao,
Lero, ... all operate on exactly this class).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = [
    "Op",
    "ColumnRef",
    "Predicate",
    "OrPredicate",
    "Join",
    "Query",
    "query_hash",
    "predicate_template",
]


class Op(enum.Enum):
    """Comparison operators supported in predicates."""

    EQ = "="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "between"
    IN = "in"
    OR = "or"  # marker op carried by OrPredicate

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value


@dataclass(frozen=True, order=True)
class ColumnRef:
    """Reference to ``table.column``."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class Predicate:
    """A single-column filter ``table.column <op> value``.

    ``value`` is a float for comparison ops, a ``(lo, hi)`` tuple for
    BETWEEN (inclusive on both ends) and a frozenset of floats for IN.
    """

    column: ColumnRef
    op: Op
    value: float | tuple[float, float] | frozenset[float]

    def __post_init__(self) -> None:
        if self.op is Op.BETWEEN:
            if not (isinstance(self.value, tuple) and len(self.value) == 2):
                raise ValueError("BETWEEN needs a (lo, hi) tuple")
            lo, hi = self.value
            if lo > hi:
                raise ValueError(f"BETWEEN range is empty: ({lo}, {hi})")
        elif self.op is Op.IN:
            if not isinstance(self.value, frozenset):
                object.__setattr__(self, "value", frozenset(self.value))
            if not self.value:
                raise ValueError("IN list must be non-empty")
        else:
            if not isinstance(self.value, (int, float)):
                raise ValueError(f"{self.op} needs a scalar value")

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of rows satisfying the predicate."""
        if self.op is Op.EQ:
            return values == self.value
        if self.op is Op.LT:
            return values < self.value
        if self.op is Op.LE:
            return values <= self.value
        if self.op is Op.GT:
            return values > self.value
        if self.op is Op.GE:
            return values >= self.value
        if self.op is Op.BETWEEN:
            lo, hi = self.value  # type: ignore[misc]
            return (values >= lo) & (values <= hi)
        if self.op is Op.IN:
            return np.isin(values, list(self.value))  # type: ignore[arg-type]
        raise AssertionError(f"unhandled op {self.op}")

    def to_range(self) -> tuple[float, float]:
        """Closed-interval *hull* ``[lo, hi]``, for featurization only.

        Strict ``<``/``>`` are approximated by an epsilon shift, which is
        fine as a model feature but wrong as an estimation boundary (the
        epsilon vanishes for values near 1e9 and misrepresents integer
        columns).  Estimation code must use :meth:`to_bounds`, which carries
        exact open/closed endpoint flags.  IN predicates return their hull;
        callers needing exact IN semantics must check ``op`` first.
        Open-ended sides are +/- inf.
        """
        if self.op is Op.EQ:
            v = float(self.value)  # type: ignore[arg-type]
            return (v, v)
        if self.op is Op.LT:
            return (-np.inf, float(self.value) - 1e-9)  # type: ignore[arg-type]
        if self.op is Op.LE:
            return (-np.inf, float(self.value))  # type: ignore[arg-type]
        if self.op is Op.GT:
            return (float(self.value) + 1e-9, np.inf)  # type: ignore[arg-type]
        if self.op is Op.GE:
            return (float(self.value), np.inf)  # type: ignore[arg-type]
        if self.op is Op.BETWEEN:
            lo, hi = self.value  # type: ignore[misc]
            return (float(lo), float(hi))
        values = sorted(self.value)  # type: ignore[arg-type]
        return (float(values[0]), float(values[-1]))

    def to_bounds(self) -> tuple[float, float, bool, bool]:
        """Exact interval as ``(lo, hi, lo_inclusive, hi_inclusive)``.

        Unlike :meth:`to_range` there is no epsilon hack: strict operators
        report an *open* endpoint at the literal itself, so estimators can
        exclude point masses sitting exactly on the boundary regardless of
        the literal's magnitude or the column's type.  IN predicates return
        their closed hull (check ``op`` for exact semantics).
        """
        if self.op is Op.EQ:
            v = float(self.value)  # type: ignore[arg-type]
            return (v, v, True, True)
        if self.op is Op.LT:
            return (-np.inf, float(self.value), True, False)  # type: ignore[arg-type]
        if self.op is Op.LE:
            return (-np.inf, float(self.value), True, True)  # type: ignore[arg-type]
        if self.op is Op.GT:
            return (float(self.value), np.inf, False, True)  # type: ignore[arg-type]
        if self.op is Op.GE:
            return (float(self.value), np.inf, True, True)  # type: ignore[arg-type]
        if self.op is Op.BETWEEN:
            lo, hi = self.value  # type: ignore[misc]
            return (float(lo), float(hi), True, True)
        values = sorted(self.value)  # type: ignore[arg-type]
        return (float(values[0]), float(values[-1]), True, True)

    def __str__(self) -> str:
        if self.op is Op.BETWEEN:
            lo, hi = self.value  # type: ignore[misc]
            return f"{self.column} BETWEEN {lo} AND {hi}"
        if self.op is Op.IN:
            vals = ", ".join(str(v) for v in sorted(self.value))  # type: ignore[arg-type]
            return f"{self.column} IN ({vals})"
        return f"{self.column} {self.op.value} {self.value}"


@dataclass(frozen=True)
class OrPredicate:
    """Disjunction of simple predicates over one column (Mueller et al. [42]).

    Represents ``c < 5 OR c BETWEEN 10 AND 12 OR ...`` -- the mixed
    conjunctive/disjunctive predicate class whose featurization [42]
    studies.  All parts must reference the same column; a disjunction of
    equality parts should be written as an IN predicate instead (it is
    semantically identical and estimators handle IN natively).
    """

    column: ColumnRef
    parts: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("OR needs at least two parts")
        for p in self.parts:
            if not isinstance(p, Predicate):
                raise ValueError("OR parts must be simple predicates")
            if p.column != self.column:
                raise ValueError(
                    f"OR part {p} references {p.column}, expected {self.column}"
                )
        # Canonical part order for stable hashing.
        object.__setattr__(self, "parts", tuple(sorted(self.parts, key=str)))

    @property
    def op(self) -> Op:
        return Op.OR

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        mask = self.parts[0].evaluate(values)
        for p in self.parts[1:]:
            mask = mask | p.evaluate(values)
        return mask

    def to_range(self) -> tuple[float, float]:
        """Hull over the parts (callers needing exact semantics check op)."""
        lows, highs = zip(*(p.to_range() for p in self.parts))
        return (min(lows), max(highs))

    def to_bounds(self) -> tuple[float, float, bool, bool]:
        """Closed hull over the parts, in :meth:`Predicate.to_bounds` form."""
        bounds = [p.to_bounds() for p in self.parts]
        lo = min(b[0] for b in bounds)
        hi = max(b[1] for b in bounds)
        lo_inc = any(b[0] == lo and b[2] for b in bounds)
        hi_inc = any(b[1] == hi and b[3] for b in bounds)
        return (lo, hi, lo_inc, hi_inc)

    def __str__(self) -> str:
        return "(" + " OR ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Join:
    """Equi-join condition ``left = right``."""

    left: ColumnRef
    right: ColumnRef

    def normalized(self) -> "Join":
        if self.left <= self.right:
            return self
        return Join(self.right, self.left)

    def involves(self, table: str) -> bool:
        return table in (self.left.table, self.right.table)

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Query:
    """An SPJ COUNT(*) query: tables, equi-joins and conjunctive filters."""

    tables: tuple[str, ...]
    joins: tuple[Join, ...] = ()
    predicates: tuple[Predicate, ...] = ()

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("query must reference at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise ValueError("duplicate tables (aliases are not supported)")
        tset = set(self.tables)
        for j in self.joins:
            if j.left.table not in tset or j.right.table not in tset:
                raise ValueError(f"join {j} references a table outside FROM")
            if j.left.table == j.right.table:
                raise ValueError(f"self-join not supported: {j}")
        for p in self.predicates:
            if p.column.table not in tset:
                raise ValueError(f"predicate {p} references a table outside FROM")
        # Canonicalize ordering for stable hashing / featurization.
        object.__setattr__(self, "tables", tuple(sorted(self.tables)))
        object.__setattr__(
            self,
            "joins",
            tuple(sorted((j.normalized() for j in self.joins), key=str)),
        )
        object.__setattr__(
            self, "predicates", tuple(sorted(self.predicates, key=str))
        )

    @classmethod
    def build(
        cls,
        tables: Iterable[str],
        joins: Iterable[Join] = (),
        predicates: Iterable[Predicate] = (),
    ) -> "Query":
        return cls(tuple(tables), tuple(joins), tuple(predicates))

    @property
    def n_tables(self) -> int:
        return len(self.tables)

    # Queries are immutable, so derived views (per-table predicate lists,
    # the join adjacency, the canonical SQL text, sub-queries) are computed
    # once and memoized on the instance.  The planner's inner loop and the
    # executor ask for these repeatedly -- DP enumeration alone calls
    # ``predicates_on`` O(2^n) times per query -- which made the previous
    # linear re-scans a measurable cost.  The memo attributes live outside
    # the dataclass fields, so equality/hashing are unaffected.

    def predicates_on(self, table: str) -> tuple[Predicate, ...]:
        cache = self.__dict__.get("_preds_on")
        if cache is None:
            cache = {t: [] for t in self.tables}
            for p in self.predicates:
                cache[p.column.table].append(p)
            cache = {t: tuple(ps) for t, ps in cache.items()}
            object.__setattr__(self, "_preds_on", cache)
        return cache[table]

    def joins_on(self, table: str) -> tuple[Join, ...]:
        cache = self.__dict__.get("_joins_on")
        if cache is None:
            cache = {t: [] for t in self.tables}
            for j in self.joins:
                cache[j.left.table].append(j)
                cache[j.right.table].append(j)
            cache = {t: tuple(js) for t, js in cache.items()}
            object.__setattr__(self, "_joins_on", cache)
        return cache[table]

    def join_adjacency(self) -> dict[str, frozenset[str]]:
        """Table -> joined-neighbor-tables adjacency of the join graph."""
        adj = self.__dict__.get("_adjacency")
        if adj is None:
            sets: dict[str, set[str]] = {t: set() for t in self.tables}
            for j in self.joins:
                sets[j.left.table].add(j.right.table)
                sets[j.right.table].add(j.left.table)
            adj = {t: frozenset(s) for t, s in sets.items()}
            object.__setattr__(self, "_adjacency", adj)
        return adj

    def subquery(self, tables: Iterable[str]) -> "Query":
        """Restrict to the given tables, keeping internal joins/predicates.

        Used to enumerate the sub-queries the cardinality estimator is asked
        about during plan costing.  Results are memoized per table set: the
        enumerator and the coster ask for the same sub-queries many times
        per planning (and once per hint-set arm on top of that).
        """
        keep = frozenset(tables)
        cache = self.__dict__.get("_subqueries")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_subqueries", cache)
        hit = cache.get(keep)
        if hit is not None:
            return hit
        missing = keep - set(self.tables)
        if missing:
            raise ValueError(f"subquery tables not in query: {sorted(missing)}")
        joins = tuple(
            j
            for j in self.joins
            if j.left.table in keep and j.right.table in keep
        )
        preds = tuple(p for p in self.predicates if p.column.table in keep)
        sub = Query(tuple(sorted(keep)), joins, preds)
        cache[keep] = sub
        return sub

    def is_connected(self) -> bool:
        """True when the join graph over the query's tables is connected."""
        if len(self.tables) == 1:
            return True
        adj = self.join_adjacency()
        seen = {self.tables[0]}
        frontier = [self.tables[0]]
        while frontier:
            cur = frontier.pop()
            for nxt in adj[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(self.tables)

    @property
    def template_key(self) -> str:
        """Literal-free query identity: ``cache_key`` with literals as ``?``.

        Two queries that differ only in predicate literals (same tables,
        same joins, same predicated columns/operators, same IN arity) share
        a template key -- the prepared-statement identity the
        :class:`repro.optimizer.PlanCache` reuses compiled plans across.

        Predicate templates are rendered and then sorted *as templates*:
        ``__post_init__`` orders predicates by their literal-bearing text,
        so two bindings of one template can disagree on predicate order,
        and rendering in that order would split the template.  ``query_hash``
        is untouched -- canary splits, dedup and audit sampling still key on
        the exact query.
        """
        key = self.__dict__.get("_template_key")
        if key is None:
            where = [str(j) for j in self.joins] + sorted(
                predicate_template(p) for p in self.predicates
            )
            key = f"SELECT COUNT(*) FROM {', '.join(self.tables)}"
            if where:
                key += " WHERE " + " AND ".join(where)
            object.__setattr__(self, "_template_key", key)
        return key

    @property
    def cache_key(self) -> str:
        """Canonical sub-query identity: the memoized ``to_sql`` text.

        ``__post_init__`` sorts tables, joins and predicates, so two queries
        over the same tables with the same joins and predicates -- however
        they were constructed -- render identically.  This is the key the
        cross-plan :class:`repro.optimizer.CardinalityCache` indexes by.
        """
        key = self.__dict__.get("_cache_key")
        if key is None:
            key = self.to_sql()
            object.__setattr__(self, "_cache_key", key)
        return key

    def to_sql(self) -> str:
        """Render as ``SELECT COUNT(*) FROM ... WHERE ...`` text."""
        where = [str(j) for j in self.joins] + [str(p) for p in self.predicates]
        sql = f"SELECT COUNT(*) FROM {', '.join(self.tables)}"
        if where:
            sql += " WHERE " + " AND ".join(where)
        return sql

    def __str__(self) -> str:
        return self.to_sql()


def predicate_template(pred: Predicate | OrPredicate) -> str:
    """Render a predicate with its literals replaced by ``?`` placeholders.

    Structure that changes plan shape is preserved: BETWEEN keeps both
    placeholders, IN keeps its arity (``IN (?, ?, ?)``), OR parts are
    templated individually and sorted so part order never depends on the
    literals either.
    """
    if pred.op is Op.OR:
        return "(" + " OR ".join(sorted(predicate_template(p) for p in pred.parts)) + ")"
    if pred.op is Op.BETWEEN:
        return f"{pred.column} BETWEEN ? AND ?"
    if pred.op is Op.IN:
        marks = ", ".join("?" for _ in pred.value)  # type: ignore[arg-type]
        return f"{pred.column} IN ({marks})"
    return f"{pred.column} {pred.op.value} ?"


def query_hash(query: Query) -> str:
    """Stable 12-hex-digit identity of a query's canonical text.

    The one query-hashing scheme in the repository: the deployment
    manager's canary split, the serving traces, the experience store's
    dedup key and the cross-plan :class:`repro.optimizer.CardinalityCache`
    all key by this value.  Because it hashes :attr:`Query.cache_key`
    (the canonicalized SQL text), two equivalent queries constructed with
    different member orderings hash identically.  Memoized per instance,
    like ``cache_key`` itself.
    """
    h = query.__dict__.get("_query_hash")
    if h is None:
        h = hashlib.sha256(query.cache_key.encode()).hexdigest()[:12]
        object.__setattr__(query, "_query_hash", h)
    return h
