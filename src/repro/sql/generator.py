"""Workload generators: JOB-style multi-join and single-table range queries.

The generator draws connected subgraphs of the database's declared join
graph and attaches data-derived predicates (constants sampled from actual
column values) so that generated queries have a wide, realistic spread of
selectivities -- the standard recipe used by MSCN's and the STATS
benchmark's training workloads.
"""

from __future__ import annotations

import numpy as np

from repro.sql.query import ColumnRef, Join, Op, OrPredicate, Predicate, Query
from repro.storage.catalog import Database

__all__ = ["WorkloadGenerator"]


class WorkloadGenerator:
    """Deterministic random SPJ workload generator over a database.

    Parameters
    ----------
    db:
        The database whose join graph and column values drive generation.
    seed:
        Seed for the internal RNG; identical seeds reproduce workloads.
    """

    #: operators drawn for numeric predicates, with draw weights
    _RANGE_OPS = [Op.EQ, Op.LE, Op.GE, Op.BETWEEN, Op.IN]
    _RANGE_WEIGHTS = [0.25, 0.2, 0.2, 0.25, 0.1]

    def __init__(self, db: Database, seed: int = 0, or_rate: float = 0.0) -> None:
        """``or_rate``: probability that a generated predicate becomes a
        same-column disjunction (mixed-predicate workloads, [42]).  The
        default of 0 keeps historical workloads byte-identical."""
        if not 0.0 <= or_rate <= 1.0:
            raise ValueError("or_rate must be in [0, 1]")
        self.db = db
        self.or_rate = or_rate
        self.rng = np.random.default_rng(seed)
        # Columns usable in predicates: exclude keys and FK columns (those
        # appear in join edges) to mirror how benchmark workloads are built.
        join_cols = set()
        for e in db.joins:
            join_cols.add((e.left_table, e.left_column))
            join_cols.add((e.right_table, e.right_column))
        self._pred_columns: dict[str, list[str]] = {}
        for tname, table in db.tables.items():
            usable = [
                c
                for c in table.column_names
                if not table.column(c).is_key and (tname, c) not in join_cols
            ]
            self._pred_columns[tname] = usable
        # Connected components of the join graph (deterministic order, no
        # RNG): generated schemas may have several components or isolated
        # tables, and subgraph sampling must stay inside one component.
        self._components = self._connected_components()
        self.max_component_size = max(len(c) for c in self._components)

    # -- subgraph selection -------------------------------------------------------

    def _connected_components(self) -> list[list[str]]:
        """Components of the join graph, each sorted, in first-table order."""
        seen: set[str] = set()
        components: list[list[str]] = []
        for start in self.db.table_names:
            if start in seen:
                continue
            seen.add(start)
            stack, comp = [start], [start]
            while stack:
                t = stack.pop()
                for nb in sorted(self.db.neighbors(t)):
                    if nb not in seen:
                        seen.add(nb)
                        stack.append(nb)
                        comp.append(nb)
            components.append(sorted(comp))
        return components

    def _grow_connected(self, start: str, n_tables: int) -> set[str]:
        """Random walk over join edges from ``start``; the returned set is
        connected and, when ``start``'s component has >= ``n_tables``
        tables, has exactly ``n_tables`` members (the frontier always
        holds every boundary edge of the chosen set)."""
        chosen = {start}
        frontier_edges = list(self.db.edges_for(start))
        while len(chosen) < n_tables and frontier_edges:
            edge = frontier_edges.pop(self.rng.integers(len(frontier_edges)))
            for t in (edge.left_table, edge.right_table):
                if t not in chosen:
                    chosen.add(t)
                    frontier_edges.extend(
                        e
                        for e in self.db.edges_for(t)
                        if e.other(t) not in chosen
                    )
            frontier_edges = [
                e
                for e in frontier_edges
                if e.left_table not in chosen or e.right_table not in chosen
            ]
        return chosen

    def _random_connected_tables(self, n_tables: int) -> list[str]:
        names = self.db.table_names
        if n_tables <= 1:
            return [names[self.rng.integers(len(names))]]
        if len(self._components) == 1:
            # Historical path (connected graphs): identical RNG draw
            # sequence, so pre-existing seeded workloads stay byte-equal.
            start = names[self.rng.integers(len(names))]
            chosen = self._grow_connected(start, n_tables)
            if len(chosen) == n_tables:
                return sorted(chosen)
            raise ValueError(
                f"join graph of {self.db.name!r} has no connected subgraph "
                f"of {n_tables} tables"
            )
        # Component-aware path: sample a component that can satisfy the
        # request, then walk inside it (edges never cross components, so
        # the walk is guaranteed to finish without retries).
        eligible = [c for c in self._components if len(c) >= n_tables]
        if not eligible:
            raise ValueError(
                f"join graph of {self.db.name!r} has no connected subgraph of "
                f"{n_tables} tables: component sizes are "
                f"{sorted((len(c) for c in self._components), reverse=True)}"
            )
        comp = eligible[self.rng.integers(len(eligible))]
        start = comp[self.rng.integers(len(comp))]
        return sorted(self._grow_connected(start, n_tables))

    def _joins_for(self, tables: list[str]) -> list[Join]:
        """All declared join edges internal to the chosen tables (cycle-keeping)."""
        tset = set(tables)
        joins = []
        for e in self.db.joins:
            if e.left_table in tset and e.right_table in tset:
                joins.append(
                    Join(
                        ColumnRef(e.left_table, e.left_column),
                        ColumnRef(e.right_table, e.right_column),
                    )
                )
        return joins

    # -- predicates ------------------------------------------------------------

    def _random_simple_predicate(self, tname: str, column: str) -> Predicate:
        values = self.db.table(tname).values(column)
        ref = ColumnRef(tname, column)
        op = self._RANGE_OPS[
            self.rng.choice(len(self._RANGE_OPS), p=self._RANGE_WEIGHTS)
        ]
        # Sample constants from the data so predicates are rarely vacuous.
        pick = lambda: float(values[self.rng.integers(values.shape[0])])  # noqa: E731
        if op is Op.BETWEEN:
            a, b = pick(), pick()
            return Predicate(ref, Op.BETWEEN, (min(a, b), max(a, b)))
        if op is Op.IN:
            k = int(self.rng.integers(1, 5))
            return Predicate(ref, Op.IN, frozenset(pick() for _ in range(k)))
        return Predicate(ref, op, pick())

    def _random_predicate(self, tname: str, column: str):
        if self.or_rate > 0.0 and self.rng.random() < self.or_rate:
            ref = ColumnRef(tname, column)
            parts = set()
            for _ in range(10):
                parts.add(self._random_simple_predicate(tname, column))
                if len(parts) >= 2:
                    break
            if len(parts) >= 2:
                return OrPredicate(ref, tuple(parts))
        return self._random_simple_predicate(tname, column)

    def _random_predicates(
        self, tables: list[str], max_per_table: int
    ) -> list[Predicate]:
        preds: list[Predicate] = []
        for tname in tables:
            usable = self._pred_columns[tname]
            if not usable:
                continue
            n = int(self.rng.integers(0, max_per_table + 1))
            if n == 0:
                continue
            cols = self.rng.choice(
                usable, size=min(n, len(usable)), replace=False
            )
            preds.extend(self._random_predicate(tname, c) for c in cols)
        return preds

    # -- public API --------------------------------------------------------------

    def random_query(
        self,
        min_tables: int = 1,
        max_tables: int = 4,
        max_preds_per_table: int = 2,
        require_predicate: bool = False,
    ) -> Query:
        """One random connected SPJ query."""
        if min_tables < 1 or max_tables < min_tables:
            raise ValueError("need 1 <= min_tables <= max_tables")
        # Join sizes are capped by the largest connected component, not the
        # table count -- on a disconnected (generated) schema the two differ.
        cap = self.max_component_size
        if min_tables > cap:
            raise ValueError(
                f"min_tables={min_tables} exceeds the largest connected "
                f"component of {self.db.name!r} ({cap} tables)"
            )
        n_tables = int(self.rng.integers(min_tables, min(max_tables, cap) + 1))
        tables = self._random_connected_tables(n_tables)
        joins = self._joins_for(tables)
        for _ in range(20):
            preds = self._random_predicates(tables, max_preds_per_table)
            if preds or not require_predicate:
                break
        else:
            # Fall back: force one predicate on the first table that has
            # usable columns.
            preds = []
            for tname in tables:
                if self._pred_columns[tname]:
                    preds = [
                        self._random_predicate(tname, self._pred_columns[tname][0])
                    ]
                    break
        return Query(tuple(tables), tuple(joins), tuple(preds))

    def workload(
        self,
        n_queries: int,
        min_tables: int = 1,
        max_tables: int = 4,
        max_preds_per_table: int = 2,
        require_predicate: bool = False,
    ) -> list[Query]:
        """A list of random queries (duplicates allowed, as in real logs)."""
        return [
            self.random_query(
                min_tables, max_tables, max_preds_per_table, require_predicate
            )
            for _ in range(n_queries)
        ]

    def single_table_workload(
        self, table: str, n_queries: int, max_predicates: int = 3
    ) -> list[Query]:
        """Single-table range workload ([61]-style static evaluation)."""
        usable = self._pred_columns[table]
        if not usable:
            raise ValueError(f"table {table!r} has no predicate-eligible columns")
        queries = []
        for _ in range(n_queries):
            n = int(self.rng.integers(1, min(max_predicates, len(usable)) + 1))
            cols = self.rng.choice(usable, size=n, replace=False)
            preds = tuple(self._random_predicate(table, c) for c in cols)
            queries.append(Query((table,), (), preds))
        return queries

    def _rebind_simple(self, pred: Predicate) -> Predicate:
        """A fresh binding of one simple predicate: same column, same
        operator, same IN arity, new data-sampled literals."""
        values = self.db.table(pred.column.table).values(pred.column.column)
        pick = lambda: float(values[self.rng.integers(values.shape[0])])  # noqa: E731
        if pred.op is Op.BETWEEN:
            a, b = pick(), pick()
            return Predicate(pred.column, Op.BETWEEN, (min(a, b), max(a, b)))
        if pred.op is Op.IN:
            # Arity is part of the template (``IN (?, ?)``): draw until we
            # have exactly as many distinct values; a column with too few
            # distinct values keeps the original binding.
            k = len(pred.value)  # type: ignore[arg-type]
            chosen: set[float] = set()
            for _ in range(50):
                chosen.add(pick())
                if len(chosen) == k:
                    return Predicate(pred.column, Op.IN, frozenset(chosen))
            return Predicate(pred.column, Op.IN, pred.value)
        return Predicate(pred.column, pred.op, pick())

    def rebind(self, query: Query) -> Query:
        """A new parameter binding of ``query``: identical template
        (:attr:`~repro.sql.query.Query.template_key`), fresh literals."""
        preds: list = []
        for p in query.predicates:
            if isinstance(p, OrPredicate):
                preds.append(
                    OrPredicate(
                        p.column,
                        tuple(self._rebind_simple(part) for part in p.parts),
                    )
                )
            else:
                preds.append(self._rebind_simple(p))
        return Query(query.tables, query.joins, tuple(preds))

    def parameterized_workload(
        self,
        n_templates: int,
        bindings_per_template: int,
        min_tables: int = 1,
        max_tables: int = 4,
        max_preds_per_table: int = 2,
        require_predicate: bool = True,
    ) -> list[Query]:
        """A prepared-statement-style stream: few templates, many bindings.

        Draws ``n_templates`` random queries, then emits
        ``bindings_per_template`` rounds over them round-robin (the first
        round is the template itself, later rounds are :meth:`rebind`
        draws) -- the interleaved arrival pattern a plan cache sees in
        production.
        """
        if n_templates < 1 or bindings_per_template < 1:
            raise ValueError("need n_templates >= 1 and bindings_per_template >= 1")
        templates = [
            self.random_query(
                min_tables, max_tables, max_preds_per_table, require_predicate
            )
            for _ in range(n_templates)
        ]
        out: list[Query] = []
        for round_i in range(bindings_per_template):
            for t in templates:
                out.append(t if round_i == 0 else self.rebind(t))
        return out

    # -- rewrite-susceptible shapes ----------------------------------------------

    def _disjoint_or_predicate(self, tname: str, column: str, k: int):
        """Disjunction of ``k`` pairwise-disjoint parts on one column.

        Built from sorted distinct data samples: adjacent non-overlapping
        BETWEEN intervals when the column has enough distinct values,
        distinct equality parts otherwise.  Disjointness is what makes the
        OR -> UNION rewrite applicable (branch counts must sum exactly).
        Returns None when the column is too degenerate (< 2 distinct values).
        """
        values = self.db.table(tname).values(column)
        ref = ColumnRef(tname, column)
        sample = values[self.rng.integers(values.shape[0], size=6 * k)]
        distinct = np.unique(sample.astype(np.float64))
        if distinct.shape[0] >= 2 * k:
            picks = np.sort(
                self.rng.choice(distinct, size=2 * k, replace=False)
            )
            parts = tuple(
                Predicate(
                    ref,
                    Op.BETWEEN,
                    (float(picks[2 * i]), float(picks[2 * i + 1])),
                )
                for i in range(k)
            )
            return OrPredicate(ref, parts)
        if distinct.shape[0] >= 2:
            n = min(k, distinct.shape[0])
            picks = self.rng.choice(distinct, size=n, replace=False)
            return OrPredicate(
                ref, tuple(Predicate(ref, Op.EQ, float(v)) for v in picks)
            )
        return None

    def _wide_in_predicate(self, tname: str, column: str, width: int):
        """IN predicate with up to ``width`` distinct data-sampled values."""
        values = self.db.table(tname).values(column)
        chosen: set[float] = set()
        for _ in range(8 * width):
            chosen.add(float(values[self.rng.integers(values.shape[0])]))
            if len(chosen) >= width:
                break
        if not chosen:
            return None
        return Predicate(ColumnRef(tname, column), Op.IN, frozenset(chosen))

    def _join_column_predicate(self, joins: list[Join]):
        """A range predicate on one side of a join -- the pushdown-blocked
        shape: the filter constrains only its own scan even though the
        equi-join makes it valid (and useful) on the other side too."""
        join = joins[self.rng.integers(len(joins))]
        side = join.left if self.rng.random() < 0.5 else join.right
        values = self.db.table(side.table).values(side.column)
        pick = lambda: float(values[self.rng.integers(values.shape[0])])  # noqa: E731
        a, b = pick(), pick()
        return Predicate(side, Op.BETWEEN, (min(a, b), max(a, b)))

    def _redundant_pair(self, tname: str, column: str):
        """Two same-column conjuncts where one subsumes the other."""
        values = self.db.table(tname).values(column)
        ref = ColumnRef(tname, column)
        a = float(values[self.rng.integers(values.shape[0])])
        b = float(values[self.rng.integers(values.shape[0])])
        lo, hi = min(a, b), max(a, b)
        if lo == hi:
            return None
        if self.rng.random() < 0.5:
            # col <= lo implies col <= hi: the looser bound is redundant.
            return [Predicate(ref, Op.LE, lo), Predicate(ref, Op.LE, hi)]
        return [Predicate(ref, Op.GE, hi), Predicate(ref, Op.GE, lo)]

    def _mergeable_pair(self, tname: str, column: str):
        """GE + LE conjuncts on one column, mergeable into a single BETWEEN."""
        values = self.db.table(tname).values(column)
        ref = ColumnRef(tname, column)
        a = float(values[self.rng.integers(values.shape[0])])
        b = float(values[self.rng.integers(values.shape[0])])
        lo, hi = min(a, b), max(a, b)
        return [Predicate(ref, Op.GE, lo), Predicate(ref, Op.LE, hi)]

    def rewrite_susceptible_workload(
        self,
        n_queries: int,
        min_tables: int = 2,
        max_tables: int = 4,
        *,
        or_heavy_rate: float = 0.35,
        or_parts: tuple[int, int] = (3, 5),
        wide_in_rate: float = 0.35,
        in_width: tuple[int, int] = (8, 16),
        pushdown_rate: float = 0.5,
        redundant_rate: float = 0.3,
        mergeable_rate: float = 0.3,
    ) -> list[Query]:
        """Queries deliberately shaped for the rewrite rule library.

        Each knob is the per-query probability of injecting one shape:

        - ``or_heavy_rate``: a same-column disjunction of ``or_parts``
          pairwise-disjoint parts (OR -> UNION split fodder);
        - ``wide_in_rate``: an IN list of ``in_width`` distinct values
          (IN -> join against a literal values relation);
        - ``pushdown_rate``: a range predicate on a join column of one side
          only (transitive predicate pushdown);
        - ``redundant_rate``: a subsumed same-column conjunct pair
          (redundant-predicate elimination);
        - ``mergeable_rate``: a GE/LE pair on one column (range merging).

        Every query is guaranteed at least one susceptible shape, and
        generation is fully driven by the seeded RNG -- same seed, same
        workload.
        """
        for name, rate in (
            ("or_heavy_rate", or_heavy_rate),
            ("wide_in_rate", wide_in_rate),
            ("pushdown_rate", pushdown_rate),
            ("redundant_rate", redundant_rate),
            ("mergeable_rate", mergeable_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        out: list[Query] = []
        for _ in range(n_queries):
            cap = self.max_component_size
            if min_tables > cap:
                raise ValueError(
                    f"min_tables={min_tables} exceeds the largest connected "
                    f"component of {self.db.name!r} ({cap} tables)"
                )
            n_tables = int(
                self.rng.integers(min_tables, min(max_tables, cap) + 1)
            )
            tables = self._random_connected_tables(n_tables)
            joins = self._joins_for(tables)
            # Columns still unused by an injected shape, per table.
            free = {t: list(self._pred_columns[t]) for t in tables}
            preds: list = []

            def pop_column() -> tuple[str, str] | None:
                eligible = [t for t in tables if free[t]]
                if not eligible:
                    return None
                t = eligible[self.rng.integers(len(eligible))]
                c = free[t].pop(self.rng.integers(len(free[t])))
                return t, c

            def inject(shape: str) -> bool:
                if shape == "pushdown":
                    if not joins:
                        return False
                    preds.append(self._join_column_predicate(joins))
                    return True
                spot = pop_column()
                if spot is None:
                    return False
                t, c = spot
                if shape == "or_heavy":
                    k = int(self.rng.integers(or_parts[0], or_parts[1] + 1))
                    built = self._disjoint_or_predicate(t, c, k)
                elif shape == "wide_in":
                    w = int(self.rng.integers(in_width[0], in_width[1] + 1))
                    built = self._wide_in_predicate(t, c, w)
                elif shape == "redundant":
                    built = self._redundant_pair(t, c)
                else:  # mergeable
                    built = self._mergeable_pair(t, c)
                if built is None:
                    return False
                preds.extend(built if isinstance(built, list) else [built])
                return True

            shapes = (
                ("pushdown", pushdown_rate),
                ("or_heavy", or_heavy_rate),
                ("wide_in", wide_in_rate),
                ("redundant", redundant_rate),
                ("mergeable", mergeable_rate),
            )
            injected = 0
            for shape, rate in shapes:
                if rate > 0.0 and self.rng.random() < rate:
                    injected += inject(shape)
            if not injected:
                # Guarantee susceptibility: force the first shape that fits.
                for shape, rate in shapes:
                    if rate > 0.0 and inject(shape):
                        break
            out.append(Query(tuple(tables), tuple(joins), tuple(preds)))
        return out

    def join_template_workload(
        self, tables: list[str], n_queries: int, max_preds_per_table: int = 2
    ) -> list[Query]:
        """Queries over a fixed table set with varying predicates."""
        joins = self._joins_for(tables)
        probe = Query(tuple(tables), tuple(joins), ())
        if not probe.is_connected():
            raise ValueError(f"tables {tables} are not connected in the join graph")
        return [
            Query(
                tuple(tables),
                tuple(joins),
                tuple(self._random_predicates(list(tables), max_preds_per_table)),
            )
            for _ in range(n_queries)
        ]
