"""Parser for the SPJ COUNT(*) SQL subset.

Grammar (case-insensitive keywords)::

    query     := SELECT COUNT(*) FROM table (, table)* [WHERE conjunct (AND conjunct)*]
    conjunct  := join | predicate | or_group
    join      := colref = colref
    predicate := colref op number
               | colref BETWEEN number AND number
               | colref IN ( number (, number)* )
    or_group  := ( predicate (OR predicate)+ )        -- same column throughout
    colref    := ident . ident
    op        := = | < | <= | > | >=

Anything outside this subset raises :class:`SQLSyntaxError` with a position
hint -- the engine never silently mis-parses a query.
"""

from __future__ import annotations

import re

from repro.sql.query import ColumnRef, Join, Op, OrPredicate, Predicate, Query

__all__ = ["SQLSyntaxError", "parse_query"]


class SQLSyntaxError(ValueError):
    """Raised when the input is not in the supported SQL subset."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<number>-?\d+(\.\d+)?)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|<|>|=)
      | (?P<punct>[(),.*])
    )
    """,
    re.VERBOSE,
)


def _tokenize(sql: str) -> list[tuple[str, str, int]]:
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(sql):
        if sql[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(sql, pos)
        if match is None or match.start(1) != pos:
            raise SQLSyntaxError(f"unexpected character {sql[pos]!r} at position {pos}")
        kind = next(k for k, v in match.groupdict().items() if v is not None)
        tokens.append((kind, match.group(1), pos))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.i = 0

    def _error(self, message: str) -> SQLSyntaxError:
        pos = self.tokens[self.i][2] if self.i < len(self.tokens) else len(self.sql)
        return SQLSyntaxError(f"{message} at position {pos}: ...{self.sql[pos:pos+25]!r}")

    def peek(self) -> tuple[str, str] | None:
        if self.i >= len(self.tokens):
            return None
        kind, text, _ = self.tokens[self.i]
        return kind, text

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise SQLSyntaxError("unexpected end of query")
        self.i += 1
        return tok

    def expect_keyword(self, word: str) -> None:
        tok = self.peek()
        if tok is None or tok[0] != "ident" or tok[1].upper() != word:
            raise self._error(f"expected {word}")
        self.i += 1

    def expect_punct(self, ch: str) -> None:
        tok = self.peek()
        if tok is None or tok[1] != ch:
            raise self._error(f"expected {ch!r}")
        self.i += 1

    def at_keyword(self, word: str) -> bool:
        tok = self.peek()
        return tok is not None and tok[0] == "ident" and tok[1].upper() == word

    def ident(self) -> str:
        kind, text = self.next()
        if kind != "ident":
            self.i -= 1
            raise self._error("expected identifier")
        return text

    def number(self) -> float:
        kind, text = self.next()
        if kind != "number":
            self.i -= 1
            raise self._error("expected number")
        return float(text)

    def colref(self) -> ColumnRef:
        table = self.ident()
        self.expect_punct(".")
        column = self.ident()
        return ColumnRef(table, column)

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> Query:
        self.expect_keyword("SELECT")
        self.expect_keyword("COUNT")
        self.expect_punct("(")
        self.expect_punct("*")
        self.expect_punct(")")
        self.expect_keyword("FROM")
        tables = [self.ident()]
        while self.peek() is not None and self.peek()[1] == ",":
            self.i += 1
            tables.append(self.ident())

        joins: list[Join] = []
        predicates: list[Predicate] = []
        if self.peek() is not None:
            self.expect_keyword("WHERE")
            self._conjunct(joins, predicates)
            while self.at_keyword("AND"):
                self.i += 1
                self._conjunct(joins, predicates)
        if self.peek() is not None:
            raise self._error("trailing input")
        try:
            return Query(tuple(tables), tuple(joins), tuple(predicates))
        except ValueError as exc:
            raise SQLSyntaxError(str(exc)) from exc

    def _simple_predicate(self, left: ColumnRef) -> Predicate:
        """Predicate body after its column reference has been consumed."""
        if self.at_keyword("BETWEEN"):
            self.i += 1
            lo = self.number()
            self.expect_keyword("AND")
            hi = self.number()
            try:
                return Predicate(left, Op.BETWEEN, (lo, hi))
            except ValueError as exc:
                raise SQLSyntaxError(str(exc)) from exc
        if self.at_keyword("IN"):
            self.i += 1
            self.expect_punct("(")
            values = [self.number()]
            while self.peek() is not None and self.peek()[1] == ",":
                self.i += 1
                values.append(self.number())
            self.expect_punct(")")
            return Predicate(left, Op.IN, frozenset(values))
        kind, text = self.next()
        if kind != "op":
            self.i -= 1
            raise self._error("expected comparison operator, BETWEEN or IN")
        value = self.number()
        op = {"=": Op.EQ, "<": Op.LT, "<=": Op.LE, ">": Op.GT, ">=": Op.GE}[text]
        return Predicate(left, op, value)

    def _or_group(self) -> OrPredicate:
        """Parenthesized same-column disjunction."""
        self.expect_punct("(")
        first_col = self.colref()
        parts = [self._simple_predicate(first_col)]
        while self.at_keyword("OR"):
            self.i += 1
            col = self.colref()
            parts.append(self._simple_predicate(col))
        self.expect_punct(")")
        if len(parts) < 2:
            raise self._error("OR group needs at least two predicates")
        try:
            return OrPredicate(first_col, tuple(parts))
        except ValueError as exc:
            raise SQLSyntaxError(str(exc)) from exc

    def _conjunct(self, joins: list[Join], predicates: list) -> None:
        tok = self.peek()
        if tok is not None and tok[1] == "(":
            predicates.append(self._or_group())
            return
        left = self.colref()
        if self.at_keyword("BETWEEN") or self.at_keyword("IN"):
            predicates.append(self._simple_predicate(left))
            return
        kind, text = self.next()
        if kind != "op":
            self.i -= 1
            raise self._error("expected comparison operator, BETWEEN or IN")
        tok = self.peek()
        if tok is None:
            raise SQLSyntaxError("unexpected end of query after operator")
        if text == "=" and tok[0] == "ident":
            right = self.colref()
            joins.append(Join(left, right))
            return
        value = self.number()
        op = {"=": Op.EQ, "<": Op.LT, "<=": Op.LE, ">": Op.GT, ">=": Op.GE}[text]
        predicates.append(Predicate(left, op, value))


def parse_query(sql: str) -> Query:
    """Parse SQL text into a :class:`Query`; raises :class:`SQLSyntaxError`."""
    if not sql or not sql.strip():
        raise SQLSyntaxError("empty query")
    return _Parser(sql).parse()
