"""Eddy-RL adaptive join ordering [58].

Eddies route tuples through join operators adaptively; the RL formulation
learns Q-values for "which table to probe next" from the fan-outs observed
while tuples flow.  This implementation simulates that online signal: the
query executes in *chunks* of driver-table rows sampled from the real
data; each chunk reveals the true per-tuple fan-out of the chosen next
join, which updates a tabular Q-function (state = set of joined tables,
action = next table).  The final order is the greedy policy's order, so
the search can change its mind *mid-query* exactly as eddies do.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.executor import CardinalityExecutor
from repro.joinorder.env import JoinOrderEnv, plan_from_order
from repro.optimizer.planner import Optimizer
from repro.sql.query import Query

__all__ = ["EddyJoinOrderSearch"]


class EddyJoinOrderSearch:
    """Q-learning over observed per-chunk join fan-outs."""

    name = "eddy"

    def __init__(
        self,
        optimizer: Optimizer,
        *,
        chunk_size: int = 64,
        n_chunks: int = 12,
        alpha: float = 0.4,
        epsilon: float = 0.25,
        seed: int = 0,
    ) -> None:
        self.optimizer = optimizer
        self.executor = CardinalityExecutor(optimizer.db)
        self.chunk_size = chunk_size
        self.n_chunks = n_chunks
        self.alpha = alpha
        self.epsilon = epsilon
        self._rng = np.random.default_rng(seed)

    def _observed_fanout(
        self, query: Query, prefix: list[str], action: str
    ) -> float:
        """Observed growth factor when extending the prefix by ``action``.

        Measured on the true data (the executor's exact counts restricted
        to the relevant sub-queries) with chunk-level noise -- the signal a
        real eddy reads off its tuple stream.
        """
        before = self.executor.cardinality(query.subquery(prefix))
        after = self.executor.cardinality(query.subquery(prefix + [action]))
        fanout = after / max(before, 1)
        # Chunk sampling noise: a chunk of rows sees a noisy fan-out.
        noise = self._rng.normal(1.0, 0.15)
        return max(fanout * noise, 1e-9)

    def search(self, query: Query):
        """Adaptively learn an order while 'executing'; returns the plan."""
        if query.n_tables == 1:
            return self.optimizer.plan(query)
        q_table: dict[tuple[frozenset[str], str], float] = {}

        def q(state: frozenset[str], action: str) -> float:
            return q_table.get((state, action), 0.0)

        # Online phase: process chunks, each chunk re-decides the routing.
        for _ in range(self.n_chunks):
            env = JoinOrderEnv(query)
            # Driver table: the cheapest filtered table (as eddies start
            # from the scanned stream).
            first = min(
                query.tables,
                key=lambda t: self.executor.cardinality(query.subquery([t])),
            )
            env.step(first)
            while not env.done:
                actions = env.valid_actions()
                state = frozenset(env.prefix)
                if self._rng.random() < self.epsilon:
                    choice = actions[self._rng.integers(len(actions))]
                else:
                    choice = min(actions, key=lambda a: q(state, a))
                fanout = self._observed_fanout(query, list(env.prefix), choice)
                cost_signal = math.log1p(fanout)
                old = q(state, choice)
                q_table[(state, choice)] = old + self.alpha * (cost_signal - old)
                env.step(choice)

        # Final greedy order from the learned Q-values.
        env = JoinOrderEnv(query)
        first = min(
            query.tables,
            key=lambda t: self.executor.cardinality(query.subquery([t])),
        )
        env.step(first)
        while not env.done:
            actions = env.valid_actions()
            state = frozenset(env.prefix)
            env.step(min(actions, key=lambda a: q(state, a)))
        return plan_from_order(query, env.prefix, self.optimizer.coster)
