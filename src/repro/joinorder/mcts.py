"""SkinnerDB-style online join-order search via UCT [56].

SkinnerDB explores join orders *during* execution, giving each candidate
order a time slice and backing observed progress into a UCT tree.  Here
the execution feedback is the simulator's latency of the completed plan
(our time-slice equivalent); the search returns both the best plan found
and the regret trace the paper's analysis is about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.joinorder.env import JoinOrderEnv, plan_from_order
from repro.optimizer.planner import Optimizer
from repro.sql.query import Query

__all__ = ["MCTSJoinOrderSearch"]


@dataclass
class _UCTNode:
    prefix: tuple[str, ...]
    visits: int = 0
    total_reward: float = 0.0
    children: dict[str, "_UCTNode"] = field(default_factory=dict)

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0


class MCTSJoinOrderSearch:
    """UCT over left-deep join orders with execution feedback."""

    name = "mcts"

    def __init__(
        self,
        optimizer: Optimizer,
        evaluate,
        *,
        exploration: float = 1.2,
        seed: int = 0,
    ) -> None:
        """``evaluate(plan) -> latency_ms`` supplies execution feedback
        (pass ``simulator.latency`` for SkinnerDB-style online learning, or
        ``optimizer.cost`` for a cost-model-only variant)."""
        self.optimizer = optimizer
        self.evaluate = evaluate
        self.exploration = exploration
        self._rng = np.random.default_rng(seed)

    def _rollout(self, env: JoinOrderEnv) -> list[str]:
        while not env.done:
            actions = env.valid_actions()
            env.step(actions[self._rng.integers(len(actions))])
        return env.prefix

    def search(
        self, query: Query, iterations: int = 60
    ) -> tuple[object, dict]:
        """Run UCT; returns (best plan, diagnostics).

        Diagnostics contain the per-iteration latencies (the regret trace)
        and the best latency found.
        """
        if query.n_tables == 1:
            plan = self.optimizer.plan(query)
            return plan, {"latencies": [self.evaluate(plan)], "best_latency": None}

        root = _UCTNode(prefix=())
        best_plan = None
        best_latency = math.inf
        latencies: list[float] = []
        # Latency normalization reference from one random rollout.
        env = JoinOrderEnv(query)
        ref_order = self._rollout(env)
        ref_plan = plan_from_order(query, ref_order, self.optimizer.coster)
        ref_latency = max(self.evaluate(ref_plan), 1e-9)

        for _ in range(iterations):
            env = JoinOrderEnv(query)
            node = root
            path = [root]
            # Selection / expansion.
            while not env.done:
                actions = env.valid_actions()
                unexplored = [a for a in actions if a not in node.children]
                if unexplored:
                    choice = unexplored[self._rng.integers(len(unexplored))]
                    child = _UCTNode(prefix=tuple(env.prefix) + (choice,))
                    node.children[choice] = child
                    env.step(choice)
                    path.append(child)
                    node = child
                    break
                # UCT selection.
                log_n = math.log(max(node.visits, 1))
                scores = [
                    node.children[a].mean_reward
                    + self.exploration
                    * math.sqrt(log_n / max(node.children[a].visits, 1))
                    for a in actions
                ]
                choice = actions[int(np.argmax(scores))]
                env.step(choice)
                node = node.children[choice]
                path.append(node)
            # Rollout to completion.
            order = self._rollout(env)
            plan = plan_from_order(query, order, self.optimizer.coster)
            latency = self.evaluate(plan)
            latencies.append(latency)
            if latency < best_latency:
                best_latency = latency
                best_plan = plan
            reward = -latency / ref_latency
            for n in path:
                n.visits += 1
                n.total_reward += reward

        assert best_plan is not None
        return best_plan, {"latencies": latencies, "best_latency": best_latency}
