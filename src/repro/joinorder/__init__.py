"""Learned join-order search (paper §2.1.3).

The plan-enumerator component learned with RL, in the two regimes the
tutorial distinguishes:

- **offline** (learn from past queries): :class:`DQJoinOrderSearch`
  (DQ [15] / ReJoin [24] -- Q-learning with a neural state-action value)
  and :class:`RTOSJoinOrderSearch` (RTOS [73] -- tree-structured state
  representation via tree convolution);
- **online** (learn during execution): :class:`MCTSJoinOrderSearch`
  (SkinnerDB [56] -- UCT over join orders with execution feedback) and
  :class:`EddyJoinOrderSearch` (Eddy-RL [58] -- Q-learning on observed
  per-chunk fan-outs while tuples flow).

All operate in the left-deep plan space (the space these systems search)
and produce a standard :class:`repro.engine.plans.Plan`; physical operators
per join are chosen greedily by the native cost model, as the papers do.
"""

from repro.joinorder.env import JoinOrderEnv, plan_from_order
from repro.joinorder.dq import DQJoinOrderSearch
from repro.joinorder.rtos import RTOSJoinOrderSearch
from repro.joinorder.mcts import MCTSJoinOrderSearch
from repro.joinorder.eddy import EddyJoinOrderSearch

__all__ = [
    "JoinOrderEnv",
    "plan_from_order",
    "DQJoinOrderSearch",
    "RTOSJoinOrderSearch",
    "MCTSJoinOrderSearch",
    "EddyJoinOrderSearch",
]
